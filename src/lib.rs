//! # minoan — facade crate for the MinoanER reproduction
//!
//! Re-exports the full public API of the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`common`] | `minoan-common` | hashing, interning, union–find, top-k, Zipf |
//! | [`rdf`] | `minoan-rdf` | RDF model, N-Triples, datasets, tokenisation |
//! | [`datagen`] | `minoan-datagen` | synthetic LOD worlds + ground truth |
//! | [`mapreduce`] | `minoan-mapreduce` | the in-process MapReduce engine |
//! | [`blocking`] | `minoan-blocking` | token/URI/attribute-clustering blocking, purging, filtering |
//! | [`metablocking`] | `minoan-metablocking` | the meta-blocking `Session` (scheme × pruning × backend), blocking graph, weighting |
//! | [`similarity`] | `minoan-similarity` | token and string similarity measures |
//! | [`er`] | `minoan-er` | **the progressive ER engine and pipeline** |
//! | [`eval`] | `minoan-eval` | PC/PQ/RR, precision/recall, progressive curves, bootstrap CIs, ASCII plots |
//! | [`store`] | `minoan-store` | dictionary-encoded triple store (SPO/POS/OSP indexes, snapshots) |
//!
//! See `examples/quickstart.rs` for the end-to-end workflow of the paper's
//! Figure 1.

#![forbid(unsafe_code)]

pub use minoan_blocking as blocking;
pub use minoan_common as common;
pub use minoan_datagen as datagen;
pub use minoan_er as er;
pub use minoan_eval as eval;
pub use minoan_mapreduce as mapreduce;
pub use minoan_metablocking as metablocking;
pub use minoan_rdf as rdf;
pub use minoan_similarity as similarity;
pub use minoan_store as store;

/// Convenience prelude with the names almost every user needs.
pub mod prelude {
    pub use minoan_blocking::{builders, filter, purge, BlockCollection, ErMode};
    pub use minoan_datagen::{generate, profiles, GroundTruth, WorldConfig};
    pub use minoan_er::{
        BenefitModel, Matcher, MatcherConfig, Pipeline, PipelineConfig, ProgressiveResolver,
        Resolution, ResolverConfig, Strategy, Trace,
    };
    pub use minoan_eval::{metrics, progressive, Table};
    pub use minoan_mapreduce::Engine;
    pub use minoan_metablocking::{
        prune, BlockingGraph, ExecutionBackend, PruneOutcome, Pruning, Session, WeightingScheme,
    };
    pub use minoan_rdf::{Dataset, DatasetBuilder, EntityId, KbId};
}
