//! Property suite for query-time resolution: `resolve_entity(e)` must be
//! *bit-identical* to the incident slice of a full run — the pairs that
//! mention `e` in the full pruned outcome, in the same order, with the
//! same f64 weight bits — for every scheme × pruning family, on both the
//! batch [`Session`] and the updatable [`IncrementalSession`] (delta and
//! fallback paths alike). Run under `RUST_TEST_THREADS=1` and `4` in CI;
//! per-worker identity is also asserted in-process.

mod common;

use common::assert_pairs_bit_identical;
use minoan::blocking::{builders, ErMode};
use minoan::datagen::{generate, profiles, ArrivalOrder, GeneratedWorld};
use minoan::metablocking::{
    BlockingGraph, ExecutionBackend, FeatureExtractor, IncrementalSession, Perceptron, Pruning,
    Session, TrainingSet, WeightedPair,
};
use minoan::rdf::EntityId;

/// Every unsupervised family variant, including explicit-k and BLAST.
fn family_variants() -> Vec<(&'static str, Pruning)> {
    vec![
        ("none", Pruning::None),
        ("wep", Pruning::Wep),
        ("cep/default", Pruning::Cep(None)),
        ("cep/9", Pruning::Cep(Some(9))),
        ("wnp", Pruning::Wnp { reciprocal: false }),
        ("wnp/recip", Pruning::Wnp { reciprocal: true }),
        (
            "cnp/default",
            Pruning::Cnp {
                reciprocal: false,
                k: None,
            },
        ),
        (
            "cnp/3-recip",
            Pruning::Cnp {
                reciprocal: true,
                k: Some(3),
            },
        ),
        ("blast", Pruning::blast()),
    ]
}

/// The full outcome's pairs that mention `e`, in full-outcome order.
fn incident(pairs: &[WeightedPair], e: EntityId) -> Vec<WeightedPair> {
    pairs
        .iter()
        .filter(|p| p.a == e || p.b == e)
        .copied()
        .collect()
}

/// A spread of probe entities: every stride-th id, so the sample hits
/// hubs, leaves and isolated entities across both KBs.
fn probes(n: usize, stride: usize) -> Vec<EntityId> {
    (0..n as u32).step_by(stride.max(1)).map(EntityId).collect()
}

#[test]
fn batch_session_resolves_every_family_bit_identically() {
    let world = generate(&profiles::center_dense(120, 13));
    let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
    let n = world.dataset.len();
    for workers in [1usize, 3] {
        for scheme in minoan::metablocking::WeightingScheme::ALL {
            for (fname, family) in family_variants() {
                let mut session = Session::new(&blocks);
                session
                    .scheme(scheme)
                    .pruning(family)
                    .backend(ExecutionBackend::Streaming)
                    .workers(workers);
                let full = session.run();
                for e in probes(n, 7) {
                    let resolved = session.resolve_entity(e);
                    assert_eq!(resolved.entity, e);
                    assert_pairs_bit_identical(
                        &resolved.matches,
                        &incident(full.pairs(), e),
                        &format!("{scheme:?}/{fname}/w={workers}/e={}", e.0),
                    );
                }
            }
        }
    }
}

#[test]
fn batch_session_resolves_supervised_bit_identically() {
    let world = generate(&profiles::center_dense(140, 23));
    let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
    let graph = BlockingGraph::build(&blocks);
    let extractor = FeatureExtractor::fit(&graph);
    let set = TrainingSet::sample(&graph, &extractor, |a, b| world.truth.is_match(a, b), 40, 7);
    let model = Perceptron::train(&set, 12);
    let mut session = Session::new(&blocks);
    session.pruning(Pruning::Supervised(model));
    let full = session.run();
    assert!(
        !full.pairs().is_empty(),
        "fixture model must keep something"
    );
    for e in probes(world.dataset.len(), 5) {
        let resolved = session.resolve_entity(e);
        assert_pairs_bit_identical(
            &resolved.matches,
            &incident(full.pairs(), e),
            &format!("supervised/e={}", e.0),
        );
    }
}

/// Scheme switches on one session rebuild the criterion; answers after a
/// switch must match a fresh session's.
#[test]
fn scheme_and_pruning_switches_on_one_session_stay_exact() {
    use minoan::metablocking::WeightingScheme;
    let world = generate(&profiles::center_dense(100, 31));
    let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
    let mut session = Session::new(&blocks);
    for (scheme, pruning) in [
        (WeightingScheme::Js, Pruning::Wep),
        (WeightingScheme::Js, Pruning::Cep(None)),
        (WeightingScheme::Arcs, Pruning::Cep(None)),
        (
            WeightingScheme::Cbs,
            Pruning::Cnp {
                reciprocal: false,
                k: None,
            },
        ),
    ] {
        session.scheme(scheme).pruning(pruning);
        let full = session.run();
        for e in probes(world.dataset.len(), 11) {
            let resolved = session.resolve_entity(e);
            assert_pairs_bit_identical(
                &resolved.matches,
                &incident(full.pairs(), e),
                &format!("switch/{scheme:?}/{pruning:?}/e={}", e.0),
            );
        }
    }
}

fn world() -> GeneratedWorld {
    generate(&profiles::center_dense(130, 41))
}

/// After every ingest, the incremental session's answer equals a
/// from-scratch batch [`Session`] over the merged snapshot — on the
/// delta row-cache path and the per-request fallback path alike.
#[test]
fn incremental_resolves_match_from_scratch_sessions_after_every_batch() {
    use minoan::metablocking::WeightingScheme;
    let g = world();
    let batches = ArrivalOrder::Shuffled { seed: 7 }.batches(&g.dataset, &g.truth, 33);
    let combos = [
        // Delta row-cache path, locally invalidatable.
        (
            "js/wnp",
            WeightingScheme::Js,
            Pruning::Wnp { reciprocal: false },
        ),
        // Delta path, global criterion.
        ("js/wep", WeightingScheme::Js, Pruning::Wep),
        ("arcs/cep", WeightingScheme::Arcs, Pruning::Cep(None)),
        (
            "cbs/cnp",
            WeightingScheme::Cbs,
            Pruning::Cnp {
                reciprocal: true,
                k: None,
            },
        ),
        // Fallback paths: no delta rows for the scheme or the family.
        (
            "ecbs/wnp",
            WeightingScheme::Ecbs,
            Pruning::Wnp { reciprocal: true },
        ),
        ("js/blast", WeightingScheme::Js, Pruning::blast()),
    ];
    for (label, scheme, pruning) in combos {
        for workers in [1usize, 2, 4] {
            let mut inc = IncrementalSession::new(&g.dataset, ErMode::CleanClean);
            inc.scheme(scheme).pruning(pruning).workers(workers);
            for (i, batch) in batches.iter().enumerate() {
                inc.ingest(batch);
                // Answer first, then compare: the reference session
                // borrows the snapshot the incremental session owns.
                let sample = probes(g.dataset.len(), 17);
                let got: Vec<_> = sample.iter().map(|&e| inc.resolve_entity(e)).collect();
                let snap = inc.snapshot().expect("ingest leaves a snapshot behind");
                let mut reference = Session::new(snap);
                reference
                    .scheme(scheme)
                    .pruning(pruning)
                    .backend(ExecutionBackend::Streaming)
                    .workers(workers);
                for (e, got) in sample.iter().zip(&got) {
                    let want = reference.resolve_entity(*e);
                    assert_pairs_bit_identical(
                        &got.matches,
                        &want.matches,
                        &format!("{label}/w={workers}/batch={i}/e={}", e.0),
                    );
                }
            }
        }
    }
}

/// Resolving on an empty corpus answers an empty neighbourhood, and the
/// first answer after the first ingest is already exact.
#[test]
fn empty_corpus_resolves_to_nothing() {
    let g = world();
    let mut inc = IncrementalSession::new(&g.dataset, ErMode::CleanClean);
    let resolved = inc.resolve_entity(EntityId(0));
    assert!(resolved.matches.is_empty());
    assert!(resolved.neighbours.is_empty());
    assert_eq!(inc.version(), 0);
}
