//! Session-reuse equivalence: one [`Session`] swept over all five
//! weighting schemes and all pruning families must be bitwise-equal to
//! fresh single-shot runs of the pre-session free functions, for every
//! [`ExecutionBackend`] and workers 1/4 — and the sweep must *reuse* the
//! expensive shared state instead of rebuilding it per run, asserted via
//! the [`probe`] build/allocation counters.
//!
//! Every test takes the file-local probe lock: the counters are
//! process-global, so the measured regions must not interleave.

use minoan::blocking::{builders, ErMode};
use minoan::metablocking::{
    blast, probe, prune, supervised_prune, BlockingGraph, ExecutionBackend, FeatureExtractor,
    Perceptron, Pruning, Session, TrainingSet, WeightedPair,
};
use minoan::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

mod common;
use common::{assert_outcome_bit_identical, assert_pairs_bit_identical};

fn probe_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn fixture() -> (BlockCollection, BlockingGraph) {
    let world = generate(&profiles::center_dense(120, 13));
    let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
    let graph = BlockingGraph::build(&blocks);
    (blocks, graph)
}

/// The family variants the sweep covers (supervised is exercised in its
/// own test — it needs a trained model).
fn family_variants() -> Vec<(&'static str, Pruning)> {
    vec![
        ("none", Pruning::None),
        ("wep", Pruning::Wep),
        ("cep/default", Pruning::Cep(None)),
        ("cep/9", Pruning::Cep(Some(9))),
        ("wnp", Pruning::Wnp { reciprocal: false }),
        ("wnp/recip", Pruning::Wnp { reciprocal: true }),
        (
            "cnp/default",
            Pruning::Cnp {
                reciprocal: false,
                k: None,
            },
        ),
        (
            "cnp/3-recip",
            Pruning::Cnp {
                reciprocal: true,
                k: Some(3),
            },
        ),
        ("blast", Pruning::blast()),
    ]
}

/// The pre-session single-shot result for one scheme × family on the
/// materialised graph (the reference every backend must match).
fn single_shot(
    graph: &BlockingGraph,
    scheme: WeightingScheme,
    pruning: Pruning,
) -> Vec<WeightedPair> {
    match pruning {
        Pruning::None => graph
            .edges()
            .iter()
            .map(|e| WeightedPair {
                a: e.a,
                b: e.b,
                weight: scheme.weight(graph, e),
            })
            .collect(),
        Pruning::Wep => prune::wep(graph, scheme).pairs,
        Pruning::Cep(k) => prune::cep(graph, scheme, k).pairs,
        Pruning::Wnp { reciprocal } => prune::wnp(graph, scheme, reciprocal).pairs,
        Pruning::Cnp { reciprocal, k } => prune::cnp(graph, scheme, reciprocal, k).pairs,
        Pruning::Blast { ratio } => blast(graph, ratio).pairs,
        Pruning::Supervised(model) => supervised_prune(graph, &model).pairs,
    }
}

/// One session swept over all five schemes and all pruning families is
/// bitwise-equal to fresh single-shot runs, per backend and worker count.
#[test]
fn one_session_sweep_equals_fresh_single_shots() {
    let _guard = probe_lock();
    let (blocks, graph) = fixture();
    for backend in ExecutionBackend::ALL {
        for workers in [1usize, 4] {
            let mut session = Session::new(&blocks);
            session.backend(backend).workers(workers);
            for scheme in WeightingScheme::ALL {
                session.scheme(scheme);
                for (fname, family) in family_variants() {
                    let out = session.pruning(family).run();
                    let expect = single_shot(&graph, scheme, family);
                    assert_pairs_bit_identical(
                        out.pairs(),
                        &expect,
                        &format!("{backend:?}/{scheme:?}/{fname}/w={workers}"),
                    );
                    assert_eq!(
                        out.input_edges(),
                        graph.num_edges(),
                        "{backend:?}/{scheme:?}/{fname}/w={workers}: input_edges"
                    );
                }
            }
        }
    }
}

/// Interleaving backends mid-sweep on a single session (so the cached
/// sweep state crosses backend boundaries) never changes a bit.
#[test]
fn backend_interleaving_on_one_session_is_bit_identical() {
    let _guard = probe_lock();
    let (blocks, graph) = fixture();
    let mut session = Session::new(&blocks);
    session.workers(3);
    for scheme in WeightingScheme::ALL {
        session.scheme(scheme);
        for (fname, family) in family_variants() {
            session.pruning(family);
            let expect = single_shot(&graph, scheme, family);
            for backend in [
                ExecutionBackend::Streaming,
                ExecutionBackend::MapReduce,
                ExecutionBackend::Materialized,
            ] {
                let out = session.backend(backend).run();
                assert_pairs_bit_identical(
                    out.pairs(),
                    &expect,
                    &format!("interleaved/{backend:?}/{scheme:?}/{fname}"),
                );
            }
        }
    }
}

/// The supervised family is reachable from every backend through the one
/// entry point, bit-identical to the materialised `supervised_prune`.
#[test]
fn supervised_family_reachable_from_every_backend() {
    let _guard = probe_lock();
    let world = generate(&profiles::center_dense(140, 23));
    let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
    let graph = BlockingGraph::build(&blocks);
    let extractor = FeatureExtractor::fit(&graph);
    let set = TrainingSet::sample(&graph, &extractor, |a, b| world.truth.is_match(a, b), 40, 7);
    let model = Perceptron::train(&set, 12);
    let expect = supervised_prune(&graph, &model);
    assert!(
        !expect.pairs.is_empty(),
        "fixture model must keep something"
    );
    for backend in ExecutionBackend::ALL {
        for workers in [1usize, 4] {
            let out = Session::new(&blocks)
                .pruning(Pruning::Supervised(model))
                .backend(backend)
                .workers(workers)
                .run();
            assert_outcome_bit_identical(
                &out,
                &expect,
                &format!("supervised/{backend:?}/w={workers}"),
            );
        }
    }
}

/// The acceptance probe: a five-scheme sweep through one materialised
/// session performs exactly one CSR build (fresh sessions would build
/// five times), and further family runs still add none.
#[test]
fn five_scheme_materialised_sweep_builds_csr_exactly_once() {
    let _guard = probe_lock();
    let world = generate(&profiles::center_dense(100, 3));
    let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);

    let before = probe::csr_builds();
    let mut session = Session::new(&blocks);
    session.pruning(Pruning::Wnp { reciprocal: false });
    for scheme in WeightingScheme::ALL {
        session.scheme(scheme).run();
    }
    assert_eq!(
        probe::csr_builds() - before,
        1,
        "five schemes through one session = one CSR build"
    );
    for family in Pruning::FAMILIES {
        session.pruning(family).run();
    }
    assert_eq!(
        probe::csr_builds() - before,
        1,
        "family sweep reuses the same graph"
    );

    // Contrast: fresh single-shot sessions rebuild per call.
    let fresh_before = probe::csr_builds();
    for scheme in WeightingScheme::ALL {
        Session::new(&blocks)
            .scheme(scheme)
            .pruning(Pruning::Wnp { reciprocal: false })
            .run();
    }
    assert_eq!(
        probe::csr_builds() - fresh_before,
        5,
        "fresh sessions build once each"
    );
}

/// The acceptance probe, streaming arm: a full scheme × family sweep at
/// one worker performs exactly one scratch allocation and zero CSR
/// builds.
#[test]
fn streaming_sweep_allocates_exactly_one_scratch_at_one_worker() {
    let _guard = probe_lock();
    let world = generate(&profiles::center_dense(100, 5));
    let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);

    let builds_before = probe::csr_builds();
    let allocs_before = probe::scratch_allocs();
    let mut session = Session::new(&blocks);
    session.backend(ExecutionBackend::Streaming).workers(1);
    for scheme in WeightingScheme::ALL {
        session.scheme(scheme);
        for family in Pruning::FAMILIES {
            session.pruning(family).run();
        }
    }
    assert_eq!(
        probe::scratch_allocs() - allocs_before,
        1,
        "the whole streaming sweep reuses one pooled scratch"
    );
    assert_eq!(
        probe::csr_builds() - builds_before,
        0,
        "the streaming backend never builds the CSR graph"
    );
}

/// MapReduce runs draw scratches from the same session pool: across a
/// five-scheme sweep the pool never exceeds the engine's concurrency,
/// instead of allocating per job.
#[test]
fn mapreduce_sweep_bounds_scratch_allocations_by_worker_count() {
    let _guard = probe_lock();
    let world = generate(&profiles::center_dense(100, 7));
    let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);

    let workers = 2usize;
    let allocs_before = probe::scratch_allocs();
    let mut session = Session::new(&blocks);
    session
        .backend(ExecutionBackend::MapReduce)
        .workers(workers)
        .pruning(Pruning::Wnp { reciprocal: false });
    for scheme in WeightingScheme::ALL {
        session.scheme(scheme).run();
    }
    let delta = probe::scratch_allocs() - allocs_before;
    assert!(delta >= 1, "at least one scratch must exist");
    assert!(
        delta <= workers,
        "a {workers}-worker sweep may allocate at most {workers} scratches, got {delta}"
    );
}
