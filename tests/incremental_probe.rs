//! Probe-counter assertions for the updatable meta-blocking session.
//!
//! These tests assert *exact deltas* of the process-global
//! [`probe`] counters (`delta_sweeps`, `delta_entities_swept`,
//! `delta_blocks_touched`, `full_resweeps`), so they live in their own
//! integration-test binary: every other ingest running in the same
//! process would tick the counters concurrently and break the
//! equalities. Within this binary the tests serialise themselves via
//! [`probe_lock`]. Run under `RUST_TEST_THREADS=1` and `4` in CI like
//! the other equivalence suites — the lock makes both schedulers
//! equivalent here.

use minoan::blocking::ErMode;
use minoan::datagen::{generate, profiles};
use minoan::metablocking::{probe, IncrementalSession, Pruning, WeightingScheme};
use std::sync::{Mutex, OnceLock};

/// Serialises tests that assert on the process-global probe counters.
fn probe_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[test]
fn probe_counters_prove_dirty_sweeps_touch_a_strict_subset() {
    let _guard = probe_lock();
    // A periphery world: proprietary vocabularies, so a small tail batch
    // dirties only its own neighbourhood. (In a center-style world with
    // universal tokens, a batch can legitimately dirty everyone.)
    let g = generate(&profiles::periphery_sparse(220, 17));
    let ids: Vec<_> = g.dataset.entities().collect();
    let (bulk, tail) = ids.split_at(ids.len() - 5);
    let mut inc = IncrementalSession::new(&g.dataset, ErMode::CleanClean);
    inc.scheme(WeightingScheme::Arcs)
        .pruning(Pruning::Wnp { reciprocal: false });
    inc.ingest(bulk);
    let sweeps_before = probe::delta_sweeps();
    let swept_before = probe::delta_entities_swept();
    let blocks_before = probe::delta_blocks_touched();
    let report = inc.ingest(tail);
    assert!(report.delta, "{report:?}");
    assert_eq!(probe::delta_sweeps(), sweeps_before + 1);
    let swept = probe::delta_entities_swept() - swept_before;
    assert_eq!(swept, report.swept_entities);
    assert!(
        swept < report.num_arrived,
        "dirty sweep must touch a strict subset: {swept} of {}",
        report.num_arrived
    );
    assert_eq!(
        probe::delta_blocks_touched() - blocks_before,
        report.touched_blocks
    );
}

#[test]
fn fallbacks_tick_the_full_resweep_counter() {
    let _guard = probe_lock();
    let g = generate(&profiles::center_dense(90, 5));
    let ids: Vec<_> = g.dataset.entities().collect();
    let mut inc = IncrementalSession::new(&g.dataset, ErMode::CleanClean);
    inc.scheme(WeightingScheme::Ejs);
    let full_before = probe::full_resweeps();
    let report = inc.ingest(&ids);
    assert!(!report.delta);
    assert_eq!(report.swept_entities, 0);
    let _ = inc.outcome();
    assert!(probe::full_resweeps() > full_before);
}
