//! Consistency suite for the resolution service: any interleaving of
//! `RESOLVE` and `INGEST` — sequential or concurrent, cache on or off,
//! over the wire or in-process — must answer every resolve bit-identical
//! to a from-scratch batch [`Session`] over the corpus at the answer's
//! stamped version (the admission point). Run under
//! `RUST_TEST_THREADS=1` and `4` in CI; per-worker identity is also
//! asserted in-process.

mod common;

use common::assert_pairs_bit_identical;
use minoan::blocking::ErMode;
use minoan::datagen::{generate, profiles, ArrivalOrder, GeneratedWorld};
use minoan::metablocking::{
    ExecutionBackend, IncrementalSession, Pruning, Session, WeightedPair, WeightingScheme,
};
use minoan::rdf::EntityId;
use minoan_server::{Client, ResolveService, Server};
use std::collections::BTreeMap;

fn world() -> GeneratedWorld {
    generate(&profiles::center_dense(120, 17))
}

/// Arrival batches as raw u32 ids (the service's wire-level currency).
fn id_batches(g: &GeneratedWorld, batch: usize) -> Vec<Vec<u32>> {
    ArrivalOrder::Shuffled { seed: 3 }
        .batches(&g.dataset, &g.truth, batch)
        .into_iter()
        .map(|b| b.iter().map(|e| e.0).collect())
        .collect()
}

/// The from-scratch reference at one version: a fresh incremental
/// session fed the first `version` batches in one go, snapshotted, and
/// answered by a batch [`Session`] (`version` counts ingests, so version
/// v = the first v batches).
struct Reference<'d> {
    g: &'d GeneratedWorld,
    batches: &'d [Vec<u32>],
    scheme: WeightingScheme,
    pruning: Pruning,
    sessions: BTreeMap<u64, IncrementalSession<'d>>,
}

impl<'d> Reference<'d> {
    fn new(
        g: &'d GeneratedWorld,
        batches: &'d [Vec<u32>],
        scheme: WeightingScheme,
        pruning: Pruning,
    ) -> Self {
        Self {
            g,
            batches,
            scheme,
            pruning,
            sessions: BTreeMap::new(),
        }
    }

    fn resolve(&mut self, version: u64, entity: u32) -> Vec<WeightedPair> {
        let (g, batches, scheme, pruning) = (self.g, self.batches, self.scheme, self.pruning);
        let inc = self.sessions.entry(version).or_insert_with(|| {
            let mut inc = IncrementalSession::new(&g.dataset, ErMode::CleanClean);
            inc.scheme(scheme).pruning(pruning);
            let merged: Vec<EntityId> = batches
                .iter()
                .take(version as usize)
                .flat_map(|b| b.iter().map(|&e| EntityId(e)))
                .collect();
            inc.ingest(&merged);
            inc
        });
        if version == 0 {
            return Vec::new();
        }
        let snap = inc.snapshot().expect("ingest leaves a snapshot behind");
        Session::new(snap)
            .scheme(scheme)
            .pruning(pruning)
            .backend(ExecutionBackend::Streaming)
            .resolve_entity(EntityId(entity))
            .matches
    }
}

fn check_reply(
    reference: &mut Reference<'_>,
    entity: u32,
    version: u64,
    pairs: &[(u32, u32, u64)],
    label: &str,
) {
    let got: Vec<WeightedPair> = pairs
        .iter()
        .map(|&(a, b, bits)| WeightedPair {
            a: EntityId(a),
            b: EntityId(b),
            weight: f64::from_bits(bits),
        })
        .collect();
    let want = reference.resolve(version, entity);
    assert_pairs_bit_identical(&got, &want, &format!("{label}/v={version}/e={entity}"));
}

/// One recorded answer: `(entity, stamped version, pairs as raw bits)`.
type RecordedAnswer = (u32, u64, Vec<(u32, u32, u64)>);

/// Scheme × pruning mix covering the delta row-cache path, the global
/// criteria (whole-cache clears) and the per-request fallback path.
fn combos() -> Vec<(&'static str, WeightingScheme, Pruning)> {
    vec![
        (
            "js/wnp",
            WeightingScheme::Js,
            Pruning::Wnp { reciprocal: false },
        ),
        ("js/wep", WeightingScheme::Js, Pruning::Wep),
        ("arcs/cep", WeightingScheme::Arcs, Pruning::Cep(None)),
        (
            "ecbs/wnp",
            WeightingScheme::Ecbs,
            Pruning::Wnp { reciprocal: true },
        ),
    ]
}

/// Sequential interleaving: resolve a probe set, ingest a batch, resolve
/// again — every answer re-derived from scratch at its stamped version.
#[test]
fn interleaved_resolves_match_from_scratch_at_the_admission_point() {
    let g = world();
    let batches = id_batches(&g, 31);
    let n = g.dataset.len() as u32;
    // Hot probes repeat every round (cache-hit path); cold probes rotate.
    let hot = [3u32, 7, 11];
    for (label, scheme, pruning) in combos() {
        for cache in [0usize, 64] {
            let service =
                ResolveService::new(&g.dataset, ErMode::CleanClean, scheme, pruning, cache);
            let mut reference = Reference::new(&g, &batches, scheme, pruning);
            let tag = format!("{label}/cache={cache}");
            for (i, batch) in batches.iter().enumerate() {
                let r = service.ingest(batch).expect("valid batch");
                assert_eq!(r.version, i as u64 + 1, "{tag}: version counts ingests");
                // Twice per round: the second pass answers from the
                // cache at the same version (global criteria clear the
                // whole cache on every ingest, so only the intra-version
                // repeat is a guaranteed hit).
                for _ in 0..2 {
                    for &e in &hot {
                        let reply = service.resolve(e).expect("in range");
                        check_reply(&mut reference, e, reply.version, &reply.pairs, &tag);
                    }
                }
                let cold = (i as u32 * 13) % n;
                let reply = service.resolve(cold).expect("in range");
                check_reply(&mut reference, cold, reply.version, &reply.pairs, &tag);
            }
            let stats = service.service_stats();
            if cache > 0 {
                assert!(stats.cache_hits > 0, "{tag}: hot probes must hit the cache");
            } else {
                assert_eq!(stats.cache_hits, 0, "{tag}: capacity 0 cannot hit");
            }
        }
    }
}

/// Concurrent clients against the in-process service while the main
/// thread keeps ingesting: every recorded answer re-derived from scratch
/// at its stamped version, for sweep worker counts 1/2/4.
#[test]
fn concurrent_resolves_under_ingest_stay_version_consistent() {
    let g = world();
    let batches = id_batches(&g, 29);
    let n = g.dataset.len();
    let (scheme, pruning) = (WeightingScheme::Js, Pruning::Wnp { reciprocal: false });
    for workers in [1usize, 2, 4] {
        let service = ResolveService::new(&g.dataset, ErMode::CleanClean, scheme, pruning, 64);
        service.sweep_workers(workers);
        let recorded: Vec<RecordedAnswer> = std::thread::scope(|s| {
            let clients: Vec<_> = (0..4)
                .map(|c| {
                    let service = &service;
                    s.spawn(move || {
                        let mut mix = minoan::common::QueryMix::new(n, 1.0, 900 + c as u64);
                        let mut seen = Vec::new();
                        for _ in 0..80 {
                            let e = mix.next_entity();
                            let r = service.resolve(e).expect("in range");
                            seen.push((e, r.version, r.pairs));
                        }
                        seen
                    })
                })
                .collect();
            for batch in &batches {
                service.ingest(batch).expect("valid batch");
            }
            clients
                .into_iter()
                .flat_map(|h| h.join().expect("client finishes"))
                .collect()
        });
        let stats = service.service_stats();
        assert_eq!(stats.resolves, 320, "w={workers}: all resolves counted");
        let mut reference = Reference::new(&g, &batches, scheme, pruning);
        let mut versions = std::collections::BTreeSet::new();
        for (entity, version, pairs) in &recorded {
            check_reply(
                &mut reference,
                *entity,
                *version,
                pairs,
                &format!("concurrent/w={workers}"),
            );
            versions.insert(*version);
        }
        assert!(
            versions.len() > 1,
            "w={workers}: interleaving must observe multiple versions, got {versions:?}"
        );
    }
}

/// The same contract over the wire: a TCP round trip must not change a
/// bit relative to the from-scratch reference.
#[test]
fn over_the_wire_answers_are_bit_identical_too() {
    let g = world();
    let batches = id_batches(&g, 41);
    let (scheme, pruning) = (WeightingScheme::Js, Pruning::Wnp { reciprocal: false });
    let service = ResolveService::new(&g.dataset, ErMode::CleanClean, scheme, pruning, 32);
    let server = Server::bind("127.0.0.1:0", service, 2).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let mut reference = Reference::new(&g, &batches, scheme, pruning);
    std::thread::scope(|s| {
        let running = s.spawn(|| server.run());
        let mut client = Client::connect(addr).expect("connect");
        for (i, batch) in batches.iter().enumerate() {
            client.ingest(batch).expect("valid batch");
            for e in [2u32, 5, 19] {
                let reply = client.resolve(e).expect("in range");
                check_reply(
                    &mut reference,
                    e,
                    reply.version,
                    &reply.pairs,
                    &format!("wire/batch={i}"),
                );
            }
        }
        client.shutdown().expect("clean shutdown");
        running
            .join()
            .expect("server thread exits")
            .expect("run returns ok");
    });
}
