//! End-to-end CLI integration: generate → stats → snapshot → inspect →
//! resolve → eval → stream, all through the library entry point the
//! `minoan` binary wraps.

use minoan_cli::run;

fn cli(cmd: &str) -> Result<String, minoan_cli::CliError> {
    let argv: Vec<String> = cmd.split_whitespace().map(|s| s.to_string()).collect();
    run(&argv)
}

fn workdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("minoan_cli_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_cli_workflow() {
    let dir = workdir();
    // 1. Generate a world on disk.
    let gen = cli(&format!(
        "generate --profile lod --entities 150 --seed 21 --out {}",
        dir.display()
    ))
    .expect("generate");
    assert!(gen.contains("matching pairs"));

    // 2. Collect the emitted KB files.
    let mut inputs: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            p.extension()
                .is_some_and(|x| x == "nt")
                .then(|| p.display().to_string())
        })
        .collect();
    inputs.sort();
    assert!(inputs.len() >= 2, "lod profile emits several KBs");
    let input_args: String = inputs
        .iter()
        .map(|p| format!("--input {p} "))
        .collect::<String>();

    // 3. Stats over the N-Triples files.
    let stats = cli(&format!("stats {input_args}")).expect("stats");
    assert!(stats.contains("proprietary"));

    // 4. Snapshot + inspect.
    let snap = dir.join("world.mnstore");
    cli(&format!("snapshot {input_args} --out {}", snap.display())).expect("snapshot");
    let inspect = cli(&format!("inspect --snapshot {}", snap.display())).expect("inspect");
    assert!(inspect.contains("store:"));

    // 5. Resolve with a budget.
    let resolve = cli(&format!("resolve {input_args} --budget 5000 --show 5")).expect("resolve");
    assert!(resolve.contains("matches"));

    // 6. In-memory eval and stream commands.
    let eval = cli("eval --profile lod --entities 150 --seed 21").expect("eval");
    assert!(eval.contains("f1"));
    let stream =
        cli("stream --profile lod --entities 150 --seed 21 --order round-robin").expect("stream");
    assert!(stream.contains("round-robin"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn turtle_inputs_resolve_like_ntriples() {
    use minoan::prelude::*;
    use minoan::rdf::{ntriples, turtle};
    let dir = std::env::temp_dir().join("minoan_cli_ttl");
    std::fs::create_dir_all(&dir).unwrap();
    // Build a world, write one KB as N-Triples and the other as Turtle.
    let world = generate(&profiles::center_dense(100, 27));
    let mut inputs = Vec::new();
    for kb in 0..world.dataset.kb_count() {
        let id = KbId(kb as u16);
        let nt = world.dataset.to_ntriples(id);
        let path = if kb == 0 {
            let p = dir.join("a.nt");
            std::fs::write(&p, &nt).unwrap();
            p
        } else {
            let triples = ntriples::parse_document(&nt).unwrap();
            let p = dir.join("b.ttl");
            std::fs::write(&p, turtle::write_turtle(&triples, &[])).unwrap();
            p
        };
        inputs.push(path.display().to_string());
    }
    let out = cli(&format!(
        "resolve --input {} --input {} --show 2",
        inputs[0], inputs[1]
    ))
    .expect("mixed-format resolve");
    assert!(out.contains("matches"), "{out}");
    let stats = cli(&format!(
        "stats --input {} --input {}",
        inputs[0], inputs[1]
    ))
    .unwrap();
    assert!(stats.contains("store:"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_errors_are_user_facing() {
    assert!(cli("resolve --input /nonexistent/file.nt").is_err());
    assert!(cli("inspect --snapshot /nonexistent.mnstore").is_err());
    assert!(cli("eval --profile nope").is_err());
    assert!(cli("nonsense").is_err());
}
