//! Integration: the advanced blocker families feed the standard
//! meta-blocking + progressive-matching stack unchanged, and the fuzzy
//! families recover matches that exact token blocking misses.

use minoan::blocking::{pair_intersection, union, BlockingWorkflow, LshConfig, Method};
use minoan::metablocking::{blast, supervised, FeatureExtractor, Perceptron, TrainingSet};
use minoan::prelude::*;

#[test]
fn every_method_composes_with_metablocking_and_matching() {
    let world = generate(&profiles::center_dense(150, 51));
    let methods = [
        Method::Token,
        Method::QGrams(3),
        Method::SortedNeighborhood(4),
        Method::MinHashLsh(LshConfig::default()),
    ];
    for method in methods {
        let blocks = method.run(&world.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        let pruned = prune::wnp(&graph, WeightingScheme::Arcs, false);
        let pairs: Vec<_> = pruned
            .pairs
            .into_iter()
            .map(|p| (p.a, p.b, p.weight))
            .collect();
        let res = ProgressiveResolver::new(
            &world.dataset,
            Matcher::new(&world.dataset, MatcherConfig::default()),
            ResolverConfig::default(),
        )
        .run(&pairs);
        let q = metrics::resolution_quality(&world.truth, &res);
        assert!(
            q.precision > 0.85,
            "{}: precision {} too low",
            method.name(),
            q.precision
        );
    }
}

#[test]
fn union_workflow_dominates_single_methods_on_recall() {
    let world = generate(&profiles::periphery_sparse(250, 53));
    let token = Method::Token.run(&world.dataset, ErMode::CleanClean);
    let lsh = Method::MinHashLsh(LshConfig::default()).run(&world.dataset, ErMode::CleanClean);
    let both = union(&world.dataset, ErMode::CleanClean, &[&token, &lsh]);

    let pc = |blocks: &BlockCollection| {
        let pairs = blocks.distinct_pairs();
        let found = pairs
            .iter()
            .filter(|&&(a, b)| world.truth.is_match(a, b))
            .count();
        found as f64 / world.truth.matching_pairs() as f64
    };
    assert!(pc(&both) >= pc(&token) - 1e-12);
    assert!(pc(&both) >= pc(&lsh) - 1e-12);
}

#[test]
fn intersection_raises_precision() {
    let world = generate(&profiles::center_dense(200, 57));
    let token = Method::Token.run(&world.dataset, ErMode::CleanClean);
    let qg = Method::QGrams(3).run(&world.dataset, ErMode::CleanClean);
    let inter = pair_intersection(&[&token, &qg]);
    let token_pairs = token.distinct_pairs();
    let density = |pairs: &[(EntityId, EntityId)]| {
        if pairs.is_empty() {
            return 0.0;
        }
        pairs
            .iter()
            .filter(|&&(a, b)| world.truth.is_match(a, b))
            .count() as f64
            / pairs.len() as f64
    };
    assert!(
        density(&inter) >= density(&token_pairs),
        "intersection should concentrate matches: {} vs {}",
        density(&inter),
        density(&token_pairs)
    );
}

#[test]
fn workflow_feeds_supervised_metablocking_end_to_end() {
    let world = generate(&profiles::center_periphery(200, 59));
    let (blocks, report) = BlockingWorkflow::new(Method::TokenAndUri)
        .with_purging()
        .with_filtering(0.8)
        .run(&world.dataset, ErMode::CleanClean);
    assert!(report.final_comparisons() > 0);
    let graph = BlockingGraph::build(&blocks);

    // Supervised pruning trained on a 40/class sample.
    let extractor = FeatureExtractor::fit(&graph);
    let truth = &world.truth;
    let set = TrainingSet::sample(&graph, &extractor, |a, b| truth.is_match(a, b), 40, 59);
    let model = Perceptron::train(&set, 10);
    let sup = supervised::supervised_prune(&graph, &model);

    // BLAST pruning, unsupervised.
    let bl = blast::blast(&graph, blast::DEFAULT_RATIO);

    for (name, pruned) in [("supervised", &sup), ("blast", &bl)] {
        assert!(!pruned.pairs.is_empty(), "{name} kept nothing");
        assert!(pruned.pairs.len() <= graph.num_edges());
        let pairs: Vec<_> = pruned.pairs.iter().map(|p| (p.a, p.b, p.weight)).collect();
        let res = ProgressiveResolver::new(
            &world.dataset,
            Matcher::new(&world.dataset, MatcherConfig::default()),
            ResolverConfig::default(),
        )
        .run(&pairs);
        let q = metrics::resolution_quality(&world.truth, &res);
        assert!(q.precision > 0.8, "{name}: precision {}", q.precision);
    }
}
