//! Property test: the streaming meta-blocking path and the materialised
//! CSR-graph path produce **bit-identical** pruned pair sets for every
//! pruning family — edge-centric WEP/CEP as well as node-centric WNP/CNP
//! (and BLAST) — under all five weighting schemes, on random generated
//! worlds, for both the union and reciprocal variants, at thread counts
//! 1/2/4/8.

use minoan::blocking::{builders, ErMode};
use minoan::metablocking::{blast, prune, streaming, BlockingGraph, StreamingOptions};
use minoan::prelude::*;
use proptest::prelude::*;

mod common;
use common::assert_bit_identical;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// WNP and CNP agree bitwise between backends for every scheme,
    /// variant and thread count.
    #[test]
    fn streaming_equals_materialised(seed in 0u64..500, n in 40usize..120, threads in 1usize..5) {
        let world = generate(&profiles::center_periphery(n, seed));
        let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        let opts = StreamingOptions::with_threads(threads);
        for scheme in WeightingScheme::ALL {
            for reciprocal in [false, true] {
                let label = format!("{}/r={reciprocal}/t={threads}", scheme.name());
                assert_bit_identical(
                    &streaming::wnp_with(&blocks, scheme, reciprocal, &opts),
                    &prune::wnp(&graph, scheme, reciprocal),
                    &format!("wnp/{label}"),
                );
                assert_bit_identical(
                    &streaming::cnp_with(&blocks, scheme, reciprocal, None, &opts),
                    &prune::cnp(&graph, scheme, reciprocal, None),
                    &format!("cnp/{label}"),
                );
                assert_bit_identical(
                    &streaming::cnp_with(&blocks, scheme, reciprocal, Some(2), &opts),
                    &prune::cnp(&graph, scheme, reciprocal, Some(2)),
                    &format!("cnp2/{label}"),
                );
            }
        }
    }

    /// Edge-centric WEP and CEP agree bitwise between backends for every
    /// scheme at thread counts 1/2/4/8 — WEP's global mean comes from a
    /// fixed-shape pairwise reduction, CEP's global top-k from merged
    /// per-thread heaps, so neither may drift with the partitioning.
    #[test]
    fn streaming_wep_cep_equal_materialised(seed in 0u64..500, n in 40usize..120) {
        let world = generate(&profiles::center_periphery(n, seed));
        let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        for threads in [1usize, 2, 4, 8] {
            let opts = StreamingOptions::with_threads(threads);
            for scheme in WeightingScheme::ALL {
                let label = format!("{}/t={threads}", scheme.name());
                assert_bit_identical(
                    &streaming::wep_with(&blocks, scheme, &opts),
                    &prune::wep(&graph, scheme),
                    &format!("wep/{label}"),
                );
                for k in [None, Some(7)] {
                    assert_bit_identical(
                        &streaming::cep_with(&blocks, scheme, k, &opts),
                        &prune::cep(&graph, scheme, k),
                        &format!("cep{k:?}/{label}"),
                    );
                }
            }
        }
    }

    /// The unpruned streaming edge enumeration reproduces the edge slab
    /// (pairs, order and weight bits) without building it.
    #[test]
    fn streaming_weighted_edges_equal_the_slab(seed in 0u64..500, n in 40usize..100) {
        let world = generate(&profiles::lod_cloud(n, seed));
        let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        for threads in [1usize, 4] {
            for scheme in WeightingScheme::ALL {
                let stream = streaming::weighted_edges_with(
                    &blocks,
                    scheme,
                    &StreamingOptions::with_threads(threads),
                );
                prop_assert_eq!(stream.len(), graph.num_edges());
                for (s, e) in stream.iter().zip(graph.edges()) {
                    prop_assert_eq!((s.a, s.b), (e.a, e.b));
                    prop_assert_eq!(s.weight.to_bits(), scheme.weight(&graph, e).to_bits());
                }
            }
        }
    }

    /// BLAST agrees bitwise between backends across keep ratios.
    #[test]
    fn streaming_blast_equals_materialised(seed in 0u64..500, ratio in 0.1f64..1.0) {
        let world = generate(&profiles::center_dense(80, seed));
        let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        for threads in [1usize, 4] {
            assert_bit_identical(
                &streaming::blast_with(&blocks, ratio, &StreamingOptions::with_threads(threads)),
                &blast::blast(&graph, ratio),
                &format!("blast/ratio={ratio:.2}/t={threads}"),
            );
        }
    }

    /// The CSR graph build itself is thread-count invariant on random
    /// worlds (offsets, adjacency and edge stats all bitwise equal).
    #[test]
    fn graph_build_is_thread_invariant(seed in 0u64..500, n in 40usize..120) {
        let world = generate(&profiles::lod_cloud(n, seed));
        let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
        let serial = BlockingGraph::build_with_threads(&blocks, 1);
        let par = BlockingGraph::build_with_threads(&blocks, 4);
        prop_assert_eq!(serial.num_edges(), par.num_edges());
        for (s, p) in serial.edges().iter().zip(par.edges()) {
            prop_assert_eq!((s.a, s.b, s.common_blocks), (p.a, p.b, p.common_blocks));
            prop_assert_eq!(s.arcs.to_bits(), p.arcs.to_bits());
        }
        for v in 0..serial.num_nodes() as u32 {
            prop_assert_eq!(serial.incident(EntityId(v)), par.incident(EntityId(v)));
        }
    }
}
