//! Cross-crate consistency of the MapReduce formulations: the parallel
//! blocking and meta-blocking implementations must produce results
//! identical to their serial counterparts at any worker count.
//!
//! The heart of the suite is the full equivalence matrix: every weighting
//! scheme × every pruning family (WNP, CNP, WEP, CEP, BLAST; reciprocal
//! variants included) × workers {1, 3, 8}, asserting the
//! entity-partitioned MapReduce backend is **bit-identical** to the
//! materialised one — pair-for-pair order, f64 weight bits and the
//! reported input-edge counts.

use minoan::blocking::parallel::parallel_token_blocking;
use minoan::blocking::{builders, ErMode};
use minoan::metablocking::parallel::{self, parallel_cnp, parallel_wep};
use minoan::metablocking::{blast, prune, BlockingGraph, WeightingScheme};
use minoan::prelude::*;

mod common;
use common::assert_bit_identical;

#[test]
fn parallel_blocking_identical_for_all_worker_counts() {
    let world = generate(&profiles::lod_cloud(200, 3));
    let serial = builders::token_blocking(&world.dataset, ErMode::CleanClean);
    for workers in [1, 2, 5, 16] {
        let par =
            parallel_token_blocking(&world.dataset, ErMode::CleanClean, &Engine::new(workers));
        assert_eq!(par.len(), serial.len(), "workers={workers}");
        assert_eq!(par.total_comparisons(), serial.total_comparisons());
        assert_eq!(par.total_assignments(), serial.total_assignments());
    }
}

/// The full matrix: scheme × pruning family × worker count, entity-based
/// MapReduce vs the materialised graph, bit-for-bit.
#[test]
fn entity_partitioned_matrix_is_bit_identical_to_materialised() {
    let world = generate(&profiles::center_dense(140, 13));
    let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
    let cleaned = filter::clean(&blocks);
    let graph = BlockingGraph::build(&cleaned);
    for workers in [1usize, 3, 8] {
        let engine = Engine::new(workers);
        for scheme in WeightingScheme::ALL {
            let label = |family: &str| format!("{family}/{scheme:?}/w={workers}");

            let ser = prune::wep(&graph, scheme);
            assert_bit_identical(
                &parallel::wep(&cleaned, scheme, &engine),
                &ser,
                &label("wep"),
            );

            for k in [None, Some(25)] {
                let ser = prune::cep(&graph, scheme, k);
                assert_bit_identical(
                    &parallel::cep(&cleaned, scheme, k, &engine),
                    &ser,
                    &label(&format!("cep{k:?}")),
                );
            }

            for reciprocal in [false, true] {
                let ser = prune::wnp(&graph, scheme, reciprocal);
                assert_bit_identical(
                    &parallel::wnp(&cleaned, scheme, reciprocal, &engine),
                    &ser,
                    &label(&format!("wnp/r={reciprocal}")),
                );

                for k in [None, Some(3)] {
                    let ser = prune::cnp(&graph, scheme, reciprocal, k);
                    assert_bit_identical(
                        &parallel::cnp(&cleaned, scheme, reciprocal, k, &engine),
                        &ser,
                        &label(&format!("cnp{k:?}/r={reciprocal}")),
                    );
                }
            }
        }

        // BLAST is scheme-free (χ² weights).
        for ratio in [0.35, 0.8] {
            assert_bit_identical(
                &parallel::blast(&cleaned, ratio, &engine),
                &blast(&graph, ratio),
                &format!("blast/{ratio}/w={workers}"),
            );
        }
    }
}

/// The unpruned path: the entity-based weighting job reproduces the edge
/// slab exactly.
#[test]
fn entity_partitioned_weighted_edges_match_the_slab() {
    let world = generate(&profiles::center_dense(120, 29));
    let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
    let graph = BlockingGraph::build(&blocks);
    for workers in [1, 3, 8] {
        for scheme in WeightingScheme::ALL {
            let par = parallel::weighted_edges(&blocks, scheme, &Engine::new(workers));
            assert_eq!(
                par.len(),
                graph.num_edges(),
                "{scheme:?}/w={workers}: edge count"
            );
            for (wp, edge) in par.iter().zip(graph.edges()) {
                assert_eq!((wp.a, wp.b), (edge.a, edge.b));
                assert_eq!(wp.weight.to_bits(), scheme.weight(&graph, edge).to_bits());
            }
        }
    }
}

/// The edge-based (per-occurrence shuffle) baseline stays bit-identical
/// too — including WEP's positive-weight-only mean on schemes that emit
/// zero-weight edges, which the old all-edge mean diverged on.
#[test]
fn edge_based_baseline_matches_serial_on_every_scheme() {
    let world = generate(&profiles::center_dense(180, 13));
    let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
    let cleaned = filter::clean(&blocks);
    let graph = BlockingGraph::build(&cleaned);
    let engine = Engine::new(4);
    for scheme in WeightingScheme::ALL {
        assert_bit_identical(
            &parallel_wep(&cleaned, scheme, &engine),
            &prune::wep(&graph, scheme),
            &format!("edge-based wep/{scheme:?}"),
        );
    }
}

#[test]
fn parallel_cnp_reciprocal_variants_match_serial() {
    let world = generate(&profiles::periphery_sparse(150, 17));
    let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
    let graph = BlockingGraph::build(&blocks);
    let engine = Engine::new(3);
    for reciprocal in [false, true] {
        assert_bit_identical(
            &parallel_cnp(&blocks, WeightingScheme::Ecbs, reciprocal, Some(4), &engine),
            &prune::cnp(&graph, WeightingScheme::Ecbs, reciprocal, Some(4)),
            &format!("edge-based cnp/r={reciprocal}"),
        );
    }
}

/// The entity-partitioned strategy's whole point: its shuffle volume is
/// bounded by the entity count, not the pair-occurrence count.
#[test]
fn entity_based_shuffle_volume_is_per_entity_not_per_occurrence() {
    let world = generate(&profiles::center_dense(200, 41));
    let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
    let engine = Engine::new(4);
    let (_, edge_stats) =
        parallel::parallel_edge_weights_with_stats(&blocks, WeightingScheme::Arcs, &engine);
    for (label, report) in [
        (
            "wnp",
            parallel::wnp_with_report(&blocks, WeightingScheme::Arcs, false, &engine).1,
        ),
        (
            "wep",
            parallel::wep_with_report(&blocks, WeightingScheme::Arcs, &engine).1,
        ),
        (
            "cep",
            parallel::cep_with_report(&blocks, WeightingScheme::Arcs, Some(50), &engine).1,
        ),
    ] {
        for (job, stats) in &report.jobs {
            // The vote-combination job shuffles the (small) kept set; every
            // other job is bounded by one record per entity neighbourhood.
            if job.ends_with("votes") {
                continue;
            }
            assert!(
                stats.intermediate_pairs <= blocks.num_entities(),
                "{label}/{job}: weighting jobs shuffle at most one record per entity \
                 ({} vs {} entities)",
                stats.intermediate_pairs,
                blocks.num_entities()
            );
        }
        assert!(
            report.shuffled_records() < edge_stats.intermediate_pairs,
            "{label}: {} entity-based records vs {} per-occurrence records",
            report.shuffled_records(),
            edge_stats.intermediate_pairs
        );
    }
}

#[test]
fn full_pipeline_on_parallel_blocks_equals_serial_blocks() {
    let world = generate(&profiles::center_dense(150, 19));
    let serial_blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
    let parallel_blocks =
        parallel_token_blocking(&world.dataset, ErMode::CleanClean, &Engine::new(8));
    let pipeline = Pipeline::new(PipelineConfig::default());
    let cs = pipeline.meta_block(&pipeline.clean_blocks(serial_blocks));
    let cp = pipeline.meta_block(&pipeline.clean_blocks(parallel_blocks));
    assert_eq!(cs.len(), cp.len());
    for (s, p) in cs.iter().zip(&cp) {
        assert_eq!((s.0, s.1), (p.0, p.1));
        assert!((s.2 - p.2).abs() < 1e-9);
    }
}
