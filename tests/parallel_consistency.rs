//! Cross-crate consistency of the MapReduce formulations: the parallel
//! blocking and meta-blocking implementations must produce results
//! identical to their serial counterparts at any worker count.

use minoan::blocking::parallel::parallel_token_blocking;
use minoan::blocking::{builders, ErMode};
use minoan::metablocking::parallel::{parallel_cnp, parallel_wep};
use minoan::metablocking::{prune, BlockingGraph, WeightingScheme};
use minoan::prelude::*;

#[test]
fn parallel_blocking_identical_for_all_worker_counts() {
    let world = generate(&profiles::lod_cloud(200, 3));
    let serial = builders::token_blocking(&world.dataset, ErMode::CleanClean);
    for workers in [1, 2, 5, 16] {
        let par =
            parallel_token_blocking(&world.dataset, ErMode::CleanClean, &Engine::new(workers));
        assert_eq!(par.len(), serial.len(), "workers={workers}");
        assert_eq!(par.total_comparisons(), serial.total_comparisons());
        assert_eq!(par.total_assignments(), serial.total_assignments());
    }
}

#[test]
fn parallel_metablocking_matches_serial_on_every_scheme() {
    let world = generate(&profiles::center_dense(180, 13));
    let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
    let cleaned = filter::clean(&blocks);
    let graph = BlockingGraph::build(&cleaned);
    let engine = Engine::new(4);
    for scheme in WeightingScheme::ALL {
        let serial: std::collections::BTreeSet<(u32, u32)> = prune::wep(&graph, scheme)
            .pairs
            .iter()
            .map(|p| (p.a.0, p.b.0))
            .collect();
        let parallel: std::collections::BTreeSet<(u32, u32)> =
            parallel_wep(&cleaned, scheme, &engine)
                .pairs
                .iter()
                .map(|p| (p.a.0, p.b.0))
                .collect();
        assert_eq!(serial, parallel, "{scheme:?}");
    }
}

#[test]
fn parallel_cnp_reciprocal_variants_match_serial() {
    let world = generate(&profiles::periphery_sparse(150, 17));
    let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
    let graph = BlockingGraph::build(&blocks);
    let engine = Engine::new(3);
    for reciprocal in [false, true] {
        let serial: std::collections::BTreeSet<(u32, u32)> =
            prune::cnp(&graph, WeightingScheme::Ecbs, reciprocal, Some(4))
                .pairs
                .iter()
                .map(|p| (p.a.0, p.b.0))
                .collect();
        let parallel: std::collections::BTreeSet<(u32, u32)> =
            parallel_cnp(&blocks, WeightingScheme::Ecbs, reciprocal, Some(4), &engine)
                .pairs
                .iter()
                .map(|p| (p.a.0, p.b.0))
                .collect();
        assert_eq!(serial, parallel, "reciprocal={reciprocal}");
    }
}

#[test]
fn full_pipeline_on_parallel_blocks_equals_serial_blocks() {
    let world = generate(&profiles::center_dense(150, 19));
    let serial_blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
    let parallel_blocks =
        parallel_token_blocking(&world.dataset, ErMode::CleanClean, &Engine::new(8));
    let pipeline = Pipeline::new(PipelineConfig::default());
    let cs = pipeline.meta_block(&pipeline.clean_blocks(serial_blocks));
    let cp = pipeline.meta_block(&pipeline.clean_blocks(parallel_blocks));
    assert_eq!(cs.len(), cp.len());
    for (s, p) in cs.iter().zip(&cp) {
        assert_eq!((s.0, s.1), (p.0, p.1));
        assert!((s.2 - p.2).abs() < 1e-9);
    }
}
