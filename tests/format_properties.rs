//! Cross-crate property tests on serialisation formats and partition
//! metrics: generated worlds round-trip through Turtle and store
//! snapshots; cluster metrics obey their mathematical invariants.

use minoan::prelude::*;
use minoan::rdf::{ntriples, parse_turtle, turtle};
use minoan::store::{FrozenStore, TripleStore};
use proptest::prelude::*;

#[test]
fn generated_worlds_round_trip_through_turtle() {
    for seed in [1u64, 7, 23] {
        let world = generate(&profiles::center_dense(60, seed));
        for kb in 0..world.dataset.kb_count() {
            let id = KbId(kb as u16);
            let nt = world.dataset.to_ntriples(id);
            let triples = ntriples::parse_document(&nt).expect("own N-Triples parse");
            let ttl = turtle::write_turtle(&triples, &[]);
            let reparsed = parse_turtle(&ttl).expect("own Turtle parses");
            // Same triple multiset (order may differ through grouping).
            let mut a: Vec<String> = triples.iter().map(|t| format!("{t:?}")).collect();
            let mut b: Vec<String> = reparsed.iter().map(|t| format!("{t:?}")).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "seed {seed} kb {kb}");
        }
    }
}

#[test]
fn turtle_loaded_store_equals_ntriples_loaded_store() {
    let world = generate(&profiles::center_dense(50, 5));
    let mut nt_store = TripleStore::new();
    let mut ttl_store = TripleStore::new();
    for kb in 0..world.dataset.kb_count() {
        let id = KbId(kb as u16);
        let nt = world.dataset.to_ntriples(id);
        let triples = ntriples::parse_document(&nt).unwrap();
        let ttl = turtle::write_turtle(&triples, &[]);
        let name = world.dataset.kb(id).name.to_string();
        nt_store.load_ntriples(&name, &nt).unwrap();
        ttl_store.load_turtle(&name, &ttl).unwrap();
    }
    let (a, b) = (nt_store.freeze(), ttl_store.freeze());
    assert_eq!(a.len(), b.len());
    assert_eq!(a.to_dataset().len(), b.to_dataset().len());
    assert_eq!(a.to_dataset().link_count(), b.to_dataset().link_count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Snapshots are byte-stable and survive arbitrary world shapes.
    #[test]
    fn snapshots_round_trip_for_any_world(seed in 0u64..500, n in 10usize..80) {
        let world = generate(&profiles::center_periphery(n, seed));
        let mut store = TripleStore::new();
        for kb in 0..world.dataset.kb_count() {
            let id = KbId(kb as u16);
            store
                .load_ntriples(&world.dataset.kb(id).name, &world.dataset.to_ntriples(id))
                .unwrap();
        }
        let frozen = store.freeze();
        let bytes = frozen.to_snapshot();
        let reloaded = FrozenStore::from_snapshot(&bytes).unwrap();
        prop_assert_eq!(reloaded.len(), frozen.len());
        // Determinism: re-encoding yields identical bytes.
        prop_assert_eq!(reloaded.to_snapshot(), bytes);
    }

    /// Cluster metrics: identity is perfect; B-cubed and pairwise F1 stay
    /// in [0,1]; VI is symmetric and non-negative.
    #[test]
    fn cluster_metric_invariants(
        raw in proptest::collection::vec(proptest::collection::vec(0u32..40, 2..5), 0..6)
    ) {
        // Deduplicate members across clusters to get a valid partition.
        let mut seen = std::collections::HashSet::new();
        let clusters: Vec<Vec<u32>> = raw
            .into_iter()
            .map(|c| c.into_iter().filter(|m| seen.insert(*m)).collect::<Vec<u32>>())
            .filter(|c| c.len() >= 2)
            .collect();
        let n = 40usize;
        let perfect = minoan::eval::cluster_quality(n, &clusters, &clusters);
        prop_assert!((perfect.bcubed.f1 - 1.0).abs() < 1e-12);
        prop_assert!(perfect.vi < 1e-9);

        let against_singletons = minoan::eval::cluster_quality(n, &clusters, &[]);
        for v in [
            against_singletons.pairwise.f1,
            against_singletons.bcubed.precision,
            against_singletons.bcubed.recall,
        ] {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        }
        prop_assert!(against_singletons.vi >= 0.0);
    }

    /// Every blocking method produces collections whose invariants hold:
    /// distinct pairs are comparable and counted consistently.
    #[test]
    fn blocking_collection_invariants(seed in 0u64..200) {
        use minoan::blocking::{LshConfig, Method};
        let world = generate(&profiles::center_dense(40, seed));
        for method in [Method::Token, Method::QGrams(3), Method::MinHashLsh(LshConfig::default())] {
            let c = method.run(&world.dataset, ErMode::CleanClean);
            let pairs = c.distinct_pairs();
            for &(a, b) in &pairs {
                prop_assert!(a < b);
                prop_assert!(world.dataset.kb_of(a) != world.dataset.kb_of(b));
            }
            prop_assert!(pairs.len() as u64 <= c.total_comparisons());
        }
    }
}
