//! Cross-crate property tests on meta-blocking invariants, over generated
//! worlds of varying shape.

use minoan::metablocking::{blast, prune};
use minoan::prelude::*;
use proptest::prelude::*;

fn graph_for(seed: u64, n: usize) -> (minoan::datagen::GeneratedWorld, BlockingGraph) {
    let world = generate(&profiles::center_periphery(n, seed));
    let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
    let graph = BlockingGraph::build(&blocks);
    (world, graph)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every weighting scheme yields finite, non-negative weights, and the
    /// Jaccard scheme stays within [0, 1].
    #[test]
    fn weights_are_sane(seed in 0u64..300) {
        let (_, graph) = graph_for(seed, 50);
        for scheme in WeightingScheme::ALL {
            for (e, w) in graph.edges().iter().zip(scheme.all_weights(&graph)) {
                prop_assert!(w.is_finite() && w >= 0.0, "{scheme:?} on {e:?} gave {w}");
                if scheme == WeightingScheme::Js {
                    prop_assert!(w <= 1.0 + 1e-12);
                }
            }
        }
    }

    /// Pruning outputs are subsets of the graph's edges; the reciprocal
    /// node-centric variant is a subset of the redundancy variant.
    #[test]
    fn pruning_subset_invariants(seed in 0u64..300) {
        let (_, graph) = graph_for(seed, 50);
        let all: std::collections::HashSet<(EntityId, EntityId)> =
            graph.edges().iter().map(|e| (e.a, e.b)).collect();
        for scheme in [WeightingScheme::Cbs, WeightingScheme::Arcs] {
            let redundancy = prune::wnp(&graph, scheme, false);
            let reciprocal = prune::wnp(&graph, scheme, true);
            let red: std::collections::HashSet<_> =
                redundancy.pairs.iter().map(|p| (p.a, p.b)).collect();
            for p in &reciprocal.pairs {
                prop_assert!(red.contains(&(p.a, p.b)), "reciprocal ⊄ redundancy");
            }
            for p in &redundancy.pairs {
                prop_assert!(all.contains(&(p.a, p.b)), "pruned edge not in graph");
            }
        }
    }

    /// BLAST keeps at most all edges, weights sorted descending, every
    /// retained weight strictly positive.
    #[test]
    fn blast_output_invariants(seed in 0u64..300, ratio in 0.1f64..1.0) {
        let (_, graph) = graph_for(seed, 40);
        let pruned = blast::blast(&graph, ratio);
        prop_assert!(pruned.pairs.len() <= graph.num_edges());
        prop_assert!(pruned.pairs.windows(2).all(|w| w[0].weight >= w[1].weight));
        prop_assert!(pruned.pairs.iter().all(|p| p.weight > 0.0));
    }

    /// Engine budget safety: for any budget, comparisons ≤ budget and the
    /// trace is exactly as long as the comparison count.
    #[test]
    fn engine_budget_safety(seed in 0u64..200, budget in 0u64..400) {
        let world = generate(&profiles::center_dense(60, seed));
        let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        let pairs: Vec<_> = prune::wnp(&graph, WeightingScheme::Arcs, false)
            .pairs
            .into_iter()
            .map(|p| (p.a, p.b, p.weight))
            .collect();
        let res = ProgressiveResolver::new(
            &world.dataset,
            Matcher::new(&world.dataset, MatcherConfig::default()),
            ResolverConfig { budget, ..Default::default() },
        )
        .run(&pairs);
        prop_assert!(res.comparisons <= budget);
        prop_assert_eq!(res.trace.comparisons(), res.comparisons);
        // Every accepted match appears in the trace as a matched step.
        let matched_steps = res.trace.steps().iter().filter(|s| s.matched).count();
        prop_assert!(res.matches.len() <= matched_steps);
    }
}
