//! Helpers shared by the backend-equivalence integration suites.

use minoan::metablocking::{PruneOutcome, PrunedComparisons, WeightedPair};

/// Bit-identity over bare pair lists: same pairs in the same order with
/// the same f64 weight bits.
#[allow(dead_code)]
pub fn assert_pairs_bit_identical(a: &[WeightedPair], b: &[WeightedPair], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: kept count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!((x.a, x.b), (y.a, y.b), "{label}: pair order");
        assert_eq!(
            x.weight.to_bits(),
            y.weight.to_bits(),
            "{label}: weight bits differ for ({:?},{:?}): {} vs {}",
            x.a,
            x.b,
            x.weight,
            y.weight
        );
    }
}

/// The one definition of "bit-identical pruning output" the equivalence
/// suites assert: same input-edge count, same pair order, same f64
/// weight bits.
pub fn assert_bit_identical(a: &PrunedComparisons, b: &PrunedComparisons, label: &str) {
    assert_eq!(a.input_edges, b.input_edges, "{label}: input_edges");
    assert_pairs_bit_identical(&a.pairs, &b.pairs, label);
}

/// As [`assert_bit_identical`], comparing a session [`PruneOutcome`]
/// against a pre-session single-shot result.
#[allow(dead_code)]
pub fn assert_outcome_bit_identical(a: &PruneOutcome, b: &PrunedComparisons, label: &str) {
    assert_bit_identical(&a.pruned, b, label);
}
