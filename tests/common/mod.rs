//! Helpers shared by the backend-equivalence integration suites.

use minoan::metablocking::PrunedComparisons;

/// The one definition of "bit-identical pruning output" the equivalence
/// suites assert: same input-edge count, same pair order, same f64
/// weight bits.
pub fn assert_bit_identical(a: &PrunedComparisons, b: &PrunedComparisons, label: &str) {
    assert_eq!(a.input_edges, b.input_edges, "{label}: input_edges");
    assert_eq!(a.pairs.len(), b.pairs.len(), "{label}: kept count");
    for (x, y) in a.pairs.iter().zip(&b.pairs) {
        assert_eq!((x.a, x.b), (y.a, y.b), "{label}: pair order");
        assert_eq!(
            x.weight.to_bits(),
            y.weight.to_bits(),
            "{label}: weight bits differ for ({:?},{:?}): {} vs {}",
            x.a,
            x.b,
            x.weight,
            y.weight
        );
    }
}
