//! Integration: the incremental resolver against the batch pipeline, and
//! the composite rules against the threshold matcher, on shared worlds.

use minoan::datagen::ArrivalOrder;
use minoan::er::{CompositeConfig, CompositeResolver, IncrementalConfig, IncrementalResolver};
use minoan::prelude::*;

#[test]
fn incremental_recall_is_close_to_batch() {
    let world = generate(&profiles::center_dense(300, 31));
    let matcher = Matcher::new(&world.dataset, MatcherConfig::default());
    let mut inc = IncrementalResolver::new(&world.dataset, &matcher, IncrementalConfig::default());
    inc.arrive_all(ArrivalOrder::Shuffled { seed: 31 }.order(&world.dataset, &world.truth));
    let inc_pairs: Vec<_> = inc.matches().iter().map(|&(a, b, _)| (a, b)).collect();
    let inc_q = metrics::match_quality(&world.truth, &inc_pairs);

    let batch = Pipeline::new(PipelineConfig::default()).run(&world.dataset);
    let batch_q = metrics::resolution_quality(&world.truth, &batch.resolution);

    assert!(
        inc_q.recall >= batch_q.recall - 0.12,
        "incremental recall {} too far below batch {}",
        inc_q.recall,
        batch_q.recall
    );
    assert!(
        inc_q.precision > 0.9,
        "incremental precision {}",
        inc_q.precision
    );
}

#[test]
fn incremental_work_is_spread_across_arrivals() {
    let world = generate(&profiles::center_dense(200, 37));
    let matcher = Matcher::new(&world.dataset, MatcherConfig::default());
    let config = IncrementalConfig {
        budget_per_arrival: 5,
        ..Default::default()
    };
    let mut inc = IncrementalResolver::new(&world.dataset, &matcher, config);
    let mut max_arrival_comparisons = 0;
    for e in world.dataset.entities() {
        let r = inc.arrive(e);
        max_arrival_comparisons = max_arrival_comparisons.max(r.comparisons);
    }
    assert!(max_arrival_comparisons <= 5, "an arrival burst the budget");
    assert!(inc.comparisons() > 0);
}

#[test]
fn composite_rules_and_threshold_matcher_agree_on_centers() {
    let world = generate(&profiles::center_dense(250, 41));
    let blocks = builders::token_and_uri_blocking(&world.dataset, ErMode::CleanClean);
    let cleaned = filter::filter(&purge::purge(&blocks).collection);
    let graph = BlockingGraph::build(&cleaned);
    let pairs: Vec<_> = prune::wnp(&graph, WeightingScheme::Arcs, false)
        .pairs
        .into_iter()
        .map(|p| (p.a, p.b, p.weight))
        .collect();

    let matcher = Matcher::new(&world.dataset, MatcherConfig::default());
    let rules =
        CompositeResolver::new(&world.dataset, &matcher, CompositeConfig::default()).run(&pairs);
    let rule_pairs: Vec<_> = rules.matches.iter().map(|m| (m.a, m.b)).collect();
    let rules_q = metrics::match_quality(&world.truth, &rule_pairs);

    let threshold = ProgressiveResolver::new(
        &world.dataset,
        Matcher::new(&world.dataset, MatcherConfig::default()),
        ResolverConfig::default(),
    )
    .run(&pairs);
    let threshold_q = metrics::resolution_quality(&world.truth, &threshold);

    // Both approaches should be strong; the rules trade a little recall
    // for tuning-free precision.
    assert!(
        rules_q.precision >= 0.9,
        "rules precision {}",
        rules_q.precision
    );
    assert!(
        threshold_q.precision >= 0.9,
        "threshold precision {}",
        threshold_q.precision
    );
    assert!(
        rules_q.recall >= threshold_q.recall * 0.6,
        "rules recall collapsed: {} vs {}",
        rules_q.recall,
        threshold_q.recall
    );
}

#[test]
fn oracle_headroom_brackets_the_real_engine() {
    use minoan::er::{oracle, Trace};
    let world = generate(&profiles::center_dense(200, 43));
    let blocks = builders::token_and_uri_blocking(&world.dataset, ErMode::CleanClean);
    let cleaned = filter::filter(&purge::purge(&blocks).collection);
    let graph = BlockingGraph::build(&cleaned);
    let pairs: Vec<_> = prune::wnp(&graph, WeightingScheme::Arcs, false)
        .pairs
        .into_iter()
        .map(|p| (p.a, p.b, p.weight))
        .collect();
    let truth = &world.truth;

    let perfect = oracle::perfect_trace(&pairs, |a, b| truth.is_match(a, b), u64::MAX);
    let real = ProgressiveResolver::new(
        &world.dataset,
        Matcher::new(&world.dataset, MatcherConfig::default()),
        ResolverConfig::default(),
    )
    .run(&pairs);

    let matches_at = |t: &Trace, budget: u64| {
        t.steps()
            .iter()
            .filter(|s| s.comparison <= budget && s.matched)
            .count()
    };
    let budget = (pairs.len() / 4) as u64;
    assert!(
        matches_at(&real.trace, budget) <= matches_at(&perfect, budget),
        "no schedule can beat the oracle ceiling"
    );
    let efficiency = oracle::schedule_efficiency(&real.trace, &perfect, budget);
    assert!(
        efficiency > 0.5,
        "progressive scheduling should realise most of the oracle headroom: {efficiency}"
    );
}
