//! Property-based tests of the progressive engine's invariants over
//! randomised world configurations.

use minoan::prelude::*;
use proptest::prelude::*;
use proptest::strategy::Strategy as _; // the minoan prelude also exports a `Strategy` enum

/// A small random world configuration: KB regimes, noise and seeds vary.
fn arb_world() -> impl proptest::strategy::Strategy<Value = WorldConfig> {
    (
        1u64..1_000,     // seed
        60usize..140,    // entities
        0.5f64..0.95,    // token overlap
        0.2f64..0.9,     // vocab overlap
        prop::bool::ANY, // second KB periphery?
    )
        .prop_map(|(seed, n, tok, vocab, periphery)| {
            let mut cfg = profiles::center_dense(n, seed);
            cfg.kbs[1].token_overlap = tok;
            cfg.kbs[1].vocab_overlap = vocab;
            cfg.kbs[1].opaque_uris = periphery;
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn budget_never_exceeded_and_trace_consistent(cfg in arb_world(), budget in 0u64..2_000) {
        let world = generate(&cfg);
        let config = PipelineConfig {
            resolver: ResolverConfig { budget, ..Default::default() },
            ..Default::default()
        };
        let out = Pipeline::new(config).run(&world.dataset);
        prop_assert!(out.resolution.comparisons <= budget);
        prop_assert_eq!(out.resolution.trace.comparisons(), out.resolution.comparisons);
        // Matches recorded in the trace agree with the match list.
        prop_assert_eq!(out.resolution.trace.matches(), out.resolution.matches.len());
        // Every match is a comparable cross-KB pair.
        for (a, b, score) in &out.resolution.matches {
            prop_assert!(a < b);
            prop_assert!(world.dataset.kb_of(*a) != world.dataset.kb_of(*b));
            prop_assert!((0.0..=1.0 + 1e-9).contains(score));
        }
    }

    #[test]
    fn clusters_partition_matched_entities(cfg in arb_world()) {
        let world = generate(&cfg);
        let out = Pipeline::new(PipelineConfig::default()).run(&world.dataset);
        let mut seen = std::collections::HashSet::new();
        for cluster in &out.resolution.clusters {
            prop_assert!(cluster.len() >= 2);
            for &m in cluster {
                prop_assert!(seen.insert(m), "entity {m} in two clusters");
            }
        }
        // Every matched endpoint appears in some cluster.
        let clustered: std::collections::HashSet<u32> =
            out.resolution.clusters.iter().flatten().copied().collect();
        for (a, b, _) in &out.resolution.matches {
            prop_assert!(clustered.contains(&a.0));
            prop_assert!(clustered.contains(&b.0));
        }
    }

    #[test]
    fn progressive_curves_invariants(cfg in arb_world()) {
        let world = generate(&cfg);
        let out = Pipeline::new(PipelineConfig::default()).run(&world.dataset);
        let pts = progressive::progressive_curves(&world.dataset, &world.truth, &out.resolution.trace, 8);
        prop_assert!(!pts.is_empty());
        for w in pts.windows(2) {
            prop_assert!(w[1].comparisons >= w[0].comparisons);
            prop_assert!(w[1].recall + 1e-12 >= w[0].recall);
            prop_assert!(w[1].entity_coverage + 1e-12 >= w[0].entity_coverage);
        }
        let auc = progressive::recall_auc(&pts);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&auc));
    }

    #[test]
    fn meta_blocking_retains_subset_of_graph(cfg in arb_world()) {
        let world = generate(&cfg);
        let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        let edge_set: std::collections::HashSet<(u32, u32)> =
            graph.edges().iter().map(|e| (e.a.0, e.b.0)).collect();
        for scheme in [WeightingScheme::Cbs, WeightingScheme::Arcs] {
            let pruned = prune::wnp(&graph, scheme, false);
            prop_assert!(pruned.pairs.len() <= graph.num_edges());
            for p in &pruned.pairs {
                prop_assert!(edge_set.contains(&(p.a.0, p.b.0)), "pruning invented an edge");
                prop_assert!(p.weight > 0.0);
            }
        }
    }
}
