//! Property suite for the flat CSR block-collection layout.
//!
//! Three contracts, on random generated worlds:
//!
//! 1. the string-free counting-sort build
//!    ([`BlockCollection::from_assignments`] via the token/URI builders)
//!    produces collections **identical** to the straightforward reference
//!    build (owned token strings grouped through a hash map, then the
//!    string-keyed `from_groups`), at every thread count;
//! 2. the mask + id-remap purge/filter index passes are **identical** to
//!    the legacy owned-`Vec` rebuild passes, stage by stage and composed;
//! 3. end-to-end pipeline candidate pairs are **bit-identical** across
//!    all three execution backends on the new layout, and bit-identical
//!    to candidates computed over a reference-built collection.
//!
//! CI reruns this suite under `RUST_TEST_THREADS=1` and `4` like the
//! other equivalence suites.

use minoan::blocking::collection::KeyAssignments;
use minoan::blocking::{builders, filter, purge, BlockCollection, ErMode};
use minoan::metablocking::ExecutionBackend;
use minoan::prelude::*;
use minoan::rdf::tokenize;
use proptest::prelude::*;

// The one observable-identity oracle (blocks, key strings, member
// slices, comparison counts, reciprocal bits, inverted index) — shared
// with the `blockbuild` smoke/bench harness so both always check the
// same invariants.
use minoan_bench::blockbuild::assert_collections_identical;

// The reference (legacy string-grouped) build — shared with the
// blockbuild harness so every suite pins against the same oracle.
use minoan_bench::blockbuild::reference_token_and_uri_blocking as reference_token_and_uri;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Contract 1 — the CSR counting-sort build equals the reference
    /// string-grouped build, for both ER modes, at thread counts 1/2/4/8.
    #[test]
    fn csr_build_equals_reference_build(seed in 0u64..500, n in 40usize..120) {
        let world = generate(&profiles::center_periphery(n, seed));
        let ds = &world.dataset;
        for mode in [ErMode::CleanClean, ErMode::Dirty] {
            let reference = reference_token_and_uri(ds, mode);
            // The production builder (auto thread count)...
            let built = builders::token_and_uri_blocking(ds, mode);
            assert_collections_identical(&built, &reference, "builder");
            // ...and the explicit thread sweep over the same assignments.
            for threads in [1usize, 2, 4, 8] {
                let mut asg = KeyAssignments::with_capacity(ds.len());
                let mut buffers = tokenize::TokenBuffers::default();
                for e in ds.entities() {
                    ds.for_each_blocking_token(e, &mut buffers, |tok| asg.push_key(tok));
                    tokenize::uri_infix_tokens_with(ds.uri(e), &mut buffers, |tok| {
                        asg.push_key_prefixed("uri:", tok)
                    });
                    asg.seal_entity();
                }
                let c = BlockCollection::from_assignments_with_threads(ds, mode, asg, threads);
                assert_collections_identical(&c, &reference, &format!("threads={threads}"));
            }
        }
    }

    /// Contract 2 — mask-based purge and filter equal the legacy rebuild
    /// passes, individually and composed (purge → filter).
    #[test]
    fn purge_filter_equal_legacy_rebuild(seed in 0u64..500, n in 40usize..120) {
        let world = generate(&profiles::center_periphery(n, seed));
        let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);

        let fast = purge::purge(&blocks);
        let legacy = purge::legacy_purge_with(&blocks, purge::DEFAULT_SMOOTHING);
        prop_assert_eq!(fast.purged_blocks, legacy.purged_blocks);
        prop_assert_eq!(fast.purged_comparisons, legacy.purged_comparisons);
        prop_assert_eq!(fast.max_comparisons_per_block, legacy.max_comparisons_per_block);
        assert_collections_identical(&fast.collection, &legacy.collection, "purge");

        for ratio in [0.3, 0.8, 1.0] {
            let f_fast = filter::filter_with(&fast.collection, ratio);
            let f_legacy = filter::legacy_filter_with(&legacy.collection, ratio);
            assert_collections_identical(&f_fast, &f_legacy, &format!("filter r={ratio}"));
        }
    }

    /// Contract 3 — pipeline candidates are bit-identical across all
    /// three backends on the new layout, and bit-identical to candidates
    /// over the reference-built collection.
    #[test]
    fn pipeline_candidates_bit_identical_across_backends(seed in 0u64..500, n in 40usize..100) {
        let world = generate(&profiles::center_periphery(n, seed));
        let reference = {
            let pipeline = Pipeline::new(PipelineConfig::default());
            let raw = reference_token_and_uri(&world.dataset, ErMode::CleanClean);
            pipeline.meta_block(&pipeline.clean_blocks(raw))
        };
        for backend in [
            ExecutionBackend::Materialized,
            ExecutionBackend::Streaming,
            ExecutionBackend::MapReduce,
        ] {
            let cfg = PipelineConfig {
                backend,
                workers: Some(3),
                ..Default::default()
            };
            let pipeline = Pipeline::new(cfg);
            let blocks = pipeline.block(&world.dataset);
            let candidates = pipeline.meta_block(&pipeline.clean_blocks(blocks));
            prop_assert_eq!(candidates.len(), reference.len(), "{:?}: count", backend);
            for (c, r) in candidates.iter().zip(&reference) {
                prop_assert_eq!((c.0, c.1), (r.0, r.1), "{:?}: pair", backend);
                prop_assert_eq!(
                    c.2.to_bits(),
                    r.2.to_bits(),
                    "{:?}: weight bits for ({:?},{:?})",
                    backend,
                    c.0,
                    c.1
                );
            }
        }
    }
}

/// Purging must keep member lists byte-for-byte (it only drops whole
/// blocks), so the fast path's slab memcpy is sufficient — pinned here
/// against a semantic drift in `retain_blocks`.
#[test]
fn purge_keeps_surviving_blocks_untouched() {
    let world = generate(&profiles::center_dense(150, 23));
    let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
    let out = purge::purge(&blocks);
    let mut kept = 0usize;
    for b in blocks.blocks() {
        if b.comparisons <= out.max_comparisons_per_block {
            let nb = out.collection.block(minoan::blocking::BlockId(kept as u32));
            assert_eq!(nb.entities, b.entities);
            assert_eq!(nb.comparisons, b.comparisons);
            assert_eq!(out.collection.key_str(nb.id), blocks.key_str(b.id));
            kept += 1;
        }
    }
    assert_eq!(kept, out.collection.len());
}

/// The filter keep-`k` split must select exactly the full-sort prefix
/// (fewest comparisons first, ties by block id) — the deterministic
/// contract `select_nth_unstable_by_key` has to preserve.
#[test]
fn filter_keeps_the_sorted_prefix_per_entity() {
    let world = generate(&profiles::center_dense(120, 29));
    let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
    let ratio = 0.5;
    let filtered = filter::filter_with(&blocks, ratio);
    for e in world.dataset.entities() {
        let bs = blocks.entity_blocks(e);
        if bs.is_empty() {
            continue;
        }
        let keep = ((ratio * bs.len() as f64).ceil() as usize).clamp(1, bs.len());
        let mut sorted: Vec<_> = bs.to_vec();
        sorted.sort_by_key(|&b| (blocks.block_comparisons(b), b));
        let expected: std::collections::BTreeSet<&str> =
            sorted[..keep].iter().map(|&b| blocks.key_str(b)).collect();
        // Every retained assignment of e must come from the expected set
        // (blocks can disappear entirely if all their other members
        // dropped them, so subset — not equality — is the invariant).
        for &b in filtered.entity_blocks(e) {
            assert!(
                expected.contains(filtered.key_str(b)),
                "entity {e:?} kept unexpected block {:?}",
                filtered.key_str(b)
            );
        }
    }
}
