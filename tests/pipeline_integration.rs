//! End-to-end integration tests spanning all workspace crates.

use minoan::prelude::*;

fn quality(
    world: &minoan::datagen::GeneratedWorld,
    config: PipelineConfig,
) -> (minoan::eval::MatchQuality, minoan::er::PipelineOutput) {
    let out = Pipeline::new(config).run(&world.dataset);
    (
        metrics::resolution_quality(&world.truth, &out.resolution),
        out,
    )
}

#[test]
fn all_profiles_resolve_end_to_end() {
    for (name, cfg) in profiles::all_profiles(250, 79) {
        let world = generate(&cfg);
        let mode = if world.dataset.kb_count() > 1 {
            ErMode::CleanClean
        } else {
            ErMode::Dirty
        };
        let config = PipelineConfig {
            mode,
            ..Default::default()
        };
        let (q, out) = quality(&world, config);
        assert!(out.candidates > 0, "{name}: no candidates");
        assert!(q.emitted > 0, "{name}: no matches emitted");
        assert!(q.precision > 0.6, "{name}: precision {:.3}", q.precision);
        // Every regime must achieve non-trivial recall; easy regimes much more.
        let floor = match name {
            "center_dense" | "dirty_single" => 0.7,
            "lod_cloud" | "center_periphery" => 0.35,
            _ => 0.1,
        };
        assert!(
            q.recall > floor,
            "{name}: recall {:.3} below {floor}",
            q.recall
        );
    }
}

#[test]
fn budget_sweep_is_monotone_in_recall() {
    let world = generate(&profiles::center_dense(300, 5));
    let mut last_recall = -1.0;
    for budget in [200u64, 1_000, 5_000, u64::MAX] {
        let config = PipelineConfig {
            resolver: ResolverConfig {
                budget,
                ..Default::default()
            },
            ..Default::default()
        };
        let (q, out) = quality(&world, config);
        assert!(out.resolution.comparisons <= budget);
        assert!(
            q.recall + 1e-9 >= last_recall,
            "more budget must not lose recall: {} after {last_recall}",
            q.recall
        );
        last_recall = q.recall;
    }
}

#[test]
fn pipeline_is_deterministic_across_runs() {
    let world = generate(&profiles::lod_cloud(150, 11));
    let run = || {
        let (q, out) = quality(&world, PipelineConfig::default());
        (q.tp, q.emitted, out.candidates, out.resolution.comparisons)
    };
    assert_eq!(run(), run());
}

#[test]
fn blocking_quality_improves_through_the_pipeline_stages() {
    // PQ (precision of the comparison set) must improve raw → cleaned →
    // meta-blocked, while PC stays high.
    let world = generate(&profiles::center_dense(250, 21));
    let pipeline = Pipeline::new(PipelineConfig::default());
    let raw = pipeline.block(&world.dataset);
    let raw_pairs = raw.distinct_pairs();
    let raw_q = metrics::blocking_quality(&world.dataset, &world.truth, &raw_pairs);

    let cleaned = pipeline.clean_blocks(raw);
    let clean_pairs = cleaned.distinct_pairs();
    let clean_q = metrics::blocking_quality(&world.dataset, &world.truth, &clean_pairs);

    let pruned: Vec<_> = pipeline
        .meta_block(&cleaned)
        .into_iter()
        .map(|(a, b, _)| (a, b))
        .collect();
    let meta_q = metrics::blocking_quality(&world.dataset, &world.truth, &pruned);

    assert!(raw_q.pc > 0.95, "raw PC {:.3}", raw_q.pc);
    assert!(clean_q.pq >= raw_q.pq, "cleaning must not lower PQ");
    assert!(meta_q.pq > clean_q.pq, "meta-blocking must raise PQ");
    assert!(
        meta_q.pc > 0.8,
        "meta-blocking PC collapsed: {:.3}",
        meta_q.pc
    );
    assert!(meta_q.comparisons < raw_q.comparisons);
}

#[test]
fn unique_mapping_raises_precision_on_clean_data() {
    let world = generate(&profiles::center_dense(250, 31));
    let base = PipelineConfig::default();
    let (q_free, _) = quality(&world, base.clone());
    let with_unique = PipelineConfig {
        resolver: ResolverConfig {
            unique_mapping: true,
            ..base.resolver.clone()
        },
        ..base
    };
    let (q_unique, _) = quality(&world, with_unique);
    assert!(
        q_unique.precision >= q_free.precision - 1e-9,
        "unique mapping must not hurt precision: {:.3} vs {:.3}",
        q_unique.precision,
        q_free.precision
    );
}

#[test]
fn rdf_roundtrip_preserves_resolution() {
    let world = generate(&profiles::center_dense(120, 8));
    let mut builder = DatasetBuilder::new();
    for k in 0..world.dataset.kb_count() {
        let kb = KbId(k as u16);
        let doc = world.dataset.to_ntriples(kb);
        builder
            .add_ntriples_kb(
                &world.dataset.kb(kb).name,
                &world.dataset.kb(kb).namespace,
                &doc,
            )
            .expect("parse own output");
    }
    let reimported = builder.build();
    assert_eq!(reimported.len(), world.dataset.len());
    let (q_orig, _) = quality(&world, PipelineConfig::default());
    let out2 = Pipeline::new(PipelineConfig::default()).run(&reimported);
    let q_re = metrics::resolution_quality(&world.truth, &out2.resolution);
    assert_eq!(q_orig.tp, q_re.tp, "round-trip changed the resolution");
    assert_eq!(q_orig.emitted, q_re.emitted);
}

#[test]
fn strategies_rank_as_expected_at_low_budget() {
    let world = generate(&profiles::center_dense(300, 41));
    let pipeline = Pipeline::new(PipelineConfig::default());
    let blocks = pipeline.clean_blocks(pipeline.block(&world.dataset));
    let candidates = pipeline.meta_block(&blocks);
    let budget = (candidates.len() / 5) as u64;

    let run = |strategy: Strategy| {
        let matcher = Matcher::new(&world.dataset, MatcherConfig::default());
        let res = ProgressiveResolver::new(
            &world.dataset,
            matcher,
            ResolverConfig {
                strategy,
                budget,
                ..Default::default()
            },
        )
        .run(&candidates);
        metrics::resolution_quality(&world.truth, &res).recall
    };

    let progressive = run(Strategy::Progressive(BenefitModel::PairQuantity));
    let static_bf = run(Strategy::StaticBestFirst);
    let random = run(Strategy::Random { seed: 9 });
    assert!(
        progressive > random,
        "progressive {progressive:.3} must beat random {random:.3}"
    );
    assert!(
        static_bf > random,
        "static best-first {static_bf:.3} must beat random {random:.3}"
    );
}
