//! Property suite for the updatable meta-blocking session: after every
//! ingest, a delta-swept [`IncrementalSession`] must be *bit-identical* to
//! a from-scratch [`Session`] over the merged corpus — same input-edge
//! count, same pair order, same f64 weight bits — across arrival orders,
//! batch sizes, ER modes and thread counts. Run it under
//! `RUST_TEST_THREADS=1` and `4` in CI; per-worker bit-identity is also
//! asserted in-process. (Exact-delta assertions on the process-global
//! probe counters live in `tests/incremental_probe.rs`, a separate test
//! binary — ingests here would tick those counters concurrently.)

mod common;

use common::assert_bit_identical;
use minoan::blocking::{builders, ErMode};
use minoan::datagen::{generate, profiles, ArrivalOrder, GeneratedWorld};
use minoan::metablocking::{
    ExecutionBackend, IncrementalSession, Pruning, Session, WeightingScheme,
};

/// Scheme × pruning combinations with a true delta-sweep path.
const DELTA_SCHEMES: [WeightingScheme; 3] = [
    WeightingScheme::Cbs,
    WeightingScheme::Js,
    WeightingScheme::Arcs,
];
const DELTA_FAMILIES: [Pruning; 5] = [
    Pruning::None,
    Pruning::Wep,
    Pruning::Cep(None),
    Pruning::Wnp { reciprocal: false },
    Pruning::Cnp {
        reciprocal: true,
        k: None,
    },
];

fn world(mode: ErMode) -> GeneratedWorld {
    match mode {
        ErMode::CleanClean => generate(&profiles::center_dense(160, 41)),
        ErMode::Dirty => generate(&profiles::dirty_single(160, 41)),
    }
}

/// Ingest `batches` one by one and assert per-batch bit-identity against a
/// from-scratch streaming [`Session`] on the merged corpus.
#[allow(clippy::too_many_arguments)]
fn check_stream(
    g: &GeneratedWorld,
    mode: ErMode,
    scheme: WeightingScheme,
    pruning: Pruning,
    batches: &[Vec<minoan::rdf::EntityId>],
    workers: usize,
    expect_delta: bool,
    label: &str,
) {
    let mut inc = IncrementalSession::new(&g.dataset, mode);
    inc.scheme(scheme).pruning(pruning).workers(workers);
    for (i, batch) in batches.iter().enumerate() {
        let report = inc.ingest(batch);
        if i > 0 || !batch.is_empty() {
            assert_eq!(
                report.delta, expect_delta,
                "{label}: batch {i} delta flag (report {report:?})"
            );
        }
        let got = inc.outcome();
        let snap = inc.snapshot().expect("ingest leaves a snapshot behind");
        let want = Session::new(snap)
            .scheme(scheme)
            .pruning(pruning)
            .backend(ExecutionBackend::Streaming)
            .workers(workers)
            .run();
        assert_bit_identical(&got.pruned, &want.pruned, &format!("{label}: batch {i}"));
    }
}

#[test]
fn delta_sweeps_are_bit_identical_to_from_scratch_sessions() {
    for mode in [ErMode::CleanClean, ErMode::Dirty] {
        let g = world(mode);
        let order = ArrivalOrder::Shuffled { seed: 7 };
        let batches = order.batches(&g.dataset, &g.truth, 37);
        for scheme in DELTA_SCHEMES {
            for pruning in DELTA_FAMILIES {
                check_stream(
                    &g,
                    mode,
                    scheme,
                    pruning,
                    &batches,
                    2,
                    true,
                    &format!("{mode:?}/{scheme:?}/{pruning:?}"),
                );
            }
        }
    }
}

#[test]
fn every_arrival_order_converges_bit_identically() {
    let mode = ErMode::CleanClean;
    let g = world(mode);
    for order in ArrivalOrder::all(19) {
        let batches = order.batches(&g.dataset, &g.truth, 53);
        check_stream(
            &g,
            mode,
            WeightingScheme::Js,
            Pruning::Wnp { reciprocal: false },
            &batches,
            2,
            true,
            &format!("order {}", order.name()),
        );
    }
}

#[test]
fn batch_size_does_not_change_a_bit() {
    let mode = ErMode::Dirty;
    let g = world(mode);
    let order = ArrivalOrder::RoundRobin;
    for batch_size in [1usize, 13, 64, g.dataset.len()] {
        let batches = order.batches(&g.dataset, &g.truth, batch_size);
        check_stream(
            &g,
            mode,
            WeightingScheme::Arcs,
            Pruning::Cnp {
                reciprocal: false,
                k: None,
            },
            &batches,
            2,
            true,
            &format!("batch size {batch_size}"),
        );
    }
}

#[test]
fn thread_counts_do_not_change_a_bit() {
    let mode = ErMode::CleanClean;
    let g = world(mode);
    let batches = ArrivalOrder::KbSequential.batches(&g.dataset, &g.truth, 41);
    for workers in [1usize, 2, 4, 8] {
        check_stream(
            &g,
            mode,
            WeightingScheme::Cbs,
            Pruning::Wep,
            &batches,
            workers,
            true,
            &format!("workers {workers}"),
        );
    }
}

#[test]
fn unsupported_combinations_fall_back_bit_identically() {
    let mode = ErMode::CleanClean;
    let g = world(mode);
    let batches = ArrivalOrder::Shuffled { seed: 3 }.batches(&g.dataset, &g.truth, 61);
    for (scheme, pruning) in [
        (WeightingScheme::Ecbs, Pruning::Wnp { reciprocal: false }),
        (WeightingScheme::Ejs, Pruning::Wep),
        (WeightingScheme::Cbs, Pruning::blast()),
    ] {
        check_stream(
            &g,
            mode,
            scheme,
            pruning,
            &batches,
            2,
            false,
            &format!("fallback {scheme:?}/{pruning:?}"),
        );
    }
}

#[test]
fn final_state_matches_batch_token_blocking() {
    for mode in [ErMode::CleanClean, ErMode::Dirty] {
        let g = world(mode);
        let mut inc = IncrementalSession::new(&g.dataset, mode);
        inc.scheme(WeightingScheme::Js)
            .pruning(Pruning::Wnp { reciprocal: true })
            .workers(2);
        for batch in ArrivalOrder::ClusteredBursts.batches(&g.dataset, &g.truth, 29) {
            inc.ingest(&batch);
        }
        let got = inc.outcome();
        let blocks = builders::token_blocking(&g.dataset, mode);
        let want = Session::new(&blocks)
            .scheme(WeightingScheme::Js)
            .pruning(Pruning::Wnp { reciprocal: true })
            .backend(ExecutionBackend::Materialized)
            .run();
        assert_bit_identical(&got.pruned, &want.pruned, &format!("{mode:?} final"));
    }
}
