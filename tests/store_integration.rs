//! Cross-crate integration: generator → N-Triples → triple store →
//! snapshot → dataset bridge → full ER pipeline. The result must match
//! running the pipeline on the generator's dataset directly.

use minoan::prelude::*;
use minoan::store::{FrozenStore, TripleStore};

fn store_from_world(world: &minoan::datagen::GeneratedWorld) -> FrozenStore {
    let mut store = TripleStore::new();
    for kb in 0..world.dataset.kb_count() {
        let id = KbId(kb as u16);
        let doc = world.dataset.to_ntriples(id);
        store
            .load_ntriples(&world.dataset.kb(id).name, &doc)
            .expect("valid N-Triples");
    }
    store.freeze()
}

#[test]
fn store_bridge_preserves_the_dataset() {
    let world = generate(&profiles::center_dense(200, 13));
    let frozen = store_from_world(&world);
    let bridged = frozen.to_dataset();
    assert_eq!(bridged.len(), world.dataset.len());
    assert_eq!(bridged.kb_count(), world.dataset.kb_count());
    assert_eq!(bridged.link_count(), world.dataset.link_count());
    // Every original description exists with the same attribute count.
    for e in world.dataset.entities() {
        let uri = world.dataset.uri(e);
        let be = bridged
            .entity_by_uri(uri)
            .unwrap_or_else(|| panic!("{uri} lost in bridge"));
        assert_eq!(
            bridged.description(be).attributes.len(),
            world.dataset.description(e).attributes.len(),
            "{uri} attribute count changed"
        );
    }
}

#[test]
fn resolution_through_store_matches_direct_resolution() {
    let world = generate(&profiles::center_dense(200, 18));
    let frozen = store_from_world(&world);
    let through_store = Pipeline::new(PipelineConfig::default()).run(&frozen.to_dataset());
    let direct = Pipeline::new(PipelineConfig::default()).run(&world.dataset);
    // Entity ids may be permuted by the bridge, so compare set sizes and
    // quality, not raw pairs.
    assert_eq!(through_store.candidates, direct.candidates);
    assert_eq!(
        through_store.resolution.matches.len(),
        direct.resolution.matches.len()
    );
    assert_eq!(
        through_store.resolution.comparisons,
        direct.resolution.comparisons
    );
}

#[test]
fn snapshot_survives_full_round_trip_with_resolution() {
    let world = generate(&profiles::lod_cloud(150, 19));
    let frozen = store_from_world(&world);
    let reloaded = FrozenStore::from_snapshot(&frozen.to_snapshot()).expect("snapshot loads");
    assert_eq!(reloaded.len(), frozen.len());
    let out = Pipeline::new(PipelineConfig::default()).run(&reloaded.to_dataset());
    assert!(
        !out.resolution.matches.is_empty(),
        "resolution through snapshot produced nothing"
    );
}

#[test]
fn stats_reflect_the_generated_regime() {
    // Periphery KBs use proprietary vocabularies; centre KBs share.
    let center = store_from_world(&generate(&profiles::center_dense(150, 23)));
    let periphery = store_from_world(&generate(&profiles::periphery_sparse(150, 23)));
    let c = center.stats();
    let p = periphery.stats();
    assert!(
        p.proprietary_ratio() > c.proprietary_ratio(),
        "periphery must be more proprietary: {} vs {}",
        p.proprietary_ratio(),
        c.proprietary_ratio()
    );
}
