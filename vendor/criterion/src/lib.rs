//! Offline subset of the `criterion` benchmarking API.
//!
//! The registry is unreachable in this build environment, so the real
//! criterion cannot be fetched. This shim keeps the workspace's bench
//! targets compiling and *measuring*: each benchmark is timed with
//! `std::time::Instant` (short warm-up, then a fixed measurement budget)
//! and the mean per-iteration time is printed in a criterion-like line.
//! There is no statistical analysis, HTML report, or regression store.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (callers may also use
/// `std::hint::black_box` directly).
pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(20);
const MEASURE: Duration = Duration::from_millis(120);

/// Identifier of a parameterised benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        Self { id: s.clone() }
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted, unused).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Times closures (subset of `criterion::Bencher`).
pub struct Bencher {
    mean_nanos: f64,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Self {
            mean_nanos: 0.0,
            iters: 0,
        }
    }

    /// Times `routine`, running it repeatedly for the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        let start = Instant::now();
        while start.elapsed() < WARMUP {
            black_box(routine());
        }
        // Measurement.
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < MEASURE {
            black_box(routine());
            iters += 1;
        }
        let elapsed = start.elapsed();
        self.iters = iters.max(1);
        self.mean_nanos = elapsed.as_nanos() as f64 / self.iters as f64;
    }

    /// Times `routine` on fresh inputs from `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<S, O, Setup: FnMut() -> S, R: FnMut(S) -> O>(
        &mut self,
        mut setup: Setup,
        mut routine: R,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            let input = setup();
            black_box(routine(input));
        }
        let mut iters = 0u64;
        let mut measured = Duration::ZERO;
        let budget_start = Instant::now();
        while budget_start.elapsed() < MEASURE {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            measured += t.elapsed();
            iters += 1;
        }
        self.iters = iters.max(1);
        self.mean_nanos = measured.as_nanos() as f64 / self.iters as f64;
    }
}

fn human(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

fn run_one(id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new();
    f(&mut b);
    println!(
        "{id:<48} time: {:>12}   ({} iters)",
        human(b.mean_nanos),
        b.iters
    );
}

/// The benchmark registry/driver (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for macro compatibility; no CLI parsing in the shim.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { _c: self, name }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's budget is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into().id), &mut f);
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into().id), &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Throughput hint (accepted, unused).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a group of benchmark functions (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
