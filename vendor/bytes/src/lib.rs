//! Offline `Vec<u8>`-backed subset of the `bytes` crate.
//!
//! Implements exactly the surface `minoan-store` uses: [`BytesMut`] as a
//! growable buffer with `put_*` writers, [`Bytes`] as an immutable,
//! cheaply cloneable cursor over the frozen contents, and the [`Buf`] /
//! [`BufMut`] traits (with a `Buf` impl for `&[u8]` so snapshots decode
//! straight from borrowed slices).

use std::sync::Arc;

/// Read cursor over a contiguous byte source (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// A view of the unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    ///
    /// # Panics
    /// Panics if the buffer is exhausted (matches `bytes`).
    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 on empty buffer");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Fills `dst` from the buffer.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice overrun");
        let mut filled = 0;
        while filled < dst.len() {
            let chunk = self.chunk();
            let n = chunk.len().min(dst.len() - filled);
            dst[filled..filled + n].copy_from_slice(&chunk[..n]);
            self.advance(n);
            filled += n;
        }
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write sink for bytes (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);

    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Growable byte buffer (subset of `bytes::BytesMut`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Immutable, cheaply cloneable byte buffer with a consume cursor
/// (subset of `bytes::Bytes`).
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    pos: usize,
}

impl Bytes {
    /// Length of the *unconsumed* portion.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether nothing remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the unconsumed portion into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }

    /// A new `Bytes` over a subrange of the unconsumed portion.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => len,
        };
        Bytes::from(self.chunk()[start..end].to_vec())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self {
            data: Arc::new(data),
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u8(7);
        buf.put_slice(b"abc");
        buf.put_u64_le(0x0102_0304_0506_0708);
        assert_eq!(buf.len(), 12);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.get_u8(), 7);
        let mut s = [0u8; 3];
        bytes.copy_to_slice(&mut s);
        assert_eq!(&s, b"abc");
        assert_eq!(bytes.get_u64_le(), 0x0102_0304_0506_0708);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn slice_buf() {
        let raw = [1u8, 2, 3];
        let mut b: &[u8] = &raw;
        assert_eq!(b.get_u8(), 1);
        assert_eq!(b.remaining(), 2);
        b.advance(1);
        assert_eq!(b.chunk(), &[3]);
    }
}
