//! The [`Strategy`] trait and the primitive strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::Range;

/// A generator of random values (subset of `proptest::strategy::Strategy`;
/// generation only, no value tree / shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Flat-maps: the generated value seeds a second strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-domain integer strategy backing `any::<T>()`.
#[derive(Clone, Copy, Debug)]
pub struct AnyInt<T>(pub(crate) PhantomData<T>);

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                // Mix small values in so boundary behaviour gets exercised
                // (the real proptest biases similarly).
                match rng.rng.gen_range(0u32..8) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => 1 as $t,
                    _ => rng.rng.gen::<u64>() as $t,
                }
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng.gen_range(self.clone())
    }
}

/// String literals are regex strategies (subset — see [`crate::string`]).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident)+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A B);
tuple_strategy!(A B C);
tuple_strategy!(A B C D);
tuple_strategy!(A B C D E);
tuple_strategy!(A B C D E F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..200 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let doubled = (3u32..9).prop_map(|x| x * 2).generate(&mut rng);
            assert!(doubled % 2 == 0 && (6..18).contains(&doubled));
            let (a, b) = ((0u64..5), (0.0f64..1.0)).generate(&mut rng);
            assert!(a < 5 && (0.0..1.0).contains(&b));
        }
    }
}
