//! Offline subset of `proptest`: randomised property testing without
//! shrinking.
//!
//! The build container cannot reach a cargo registry, so the real
//! proptest is unavailable. This shim keeps the workspace's property
//! tests *executable* with the same source syntax:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] (panic instead of returning
//!   `Err`, so there is no shrinking on failure),
//! * range, tuple, regex-string, [`collection::vec`] and
//!   [`collection::hash_set`] strategies, [`any`], `prop_map` and
//!   [`strategy::Just`].
//!
//! Cases are generated deterministically: each test function derives its
//! RNG seed from its module path and name, so failures are reproducible
//! run-to-run without a persistence file.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

/// `bool` strategies (subset of `proptest::bool`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy yielding uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans (`prop::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.rng.gen::<bool>()
        }
    }
}

/// Values with a canonical "any value" strategy (subset of `Arbitrary`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = strategy::AnyInt<$t>;

            fn arbitrary() -> Self::Strategy {
                strategy::AnyInt(core::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for bool {
    type Strategy = crate::bool::Any;

    fn arbitrary() -> Self::Strategy {
        crate::bool::ANY
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced strategy modules (`prop::bool::ANY`, …).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::strategy;
        pub use crate::string;
    }
}

/// Defines property-test functions (subset of `proptest::proptest!`).
///
/// No shrinking: a failing case panics immediately with the generated
/// inputs' debug representation in the panic message path.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a property (panics on failure — no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality of two expressions.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality of two expressions.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}
