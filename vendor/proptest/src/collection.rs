//! Collection strategies (subset of `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

/// Size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.rng.gen_range(self.min..self.max_exclusive)
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vector of `element` values with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
#[derive(Clone, Debug)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let n = self.size.sample(rng);
        let mut out = HashSet::with_capacity(n);
        // Cap attempts so a small element domain terminates with a
        // smaller set instead of spinning.
        let mut attempts = 0usize;
        let max_attempts = 100 * (n + 1);
        while out.len() < n && attempts < max_attempts {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// Hash set of `element` values with target size in `size`.
pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S> {
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_sizes_in_range() {
        let mut rng = TestRng::from_seed(11);
        let strat = vec(0u32..10, 2..6);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn hash_set_reaches_target_when_domain_allows() {
        let mut rng = TestRng::from_seed(12);
        let strat = hash_set(0u32..400, 10..80);
        for _ in 0..50 {
            let s = strat.generate(&mut rng);
            assert!((10..80).contains(&s.len()), "{}", s.len());
        }
    }
}
