//! Test configuration and the deterministic case RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Deterministic RNG handed to strategies.
///
/// Seeded from the test's module path + name (FNV-1a), so every test has
/// its own reproducible stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// RNG from an explicit seed (exposed for the shim's own tests).
    pub fn from_seed(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}
