//! Regex-subset string generation.
//!
//! Supports exactly the pattern language the workspace's tests use:
//! sequences of atoms, where an atom is a literal character, `.` (any
//! printable character), or a character class `[a-z0-9 ]` of literals and
//! inclusive ranges; optionally followed by a quantifier `{m}`, `{m,n}`,
//! `*` (0–8), `+` (1–8) or `?`.

use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Clone, Debug)]
enum Atom {
    Literal(char),
    Any,
    Class(Vec<(char, char)>),
}

/// Characters `.` draws from: printable ASCII plus a few multi-byte
/// characters so UTF-8 handling gets exercised.
const ANY_EXTRA: &[char] = &['é', 'ß', 'λ', '中', '✓'];

fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in regex {pattern:?}");
                i += 1; // consume ']'
                Atom::Class(ranges)
            }
            '.' => {
                i += 1;
                Atom::Any
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "trailing escape in regex {pattern:?}");
                let c = chars[i];
                i += 1;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated quantifier")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad quantifier"),
                            n.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let m: usize = body.trim().parse().expect("bad quantifier");
                            (m, m)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, min, max));
    }
    atoms
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Any => {
            // Mostly printable ASCII, occasionally multi-byte.
            if rng.rng.gen_bool(0.9) {
                rng.rng.gen_range(0x20u32..0x7f) as u8 as char
            } else {
                ANY_EXTRA[rng.rng.gen_range(0..ANY_EXTRA.len())]
            }
        }
        Atom::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                .sum();
            let mut pick = rng.rng.gen_range(0..total);
            for &(lo, hi) in ranges {
                let span = hi as u32 - lo as u32 + 1;
                if pick < span {
                    return char::from_u32(lo as u32 + pick)
                        .expect("class range spans invalid scalar");
                }
                pick -= span;
            }
            unreachable!("pick within total")
        }
    }
}

/// Generates a string matching `pattern` (see module docs for the subset).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for (atom, min, max) in &atoms {
        let count = if min == max {
            *min
        } else {
            rng.rng.gen_range(*min..=*max)
        };
        for _ in 0..count {
            out.push(sample_atom(atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_quantifier() {
        let mut rng = TestRng::from_seed(4);
        for _ in 0..100 {
            let s = generate_matching("[a-c]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn unicode_class_and_space() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..100 {
            let s = generate_matching("[a-zα-ω ]{1,6}", &mut rng);
            assert!(!s.is_empty());
            assert!(
                s.chars()
                    .all(|c| c == ' ' || c.is_ascii_lowercase() || ('α'..='ω').contains(&c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn dot_star_and_literals() {
        let mut rng = TestRng::from_seed(6);
        let any = generate_matching(".*", &mut rng);
        assert!(any.chars().count() <= 8);
        assert_eq!(generate_matching("abc", &mut rng), "abc");
    }
}
