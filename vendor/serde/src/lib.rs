//! Offline marker-trait subset of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and trace
//! types but never invokes a serializer (the registry is unreachable in
//! this build environment, so `serde_json` was never an option; JSON and
//! CSV emission are hand-rolled). The traits here are satisfied by every
//! type via blanket impls, and the re-exported derives expand to nothing —
//! `Serialize` resolves to the trait in the type namespace and the no-op
//! derive in the macro namespace, exactly like the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
