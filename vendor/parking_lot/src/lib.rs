//! Offline subset of `parking_lot` backed by `std::sync`.
//!
//! Only the pieces the workspace uses: [`Mutex`] (and [`RwLock`] for
//! completeness) with parking_lot's panic-free `lock()` signature.
//! Poisoning is ignored — a poisoned std lock yields its inner data, which
//! matches parking_lot's semantics of not poisoning at all.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock()` never returns a `Result` (parking_lot style).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader–writer lock with parking_lot's panic-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}
