//! Offline, dependency-free subset of the `rand` 0.8 API.
//!
//! The container this workspace builds in has no access to a cargo
//! registry, so the real `rand` cannot be fetched. This shim implements
//! exactly the surface the workspace uses — [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`] — on top of a deterministic
//! xoshiro256++ generator seeded via SplitMix64. Determinism is the
//! property the tests rely on; statistical quality of xoshiro256++ is
//! ample for synthetic data generation.

pub mod rngs;
pub mod seq;

/// Low-level uniform bit source (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible uniformly from raw bits (stand-in for the real
/// crate's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`] (stand-in for `SampleRange`).
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform value in `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to [0, 1]).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = r.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
