//! Named generators (subset of `rand::rngs`).

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator, seeded via SplitMix64.
///
/// Not the same stream as the real crate's `StdRng` (ChaCha12) — callers
/// in this workspace only rely on *determinism per seed*, which holds.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the 256-bit state.
        let mut sm = state;
        let mut next = move || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0, 0, 0, 0] {
            s = [1, 2, 3, 4]; // xoshiro state must be non-zero
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
