//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as
//! documentation of intent — nothing calls a serializer (JSON emission is
//! hand-rolled in `minoan-eval`). The shimmed `serde` crate provides
//! blanket trait impls, so these derives expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
