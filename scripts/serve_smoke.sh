#!/usr/bin/env bash
# End-to-end lifecycle smoke for the resolution server, driven entirely
# through the CLI: start `minoan serve` on an ephemeral port, discover
# the address via --addr-file, fire a mixed burst of RESOLVE / INGEST /
# STATS through `minoan query`, and shut the server down cleanly. Fails
# if any query errors, if STATS comes back empty, or if the server does
# not exit after SHUTDOWN.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release -p minoan-cli
MINOAN=target/release/minoan

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
addr_file="$workdir/addr.txt"
serve_log="$workdir/serve.log"

"$MINOAN" serve --profile center --entities 400 --seed 9 \
  --weighting js --pruning wnp --cache 256 --preload 300 \
  --workers 2 --port 0 --addr-file "$addr_file" >"$serve_log" 2>&1 &
serve_pid=$!

# The server writes its ephemeral address (newline-terminated) before
# it starts accepting; poll for it with a deadline.
for _ in $(seq 1 200); do
  if [ -s "$addr_file" ] && grep -q . "$addr_file"; then
    break
  fi
  if ! kill -0 "$serve_pid" 2>/dev/null; then
    echo "serve exited before binding:" >&2
    cat "$serve_log" >&2
    exit 1
  fi
  sleep 0.05
done
addr="$(tr -d '[:space:]' <"$addr_file")"
[ -n "$addr" ] || { echo "no address in $addr_file" >&2; exit 1; }
echo "serve listening on $addr"

# Mixed burst: resolves on hot + cold entities, an ingest that bumps the
# corpus version, resolves again (now at the new version), then stats.
"$MINOAN" query --addr "$addr" --entity 7 --show 3
"$MINOAN" query --addr "$addr" --entity 7 --show 3
"$MINOAN" query --addr "$addr" --entity 42
"$MINOAN" query --addr "$addr" --ingest 300,301,302,303
"$MINOAN" query --addr "$addr" --entity 7 --show 3
stats="$("$MINOAN" query --addr "$addr" --stats)"
echo "$stats"
case "$stats" in
  *"resolves 0"*) echo "stats recorded no resolves" >&2; exit 1 ;;
  *"resolves "*) ;;
  *) echo "stats output missing resolve counter: $stats" >&2; exit 1 ;;
esac

# A rejected ingest (already-arrived entity) must not kill the server.
if "$MINOAN" query --addr "$addr" --ingest 300 2>/dev/null; then
  echo "duplicate ingest unexpectedly succeeded" >&2
  exit 1
fi
"$MINOAN" query --addr "$addr" --stats >/dev/null

"$MINOAN" query --addr "$addr" --shutdown

# SHUTDOWN must terminate the serve process (bounded wait).
for _ in $(seq 1 200); do
  if ! kill -0 "$serve_pid" 2>/dev/null; then
    break
  fi
  sleep 0.05
done
if kill -0 "$serve_pid" 2>/dev/null; then
  echo "server still running after SHUTDOWN" >&2
  kill "$serve_pid"
  exit 1
fi
wait "$serve_pid"

grep -q "listening on" "$serve_log"
grep -q "served" "$serve_log"
echo "serve smoke: lifecycle OK"
echo "--- serve log ---"
cat "$serve_log"
