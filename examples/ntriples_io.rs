//! RDF round-trip: export a synthetic KB as N-Triples, parse it back, and
//! resolve the re-imported dataset — demonstrating the `minoan-rdf`
//! substrate on real serialised data.
//!
//! Run with: `cargo run --release --example ntriples_io`

use minoan::prelude::*;
use minoan::rdf::ntriples;

fn main() {
    // Build a world, serialise each KB to N-Triples text.
    let world = generate(&profiles::center_dense(300, 5));
    let docs: Vec<(String, String)> = (0..world.dataset.kb_count())
        .map(|k| {
            let kb = KbId(k as u16);
            (
                world.dataset.kb(kb).name.to_string(),
                world.dataset.to_ntriples(kb),
            )
        })
        .collect();
    for (name, doc) in &docs {
        let triples = ntriples::parse_document(doc).expect("own output must parse");
        println!(
            "KB {name}: {} triples, {} bytes serialised",
            triples.len(),
            doc.len()
        );
    }

    // Re-import from the serialised form only.
    let mut builder = DatasetBuilder::new();
    for (name, doc) in &docs {
        builder
            .add_ntriples_kb(name, &format!("http://{name}.example.org/resource/"), doc)
            .expect("parse");
    }
    let reimported = builder.build();
    assert_eq!(reimported.len(), world.dataset.len(), "lossless round-trip");

    // Resolve the re-imported dataset. Entity ids are preserved by
    // serialisation order, so the original ground truth still applies.
    let out = Pipeline::new(PipelineConfig::default()).run(&reimported);
    let q = metrics::resolution_quality(&world.truth, &out.resolution);
    println!(
        "resolved re-imported dataset: precision {:.3}, recall {:.3} ({} matches)",
        q.precision, q.recall, q.emitted
    );
}
