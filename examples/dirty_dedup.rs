//! Dirty ER: deduplicating a single knowledge base.
//!
//! Not every ER task is cross-KB. A single KB accumulated from multiple
//! feeds contains intra-source duplicates ("dirty" ER): any pair of
//! descriptions may match, so blocking counts all pairs within a block and
//! the unique-mapping constraint does not apply. This example deduplicates
//! a dirty KB with the same pipeline, then compares the clustering
//! algorithms on the noisy match set.
//!
//! Run with: `cargo run --release --example dirty_dedup`

use minoan::er::clustering::ClusteringAlgorithm;
use minoan::prelude::*;

fn main() {
    // A single KB where each real-world entity is described ~2 times.
    let world = generate(&profiles::dirty_single(500, 13));
    println!(
        "dirty KB: {} descriptions of {} real-world entities ({} duplicate pairs)\n",
        world.dataset.len(),
        world.truth.num_world_entities(),
        world.truth.matching_pairs()
    );

    let config = PipelineConfig {
        mode: ErMode::Dirty,
        ..Default::default()
    };
    let out = Pipeline::new(config).run(&world.dataset);
    let q = metrics::resolution_quality(&world.truth, &out.resolution);
    println!(
        "pipeline: {} comparisons, {} matches | precision {:.3} recall {:.3} F1 {:.3}\n",
        out.resolution.comparisons,
        out.resolution.matches.len(),
        q.precision,
        q.recall,
        q.f1
    );

    // Clustering choice matters most in dirty ER: transitive closure chains
    // false matches across the whole KB.
    let truth_clusters: Vec<Vec<u32>> = world
        .truth
        .clusters()
        .iter()
        .filter(|c| c.len() >= 2)
        .map(|c| c.iter().map(|e| e.0).collect())
        .collect();
    println!(
        "{:<22} {:>9} {:>12} {:>11} {:>7}",
        "clustering", "clusters", "pairwise F1", "b-cubed F1", "VI"
    );
    for alg in ClusteringAlgorithm::ALL {
        let clusters = alg.run(world.dataset.len(), &out.resolution.matches, |e| {
            world.dataset.kb_of(e).0
        });
        let cq = minoan::eval::cluster_quality(world.dataset.len(), &clusters, &truth_clusters);
        println!(
            "{:<22} {:>9} {:>12.3} {:>11.3} {:>7.3}",
            alg.name(),
            clusters.len(),
            cq.pairwise.f1,
            cq.bcubed.f1,
            cq.vi
        );
    }
    println!("\n(unique-mapping rejects all intra-KB pairs by design — in dirty ER it is a no-op)");
}
