//! Triple-store workflow: load KBs as RDF, inspect them, snapshot to disk,
//! reload, and resolve — the deployment path a real MinoanER installation
//! would take (KBs live in a store, ER runs over the store's entity view).
//!
//! Run with: `cargo run --release --example triple_store`

use minoan::prelude::*;
use minoan::store::{select_var, FrozenStore, QueryPattern, QueryTerm, TripleStore};

fn main() {
    // 1. Generate a two-KB world and serialise each KB as N-Triples — the
    //    interchange format real LOD publishers use.
    let world = generate(&profiles::center_dense(500, 42));
    let mut store = TripleStore::new();
    for kb in 0..world.dataset.kb_count() {
        let id = KbId(kb as u16);
        let doc = world.dataset.to_ntriples(id);
        store
            .load_ntriples(&world.dataset.kb(id).name, &doc)
            .expect("generated N-Triples always parse");
    }
    let frozen = store.freeze();

    // 2. VoID-style statistics: the numbers the paper's §1 narrative is
    //    built on (vocabulary sharing, link density, proprietary ratio).
    println!("{}", frozen.stats().render(&frozen));

    // 3. Pattern queries over the dictionary-encoded indexes.
    let label_pred = frozen
        .stats()
        .predicate_histogram
        .first()
        .map(|&(p, _)| p)
        .expect("non-empty store");
    let hits = frozen.match_pattern(None, Some(label_pred), None).count();
    println!(
        "most frequent predicate <{}> has {hits} triples",
        frozen.dict().text(label_pred)
    );

    // 4. Snapshot round trip: single self-verifying file.
    let path = std::env::temp_dir().join("minoan_example.mnstore");
    frozen.save(&path).expect("snapshot written");
    let reloaded = FrozenStore::load(&path).expect("snapshot reloads");
    println!(
        "snapshot: {} bytes on disk, {} triples reloaded",
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
        reloaded.len()
    );
    std::fs::remove_file(&path).ok();

    // 5. Basic-graph-pattern query: every entity typed like the first
    //    rdf:type object in the store, joined with its label predicate —
    //    the kind of enrichment query an ER deployment runs post-resolution.
    let type_pred = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    if reloaded
        .dict()
        .encode_lookup(&minoan::store::Term::iri(type_pred))
        .is_some()
    {
        let typed = select_var(
            &reloaded,
            &[QueryPattern::new(
                QueryTerm::var("?e"),
                QueryTerm::iri(type_pred),
                QueryTerm::var("?t"),
            )],
            "?e",
        )
        .expect("type predicate verified above");
        println!("BGP query: {} typed entities", typed.len());
    }

    // 6. Bridge to the ER pipeline: the store's entity view feeds the same
    //    Figure-1 workflow the quickstart example runs.
    let dataset = reloaded.to_dataset();
    let out = Pipeline::new(PipelineConfig::default()).run(&dataset);
    println!(
        "resolved from store: {} comparisons, {} matches, {} clusters",
        out.resolution.comparisons,
        out.resolution.matches.len(),
        out.resolution.clusters.len()
    );
}
