//! Quickstart: the full MinoanER workflow of the paper's Figure 1.
//!
//! Generates a two-KB synthetic LOD world, then runs
//! blocking → meta-blocking → progressive matching under a budget, and
//! evaluates the result against the exact ground truth.
//!
//! Run with: `cargo run --release --example quickstart`

use minoan::prelude::*;

fn main() {
    // 1. Data: two centre-of-the-LOD-cloud KBs describing the same world.
    let world = generate(&profiles::center_dense(1_000, 42));
    println!(
        "dataset: {} descriptions in {} KBs, {} ground-truth pairs",
        world.dataset.len(),
        world.dataset.kb_count(),
        world.truth.matching_pairs()
    );

    // 2. The pipeline with default settings: token+URI blocking, purge +
    //    filter, ARCS-weighted WNP meta-blocking, progressive matching.
    let budget = 20_000;
    let config = PipelineConfig {
        resolver: ResolverConfig {
            strategy: Strategy::Progressive(BenefitModel::PairQuantity),
            budget,
            ..Default::default()
        },
        ..Default::default()
    };
    let out = Pipeline::new(config).run(&world.dataset);

    println!(
        "blocking: {} blocks / {} comparisons, cleaned to {} blocks / {} comparisons",
        out.blocks_raw.0, out.blocks_raw.1, out.blocks_clean.0, out.blocks_clean.1
    );
    println!(
        "meta-blocking kept {} candidates; engine used {} of {} budget",
        out.candidates, out.resolution.comparisons, budget
    );

    // 3. Evaluation against the ground truth.
    let quality = metrics::resolution_quality(&world.truth, &out.resolution);
    println!(
        "matches: {} emitted, precision {:.3}, recall {:.3}, F1 {:.3}",
        quality.emitted, quality.precision, quality.recall, quality.f1
    );

    // 4. Progressive view: how early did the quality arrive?
    let curves =
        progressive::progressive_curves(&world.dataset, &world.truth, &out.resolution.trace, 10);
    let mut table = Table::new(vec![
        "comparisons",
        "recall",
        "entity-coverage",
        "attr-compl",
    ]);
    for p in &curves {
        table.row(vec![
            p.comparisons.to_string(),
            format!("{:.3}", p.recall),
            format!("{:.3}", p.entity_coverage),
            format!("{:.3}", p.attr_completeness),
        ]);
    }
    println!("\nprogressive curves:\n{table}");
    println!(
        "recall AUC over budget: {:.3}",
        progressive::recall_auc(&curves)
    );
}
