//! Multi-KB resolution across a small LOD cloud, comparing benefit models.
//!
//! Four KBs (two centre, two periphery) describe one world. Each of the
//! paper's benefit models drives its own run under the same small budget;
//! the table shows that each model wins on *its own* quality dimension —
//! the paper's central claim about quality-aware progressive ER.
//!
//! Run with: `cargo run --release --example lod_cloud`

use minoan::prelude::*;

fn main() {
    let world = generate(&profiles::lod_cloud(600, 99));
    println!(
        "LOD cloud: {} KBs / {} descriptions / {} true pairs / {} world links",
        world.dataset.kb_count(),
        world.dataset.len(),
        world.truth.matching_pairs(),
        world.truth.world_links().len()
    );

    // A tight budget: 15% of what the default pipeline would use.
    let full = Pipeline::new(PipelineConfig::default());
    let blocks = full.clean_blocks(full.block(&world.dataset));
    let candidates = full.meta_block(&blocks);
    let budget = (candidates.len() / 7) as u64;
    println!(
        "candidates: {}, budget: {budget} comparisons\n",
        candidates.len()
    );

    let mut table = Table::new(vec![
        "benefit model",
        "recall",
        "attr-compl",
        "entity-cov",
        "rel-compl",
    ]);
    for model in BenefitModel::ALL {
        let config = PipelineConfig {
            resolver: ResolverConfig {
                strategy: Strategy::Progressive(model),
                budget,
                ..Default::default()
            },
            ..Default::default()
        };
        let out = Pipeline::new(config).run(&world.dataset);
        let pts = progressive::progressive_curves(
            &world.dataset,
            &world.truth,
            &out.resolution.trace,
            10,
        );
        let last = pts.last().copied().unwrap();
        table.row(vec![
            model.name().into(),
            format!("{:.3}", last.recall),
            format!("{:.3}", last.attr_completeness),
            format!("{:.3}", last.entity_coverage),
            format!("{:.3}", last.rel_completeness),
        ]);
    }
    println!("{table}");
    println!("(each row: final state after the same budget, driven by that benefit model)");
}
