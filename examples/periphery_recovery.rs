//! Periphery recovery: the paper's core motivation in action.
//!
//! "Blocking approaches in the Web of data, especially when handling
//! somehow similar descriptions appearing in the periphery of the LOD
//! cloud, may miss highly heterogeneous matching descriptions featuring
//! few common tokens. To overcome that, we focus on exploiting the partial
//! matching results as a similarity evidence for their neighbor (i.e.,
//! linked) descriptions."
//!
//! This example resolves two *periphery* KBs (proprietary vocabularies,
//! few common tokens, opaque URIs) twice — with the update phase disabled
//! (α = 0) and enabled — and shows the recall the neighbour propagation
//! recovers.
//!
//! Run with: `cargo run --release --example periphery_recovery`

use minoan::prelude::*;

fn run(world: &minoan::datagen::GeneratedWorld, alpha: f64) -> (f64, f64, usize) {
    let config = PipelineConfig {
        resolver: ResolverConfig {
            strategy: Strategy::Progressive(BenefitModel::PairQuantity),
            alpha,
            ..Default::default()
        },
        ..Default::default()
    };
    let out = Pipeline::new(config).run(&world.dataset);
    let q = metrics::resolution_quality(&world.truth, &out.resolution);
    (q.precision, q.recall, out.resolution.discovered_candidates)
}

fn main() {
    let world = generate(&profiles::periphery_sparse(1_500, 7));
    println!(
        "periphery dataset: {} descriptions, {} KBs, {} true pairs, {} linked descriptions",
        world.dataset.len(),
        world.dataset.kb_count(),
        world.truth.matching_pairs(),
        world
            .dataset
            .entities()
            .filter(|&e| !world.dataset.neighbors(e).is_empty())
            .count(),
    );

    let mut table = Table::new(vec![
        "update phase",
        "precision",
        "recall",
        "discovered pairs",
    ]);
    let (p0, r0, d0) = run(&world, 0.0);
    table.row(vec![
        "off (α=0)".into(),
        format!("{p0:.3}"),
        format!("{r0:.3}"),
        d0.to_string(),
    ]);
    let (p1, r1, d1) = run(&world, 0.5);
    table.row(vec![
        "on (α=0.5)".into(),
        format!("{p1:.3}"),
        format!("{r1:.3}"),
        d1.to_string(),
    ]);
    println!("\n{table}");
    println!(
        "neighbour propagation recovered {:+.1}% recall ({} candidate pairs discovered beyond blocking)",
        (r1 - r0) * 100.0,
        d1
    );
}
