//! Incremental (pay-as-you-go) resolution over a streaming feed.
//!
//! Descriptions arrive one at a time in four realistic orders; each arrival
//! does a bounded amount of work. The example prints how stream shape
//! affects quality and cost, and compares against the batch pipeline.
//!
//! Run with: `cargo run --release --example incremental_stream`

use minoan::datagen::ArrivalOrder;
use minoan::er::{IncrementalConfig, IncrementalResolver};
use minoan::prelude::*;

fn main() {
    let world = generate(&profiles::center_dense(600, 7));
    let matcher = Matcher::new(&world.dataset, MatcherConfig::default());
    println!(
        "{} descriptions streaming in, {} ground-truth pairs\n",
        world.dataset.len(),
        world.truth.matching_pairs()
    );

    println!(
        "{:<18} {:>12} {:>10} {:>8} {:>8}",
        "arrival order", "comparisons", "precision", "recall", "clusters"
    );
    for order in ArrivalOrder::all(7) {
        let mut resolver = IncrementalResolver::new(
            &world.dataset,
            &matcher,
            IncrementalConfig {
                budget_per_arrival: 10,
                ..Default::default()
            },
        );
        resolver.arrive_all(order.order(&world.dataset, &world.truth));
        let pairs: Vec<_> = resolver.matches().iter().map(|&(a, b, _)| (a, b)).collect();
        let q = metrics::match_quality(&world.truth, &pairs);
        println!(
            "{:<18} {:>12} {:>10.3} {:>8.3} {:>8}",
            order.name(),
            resolver.comparisons(),
            q.precision,
            q.recall,
            resolver.clusters().len()
        );
    }

    // Batch reference: the full pipeline over the same data.
    let out = Pipeline::new(PipelineConfig::default()).run(&world.dataset);
    let q = metrics::resolution_quality(&world.truth, &out.resolution);
    println!(
        "{:<18} {:>12} {:>10.3} {:>8.3} {:>8}",
        "batch reference",
        out.resolution.comparisons,
        q.precision,
        q.recall,
        out.resolution.clusters.len()
    );
}
