//! Blocking-method showdown: every blocker family on both LOD regimes.
//!
//! Exact token blocking is the paper's workhorse for the highly-similar
//! centre of the LOD cloud; this example shows where the fuzzy families
//! (q-grams, LSH, sorted neighborhood, canopy) earn their extra
//! comparisons — the noisy, "somehow similar" periphery — and how a
//! composite workflow (union → purge → filter) combines them.
//!
//! Run with: `cargo run --release --example blocker_showdown`

use minoan::blocking::{BlockingWorkflow, CanopyConfig, LshConfig, Method};
use minoan::prelude::*;

fn pair_quality(world: &minoan::datagen::GeneratedWorld, blocks: &BlockCollection) -> (f64, f64) {
    let pairs = blocks.distinct_pairs();
    let found = pairs
        .iter()
        .filter(|&&(a, b)| world.truth.is_match(a, b))
        .count();
    let pc = found as f64 / world.truth.matching_pairs() as f64;
    let pq = if pairs.is_empty() {
        0.0
    } else {
        found as f64 / pairs.len() as f64
    };
    (pc, pq)
}

fn main() {
    let methods: Vec<(&str, Method)> = vec![
        ("token", Method::Token),
        ("token+uri", Method::TokenAndUri),
        ("qgrams(3)", Method::QGrams(3)),
        ("sorted-neighborhood(6)", Method::SortedNeighborhood(6)),
        ("minhash-lsh", Method::MinHashLsh(LshConfig::default())),
        ("canopy", Method::Canopy(CanopyConfig::default())),
    ];

    for (profile_name, config) in [
        ("center (highly similar)", profiles::center_dense(400, 11)),
        (
            "periphery (somehow similar)",
            profiles::periphery_sparse(400, 11),
        ),
    ] {
        let world = generate(&config);
        println!("=== {profile_name} ===");
        println!(
            "{:<24} {:>8} {:>12} {:>7} {:>7}",
            "method", "blocks", "comparisons", "PC", "PQ"
        );
        for (name, method) in &methods {
            let blocks = method.run(&world.dataset, ErMode::CleanClean);
            let (pc, pq) = pair_quality(&world, &blocks);
            println!(
                "{:<24} {:>8} {:>12} {:>7.3} {:>7.3}",
                name,
                blocks.len(),
                blocks.total_comparisons(),
                pc,
                pq
            );
        }

        // Composite workflow: exact + fuzzy evidence, then purge + filter.
        let (blocks, report) = BlockingWorkflow::new(Method::TokenAndUri)
            .also(Method::MinHashLsh(LshConfig::default()))
            .with_purging()
            .with_filtering(0.8)
            .run(&world.dataset, ErMode::CleanClean);
        let (pc, pq) = pair_quality(&world, &blocks);
        println!(
            "{:<24} {:>8} {:>12} {:>7.3} {:>7.3}",
            "workflow(union+p+f)",
            blocks.len(),
            blocks.total_comparisons(),
            pc,
            pq
        );
        for (stage, nblocks, comparisons) in &report.stages {
            println!("    stage {stage:<22} blocks {nblocks:>8} comparisons {comparisons:>12}");
        }
        println!();
    }
}
