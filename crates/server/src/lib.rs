//! Query-time resolution service over the live incremental session.
//!
//! The batch pipeline answers "prune the whole corpus"; this crate turns
//! the incremental session into a *service*: a `std::net` TCP server
//! that answers `RESOLVE <entity>` requests — each one a single
//! neighbourhood sweep, bit-identical to the incident slice of a full
//! run — while `INGEST` batches keep arriving on the same corpus.
//! No async runtime: a [`TcpListener`](std::net::TcpListener) accept
//! loop hands connections to a scoped-thread worker pool, and all
//! synchronisation is `std::sync` (the vendored shims have no Condvar).
//!
//! * [`protocol`] — the length-prefixed binary wire format (`RESOLVE`,
//!   `INGEST`, `STATS`, `SHUTDOWN`; f64 weights travel as raw bits so
//!   bit-identity survives the wire).
//! * [`service`] — [`ResolveService`]: the shared state machine. One
//!   mutex owns the [`IncrementalSession`] and the
//!   [`NeighbourhoodCache`]; concurrent resolves go through *batched
//!   admission* (a leader drains the waiting queue, coalesces duplicate
//!   entities, and answers the whole batch at one corpus version).
//! * [`server`] — [`Server`]: listener + worker pool + clean shutdown.
//! * [`client`] — [`Client`]: a small blocking client used by the CLI,
//!   the bench harness and the consistency suites.
//!
//! The correctness contract is the session's: every answer equals what
//! [`IncrementalSession::resolve_entity`] returns at the answer's
//! stamped version, cache hit or miss, under any interleaving of
//! resolves and ingests (`tests/serve_consistency.rs`).
//!
//! [`IncrementalSession`]: minoan_metablocking::IncrementalSession
//! [`IncrementalSession::resolve_entity`]: minoan_metablocking::IncrementalSession::resolve_entity
//! [`NeighbourhoodCache`]: minoan_metablocking::NeighbourhoodCache

#![forbid(unsafe_code)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod service;

pub use client::Client;
pub use protocol::{IngestReply, Request, ResolveReply, Response, StatsReply};
pub use server::Server;
pub use service::{IngestError, ResolveService, ServiceStats};
