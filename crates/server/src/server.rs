//! The TCP front-end: an accept loop feeding a scoped-thread worker
//! pool, with a clean in-band shutdown.
//!
//! No async runtime: [`Server::run`] accepts on a plain
//! [`TcpListener`] and hands each connection to one of `workers`
//! scoped threads over an `mpsc` channel (the receiver shared behind a
//! mutex). Each worker speaks the [`crate::protocol`] frame
//! loop until the peer disconnects. `SHUTDOWN` answers `BYE`, raises
//! the stop flag, and nudges the accept loop awake with a throwaway
//! self-connection; dropping the channel sender then drains the pool,
//! and `run` returns once every in-flight connection has finished.

use crate::protocol::{self, Request, Response};
use crate::service::ResolveService;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};

/// A bound-but-not-yet-running resolution server. See the
/// [module docs](self).
pub struct Server<'d> {
    service: ResolveService<'d>,
    listener: TcpListener,
    workers: usize,
    stop: AtomicBool,
}

impl<'d> Server<'d> {
    /// Binds `addr` (use port 0 for an ephemeral port) with a pool of
    /// `workers` connection threads (clamped to ≥ 1).
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: ResolveService<'d>,
        workers: usize,
    ) -> io::Result<Self> {
        Ok(Self {
            service,
            listener: TcpListener::bind(addr)?,
            workers: workers.max(1),
            stop: AtomicBool::new(false),
        })
    }

    /// The bound address (the ephemeral port after `bind(":0")`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared service, e.g. to preload the corpus before `run`.
    pub fn service(&self) -> &ResolveService<'d> {
        &self.service
    }

    /// Stops the accept loop: raises the flag, then nudges `accept`
    /// with a throwaway connection so it observes the flag without
    /// needing a timeout.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Ok(addr) = self.listener.local_addr() {
            drop(TcpStream::connect(addr));
        }
    }

    /// Serves until [`Server::shutdown`] is called (usually via the
    /// `SHUTDOWN` request). Returns once the worker pool has drained.
    pub fn run(&self) -> io::Result<()> {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Mutex::new(rx);
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| loop {
                    // Hold the queue lock only for the dequeue itself.
                    let next = {
                        let queue = rx.lock().expect("connection queue mutex poisoned");
                        queue.recv()
                    };
                    match next {
                        Ok(stream) => self.handle(stream),
                        // Sender dropped: the accept loop is done.
                        Err(_) => break,
                    }
                });
            }
            for incoming in self.listener.incoming() {
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
                match incoming {
                    Ok(stream) => {
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    // Transient accept failure; keep serving.
                    Err(_) => continue,
                }
            }
            drop(tx);
        });
        Ok(())
    }

    /// One connection's frame loop. Service-level rejections (bad
    /// entity id, invalid ingest batch) answer `ERR` and keep the
    /// connection; protocol-level decode errors answer `ERR` and drop
    /// it (framing is no longer trustworthy).
    fn handle(&self, stream: TcpStream) {
        let mut reader = BufReader::new(&stream);
        let mut writer = BufWriter::new(&stream);
        loop {
            let request = match protocol::read_request(&mut reader) {
                Ok(Some(request)) => request,
                // Clean EOF between frames: the client hung up.
                Ok(None) => return,
                Err(_) => {
                    drop(protocol::write_response(
                        &mut writer,
                        &Response::Err("malformed request".into()),
                    ));
                    return;
                }
            };
            let response = match request {
                Request::Resolve(entity) => match self.service.resolve(entity) {
                    Ok(reply) => Response::Resolved(reply),
                    Err(msg) => Response::Err(msg.into()),
                },
                Request::Ingest(ids) => match self.service.ingest(&ids) {
                    Ok(reply) => Response::Ingested(reply),
                    Err(err) => Response::Err(err.message().into()),
                },
                Request::Stats => Response::Stats(self.service.stats()),
                Request::Shutdown => {
                    drop(protocol::write_response(&mut writer, &Response::Bye));
                    self.shutdown();
                    return;
                }
            };
            if protocol::write_response(&mut writer, &response).is_err() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use minoan_blocking::ErMode;
    use minoan_datagen::{generate, profiles};
    use minoan_metablocking::{IncrementalSession, Pruning, WeightingScheme};
    use minoan_rdf::EntityId;

    const SCHEME: WeightingScheme = WeightingScheme::Js;
    const PRUNING: Pruning = Pruning::Wnp { reciprocal: false };

    #[test]
    fn end_to_end_resolve_ingest_stats_shutdown() {
        let g = generate(&profiles::center_dense(60, 3));
        let service = ResolveService::new(&g.dataset, ErMode::CleanClean, SCHEME, PRUNING, 64);
        let server = Server::bind("127.0.0.1:0", service, 2).expect("bind ephemeral port");
        let addr = server.local_addr().expect("bound address");
        std::thread::scope(|s| {
            let running = s.spawn(|| server.run());
            let mut client = Client::connect(addr).expect("connect to server");
            let ids: Vec<u32> = (0..g.dataset.len() as u32).collect();

            let ingested = client.ingest(&ids[..30]).expect("valid batch");
            assert_eq!(ingested.version, 1);
            assert_eq!(ingested.arrived, 30);

            let reply = client.resolve(7).expect("in-range resolve");
            assert_eq!(reply.version, 1);
            let mut reference = IncrementalSession::new(&g.dataset, ErMode::CleanClean);
            reference.scheme(SCHEME).pruning(PRUNING);
            let batch: Vec<EntityId> = ids[..30].iter().map(|&e| EntityId(e)).collect();
            reference.ingest(&batch);
            let want = reference.resolve_entity(EntityId(7));
            assert_eq!(reply.weighted_pairs(), want.matches);

            // Same entity again: served from cache, identical answer.
            let again = client.resolve(7).expect("repeat resolve");
            assert_eq!(again, reply);

            let stats = client.stats().expect("stats");
            assert_eq!(stats.resolves, 2);
            assert_eq!(stats.cache_hits, 1);
            assert_eq!(stats.ingests, 1);
            assert_eq!(stats.num_arrived, 30);
            assert_eq!(stats.version, 1);

            client.shutdown().expect("clean shutdown");
            running
                .join()
                .expect("server thread exits")
                .expect("run returns ok");
        });
    }

    #[test]
    fn service_errors_keep_the_connection_usable() {
        let g = generate(&profiles::center_dense(30, 11));
        let service = ResolveService::new(&g.dataset, ErMode::CleanClean, SCHEME, PRUNING, 8);
        let server = Server::bind("127.0.0.1:0", service, 1).expect("bind ephemeral port");
        let addr = server.local_addr().expect("bound address");
        std::thread::scope(|s| {
            let running = s.spawn(|| server.run());
            let mut client = Client::connect(addr).expect("connect to server");
            let out_of_range = g.dataset.len() as u32;
            assert!(client.resolve(out_of_range).is_err());
            assert!(client.ingest(&[0, 0]).is_err());
            // The connection survived both rejections.
            let stats = client.stats().expect("stats after errors");
            assert_eq!(stats.ingests, 0);
            assert_eq!(stats.num_arrived, 0);
            client.shutdown().expect("clean shutdown");
            running
                .join()
                .expect("server thread exits")
                .expect("run returns ok");
        });
    }
}
