//! The wire format: length-prefixed binary frames.
//!
//! Every message is one frame: a little-endian `u32` payload length,
//! then the payload — one opcode byte followed by the body. All
//! integers are little-endian; f64 weights travel as their raw bit
//! pattern ([`f64::to_bits`]), so the bit-identity contract survives
//! serialisation exactly.
//!
//! | opcode | message | body |
//! |--------|---------|------|
//! | `0x01` | `RESOLVE`  | `u32` entity |
//! | `0x02` | `INGEST`   | `u32` count, count × `u32` entity |
//! | `0x03` | `STATS`    | — |
//! | `0x04` | `SHUTDOWN` | — |
//! | `0x81` | `RESOLVED` | `u64` version, `u32` entity, `u32` n, n × (`u32` a, `u32` b, `u64` weight bits) |
//! | `0x82` | `INGESTED` | `u64` version, `u32` arrived, `u32` swept, `u32` invalidated, `u8` delta |
//! | `0x83` | `STATS`    | 7 × `u64` (resolves, coalesced, cache hits, cache misses, ingests, arrived, version) |
//! | `0x84` | `BYE`      | — |
//! | `0xFF` | `ERR`      | UTF-8 message |
//!
//! Frames above [`MAX_FRAME`] bytes (and zero-length payloads) are
//! rejected as malformed before any allocation happens — a garbage
//! length prefix must not become a multi-gigabyte `Vec`.

use minoan_metablocking::WeightedPair;
use minoan_rdf::EntityId;
use std::io::{self, Read, Write};

/// Upper bound on one frame's payload (16 MiB). Generous: the largest
/// real payload is a `RESOLVED` body at 16 bytes per kept pair.
pub const MAX_FRAME: usize = 16 << 20;

const OP_RESOLVE: u8 = 0x01;
const OP_INGEST: u8 = 0x02;
const OP_STATS: u8 = 0x03;
const OP_SHUTDOWN: u8 = 0x04;
const OP_RESOLVED: u8 = 0x81;
const OP_INGESTED: u8 = 0x82;
const OP_STATS_REPLY: u8 = 0x83;
const OP_BYE: u8 = 0x84;
const OP_ERR: u8 = 0xFF;

/// A client → server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Resolve one entity at the current corpus version.
    Resolve(u32),
    /// Ingest a batch of not-yet-arrived entities.
    Ingest(Vec<u32>),
    /// Read the service counters.
    Stats,
    /// Stop the server (the connection gets a `BYE` first).
    Shutdown,
}

/// The answer to a [`Request::Resolve`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolveReply {
    /// Corpus version the answer was computed at (the admission point).
    pub version: u64,
    /// The queried entity.
    pub entity: u32,
    /// Kept pairs as `(a, b, weight bits)` in presentation order.
    pub pairs: Vec<(u32, u32, u64)>,
}

impl ResolveReply {
    /// The kept pairs decoded back into [`WeightedPair`]s — bit-exact,
    /// since weights travel as raw bits.
    pub fn weighted_pairs(&self) -> Vec<WeightedPair> {
        self.pairs
            .iter()
            .map(|&(a, b, bits)| WeightedPair {
                a: EntityId(a),
                b: EntityId(b),
                weight: f64::from_bits(bits),
            })
            .collect()
    }
}

/// The answer to a [`Request::Ingest`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestReply {
    /// Corpus version after the batch (one ingest = one bump).
    pub version: u64,
    /// Entities in the batch.
    pub arrived: u32,
    /// Entities the delta-sweep re-swept.
    pub swept: u32,
    /// Hot-neighbourhood cache entries this ingest dropped.
    pub invalidated: u32,
    /// Whether the delta path ran (vs. a full re-sweep fallback).
    pub delta: bool,
}

/// The answer to a [`Request::Stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// RESOLVE requests answered.
    pub resolves: u64,
    /// Resolves that piggybacked on another in-flight resolve of the
    /// same entity (batched admission).
    pub coalesced: u64,
    /// Resolves answered from the hot-neighbourhood cache.
    pub cache_hits: u64,
    /// Resolves that had to run a sweep.
    pub cache_misses: u64,
    /// INGEST batches applied.
    pub ingests: u64,
    /// Entities arrived so far.
    pub num_arrived: u64,
    /// Current corpus version.
    pub version: u64,
}

/// A server → client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to `RESOLVE`.
    Resolved(ResolveReply),
    /// Answer to `INGEST`.
    Ingested(IngestReply),
    /// Answer to `STATS`.
    Stats(StatsReply),
    /// Acknowledges `SHUTDOWN`; the server stops accepting.
    Bye,
    /// The request was rejected; the connection stays usable.
    Err(String),
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn bad(msg: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// A bounds-checked reader over one frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| bad("frame offset overflow"))?;
        if end > self.buf.len() {
            return Err(bad("frame body truncated"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    fn finish(self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad("trailing bytes after message body"))
        }
    }
}

fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(!payload.is_empty() && payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame payload; `Ok(None)` on a clean EOF *before* any
/// header byte (the peer closed between messages).
fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        let n = r.read(&mut header[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated frame header",
            ));
        }
        got += n;
    }
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(bad("frame length out of bounds"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Serialises one request as a frame.
pub fn write_request(w: &mut impl Write, req: &Request) -> io::Result<()> {
    let mut p = Vec::new();
    match req {
        Request::Resolve(e) => {
            p.push(OP_RESOLVE);
            put_u32(&mut p, *e);
        }
        Request::Ingest(ids) => {
            p.push(OP_INGEST);
            put_u32(&mut p, ids.len() as u32);
            for &e in ids {
                put_u32(&mut p, e);
            }
        }
        Request::Stats => p.push(OP_STATS),
        Request::Shutdown => p.push(OP_SHUTDOWN),
    }
    write_frame(w, &p)
}

/// Reads one request; `Ok(None)` when the peer closed cleanly.
pub fn read_request(r: &mut impl Read) -> io::Result<Option<Request>> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    let mut c = Cursor::new(&payload);
    let req = match c.u8()? {
        OP_RESOLVE => Request::Resolve(c.u32()?),
        OP_INGEST => {
            let n = c.u32()? as usize;
            if n > MAX_FRAME / 4 {
                return Err(bad("ingest batch count out of bounds"));
            }
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(c.u32()?);
            }
            Request::Ingest(ids)
        }
        OP_STATS => Request::Stats,
        OP_SHUTDOWN => Request::Shutdown,
        _ => return Err(bad("unknown request opcode")),
    };
    c.finish()?;
    Ok(Some(req))
}

/// Serialises one response as a frame.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    let mut p = Vec::new();
    match resp {
        Response::Resolved(m) => {
            p.push(OP_RESOLVED);
            put_u64(&mut p, m.version);
            put_u32(&mut p, m.entity);
            put_u32(&mut p, m.pairs.len() as u32);
            for &(a, b, bits) in &m.pairs {
                put_u32(&mut p, a);
                put_u32(&mut p, b);
                put_u64(&mut p, bits);
            }
        }
        Response::Ingested(m) => {
            p.push(OP_INGESTED);
            put_u64(&mut p, m.version);
            put_u32(&mut p, m.arrived);
            put_u32(&mut p, m.swept);
            put_u32(&mut p, m.invalidated);
            p.push(m.delta as u8);
        }
        Response::Stats(m) => {
            p.push(OP_STATS_REPLY);
            for v in [
                m.resolves,
                m.coalesced,
                m.cache_hits,
                m.cache_misses,
                m.ingests,
                m.num_arrived,
                m.version,
            ] {
                put_u64(&mut p, v);
            }
        }
        Response::Bye => p.push(OP_BYE),
        Response::Err(msg) => {
            p.push(OP_ERR);
            p.extend_from_slice(msg.as_bytes());
        }
    }
    write_frame(w, &p)
}

/// Reads one response; the peer closing mid-conversation is an error
/// (a client always expects an answer to its request).
pub fn read_response(r: &mut impl Read) -> io::Result<Response> {
    let payload = read_frame(r)?.ok_or_else(|| {
        io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
    })?;
    let mut c = Cursor::new(&payload);
    let resp = match c.u8()? {
        OP_RESOLVED => {
            let version = c.u64()?;
            let entity = c.u32()?;
            let n = c.u32()? as usize;
            if n > MAX_FRAME / 16 {
                return Err(bad("resolved pair count out of bounds"));
            }
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let a = c.u32()?;
                let b = c.u32()?;
                let bits = c.u64()?;
                pairs.push((a, b, bits));
            }
            Response::Resolved(ResolveReply {
                version,
                entity,
                pairs,
            })
        }
        OP_INGESTED => Response::Ingested(IngestReply {
            version: c.u64()?,
            arrived: c.u32()?,
            swept: c.u32()?,
            invalidated: c.u32()?,
            delta: c.u8()? != 0,
        }),
        OP_STATS_REPLY => Response::Stats(StatsReply {
            resolves: c.u64()?,
            coalesced: c.u64()?,
            cache_hits: c.u64()?,
            cache_misses: c.u64()?,
            ingests: c.u64()?,
            num_arrived: c.u64()?,
            version: c.u64()?,
        }),
        OP_BYE => Response::Bye,
        OP_ERR => {
            let msg = String::from_utf8(c.rest().to_vec())
                .map_err(|_| bad("error message is not UTF-8"))?;
            Response::Err(msg)
        }
        _ => return Err(bad("unknown response opcode")),
    };
    c.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut wire = Vec::new();
        write_request(&mut wire, &req).expect("write");
        let got = read_request(&mut wire.as_slice()).expect("read");
        assert_eq!(got, Some(req));
    }

    fn roundtrip_response(resp: Response) {
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).expect("write");
        let got = read_response(&mut wire.as_slice()).expect("read");
        assert_eq!(got, resp);
    }

    #[test]
    fn requests_round_trip() {
        roundtrip_request(Request::Resolve(42));
        roundtrip_request(Request::Ingest(vec![]));
        roundtrip_request(Request::Ingest(vec![7, 1, 9]));
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        roundtrip_response(Response::Resolved(ResolveReply {
            version: 3,
            entity: 5,
            pairs: vec![(1, 5, 0.25f64.to_bits()), (5, 9, f64::MAX.to_bits())],
        }));
        roundtrip_response(Response::Ingested(IngestReply {
            version: 9,
            arrived: 16,
            swept: 4,
            invalidated: 2,
            delta: true,
        }));
        roundtrip_response(Response::Stats(StatsReply {
            resolves: 1,
            coalesced: 2,
            cache_hits: 3,
            cache_misses: 4,
            ingests: 5,
            num_arrived: 6,
            version: 7,
        }));
        roundtrip_response(Response::Bye);
        roundtrip_response(Response::Err("entity id out of range".to_string()));
    }

    #[test]
    fn weight_bits_survive_the_wire() {
        let w = 0.1f64 + 0.2f64; // a value with an awkward mantissa
        let reply = ResolveReply {
            version: 1,
            entity: 0,
            pairs: vec![(0, 1, w.to_bits())],
        };
        let decoded = reply.weighted_pairs();
        assert_eq!(decoded[0].weight.to_bits(), w.to_bits());
    }

    #[test]
    fn eof_between_messages_is_clean() {
        let empty: &[u8] = &[];
        assert_eq!(read_request(&mut &*empty).expect("clean EOF"), None);
    }

    #[test]
    fn malformed_frames_are_rejected() {
        // Zero-length payload.
        let wire = 0u32.to_le_bytes().to_vec();
        assert!(read_request(&mut wire.as_slice()).is_err());
        // Oversized length prefix must be rejected before allocation.
        let wire = (u32::MAX).to_le_bytes().to_vec();
        assert!(read_request(&mut wire.as_slice()).is_err());
        // Truncated header.
        let wire = [1u8, 0];
        assert!(read_request(&mut wire.as_slice()).is_err());
        // Unknown opcode.
        let mut wire = 1u32.to_le_bytes().to_vec();
        wire.push(0x7E);
        assert!(read_request(&mut wire.as_slice()).is_err());
        // Trailing bytes after the body.
        let mut wire = 6u32.to_le_bytes().to_vec();
        wire.push(OP_STATS);
        wire.extend_from_slice(&[0; 5]);
        assert!(read_request(&mut wire.as_slice()).is_err());
    }
}
