//! The shared resolution state machine: one incremental session + one
//! hot-neighbourhood cache behind a mutex, with **batched admission**
//! for concurrent resolves.
//!
//! Every connection worker calls into one [`ResolveService`]. Resolves
//! do not each take the session lock: a requester enqueues its entity
//! on the admission queue and the first enqueuer becomes the *leader* —
//! it drains the queue, takes the session lock once, and answers the
//! whole batch at a single corpus version (the **admission point**:
//! the version read under the session lock stamps every answer).
//! Requests for an entity already pending piggyback on the in-flight
//! slot and are counted as *coalesced* — under a Zipf query mix the hot
//! entities are resolved once per batch, not once per request.
//!
//! Ingests validate the whole batch *before* mutating anything, so a
//! rejected batch leaves the corpus untouched. After a successful
//! ingest the cache is invalidated through the session's dirty-entity
//! report when [`locally_invalidatable`] holds for the configured
//! scheme × pruning, and fully cleared otherwise (global criteria can
//! re-decide edges between clean entities with no dirty-set trace).

use crate::protocol::{IngestReply, ResolveReply, StatsReply};
use minoan_blocking::ErMode;
use minoan_metablocking::{
    locally_invalidatable, IncrementalSession, NeighbourhoodCache, Pruning, ResolvedEntity,
    WeightingScheme,
};
use minoan_rdf::{Dataset, EntityId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Why an `INGEST` batch was rejected. Validation runs before any
/// mutation, so a rejected batch has no effect at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// An id is outside the dataset's entity space.
    OutOfRange,
    /// An entity was already ingested earlier.
    AlreadyArrived,
    /// The batch names the same entity twice.
    Duplicate,
}

impl IngestError {
    /// The wire-level error message.
    pub fn message(self) -> &'static str {
        match self {
            IngestError::OutOfRange => "ingest: entity id out of range",
            IngestError::AlreadyArrived => "ingest: entity already ingested",
            IngestError::Duplicate => "ingest: duplicate entity in batch",
        }
    }
}

/// Snapshot of the service-side request counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// RESOLVE requests answered.
    pub resolves: u64,
    /// Resolves that piggybacked on an in-flight resolve of the same
    /// entity.
    pub coalesced: u64,
    /// Resolves answered from the hot-neighbourhood cache.
    pub cache_hits: u64,
    /// Resolves that ran a sweep.
    pub cache_misses: u64,
    /// INGEST batches applied.
    pub ingests: u64,
}

/// The session + cache owned state (one lock).
struct Inner<'d> {
    session: IncrementalSession<'d>,
    cache: NeighbourhoodCache,
}

/// One in-flight resolve: followers sleep on `cv` until the leader
/// fills `done`.
struct Slot {
    done: Mutex<Option<ResolveReply>>,
    cv: Condvar,
}

struct Pending {
    entity: u32,
    slot: Arc<Slot>,
}

/// The admission queue. `leader_active` is cleared only while the queue
/// is observed empty under this lock, so every enqueuer either becomes
/// the leader or is guaranteed an active leader will drain it.
struct Admission {
    pending: Vec<Pending>,
    leader_active: bool,
}

/// The shared resolution service one [`Server`](crate::Server) (or an
/// in-process harness) drives. See the [module docs](self).
pub struct ResolveService<'d> {
    inner: Mutex<Inner<'d>>,
    admission: Mutex<Admission>,
    local_invalidation: bool,
    num_entities: usize,
    resolves: AtomicU64,
    coalesced: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    ingests: AtomicU64,
}

fn reply_of(version: u64, resolved: &ResolvedEntity) -> ResolveReply {
    ResolveReply {
        version,
        entity: resolved.entity.0,
        pairs: resolved
            .matches
            .iter()
            .map(|p| (p.a.0, p.b.0, p.weight.to_bits()))
            .collect(),
    }
}

impl<'d> ResolveService<'d> {
    /// A service over `dataset` with an empty corpus. `cache_capacity`
    /// is the hot-neighbourhood cache size in entries (0 disables it —
    /// every resolve sweeps).
    pub fn new(
        dataset: &'d Dataset,
        mode: ErMode,
        scheme: WeightingScheme,
        pruning: Pruning,
        cache_capacity: usize,
    ) -> Self {
        let mut session = IncrementalSession::new(dataset, mode);
        session.scheme(scheme).pruning(pruning);
        Self {
            inner: Mutex::new(Inner {
                session,
                cache: NeighbourhoodCache::new(cache_capacity),
            }),
            admission: Mutex::new(Admission {
                pending: Vec::new(),
                leader_active: false,
            }),
            local_invalidation: locally_invalidatable(scheme, pruning),
            num_entities: dataset.len(),
            resolves: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            ingests: AtomicU64::new(0),
        }
    }

    /// Pins the session's sweep worker count (results never depend on
    /// it).
    pub fn sweep_workers(&self, workers: usize) {
        let mut inner = self.inner.lock().expect("service mutex poisoned");
        inner.session.workers(workers);
    }

    /// Entities in the dataset's id space.
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// Whether ingests invalidate cached entries via dirty sets (vs.
    /// clearing the whole cache).
    pub fn uses_local_invalidation(&self) -> bool {
        self.local_invalidation
    }

    /// Resolves one entity through batched admission. The answer is
    /// stamped with the corpus version it was computed at; concurrent
    /// requests for the same entity share one computation.
    pub fn resolve(&self, entity: u32) -> Result<ResolveReply, &'static str> {
        if (entity as usize) >= self.num_entities {
            return Err("resolve: entity id out of range");
        }
        self.resolves.fetch_add(1, Ordering::Relaxed);
        let (slot, lead) = {
            let mut adm = self.admission.lock().expect("admission mutex poisoned");
            if let Some(p) = adm.pending.iter().find(|p| p.entity == entity) {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                (Arc::clone(&p.slot), false)
            } else {
                let slot = Arc::new(Slot {
                    done: Mutex::new(None),
                    cv: Condvar::new(),
                });
                adm.pending.push(Pending {
                    entity,
                    slot: Arc::clone(&slot),
                });
                let lead = !adm.leader_active;
                if lead {
                    adm.leader_active = true;
                }
                (slot, lead)
            }
        };
        if lead {
            self.drain();
        }
        let mut done = slot.done.lock().expect("slot mutex poisoned");
        while done.is_none() {
            done = slot.cv.wait(done).expect("slot mutex poisoned");
        }
        Ok(done.as_ref().expect("slot filled before wake").clone())
    }

    /// Leader body: repeatedly drain the admission queue and answer each
    /// batch under one session lock, until the queue is observed empty.
    fn drain(&self) {
        loop {
            let batch = {
                let mut adm = self.admission.lock().expect("admission mutex poisoned");
                if adm.pending.is_empty() {
                    adm.leader_active = false;
                    return;
                }
                std::mem::take(&mut adm.pending)
            };
            let mut guard = self.inner.lock().expect("service mutex poisoned");
            let inner = &mut *guard;
            // The admission point: one version stamps the whole batch
            // (ingests also take this lock, so it cannot move mid-batch).
            let version = inner.session.version();
            for p in &batch {
                let reply = match inner.cache.get(EntityId(p.entity)) {
                    Some(hit) => {
                        self.cache_hits.fetch_add(1, Ordering::Relaxed);
                        reply_of(version, hit)
                    }
                    None => {
                        self.cache_misses.fetch_add(1, Ordering::Relaxed);
                        let resolved = inner.session.resolve_entity(EntityId(p.entity));
                        let reply = reply_of(version, &resolved);
                        inner.cache.insert(resolved);
                        reply
                    }
                };
                let mut done = p.slot.done.lock().expect("slot mutex poisoned");
                *done = Some(reply);
                p.slot.cv.notify_all();
            }
        }
    }

    /// Ingests a batch. The whole batch is validated first; on success
    /// the corpus version bumps by one and cached answers that the
    /// batch could have changed are dropped.
    pub fn ingest(&self, ids: &[u32]) -> Result<IngestReply, IngestError> {
        let mut guard = self.inner.lock().expect("service mutex poisoned");
        let inner = &mut *guard;
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(IngestError::Duplicate);
        }
        for &e in ids {
            if (e as usize) >= self.num_entities {
                return Err(IngestError::OutOfRange);
            }
            if inner.session.has_arrived(EntityId(e)) {
                return Err(IngestError::AlreadyArrived);
            }
        }
        let batch: Vec<EntityId> = ids.iter().map(|&e| EntityId(e)).collect();
        let report = inner.session.ingest(&batch);
        let invalidated = if self.local_invalidation {
            inner.cache.invalidate(inner.session.last_dirty())
        } else {
            let n = inner.cache.len();
            inner.cache.clear();
            n
        };
        self.ingests.fetch_add(1, Ordering::Relaxed);
        Ok(IngestReply {
            version: inner.session.version(),
            arrived: report.arrived as u32,
            swept: report.swept_entities as u32,
            invalidated: invalidated as u32,
            delta: report.delta,
        })
    }

    /// The service-side counters.
    pub fn service_stats(&self) -> ServiceStats {
        ServiceStats {
            resolves: self.resolves.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            ingests: self.ingests.load(Ordering::Relaxed),
        }
    }

    /// The full STATS answer (counters + corpus state).
    pub fn stats(&self) -> StatsReply {
        let inner = self.inner.lock().expect("service mutex poisoned");
        let s = self.service_stats();
        StatsReply {
            resolves: s.resolves,
            coalesced: s.coalesced,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
            ingests: s.ingests,
            num_arrived: inner.session.num_arrived() as u64,
            version: inner.session.version(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_datagen::{generate, profiles};

    const SCHEME: WeightingScheme = WeightingScheme::Js;
    const PRUNING: Pruning = Pruning::Wnp { reciprocal: false };

    #[test]
    fn resolve_matches_a_reference_session_at_the_stamped_version() {
        let g = generate(&profiles::center_dense(60, 3));
        let svc = ResolveService::new(&g.dataset, ErMode::CleanClean, SCHEME, PRUNING, 32);
        let ids: Vec<u32> = (0..g.dataset.len() as u32).collect();
        svc.ingest(&ids[..40]).expect("valid batch");
        let reply = svc.resolve(5).expect("in range");
        assert_eq!(reply.version, 1);

        let mut reference = IncrementalSession::new(&g.dataset, ErMode::CleanClean);
        reference.scheme(SCHEME).pruning(PRUNING);
        let batch: Vec<EntityId> = ids[..40].iter().map(|&e| EntityId(e)).collect();
        reference.ingest(&batch);
        let want = reference.resolve_entity(EntityId(5));
        assert_eq!(reply.weighted_pairs(), want.matches);

        // A repeat is a cache hit with the identical answer.
        let again = svc.resolve(5).expect("in range");
        assert_eq!(again, reply);
        let stats = svc.service_stats();
        assert_eq!(stats.resolves, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
    }

    #[test]
    fn ingest_validation_rejects_without_mutating() {
        let g = generate(&profiles::center_dense(40, 5));
        let svc = ResolveService::new(&g.dataset, ErMode::CleanClean, SCHEME, PRUNING, 8);
        let n = g.dataset.len() as u32;
        assert_eq!(svc.ingest(&[0, 1, 1]), Err(IngestError::Duplicate));
        assert_eq!(svc.ingest(&[0, n]), Err(IngestError::OutOfRange));
        svc.ingest(&[0, 1]).expect("valid batch");
        assert_eq!(svc.ingest(&[1, 2]), Err(IngestError::AlreadyArrived));
        // Only the valid batch counted or mutated anything.
        let stats = svc.stats();
        assert_eq!(stats.ingests, 1);
        assert_eq!(stats.num_arrived, 2);
        assert_eq!(stats.version, 1);
    }

    #[test]
    fn out_of_range_resolve_is_rejected() {
        let g = generate(&profiles::center_dense(30, 7));
        let svc = ResolveService::new(&g.dataset, ErMode::CleanClean, SCHEME, PRUNING, 8);
        assert!(svc.resolve(g.dataset.len() as u32).is_err());
    }

    #[test]
    fn concurrent_resolves_of_one_entity_agree_and_may_coalesce() {
        let g = generate(&profiles::center_dense(80, 9));
        let svc = ResolveService::new(&g.dataset, ErMode::CleanClean, SCHEME, PRUNING, 0);
        let ids: Vec<u32> = (0..g.dataset.len() as u32).collect();
        svc.ingest(&ids).expect("valid batch");
        let first = svc.resolve(3).expect("in range");
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| svc.resolve(3).expect("in range")))
                .collect();
            for h in handles {
                assert_eq!(h.join().expect("no panic"), first);
            }
        });
        let stats = svc.service_stats();
        assert_eq!(stats.resolves, 9);
        // Capacity 0: every non-coalesced resolve swept.
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(
            stats.cache_misses + stats.coalesced,
            stats.resolves,
            "every resolve either swept or piggybacked"
        );
    }
}
