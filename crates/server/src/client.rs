//! A small blocking client for the resolution server, used by the CLI
//! (`minoan query`), the bench harness, and the consistency suites.

use crate::protocol::{self, IngestReply, Request, ResolveReply, Response, StatsReply};
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to a resolution server. Requests are answered in
/// order on the same connection; server-side `ERR` replies surface as
/// [`io::ErrorKind::InvalidInput`] errors carrying the server's
/// message, and the connection stays usable afterwards.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

fn unexpected() -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        "unexpected response type from server",
    )
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    fn call(&mut self, request: &Request) -> io::Result<Response> {
        protocol::write_request(&mut self.writer, request)?;
        protocol::read_response(&mut self.reader)
    }

    fn rejected(message: String) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidInput, message)
    }

    /// `RESOLVE entity`: the entity's match list at the answer's
    /// stamped corpus version.
    pub fn resolve(&mut self, entity: u32) -> io::Result<ResolveReply> {
        match self.call(&Request::Resolve(entity))? {
            Response::Resolved(reply) => Ok(reply),
            Response::Err(message) => Err(Self::rejected(message)),
            _ => Err(unexpected()),
        }
    }

    /// `INGEST ids`: admits a batch of newly-arrived entities.
    pub fn ingest(&mut self, ids: &[u32]) -> io::Result<IngestReply> {
        match self.call(&Request::Ingest(ids.to_vec()))? {
            Response::Ingested(reply) => Ok(reply),
            Response::Err(message) => Err(Self::rejected(message)),
            _ => Err(unexpected()),
        }
    }

    /// `STATS`: service counters plus corpus state.
    pub fn stats(&mut self) -> io::Result<StatsReply> {
        match self.call(&Request::Stats)? {
            Response::Stats(reply) => Ok(reply),
            Response::Err(message) => Err(Self::rejected(message)),
            _ => Err(unexpected()),
        }
    }

    /// `SHUTDOWN`: asks the server to stop accepting and drain. Returns
    /// once the server has acknowledged with `BYE`.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            Response::Err(message) => Err(Self::rejected(message)),
            _ => Err(unexpected()),
        }
    }
}
