//! Permutation indexes over encoded triples.
//!
//! The store keeps three sorted copies of the triple array — SPO, POS and
//! OSP — so that any triple pattern with at least one bound position can be
//! answered by a binary-search range scan on the index whose sort order
//! starts with the bound positions. This is the classic RDF-3X / Hexastore
//! layout restricted to the three permutations the ER workloads need
//! (`(s ? ?)` for description assembly, `(? p ?)`/`(? p o)` for attribute
//! scans, `(? ? o)` for inbound-link discovery).

use crate::dict::TermId;
use crate::triple::EncodedTriple;

/// Which permutation an [`SortedIndex`] is ordered by.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Order {
    /// Subject, predicate, object.
    Spo,
    /// Predicate, object, subject.
    Pos,
    /// Object, subject, predicate.
    Osp,
}

impl Order {
    /// Projects a triple into this order's key space.
    #[inline]
    pub fn key(self, t: &EncodedTriple) -> (TermId, TermId, TermId) {
        match self {
            Order::Spo => (t.s, t.p, t.o),
            Order::Pos => t.pos_key(),
            Order::Osp => t.osp_key(),
        }
    }
}

/// One sorted permutation of the triple set.
pub struct SortedIndex {
    order: Order,
    triples: Box<[EncodedTriple]>,
}

impl SortedIndex {
    /// Builds the index by sorting (and deduplicating) a copy of `triples`.
    pub fn build(order: Order, triples: &[EncodedTriple]) -> Self {
        let mut v = triples.to_vec();
        v.sort_unstable_by_key(|t| order.key(t));
        v.dedup();
        Self {
            order,
            triples: v.into_boxed_slice(),
        }
    }

    /// The index's sort order.
    pub fn order(&self) -> Order {
        self.order
    }

    /// Number of (distinct) triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// All triples in index order.
    pub fn triples(&self) -> &[EncodedTriple] {
        &self.triples
    }

    /// Range of triples whose first key component equals `k1`.
    pub fn scan1(&self, k1: TermId) -> &[EncodedTriple] {
        let lo = self.triples.partition_point(|t| self.order.key(t).0 < k1);
        let hi = self.triples.partition_point(|t| self.order.key(t).0 <= k1);
        &self.triples[lo..hi]
    }

    /// Range of triples whose first two key components equal `(k1, k2)`.
    pub fn scan2(&self, k1: TermId, k2: TermId) -> &[EncodedTriple] {
        let lo = self.triples.partition_point(|t| {
            let k = self.order.key(t);
            (k.0, k.1) < (k1, k2)
        });
        let hi = self.triples.partition_point(|t| {
            let k = self.order.key(t);
            (k.0, k.1) <= (k1, k2)
        });
        &self.triples[lo..hi]
    }

    /// Whether the fully-bound triple exists.
    pub fn contains(&self, t: &EncodedTriple) -> bool {
        let key = self.order.key(t);
        self.triples
            .binary_search_by_key(&key, |x| self.order.key(x))
            .is_ok()
    }

    /// Distinct values of the first key component, with their run lengths
    /// (used by the statistics module: predicates for POS, subjects for
    /// SPO, objects for OSP).
    pub fn first_component_runs(&self) -> Vec<(TermId, usize)> {
        let mut out: Vec<(TermId, usize)> = Vec::new();
        for t in self.triples.iter() {
            let k = self.order.key(t).0;
            match out.last_mut() {
                Some((last, n)) if *last == k => *n += 1,
                _ => out.push((k, 1)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> EncodedTriple {
        EncodedTriple::new(TermId(s), TermId(p), TermId(o))
    }

    fn sample() -> Vec<EncodedTriple> {
        vec![
            t(0, 1, 2),
            t(0, 1, 3),
            t(0, 2, 2),
            t(1, 1, 2),
            t(2, 3, 0),
            t(0, 1, 2),
        ]
    }

    #[test]
    fn build_sorts_and_dedups() {
        let idx = SortedIndex::build(Order::Spo, &sample());
        assert_eq!(idx.len(), 5, "duplicate (0,1,2) removed");
        let keys: Vec<_> = idx.triples().iter().map(|x| Order::Spo.key(x)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn scan1_spo_returns_subject_range() {
        let idx = SortedIndex::build(Order::Spo, &sample());
        assert_eq!(idx.scan1(TermId(0)).len(), 3);
        assert_eq!(idx.scan1(TermId(1)).len(), 1);
        assert_eq!(idx.scan1(TermId(7)).len(), 0);
    }

    #[test]
    fn scan2_pos_returns_predicate_object_range() {
        let idx = SortedIndex::build(Order::Pos, &sample());
        // predicate 1, object 2 → subjects {0, 1}.
        let hits = idx.scan2(TermId(1), TermId(2));
        let mut subjects: Vec<u32> = hits.iter().map(|x| x.s.0).collect();
        subjects.sort_unstable();
        assert_eq!(subjects, vec![0, 1]);
    }

    #[test]
    fn scan1_osp_finds_inbound_links() {
        let idx = SortedIndex::build(Order::Osp, &sample());
        // object 2 is referenced by subjects 0 (twice) and 1.
        assert_eq!(idx.scan1(TermId(2)).len(), 3);
        // object 0 referenced once (by subject 2).
        assert_eq!(idx.scan1(TermId(0)).len(), 1);
    }

    #[test]
    fn contains_fully_bound() {
        let idx = SortedIndex::build(Order::Pos, &sample());
        assert!(idx.contains(&t(0, 1, 2)));
        assert!(!idx.contains(&t(9, 9, 9)));
    }

    #[test]
    fn first_component_runs_count_correctly() {
        let idx = SortedIndex::build(Order::Spo, &sample());
        let runs = idx.first_component_runs();
        assert_eq!(runs, vec![(TermId(0), 3), (TermId(1), 1), (TermId(2), 1)]);
    }

    #[test]
    fn empty_index_behaviour() {
        let idx = SortedIndex::build(Order::Spo, &[]);
        assert!(idx.is_empty());
        assert!(idx.scan1(TermId(0)).is_empty());
        assert!(idx.first_component_runs().is_empty());
    }
}
