//! Single-file snapshot format for a [`FrozenStore`].
//!
//! Layout (all integers LEB128 unless noted):
//!
//! ```text
//! magic        8 bytes  "MNSTORE1"
//! dict_count   varint
//! dict entry   kind byte, length-prefixed text          × dict_count
//! graph_count  varint
//! graph entry  length-prefixed name, inserted varint,
//!              encoded triple page (encode.rs)          × graph_count
//! checksum     8 bytes  FNV-64 of everything above (little-endian)
//! ```
//!
//! The dictionary is written in id order so every [`crate::TermId`] survives the
//! round trip unchanged; indexes are rebuilt on load (they are derived
//! state, and rebuilding keeps the format minimal and corruption-evident).

use crate::dict::{Dict, TermKind};
use crate::encode::{self, DecodeError};
use crate::store::{FrozenStore, GraphId, GraphInfo};
use crate::triple::EncodedTriple;
use bytes::{Buf, BufMut, BytesMut};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"MNSTORE1";

/// Errors surfaced while reading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// The magic header does not match.
    BadMagic,
    /// The FNV-64 footer does not match the content.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed from the content.
        computed: u64,
    },
    /// A structural decode failure.
    Decode(DecodeError),
    /// An invalid term-kind tag byte.
    BadTermKind(u8),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a MNSTORE1 snapshot"),
            SnapshotError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "snapshot checksum mismatch: stored {stored:#x}, computed {computed:#x}"
                )
            }
            SnapshotError::Decode(e) => write!(f, "snapshot decode error: {e}"),
            SnapshotError::BadTermKind(t) => write!(f, "invalid term kind tag {t}"),
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<DecodeError> for SnapshotError {
    fn from(e: DecodeError) -> Self {
        SnapshotError::Decode(e)
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl FrozenStore {
    /// Serialises the store into a self-contained byte buffer.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        encode::put_varint(&mut buf, self.dict().len() as u64);
        for (_, kind, text) in self.dict().iter() {
            buf.put_u8(kind as u8);
            encode::put_str(&mut buf, text);
        }
        encode::put_varint(&mut buf, self.graphs().len() as u64);
        for (gi, info) in self.graphs().iter().enumerate() {
            encode::put_str(&mut buf, &info.name);
            encode::put_varint(&mut buf, info.inserted);
            let page = encode::encode_page(self.graph_triples(GraphId(gi as u16)));
            buf.put_slice(&page);
        }
        let checksum = encode::fnv64(&buf);
        buf.put_u64_le(checksum);
        buf.to_vec()
    }

    /// Deserialises a snapshot produced by [`FrozenStore::to_snapshot`].
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err(SnapshotError::BadMagic);
        }
        let (content, footer) = bytes.split_at(bytes.len() - 8);
        if &content[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let stored = u64::from_le_bytes(footer.try_into().expect("8-byte footer"));
        let computed = encode::fnv64(content);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        let mut buf = &content[MAGIC.len()..];
        let dict_count = encode::get_varint(&mut buf)? as usize;
        let mut entries = Vec::with_capacity(dict_count.min(1 << 20));
        for _ in 0..dict_count {
            if !buf.has_remaining() {
                return Err(SnapshotError::Decode(DecodeError::UnexpectedEof));
            }
            let tag = buf.get_u8();
            let kind = TermKind::from_tag(tag).ok_or(SnapshotError::BadTermKind(tag))?;
            let text = encode::get_str(&mut buf)?;
            entries.push((kind, text));
        }
        let dict = Dict::from_entries(entries);
        let graph_count = encode::get_varint(&mut buf)? as usize;
        let mut graphs = Vec::with_capacity(graph_count.min(1 << 16));
        let mut graph_triples: Vec<Box<[EncodedTriple]>> =
            Vec::with_capacity(graph_count.min(1 << 16));
        for _ in 0..graph_count {
            let name = encode::get_str(&mut buf)?;
            let inserted = encode::get_varint(&mut buf)?;
            let triples = encode::decode_page(&mut buf)?;
            graphs.push(GraphInfo {
                name: name.into(),
                inserted,
            });
            graph_triples.push(triples.into_boxed_slice());
        }
        Ok(FrozenStore::from_parts(dict, graphs, graph_triples))
    }

    /// Writes the snapshot to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let bytes = self.to_snapshot();
        let mut f = std::fs::File::create(path)?;
        f.write_all(&bytes)?;
        Ok(())
    }

    /// Loads a snapshot from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_snapshot(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TripleStore;
    use crate::triple::Term;

    fn sample() -> FrozenStore {
        let mut s = TripleStore::new();
        let g0 = s.create_graph("dbpedia");
        let g1 = s.create_graph("yago");
        for i in 0..50u32 {
            s.insert(
                g0,
                Term::iri(format!("http://db/e{i}")),
                Term::iri("http://p/label"),
                Term::literal(format!("entity number {i}")),
            );
            s.insert(
                g0,
                Term::iri(format!("http://db/e{i}")),
                Term::iri("http://p/next"),
                Term::iri(format!("http://db/e{}", (i + 1) % 50)),
            );
        }
        s.insert(
            g1,
            Term::blank("n0"),
            Term::iri("http://p/x"),
            Term::literal("v"),
        );
        s.freeze()
    }

    #[test]
    fn snapshot_round_trip() {
        let f = sample();
        let bytes = f.to_snapshot();
        let g = FrozenStore::from_snapshot(&bytes).unwrap();
        assert_eq!(g.len(), f.len());
        assert_eq!(g.graphs().len(), 2);
        assert_eq!(g.graphs()[0].name, f.graphs()[0].name);
        assert_eq!(g.graphs()[0].inserted, 100);
        // Term ids are preserved exactly.
        for (id, kind, text) in f.dict().iter() {
            assert_eq!(g.dict().kind(id), kind);
            assert_eq!(g.dict().text(id), text);
        }
        // Pattern answers identical.
        let p = f
            .dict()
            .encode_lookup(&Term::iri("http://p/label"))
            .unwrap();
        assert_eq!(
            f.match_pattern(None, Some(p), None).count(),
            g.match_pattern(None, Some(p), None).count()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_snapshot();
        bytes[0] = b'X';
        assert!(matches!(
            FrozenStore::from_snapshot(&bytes),
            Err(SnapshotError::BadMagic) | Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let mut bytes = sample().to_snapshot();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(matches!(
            FrozenStore::from_snapshot(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let bytes = sample().to_snapshot();
        assert!(FrozenStore::from_snapshot(&bytes[..10]).is_err());
        assert!(FrozenStore::from_snapshot(&[]).is_err());
    }

    #[test]
    fn empty_store_round_trips() {
        let f = TripleStore::new().freeze();
        let bytes = f.to_snapshot();
        let g = FrozenStore::from_snapshot(&bytes).unwrap();
        assert!(g.is_empty());
        assert!(g.graphs().is_empty());
    }

    #[test]
    fn file_round_trip() {
        let f = sample();
        let dir = std::env::temp_dir().join("minoan_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.mnstore");
        f.save(&path).unwrap();
        let g = FrozenStore::load(&path).unwrap();
        assert_eq!(g.len(), f.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dataset_bridge_survives_round_trip() {
        let f = sample();
        let g = FrozenStore::from_snapshot(&f.to_snapshot()).unwrap();
        let ds = g.to_dataset();
        assert_eq!(ds.kb_count(), 2);
        assert_eq!(ds.len(), 51);
        let e0 = ds.entity_by_uri("http://db/e0").unwrap();
        assert!(!ds.neighbors(e0).is_empty());
    }
}
