//! Varint + delta encoding of sorted triple arrays — the snapshot page
//! format.
//!
//! Sorted id-triples compress well under delta coding: the first component
//! is non-decreasing, so its gaps are small non-negative integers, and the
//! remaining components are raw varints. This is the same layout idea as
//! HDT's triple bitmaps, simplified to a byte-aligned varint stream so the
//! decoder stays branch-light and auditable.
//!
//! All multi-byte integers use LEB128 (unsigned, little-endian base-128).

use crate::dict::TermId;
use crate::triple::EncodedTriple;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Errors surfaced while decoding a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended inside a varint or before the promised count.
    UnexpectedEof,
    /// A varint exceeded the 32-bit range the id space allows.
    VarintOverflow,
    /// The first-component delta stream went backwards (corrupt page).
    NotSorted,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of encoded page"),
            DecodeError::VarintOverflow => write!(f, "varint exceeds u32 range"),
            DecodeError::NotSorted => write!(f, "page triples are not sorted"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Appends `v` as LEB128.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads one LEB128 varint, bounded to `u64`.
pub fn get_varint(buf: &mut impl Buf) -> Result<u64, DecodeError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(DecodeError::UnexpectedEof);
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(DecodeError::VarintOverflow);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn get_varint_u32(buf: &mut impl Buf) -> Result<u32, DecodeError> {
    let v = get_varint(buf)?;
    u32::try_from(v).map_err(|_| DecodeError::VarintOverflow)
}

/// Encodes triples (must be sorted by `(s, p, o)`) into a page.
///
/// Layout: `count` varint, then per triple: subject *delta* from the
/// previous subject, predicate, object (raw varints).
///
/// # Panics
/// Debug-asserts the input is sorted; in release an unsorted input encodes
/// losslessly but wastes space and fails `decode_page`'s sort check only if
/// subjects regress.
pub fn encode_page(triples: &[EncodedTriple]) -> Bytes {
    debug_assert!(
        triples.windows(2).all(|w| w[0] <= w[1]),
        "encode_page input must be sorted"
    );
    let mut buf = BytesMut::with_capacity(triples.len() * 4 + 8);
    put_varint(&mut buf, triples.len() as u64);
    let mut prev_s = 0u32;
    for t in triples {
        let delta = t.s.0.wrapping_sub(prev_s);
        put_varint(&mut buf, u64::from(delta));
        put_varint(&mut buf, u64::from(t.p.0));
        put_varint(&mut buf, u64::from(t.o.0));
        prev_s = t.s.0;
    }
    buf.freeze()
}

/// Decodes a page produced by [`encode_page`].
pub fn decode_page(buf: &mut impl Buf) -> Result<Vec<EncodedTriple>, DecodeError> {
    let count = get_varint(buf)? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    let mut s = 0u32;
    for _ in 0..count {
        let delta = get_varint_u32(buf)?;
        let (next, overflow) = s.overflowing_add(delta);
        if overflow {
            return Err(DecodeError::NotSorted);
        }
        s = next;
        let p = TermId(get_varint_u32(buf)?);
        let o = TermId(get_varint_u32(buf)?);
        out.push(EncodedTriple::new(TermId(s), p, o));
    }
    Ok(out)
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string (lossy on invalid UTF-8, which can
/// only arise from a corrupted snapshot — the checksum catches it first).
pub fn get_str(buf: &mut impl Buf) -> Result<String, DecodeError> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(DecodeError::UnexpectedEof);
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    Ok(String::from_utf8_lossy(&bytes).into_owned())
}

/// FNV-1a 64-bit checksum used by the snapshot footer.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> EncodedTriple {
        EncodedTriple::new(TermId(s), TermId(p), TermId(o))
    }

    #[test]
    fn varint_round_trip_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut bytes = buf.freeze();
            assert_eq!(get_varint(&mut bytes).unwrap(), v);
        }
    }

    #[test]
    fn varint_eof_detected() {
        let mut buf = BytesMut::new();
        buf.put_u8(0x80); // continuation bit set, nothing follows
        let mut bytes = buf.freeze();
        assert_eq!(get_varint(&mut bytes), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn page_round_trip() {
        let mut triples = vec![t(0, 5, 9), t(0, 6, 1), t(3, 1, 1), t(3, 1, 2), t(900, 0, 0)];
        triples.sort();
        let page = encode_page(&triples);
        let mut buf = page.clone();
        assert_eq!(decode_page(&mut buf).unwrap(), triples);
    }

    #[test]
    fn empty_page_round_trip() {
        let page = encode_page(&[]);
        let mut buf = page.clone();
        assert!(decode_page(&mut buf).unwrap().is_empty());
    }

    #[test]
    fn delta_encoding_is_compact() {
        // 1000 consecutive subjects with small p/o: ≤ ~3 bytes per triple.
        let triples: Vec<_> = (0..1000u32).map(|i| t(i, 1, 2)).collect();
        let page = encode_page(&triples);
        assert!(page.len() < 1000 * 4, "page {} bytes", page.len());
    }

    #[test]
    fn truncated_page_fails_cleanly() {
        let triples = vec![t(1, 2, 3), t(4, 5, 6)];
        let page = encode_page(&triples);
        let mut short = page.slice(..page.len() - 1);
        assert_eq!(decode_page(&mut short), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn string_round_trip() {
        let mut buf = BytesMut::new();
        put_str(&mut buf, "héllo wörld");
        put_str(&mut buf, "");
        let mut bytes = buf.freeze();
        assert_eq!(get_str(&mut bytes).unwrap(), "héllo wörld");
        assert_eq!(get_str(&mut bytes).unwrap(), "");
    }

    #[test]
    fn fnv64_known_vectors() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
    }

    #[test]
    fn decode_rejects_subject_overflow() {
        // Craft: count=1, delta=u32::MAX applied twice would overflow; a
        // single huge delta from 0 is fine, so build two triples where the
        // second delta wraps.
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 2);
        put_varint(&mut buf, u64::from(u32::MAX)); // s = MAX
        put_varint(&mut buf, 0);
        put_varint(&mut buf, 0);
        put_varint(&mut buf, 1); // wraps past MAX
        put_varint(&mut buf, 0);
        put_varint(&mut buf, 0);
        let mut bytes = buf.freeze();
        assert_eq!(decode_page(&mut bytes), Err(DecodeError::NotSorted));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn varint_round_trips(v in any::<u64>()) {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut bytes = buf.freeze();
            prop_assert_eq!(get_varint(&mut bytes).unwrap(), v);
        }

        #[test]
        fn page_round_trips(raw in proptest::collection::vec((0u32..10_000, 0u32..500, 0u32..10_000), 0..200)) {
            let mut triples: Vec<EncodedTriple> = raw
                .into_iter()
                .map(|(s, p, o)| EncodedTriple::new(TermId(s), TermId(p), TermId(o)))
                .collect();
            triples.sort();
            let page = encode_page(&triples);
            let mut buf = page.clone();
            prop_assert_eq!(decode_page(&mut buf).unwrap(), triples);
        }

        #[test]
        fn strings_round_trip(s in ".*") {
            let mut buf = BytesMut::new();
            put_str(&mut buf, &s);
            let mut bytes = buf.freeze();
            prop_assert_eq!(get_str(&mut bytes).unwrap(), s);
        }
    }
}
