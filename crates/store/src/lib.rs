//! Dictionary-encoded triple store: the KB substrate of the reproduction.
//!
//! The paper resolves entities described in RDF knowledge bases. A real
//! deployment of MinoanER would sit on top of a triple store that holds the
//! KBs being resolved; no mature Rust RDF store is available offline, so
//! this crate implements the subset such a deployment exercises:
//!
//! * [`dict`] — dictionary encoding: every term (IRI, literal, blank node)
//!   maps to a dense [`TermId`] so triples are three machine words.
//! * [`triple`] — encoded triples and quads (graph = knowledge base).
//! * [`index`] — the three classic permutation indexes (SPO, POS, OSP) as
//!   sorted arrays with binary-search range scans.
//! * [`pattern`] — triple-pattern matching with index selection (the
//!   store's tiny query planner).
//! * [`query`] — basic-graph-pattern queries (conjunctive patterns over
//!   variables with selectivity-ordered nested-loop joins).
//! * [`store`] — the [`TripleStore`] API: bulk load, pattern queries,
//!   per-graph views, and the bridge to [`minoan_rdf::Dataset`] that the ER
//!   pipeline consumes.
//! * [`encode`] — varint + delta encoding of sorted id arrays (the on-disk
//!   page format), using the `bytes` crate.
//! * [`snapshot`] — a single-file snapshot format (header, dictionary
//!   section, per-graph triple sections, FNV-64 checksums) with
//!   save-to/load-from both byte buffers and files.
//! * [`stats`] — VoID-style dataset statistics (per-predicate cardinality,
//!   distinct subjects/objects, degree distribution).
//!
//! # Example
//!
//! ```
//! use minoan_store::{TripleStore, Term};
//!
//! let mut store = TripleStore::new();
//! let g = store.create_graph("dbpedia");
//! store.insert(g, Term::iri("http://db/Heraklion"), Term::iri("http://p/label"),
//!              Term::literal("Heraklion"));
//! store.insert(g, Term::iri("http://db/Heraklion"), Term::iri("http://p/region"),
//!              Term::iri("http://db/Crete"));
//! let snap = store.freeze();
//! assert_eq!(snap.len(), 2);
//! let label = snap.dict().encode_lookup(&Term::iri("http://p/label")).unwrap();
//! assert_eq!(snap.match_pattern(None, Some(label), None).count(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod dict;
pub mod encode;
pub mod index;
pub mod pattern;
pub mod query;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod triple;

pub use dict::{Dict, TermId, TermKind};
pub use pattern::TriplePattern;
pub use query::{execute_bgp, select_var, Bindings, QueryError, QueryPattern, QueryTerm};
pub use snapshot::SnapshotError;
pub use stats::StoreStats;
pub use store::{FrozenStore, GraphId, TripleStore};
pub use triple::{EncodedTriple, Term};
