//! Basic graph pattern (BGP) queries: the SPARQL core over the store.
//!
//! A query is a conjunction of triple patterns over variables and constant
//! terms; the answer is the set of variable bindings satisfying all
//! patterns simultaneously. This is the fragment entity-centric workloads
//! use ("find every ?city with ?name located in ?region"), executed with
//! the textbook strategy:
//!
//! 1. order patterns greedily by estimated selectivity (fewest matching
//!    triples first, re-estimated as variables become bound),
//! 2. nested-loop join: for each partial binding, scan the best index for
//!    the next pattern with its bound positions substituted.
//!
//! No optimiser beyond that — the store's workloads are a handful of
//! patterns — but selectivity ordering alone covers the pathological
//! orderings a naive left-to-right join hits.

use crate::dict::TermId;
use crate::store::FrozenStore;
use crate::triple::Term;
use minoan_common::FxHashMap;
use std::fmt;

/// A variable name (without the leading `?`).
pub type VarName = String;

/// One position of a query pattern: a constant term or a variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryTerm {
    /// A constant RDF term.
    Const(Term),
    /// A named variable.
    Var(VarName),
}

impl QueryTerm {
    /// Variable constructor (strips a leading `?` if present).
    pub fn var(name: &str) -> Self {
        QueryTerm::Var(name.strip_prefix('?').unwrap_or(name).to_string())
    }

    /// IRI-constant constructor.
    pub fn iri(s: &str) -> Self {
        QueryTerm::Const(Term::iri(s))
    }

    /// Literal-constant constructor.
    pub fn literal(s: &str) -> Self {
        QueryTerm::Const(Term::literal(s))
    }
}

/// One triple pattern of a BGP.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryPattern {
    /// Subject position.
    pub s: QueryTerm,
    /// Predicate position.
    pub p: QueryTerm,
    /// Object position.
    pub o: QueryTerm,
}

impl QueryPattern {
    /// Constructor.
    pub fn new(s: QueryTerm, p: QueryTerm, o: QueryTerm) -> Self {
        Self { s, p, o }
    }
}

/// A set of bindings: variable → term id.
pub type Bindings = FxHashMap<VarName, TermId>;

/// Query execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A constant term does not exist in the store's dictionary (the
    /// query can never match; reported rather than silently empty so typos
    /// in IRIs surface).
    UnknownTerm(String),
    /// The query has no patterns.
    EmptyQuery,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownTerm(t) => write!(f, "term not in store: {t}"),
            QueryError::EmptyQuery => write!(f, "query has no patterns"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Internal: a pattern with constants resolved to ids.
#[derive(Clone)]
enum Slot {
    Const(TermId),
    Var(VarName),
}

struct Resolved {
    s: Slot,
    p: Slot,
    o: Slot,
}

impl Resolved {
    /// Concrete ids under a binding (`None` = still free).
    fn bound(&self, b: &Bindings) -> (Option<TermId>, Option<TermId>, Option<TermId>) {
        let get = |slot: &Slot| match slot {
            Slot::Const(id) => Some(*id),
            Slot::Var(v) => b.get(v).copied(),
        };
        (get(&self.s), get(&self.p), get(&self.o))
    }
}

/// Executes a BGP, returning all bindings (deterministic order: patterns
/// are joined by ascending selectivity, scans in index order).
pub fn execute_bgp(
    store: &FrozenStore,
    patterns: &[QueryPattern],
) -> Result<Vec<Bindings>, QueryError> {
    if patterns.is_empty() {
        return Err(QueryError::EmptyQuery);
    }
    // Resolve constants; unknown constants abort with a useful error.
    let mut resolved: Vec<Resolved> = Vec::with_capacity(patterns.len());
    for p in patterns {
        let slot = |qt: &QueryTerm| -> Result<Slot, QueryError> {
            match qt {
                QueryTerm::Var(v) => Ok(Slot::Var(v.clone())),
                QueryTerm::Const(t) => store
                    .dict()
                    .encode_lookup(t)
                    .map(Slot::Const)
                    .ok_or_else(|| QueryError::UnknownTerm(t.to_string())),
            }
        };
        resolved.push(Resolved {
            s: slot(&p.s)?,
            p: slot(&p.p)?,
            o: slot(&p.o)?,
        });
    }

    let mut results: Vec<Bindings> = vec![Bindings::default()];
    let mut remaining: Vec<Resolved> = resolved;
    while !remaining.is_empty() {
        // Pick the pattern with the smallest estimated extension under the
        // *first* current binding (cheap, effective proxy).
        let probe = results.first().cloned().unwrap_or_default();
        let (best_idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let (s, p, o) = r.bound(&probe);
                (i, store.match_pattern(s, p, o).count())
            })
            .min_by_key(|&(i, count)| (count, i))
            .expect("remaining is non-empty");
        let pattern = remaining.swap_remove(best_idx);

        let mut next: Vec<Bindings> = Vec::new();
        for binding in &results {
            let (s, p, o) = pattern.bound(binding);
            for triple in store.match_pattern(s, p, o) {
                let mut extended = binding.clone();
                let mut ok = true;
                for (slot, id) in [
                    (&pattern.s, triple.s),
                    (&pattern.p, triple.p),
                    (&pattern.o, triple.o),
                ] {
                    if let Slot::Var(v) = slot {
                        match extended.get(v) {
                            Some(&existing) if existing != id => {
                                ok = false;
                                break;
                            }
                            Some(_) => {}
                            None => {
                                extended.insert(v.clone(), id);
                            }
                        }
                    }
                }
                if ok {
                    next.push(extended);
                }
            }
        }
        results = next;
        if results.is_empty() {
            return Ok(results);
        }
    }
    Ok(results)
}

/// Convenience: executes and projects one variable as decoded terms.
pub fn select_var(
    store: &FrozenStore,
    patterns: &[QueryPattern],
    var: &str,
) -> Result<Vec<Term>, QueryError> {
    let var = var.strip_prefix('?').unwrap_or(var);
    let mut out: Vec<Term> = execute_bgp(store, patterns)?
        .into_iter()
        .filter_map(|b| b.get(var).map(|&id| store.dict().decode(id)))
        .collect();
    out.sort();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TripleStore;

    /// Cities located in regions, with labels.
    fn store() -> FrozenStore {
        let mut s = TripleStore::new();
        let g = s.create_graph("geo");
        let f = |s: &str| Term::iri(format!("http://geo/{s}"));
        let p = |s: &str| Term::iri(format!("http://p/{s}"));
        for (city, region, label) in [
            ("heraklion", "crete", "Heraklion"),
            ("chania", "crete", "Chania"),
            ("athens", "attica", "Athens"),
        ] {
            s.insert(g, f(city), p("in"), f(region));
            s.insert(g, f(city), p("label"), Term::literal(label));
            s.insert(g, f(city), p("type"), f("City"));
        }
        s.insert(g, f("crete"), p("type"), f("Region"));
        s.insert(g, f("attica"), p("type"), f("Region"));
        s.freeze()
    }

    fn pat(s: QueryTerm, p: QueryTerm, o: QueryTerm) -> QueryPattern {
        QueryPattern::new(s, p, o)
    }

    #[test]
    fn single_pattern_single_var() {
        let st = store();
        let cities = select_var(
            &st,
            &[pat(
                QueryTerm::var("?c"),
                QueryTerm::iri("http://p/type"),
                QueryTerm::iri("http://geo/City"),
            )],
            "?c",
        )
        .unwrap();
        assert_eq!(cities.len(), 3);
    }

    #[test]
    fn join_across_two_patterns() {
        let st = store();
        // Cities in Crete, with their labels.
        let results = execute_bgp(
            &st,
            &[
                pat(
                    QueryTerm::var("c"),
                    QueryTerm::iri("http://p/in"),
                    QueryTerm::iri("http://geo/crete"),
                ),
                pat(
                    QueryTerm::var("c"),
                    QueryTerm::iri("http://p/label"),
                    QueryTerm::var("l"),
                ),
            ],
        )
        .unwrap();
        assert_eq!(results.len(), 2);
        let labels: Vec<String> = {
            let mut v: Vec<String> = results
                .iter()
                .map(|b| st.dict().text(b["l"]).to_string())
                .collect();
            v.sort();
            v
        };
        assert_eq!(labels, vec!["Chania", "Heraklion"]);
    }

    #[test]
    fn three_pattern_chain() {
        let st = store();
        // ?city in ?region, ?region a Region, ?city labelled ?l.
        let results = execute_bgp(
            &st,
            &[
                pat(
                    QueryTerm::var("city"),
                    QueryTerm::iri("http://p/in"),
                    QueryTerm::var("region"),
                ),
                pat(
                    QueryTerm::var("region"),
                    QueryTerm::iri("http://p/type"),
                    QueryTerm::iri("http://geo/Region"),
                ),
                pat(
                    QueryTerm::var("city"),
                    QueryTerm::iri("http://p/label"),
                    QueryTerm::var("l"),
                ),
            ],
        )
        .unwrap();
        assert_eq!(results.len(), 3, "every city joins through its region");
    }

    #[test]
    fn shared_variable_enforces_equality() {
        let st = store();
        // ?x in ?x can never hold (no self loops here).
        let results = execute_bgp(
            &st,
            &[pat(
                QueryTerm::var("x"),
                QueryTerm::iri("http://p/in"),
                QueryTerm::var("x"),
            )],
        )
        .unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn unknown_constant_is_an_error_not_empty() {
        let st = store();
        let err = execute_bgp(
            &st,
            &[pat(
                QueryTerm::var("x"),
                QueryTerm::iri("http://p/nonexistent"),
                QueryTerm::var("y"),
            )],
        )
        .unwrap_err();
        assert!(matches!(err, QueryError::UnknownTerm(_)));
    }

    #[test]
    fn empty_query_rejected() {
        let st = store();
        assert_eq!(execute_bgp(&st, &[]), Err(QueryError::EmptyQuery));
    }

    #[test]
    fn no_matches_yields_empty_bindings() {
        let st = store();
        // Athens is not in Crete.
        let results = execute_bgp(
            &st,
            &[pat(
                QueryTerm::iri("http://geo/athens"),
                QueryTerm::iri("http://p/in"),
                QueryTerm::iri("http://geo/crete"),
            )],
        )
        .unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn all_constant_pattern_acts_as_ask() {
        let st = store();
        let results = execute_bgp(
            &st,
            &[pat(
                QueryTerm::iri("http://geo/athens"),
                QueryTerm::iri("http://p/in"),
                QueryTerm::iri("http://geo/attica"),
            )],
        )
        .unwrap();
        assert_eq!(results.len(), 1);
        assert!(results[0].is_empty(), "no variables bound");
    }

    #[test]
    fn selectivity_ordering_handles_unselective_first_pattern() {
        let st = store();
        // Written worst-first: (?s ?p ?o) then a selective one; the planner
        // must reorder or this would enumerate the cross product.
        let results = execute_bgp(
            &st,
            &[
                pat(
                    QueryTerm::var("s"),
                    QueryTerm::var("p"),
                    QueryTerm::var("o"),
                ),
                pat(
                    QueryTerm::var("s"),
                    QueryTerm::iri("http://p/in"),
                    QueryTerm::iri("http://geo/crete"),
                ),
            ],
        )
        .unwrap();
        // Every triple of a Crete city joins: 2 cities × 3 triples each.
        assert_eq!(results.len(), 6);
    }

    #[test]
    fn var_helper_strips_question_mark() {
        assert_eq!(QueryTerm::var("?x"), QueryTerm::Var("x".into()));
        assert_eq!(QueryTerm::var("x"), QueryTerm::Var("x".into()));
    }
}
