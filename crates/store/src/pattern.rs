//! Triple-pattern matching with index selection.
//!
//! A [`TriplePattern`] binds any subset of the three positions. The planner
//! picks the index whose sort order starts with the bound positions:
//!
//! | bound         | index | scan |
//! |---------------|-------|------|
//! | s p o         | SPO   | point lookup |
//! | s p ?         | SPO   | `scan2(s, p)` |
//! | s ? ?         | SPO   | `scan1(s)` |
//! | ? p o         | POS   | `scan2(p, o)` |
//! | ? p ?         | POS   | `scan1(p)` |
//! | ? ? o         | OSP   | `scan1(o)` |
//! | s ? o         | OSP   | `scan2(o, s)` |
//! | ? ? ?         | SPO   | full scan |

use crate::dict::TermId;
use crate::index::{Order, SortedIndex};
use crate::triple::EncodedTriple;

/// A pattern over encoded term ids; `None` is a wildcard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject binding.
    pub s: Option<TermId>,
    /// Predicate binding.
    pub p: Option<TermId>,
    /// Object binding.
    pub o: Option<TermId>,
}

impl TriplePattern {
    /// Constructor.
    pub fn new(s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> Self {
        Self { s, p, o }
    }

    /// The all-wildcard pattern.
    pub fn any() -> Self {
        Self::default()
    }

    /// Number of bound positions.
    pub fn bound_count(&self) -> usize {
        self.s.is_some() as usize + self.p.is_some() as usize + self.o.is_some() as usize
    }

    /// Whether the encoded triple matches.
    #[inline]
    pub fn matches(&self, t: &EncodedTriple) -> bool {
        self.s.is_none_or(|s| s == t.s)
            && self.p.is_none_or(|p| p == t.p)
            && self.o.is_none_or(|o| o == t.o)
    }

    /// Which index answers this pattern with the longest bound prefix.
    pub fn preferred_order(&self) -> Order {
        match (self.s.is_some(), self.p.is_some(), self.o.is_some()) {
            (true, _, false) => Order::Spo, // s??, sp?, spo-without-o impossible
            (true, true, true) => Order::Spo,
            (true, false, true) => Order::Osp,
            (false, true, _) => Order::Pos,
            (false, false, true) => Order::Osp,
            (false, false, false) => Order::Spo,
        }
    }
}

/// Executes `pattern` against the three indexes, yielding matches in the
/// chosen index's order.
pub fn execute<'a>(
    pattern: TriplePattern,
    spo: &'a SortedIndex,
    pos: &'a SortedIndex,
    osp: &'a SortedIndex,
) -> impl Iterator<Item = EncodedTriple> + 'a {
    let slice: &'a [EncodedTriple] = match (pattern.s, pattern.p, pattern.o) {
        (Some(s), Some(p), _) => spo.scan2(s, p),
        (Some(s), None, None) => spo.scan1(s),
        (Some(s), None, Some(o)) => osp.scan2(o, s),
        (None, Some(p), Some(o)) => pos.scan2(p, o),
        (None, Some(p), None) => pos.scan1(p),
        (None, None, Some(o)) => osp.scan1(o),
        (None, None, None) => spo.triples(),
    };
    slice.iter().copied().filter(move |t| pattern.matches(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> EncodedTriple {
        EncodedTriple::new(TermId(s), TermId(p), TermId(o))
    }

    fn indexes() -> (SortedIndex, SortedIndex, SortedIndex) {
        let triples = vec![t(0, 1, 2), t(0, 1, 3), t(0, 2, 2), t(1, 1, 2), t(2, 3, 0)];
        (
            SortedIndex::build(Order::Spo, &triples),
            SortedIndex::build(Order::Pos, &triples),
            SortedIndex::build(Order::Osp, &triples),
        )
    }

    fn run(p: TriplePattern) -> Vec<EncodedTriple> {
        let (spo, pos, osp) = indexes();
        execute(p, &spo, &pos, &osp).collect()
    }

    #[test]
    fn fully_bound_is_point_lookup() {
        let hits = run(TriplePattern::new(
            Some(TermId(0)),
            Some(TermId(1)),
            Some(TermId(3)),
        ));
        assert_eq!(hits, vec![t(0, 1, 3)]);
        let misses = run(TriplePattern::new(
            Some(TermId(0)),
            Some(TermId(1)),
            Some(TermId(9)),
        ));
        assert!(misses.is_empty());
    }

    #[test]
    fn subject_scan() {
        assert_eq!(
            run(TriplePattern::new(Some(TermId(0)), None, None)).len(),
            3
        );
    }

    #[test]
    fn predicate_scan() {
        assert_eq!(
            run(TriplePattern::new(None, Some(TermId(1)), None)).len(),
            3
        );
    }

    #[test]
    fn object_scan_uses_osp() {
        let hits = run(TriplePattern::new(None, None, Some(TermId(2))));
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|x| x.o == TermId(2)));
    }

    #[test]
    fn subject_object_scan() {
        let hits = run(TriplePattern::new(Some(TermId(0)), None, Some(TermId(2))));
        assert_eq!(hits.len(), 2, "predicates 1 and 2 both link 0→2");
    }

    #[test]
    fn wildcard_returns_everything() {
        assert_eq!(run(TriplePattern::any()).len(), 5);
        assert_eq!(TriplePattern::any().bound_count(), 0);
    }

    #[test]
    fn preferred_order_selection() {
        let s = Some(TermId(0));
        assert_eq!(
            TriplePattern::new(s, None, None).preferred_order(),
            Order::Spo
        );
        assert_eq!(
            TriplePattern::new(None, s, None).preferred_order(),
            Order::Pos
        );
        assert_eq!(
            TriplePattern::new(None, None, s).preferred_order(),
            Order::Osp
        );
        assert_eq!(TriplePattern::new(s, None, s).preferred_order(), Order::Osp);
    }

    #[test]
    fn matches_predicate_filter() {
        let p = TriplePattern::new(None, Some(TermId(2)), None);
        assert!(p.matches(&t(0, 2, 2)));
        assert!(!p.matches(&t(0, 1, 2)));
    }
}
