//! Dictionary encoding of RDF terms.
//!
//! Real triple stores (RDF-3X, Virtuoso, HDT) replace variable-length terms
//! with dense integer ids before indexing; everything downstream then
//! operates on fixed-width ids. The dictionary here is append-only: a term,
//! once encoded, keeps its id for the lifetime of the store, which is what
//! makes snapshots and the Dataset bridge stable.

use crate::triple::Term;
use minoan_common::FxHashMap;
use std::fmt;

/// Dense id of a term in a [`Dict`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The kind tag stored next to each term's text.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum TermKind {
    /// IRI reference.
    Iri = 0,
    /// Plain literal.
    Literal = 1,
    /// Blank node.
    Blank = 2,
}

impl TermKind {
    /// Decodes the tag byte used by the snapshot format.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(TermKind::Iri),
            1 => Some(TermKind::Literal),
            2 => Some(TermKind::Blank),
            _ => None,
        }
    }
}

/// Append-only term dictionary.
///
/// Terms of different kinds with the same text get *different* ids (an IRI
/// `"x"` and a literal `"x"` are distinct RDF terms).
#[derive(Default)]
pub struct Dict {
    texts: Vec<Box<str>>,
    kinds: Vec<TermKind>,
    lookup: FxHashMap<(TermKind, Box<str>), TermId>,
}

impl Dict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// Encodes a term, assigning a fresh id on first sight.
    ///
    /// # Panics
    /// Panics past 2³² terms (the `u32` id space).
    pub fn encode(&mut self, term: &Term) -> TermId {
        let key = (term.kind(), term.text());
        if let Some(&id) = self.lookup.get(&key as &dyn DictKey) {
            return id;
        }
        let id = TermId(u32::try_from(self.texts.len()).expect("dictionary overflow"));
        self.texts.push(term.text().into());
        self.kinds.push(term.kind());
        self.lookup.insert((term.kind(), term.text().into()), id);
        id
    }

    /// Looks a term up without inserting.
    pub fn encode_lookup(&self, term: &Term) -> Option<TermId> {
        self.lookup
            .get(&(term.kind(), term.text()) as &dyn DictKey)
            .copied()
    }

    /// The text of `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this dictionary.
    pub fn text(&self, id: TermId) -> &str {
        &self.texts[id.index()]
    }

    /// The kind of `id`.
    pub fn kind(&self, id: TermId) -> TermKind {
        self.kinds[id.index()]
    }

    /// Reconstructs the owned [`Term`] for `id`.
    pub fn decode(&self, id: TermId) -> Term {
        let text = self.texts[id.index()].clone();
        match self.kinds[id.index()] {
            TermKind::Iri => Term::Iri(text),
            TermKind::Literal => Term::Literal(text),
            TermKind::Blank => Term::Blank(text),
        }
    }

    /// Iterates `(id, kind, text)` in id order (snapshot serialisation).
    pub fn iter(&self) -> impl Iterator<Item = (TermId, TermKind, &str)> {
        self.texts
            .iter()
            .zip(&self.kinds)
            .enumerate()
            .map(|(i, (t, &k))| (TermId(i as u32), k, t.as_ref()))
    }

    /// Rebuilds a dictionary from the snapshot stream. Ids are assigned in
    /// iteration order, so round-tripping preserves every id.
    pub fn from_entries(entries: impl IntoIterator<Item = (TermKind, String)>) -> Self {
        let mut d = Self::new();
        for (kind, text) in entries {
            let id = TermId(u32::try_from(d.texts.len()).expect("dictionary overflow"));
            d.lookup.insert((kind, text.clone().into_boxed_str()), id);
            d.texts.push(text.into_boxed_str());
            d.kinds.push(kind);
        }
        d
    }
}

impl fmt::Debug for Dict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dict")
            .field("terms", &self.texts.len())
            .finish()
    }
}

/// Borrowed-key lookup trick: lets `encode_lookup` query the
/// `(TermKind, Box<str>)` map with a `(TermKind, &str)` without allocating.
trait DictKey {
    fn key(&self) -> (TermKind, &str);
}

impl DictKey for (TermKind, Box<str>) {
    fn key(&self) -> (TermKind, &str) {
        (self.0, &self.1)
    }
}

impl DictKey for (TermKind, &str) {
    fn key(&self) -> (TermKind, &str) {
        (self.0, self.1)
    }
}

impl PartialEq for dyn DictKey + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for dyn DictKey + '_ {}

impl std::hash::Hash for dyn DictKey + '_ {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

impl<'a> std::borrow::Borrow<dyn DictKey + 'a> for (TermKind, Box<str>) {
    fn borrow(&self) -> &(dyn DictKey + 'a) {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let mut d = Dict::new();
        let a = d.encode(&Term::iri("http://x"));
        let b = d.encode(&Term::iri("http://x"));
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn same_text_different_kind_gets_distinct_ids() {
        let mut d = Dict::new();
        let iri = d.encode(&Term::iri("x"));
        let lit = d.encode(&Term::literal("x"));
        let blank = d.encode(&Term::blank("x"));
        assert_ne!(iri, lit);
        assert_ne!(lit, blank);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn decode_round_trips() {
        let mut d = Dict::new();
        for t in [
            Term::iri("http://a"),
            Term::literal("b c"),
            Term::blank("n0"),
        ] {
            let id = d.encode(&t);
            assert_eq!(d.decode(id), t);
            assert_eq!(d.kind(id), t.kind());
            assert_eq!(d.text(id), t.text());
        }
    }

    #[test]
    fn lookup_without_insert() {
        let mut d = Dict::new();
        let id = d.encode(&Term::literal("v"));
        assert_eq!(d.encode_lookup(&Term::literal("v")), Some(id));
        assert_eq!(d.encode_lookup(&Term::iri("v")), None);
        assert_eq!(d.len(), 1, "lookup must not insert");
    }

    #[test]
    fn from_entries_preserves_ids() {
        let mut d = Dict::new();
        let ids: Vec<TermId> = [Term::iri("a"), Term::literal("b"), Term::blank("c")]
            .iter()
            .map(|t| d.encode(t))
            .collect();
        let rebuilt = Dict::from_entries(d.iter().map(|(_, k, t)| (k, t.to_string())));
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(rebuilt.decode(*id), d.decode(TermId(i as u32)));
            assert_eq!(rebuilt.encode_lookup(&d.decode(*id)), Some(*id));
        }
    }

    #[test]
    fn kind_tag_round_trip() {
        for k in [TermKind::Iri, TermKind::Literal, TermKind::Blank] {
            assert_eq!(TermKind::from_tag(k as u8), Some(k));
        }
        assert_eq!(TermKind::from_tag(9), None);
    }
}
