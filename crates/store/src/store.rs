//! The triple store API.
//!
//! A [`TripleStore`] is the mutable loading phase: create graphs (one per
//! knowledge base), insert triples, then [`TripleStore::freeze`] into a
//! [`FrozenStore`] with the three permutation indexes built. Frozen stores
//! answer pattern queries and bridge into the entity-centric
//! [`minoan_rdf::Dataset`] the ER pipeline consumes.

use crate::dict::{Dict, TermId, TermKind};
use crate::index::{Order, SortedIndex};
use crate::pattern::{execute, TriplePattern};
use crate::stats::StoreStats;
use crate::triple::{EncodedTriple, Term};
use minoan_common::FxHashSet;
use minoan_rdf::ntriples;
use std::fmt;

/// Id of a named graph (a knowledge base) within a store.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GraphId(pub u16);

impl GraphId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Metadata of one named graph.
#[derive(Clone, Debug)]
pub struct GraphInfo {
    /// Graph name (KB name, e.g. "dbpedia").
    pub name: Box<str>,
    /// Number of triples inserted (before dedup).
    pub inserted: u64,
}

/// Mutable, load-phase triple store.
#[derive(Default)]
pub struct TripleStore {
    dict: Dict,
    graphs: Vec<GraphInfo>,
    /// Per graph, the raw (possibly duplicated) triples.
    triples: Vec<Vec<EncodedTriple>>,
}

impl TripleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a named graph.
    ///
    /// # Panics
    /// Panics past 65 536 graphs.
    pub fn create_graph(&mut self, name: &str) -> GraphId {
        let id = GraphId(u16::try_from(self.graphs.len()).expect("too many graphs"));
        self.graphs.push(GraphInfo {
            name: name.into(),
            inserted: 0,
        });
        self.triples.push(Vec::new());
        id
    }

    /// Number of graphs.
    pub fn graph_count(&self) -> usize {
        self.graphs.len()
    }

    /// Inserts one triple into `graph`.
    ///
    /// # Panics
    /// Panics if `graph` was not created by this store.
    pub fn insert(&mut self, graph: GraphId, s: Term, p: Term, o: Term) {
        let s = self.dict.encode(&s);
        let p = self.dict.encode(&p);
        let o = self.dict.encode(&o);
        self.triples[graph.index()].push(EncodedTriple::new(s, p, o));
        self.graphs[graph.index()].inserted += 1;
    }

    /// Loads an N-Triples document into a fresh graph. Blank-node labels
    /// are namespaced by graph so they never collide across KBs.
    pub fn load_ntriples(
        &mut self,
        name: &str,
        document: &str,
    ) -> Result<GraphId, ntriples::ParseError> {
        let triples = ntriples::parse_document(document)?;
        Ok(self.load_parsed(name, &triples))
    }

    /// Loads a Turtle document into a fresh graph (same blank-node
    /// namespacing as [`TripleStore::load_ntriples`]).
    pub fn load_turtle(
        &mut self,
        name: &str,
        document: &str,
    ) -> Result<GraphId, minoan_rdf::TurtleError> {
        let triples = minoan_rdf::parse_turtle(document)?;
        Ok(self.load_parsed(name, &triples))
    }

    fn load_parsed(&mut self, name: &str, triples: &[minoan_rdf::Triple]) -> GraphId {
        let graph = self.create_graph(name);
        for triple in triples {
            let subject = match &triple.subject {
                minoan_rdf::Term::Iri(s) => Term::iri(s.as_str()),
                minoan_rdf::Term::Blank(b) => Term::blank(format!("{name}/{b}")),
                minoan_rdf::Term::Literal(_) => continue, // parsers reject this already
            };
            let object = match &triple.object {
                minoan_rdf::Term::Iri(s) => Term::iri(s.as_str()),
                minoan_rdf::Term::Literal(l) => Term::literal(l.value.as_str()),
                minoan_rdf::Term::Blank(b) => Term::blank(format!("{name}/{b}")),
            };
            self.insert(graph, subject, Term::iri(triple.predicate.as_str()), object);
        }
        graph
    }

    /// Freezes the store: deduplicates, builds SPO/POS/OSP indexes (global
    /// and the per-graph SPO views).
    pub fn freeze(self) -> FrozenStore {
        let mut all: Vec<EncodedTriple> = Vec::new();
        let mut graph_triples: Vec<Box<[EncodedTriple]>> = Vec::with_capacity(self.triples.len());
        for per_graph in &self.triples {
            let mut v = per_graph.clone();
            v.sort_unstable();
            v.dedup();
            all.extend_from_slice(&v);
            graph_triples.push(v.into_boxed_slice());
        }
        let spo = SortedIndex::build(Order::Spo, &all);
        let pos = SortedIndex::build(Order::Pos, &all);
        let osp = SortedIndex::build(Order::Osp, &all);
        FrozenStore {
            dict: self.dict,
            graphs: self.graphs,
            graph_triples,
            spo,
            pos,
            osp,
        }
    }
}

impl fmt::Debug for TripleStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TripleStore")
            .field("graphs", &self.graphs.len())
            .field("terms", &self.dict.len())
            .finish()
    }
}

/// Immutable, indexed store.
pub struct FrozenStore {
    dict: Dict,
    graphs: Vec<GraphInfo>,
    graph_triples: Vec<Box<[EncodedTriple]>>,
    spo: SortedIndex,
    pos: SortedIndex,
    osp: SortedIndex,
}

impl FrozenStore {
    /// Reassembles a frozen store from snapshot parts.
    pub(crate) fn from_parts(
        dict: Dict,
        graphs: Vec<GraphInfo>,
        graph_triples: Vec<Box<[EncodedTriple]>>,
    ) -> Self {
        let mut all: Vec<EncodedTriple> = Vec::new();
        for g in &graph_triples {
            all.extend_from_slice(g);
        }
        Self {
            spo: SortedIndex::build(Order::Spo, &all),
            pos: SortedIndex::build(Order::Pos, &all),
            osp: SortedIndex::build(Order::Osp, &all),
            dict,
            graphs,
            graph_triples,
        }
    }

    /// Number of distinct triples across all graphs.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// Whether the store holds no triple.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// The term dictionary.
    pub fn dict(&self) -> &Dict {
        &self.dict
    }

    /// Graph metadata in id order.
    pub fn graphs(&self) -> &[GraphInfo] {
        &self.graphs
    }

    /// Distinct triples of one graph, sorted SPO.
    pub fn graph_triples(&self, g: GraphId) -> &[EncodedTriple] {
        &self.graph_triples[g.index()]
    }

    /// Pattern query over term ids (all graphs merged).
    pub fn match_pattern(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> impl Iterator<Item = EncodedTriple> + '_ {
        execute(TriplePattern::new(s, p, o), &self.spo, &self.pos, &self.osp)
    }

    /// Pattern query over owned terms; unknown terms yield no matches.
    pub fn match_terms(
        &self,
        s: Option<&Term>,
        p: Option<&Term>,
        o: Option<&Term>,
    ) -> Vec<EncodedTriple> {
        let lookup = |t: Option<&Term>| -> Result<Option<TermId>, ()> {
            match t {
                None => Ok(None),
                Some(t) => self.dict.encode_lookup(t).map(Some).ok_or(()),
            }
        };
        match (lookup(s), lookup(p), lookup(o)) {
            (Ok(s), Ok(p), Ok(o)) => self.match_pattern(s, p, o).collect(),
            _ => Vec::new(),
        }
    }

    /// Whether the fully-bound triple exists in any graph.
    pub fn contains(&self, t: &EncodedTriple) -> bool {
        self.spo.contains(t)
    }

    /// Distinct subjects of one graph.
    pub fn graph_subjects(&self, g: GraphId) -> Vec<TermId> {
        let mut out: Vec<TermId> = Vec::new();
        for t in self.graph_triples(g) {
            if out.last() != Some(&t.s) {
                out.push(t.s);
            }
        }
        out
    }

    /// Computes VoID-style statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats::compute(self)
    }

    /// The POS index (the statistics module walks its runs directly).
    pub(crate) fn pos(&self) -> &SortedIndex {
        &self.pos
    }

    /// Bridges into the entity-centric [`minoan_rdf::Dataset`]: each graph
    /// becomes a KB, each subject a description, IRI/blank objects become
    /// resource attributes and literals become literal attributes.
    ///
    /// The KB namespace is inferred as the longest common prefix of the
    /// graph's subject IRIs (used by Prefix-Infix(-Suffix) blocking).
    pub fn to_dataset(&self) -> minoan_rdf::Dataset {
        let mut builder = minoan_rdf::DatasetBuilder::new();
        for (gi, info) in self.graphs.iter().enumerate() {
            let g = GraphId(gi as u16);
            let namespace = self.infer_namespace(g);
            let kb = builder.add_kb(&info.name, &namespace);
            for t in self.graph_triples(g) {
                let subject = match self.dict.kind(t.s) {
                    TermKind::Iri => self.dict.text(t.s).to_string(),
                    TermKind::Blank => format!("bnode://{}/{}", info.name, self.dict.text(t.s)),
                    TermKind::Literal => continue,
                };
                let predicate = self.dict.text(t.p);
                match self.dict.kind(t.o) {
                    TermKind::Literal => {
                        builder.add_literal(kb, &subject, predicate, self.dict.text(t.o));
                    }
                    TermKind::Iri => {
                        builder.add_resource(kb, &subject, predicate, self.dict.text(t.o));
                    }
                    TermKind::Blank => {
                        let o = format!("bnode://{}/{}", info.name, self.dict.text(t.o));
                        builder.add_resource(kb, &subject, predicate, &o);
                    }
                }
            }
        }
        builder.build()
    }

    fn infer_namespace(&self, g: GraphId) -> String {
        let mut prefix: Option<String> = None;
        let mut seen: FxHashSet<TermId> = FxHashSet::default();
        for t in self.graph_triples(g) {
            if self.dict.kind(t.s) != TermKind::Iri || !seen.insert(t.s) {
                continue;
            }
            let uri = self.dict.text(t.s);
            match &mut prefix {
                None => prefix = Some(uri.to_string()),
                Some(p) => {
                    let common = p
                        .bytes()
                        .zip(uri.bytes())
                        .take_while(|(a, b)| a == b)
                        .count();
                    p.truncate(common);
                }
            }
        }
        prefix.unwrap_or_default()
    }
}

impl fmt::Debug for FrozenStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrozenStore")
            .field("graphs", &self.graphs.len())
            .field("triples", &self.len())
            .field("terms", &self.dict.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FrozenStore {
        let mut s = TripleStore::new();
        let g0 = s.create_graph("dbpedia");
        let g1 = s.create_graph("yago");
        s.insert(
            g0,
            Term::iri("http://db/Heraklion"),
            Term::iri("http://p/label"),
            Term::literal("Heraklion"),
        );
        s.insert(
            g0,
            Term::iri("http://db/Heraklion"),
            Term::iri("http://p/region"),
            Term::iri("http://db/Crete"),
        );
        s.insert(
            g0,
            Term::iri("http://db/Crete"),
            Term::iri("http://p/label"),
            Term::literal("Crete"),
        );
        // Duplicate insert — must dedup on freeze.
        s.insert(
            g0,
            Term::iri("http://db/Crete"),
            Term::iri("http://p/label"),
            Term::literal("Crete"),
        );
        s.insert(
            g1,
            Term::iri("http://ya/Iraklio"),
            Term::iri("http://p/name"),
            Term::literal("Iraklio"),
        );
        s.freeze()
    }

    #[test]
    fn freeze_dedups_within_graph() {
        let f = sample();
        assert_eq!(f.len(), 4);
        assert_eq!(f.graph_triples(GraphId(0)).len(), 3);
        assert_eq!(f.graph_triples(GraphId(1)).len(), 1);
    }

    #[test]
    fn match_terms_by_predicate() {
        let f = sample();
        let hits = f.match_terms(None, Some(&Term::iri("http://p/label")), None);
        assert_eq!(hits.len(), 2);
        let unknown = f.match_terms(None, Some(&Term::iri("http://p/nope")), None);
        assert!(unknown.is_empty());
    }

    #[test]
    fn match_pattern_by_object_finds_inbound() {
        let f = sample();
        let crete = f
            .dict()
            .encode_lookup(&Term::iri("http://db/Crete"))
            .unwrap();
        let inbound: Vec<_> = f.match_pattern(None, None, Some(crete)).collect();
        assert_eq!(inbound.len(), 1);
        assert_eq!(f.dict().text(inbound[0].s), "http://db/Heraklion");
    }

    #[test]
    fn graph_subjects_distinct_and_sorted() {
        let f = sample();
        let subs = f.graph_subjects(GraphId(0));
        assert_eq!(subs.len(), 2);
    }

    #[test]
    fn to_dataset_builds_descriptions_and_links() {
        let f = sample();
        let ds = f.to_dataset();
        assert_eq!(ds.kb_count(), 2);
        assert_eq!(ds.len(), 3);
        let h = ds.entity_by_uri("http://db/Heraklion").unwrap();
        let c = ds.entity_by_uri("http://db/Crete").unwrap();
        assert_eq!(ds.neighbors(h), &[c]);
    }

    #[test]
    fn namespace_inference_common_prefix() {
        let f = sample();
        let ds = f.to_dataset();
        assert_eq!(&*ds.kb(minoan_rdf::KbId(0)).namespace, "http://db/");
    }

    #[test]
    fn load_ntriples_namespaces_blank_nodes() {
        let doc = "_:b <http://p/x> \"v\" .\n";
        let mut s = TripleStore::new();
        s.load_ntriples("a", doc).unwrap();
        s.load_ntriples("b", doc).unwrap();
        let f = s.freeze();
        // Same blank label in two graphs → two distinct subjects.
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn load_ntriples_surfaces_parse_errors() {
        let mut s = TripleStore::new();
        assert!(s.load_ntriples("bad", "not a triple\n").is_err());
    }

    #[test]
    fn contains_fully_bound_triples() {
        let f = sample();
        let s = f
            .dict()
            .encode_lookup(&Term::iri("http://db/Crete"))
            .unwrap();
        let p = f
            .dict()
            .encode_lookup(&Term::iri("http://p/label"))
            .unwrap();
        let o = f.dict().encode_lookup(&Term::literal("Crete")).unwrap();
        assert!(f.contains(&EncodedTriple::new(s, p, o)));
        assert!(!f.contains(&EncodedTriple::new(o, p, s)));
    }

    #[test]
    fn empty_store_freezes_cleanly() {
        let f = TripleStore::new().freeze();
        assert!(f.is_empty());
        assert!(f.to_dataset().is_empty());
    }
}
