//! VoID-style dataset statistics.
//!
//! The Linked Data best-practices study the paper cites (Schmachtenberg et
//! al., ISWC 2014 \[6\]) characterises KBs by exactly these numbers: triple
//! counts, distinct subjects/objects, vocabulary (predicate) usage and link
//! degree. The ER experiment harness prints them per generated KB so the
//! synthetic worlds can be sanity-checked against the paper's narrative
//! (centre = dense + shared vocabulary, periphery = sparse + proprietary).

use crate::dict::{TermId, TermKind};
use crate::store::{FrozenStore, GraphId};
use minoan_common::FxHashSet;

/// Statistics of one graph (knowledge base).
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Graph name.
    pub name: String,
    /// Distinct triples.
    pub triples: usize,
    /// Distinct subjects.
    pub subjects: usize,
    /// Distinct predicates (the graph's vocabulary).
    pub predicates: usize,
    /// Distinct objects.
    pub objects: usize,
    /// Triples whose object is an IRI or blank node (links).
    pub object_links: usize,
    /// Triples whose object is a literal.
    pub literal_triples: usize,
}

/// Statistics of the whole store.
#[derive(Clone, Debug)]
pub struct StoreStats {
    /// Per-graph breakdown, in graph-id order.
    pub graphs: Vec<GraphStats>,
    /// Distinct triples overall.
    pub triples: usize,
    /// Dictionary size (distinct terms).
    pub terms: usize,
    /// Distinct predicates overall.
    pub predicates: usize,
    /// Predicates used by exactly one graph — the "proprietary vocabulary"
    /// ratio the paper quotes (58.24% of LOD vocabularies are used by a
    /// single KB).
    pub proprietary_predicates: usize,
    /// Per-predicate triple counts, descending.
    pub predicate_histogram: Vec<(TermId, usize)>,
}

impl StoreStats {
    /// Computes statistics over a frozen store.
    pub fn compute(store: &FrozenStore) -> Self {
        let mut graphs = Vec::with_capacity(store.graphs().len());
        // predicate → bitset of graphs using it (small graph counts, Vec is fine)
        let mut pred_graphs: minoan_common::FxHashMap<TermId, FxHashSet<u16>> =
            minoan_common::FxHashMap::default();
        for (gi, info) in store.graphs().iter().enumerate() {
            let g = GraphId(gi as u16);
            let triples = store.graph_triples(g);
            let mut subjects: FxHashSet<TermId> = FxHashSet::default();
            let mut predicates: FxHashSet<TermId> = FxHashSet::default();
            let mut objects: FxHashSet<TermId> = FxHashSet::default();
            let mut object_links = 0usize;
            let mut literal_triples = 0usize;
            for t in triples {
                subjects.insert(t.s);
                predicates.insert(t.p);
                objects.insert(t.o);
                pred_graphs.entry(t.p).or_default().insert(gi as u16);
                match store.dict().kind(t.o) {
                    TermKind::Literal => literal_triples += 1,
                    TermKind::Iri | TermKind::Blank => object_links += 1,
                }
            }
            graphs.push(GraphStats {
                name: info.name.to_string(),
                triples: triples.len(),
                subjects: subjects.len(),
                predicates: predicates.len(),
                objects: objects.len(),
                object_links,
                literal_triples,
            });
        }
        let mut predicate_histogram: Vec<(TermId, usize)> =
            store.pos().first_component_runs().into_iter().collect();
        predicate_histogram.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let proprietary = pred_graphs.values().filter(|g| g.len() == 1).count();
        StoreStats {
            triples: store.len(),
            terms: store.dict().len(),
            predicates: predicate_histogram.len(),
            proprietary_predicates: proprietary,
            predicate_histogram,
            graphs,
        }
    }

    /// Fraction of predicates used by a single graph, in `[0, 1]`.
    pub fn proprietary_ratio(&self) -> f64 {
        if self.predicates == 0 {
            0.0
        } else {
            self.proprietary_predicates as f64 / self.predicates as f64
        }
    }

    /// Renders a compact plain-text report.
    pub fn render(&self, store: &FrozenStore) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "store: {} triples, {} terms, {} predicates ({:.1}% proprietary)",
            self.triples,
            self.terms,
            self.predicates,
            100.0 * self.proprietary_ratio()
        );
        for g in &self.graphs {
            let _ = writeln!(
                out,
                "  {}: {} triples, {} subjects, {} predicates, {} links, {} literals",
                g.name, g.triples, g.subjects, g.predicates, g.object_links, g.literal_triples
            );
        }
        let _ = writeln!(out, "  top predicates:");
        for (p, n) in self.predicate_histogram.iter().take(5) {
            let _ = writeln!(out, "    {} × {}", store.dict().text(*p), n);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TripleStore;
    use crate::triple::Term;

    fn sample() -> FrozenStore {
        let mut s = TripleStore::new();
        let g0 = s.create_graph("center");
        let g1 = s.create_graph("periphery");
        // Shared predicate across both graphs.
        s.insert(
            g0,
            Term::iri("http://a/1"),
            Term::iri("http://shared/label"),
            Term::literal("x"),
        );
        s.insert(
            g1,
            Term::iri("http://b/1"),
            Term::iri("http://shared/label"),
            Term::literal("y"),
        );
        // Proprietary predicates.
        s.insert(
            g0,
            Term::iri("http://a/1"),
            Term::iri("http://a/only"),
            Term::iri("http://a/2"),
        );
        s.insert(
            g1,
            Term::iri("http://b/1"),
            Term::iri("http://b/only"),
            Term::literal("z"),
        );
        s.insert(
            g1,
            Term::iri("http://b/2"),
            Term::iri("http://b/only"),
            Term::literal("w"),
        );
        s.freeze()
    }

    #[test]
    fn per_graph_counts() {
        let f = sample();
        let st = f.stats();
        assert_eq!(st.graphs.len(), 2);
        let g0 = &st.graphs[0];
        assert_eq!(g0.triples, 2);
        assert_eq!(g0.subjects, 1);
        assert_eq!(g0.predicates, 2);
        assert_eq!(g0.object_links, 1);
        assert_eq!(g0.literal_triples, 1);
        let g1 = &st.graphs[1];
        assert_eq!(g1.triples, 3);
        assert_eq!(g1.subjects, 2);
    }

    #[test]
    fn proprietary_ratio_counts_single_graph_predicates() {
        let f = sample();
        let st = f.stats();
        assert_eq!(st.predicates, 3);
        assert_eq!(st.proprietary_predicates, 2);
        assert!((st.proprietary_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_is_descending() {
        let f = sample();
        let st = f.stats();
        assert!(st.predicate_histogram.windows(2).all(|w| w[0].1 >= w[1].1));
        // shared/label and b/only both have 2 triples; a/only has 1 and is last.
        assert_eq!(st.predicate_histogram[0].1, 2);
        assert_eq!(st.predicate_histogram[1].1, 2);
        assert_eq!(f.dict().text(st.predicate_histogram[2].0), "http://a/only");
    }

    #[test]
    fn render_mentions_graphs() {
        let f = sample();
        let st = f.stats();
        let text = st.render(&f);
        assert!(text.contains("center"));
        assert!(text.contains("periphery"));
        assert!(text.contains("top predicates"));
    }

    #[test]
    fn empty_store_stats() {
        let f = TripleStore::new().freeze();
        let st = f.stats();
        assert_eq!(st.triples, 0);
        assert_eq!(st.proprietary_ratio(), 0.0);
    }
}
