//! Terms and encoded triples.

use std::fmt;

/// An owned RDF term as presented to the store API.
///
/// This mirrors [`minoan_rdf::Term`] but is owned by this crate so the
/// store can be used standalone; [`crate::store::TripleStore`] accepts both
/// via `From` conversions.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// An IRI reference.
    Iri(Box<str>),
    /// A plain literal (lexical form only — language tags and datatypes
    /// are normalised away by the parser upstream, matching what the
    /// schema-agnostic ER algorithms consume).
    Literal(Box<str>),
    /// A blank node label (scoped to its graph by the caller).
    Blank(Box<str>),
}

impl Term {
    /// IRI constructor.
    pub fn iri(s: impl Into<Box<str>>) -> Self {
        Term::Iri(s.into())
    }

    /// Literal constructor.
    pub fn literal(s: impl Into<Box<str>>) -> Self {
        Term::Literal(s.into())
    }

    /// Blank-node constructor.
    pub fn blank(s: impl Into<Box<str>>) -> Self {
        Term::Blank(s.into())
    }

    /// The lexical content irrespective of kind.
    pub fn text(&self) -> &str {
        match self {
            Term::Iri(s) | Term::Literal(s) | Term::Blank(s) => s,
        }
    }

    /// The term's kind tag.
    pub fn kind(&self) -> crate::dict::TermKind {
        match self {
            Term::Iri(_) => crate::dict::TermKind::Iri,
            Term::Literal(_) => crate::dict::TermKind::Literal,
            Term::Blank(_) => crate::dict::TermKind::Blank,
        }
    }
}

impl From<&minoan_rdf::Term> for Term {
    fn from(t: &minoan_rdf::Term) -> Self {
        match t {
            minoan_rdf::Term::Iri(s) => Term::Iri(s.clone().into_boxed_str()),
            minoan_rdf::Term::Literal(l) => Term::Literal(l.value.clone().into_boxed_str()),
            minoan_rdf::Term::Blank(b) => Term::Blank(b.clone().into_boxed_str()),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(s) => write!(f, "<{s}>"),
            Term::Literal(s) => write!(f, "{s:?}"),
            Term::Blank(s) => write!(f, "_:{s}"),
        }
    }
}

/// A triple with all three positions dictionary-encoded.
///
/// Twelve bytes; ordering is the SPO order, which makes `Vec<EncodedTriple>`
/// sortable directly for the primary index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EncodedTriple {
    /// Subject id.
    pub s: crate::dict::TermId,
    /// Predicate id.
    pub p: crate::dict::TermId,
    /// Object id.
    pub o: crate::dict::TermId,
}

impl EncodedTriple {
    /// Constructor.
    #[inline]
    pub fn new(s: crate::dict::TermId, p: crate::dict::TermId, o: crate::dict::TermId) -> Self {
        Self { s, p, o }
    }

    /// The triple permuted into POS order (for the POS index).
    #[inline]
    pub fn pos_key(
        &self,
    ) -> (
        crate::dict::TermId,
        crate::dict::TermId,
        crate::dict::TermId,
    ) {
        (self.p, self.o, self.s)
    }

    /// The triple permuted into OSP order (for the OSP index).
    #[inline]
    pub fn osp_key(
        &self,
    ) -> (
        crate::dict::TermId,
        crate::dict::TermId,
        crate::dict::TermId,
    ) {
        (self.o, self.s, self.p)
    }
}

impl fmt::Debug for EncodedTriple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?} {:?} {:?})", self.s, self.p, self.o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::TermId;

    #[test]
    fn term_constructors_and_text() {
        assert_eq!(Term::iri("http://x").text(), "http://x");
        assert_eq!(Term::literal("v").text(), "v");
        assert_eq!(Term::blank("b1").text(), "b1");
    }

    #[test]
    fn term_display_forms() {
        assert_eq!(Term::iri("http://x").to_string(), "<http://x>");
        assert_eq!(Term::literal("a\"b").to_string(), "\"a\\\"b\"");
        assert_eq!(Term::blank("n").to_string(), "_:n");
    }

    #[test]
    fn rdf_term_conversion_preserves_kind() {
        use crate::dict::TermKind;
        let iri = minoan_rdf::Term::iri("http://x".to_string());
        assert_eq!(Term::from(&iri).kind(), TermKind::Iri);
        let lit = minoan_rdf::Term::literal("v".to_string());
        assert_eq!(Term::from(&lit).kind(), TermKind::Literal);
    }

    #[test]
    fn encoded_triple_orders_spo() {
        let a = EncodedTriple::new(TermId(1), TermId(9), TermId(9));
        let b = EncodedTriple::new(TermId(2), TermId(0), TermId(0));
        assert!(a < b, "subject dominates the SPO order");
    }

    #[test]
    fn permutation_keys() {
        let t = EncodedTriple::new(TermId(1), TermId(2), TermId(3));
        assert_eq!(t.pos_key(), (TermId(2), TermId(3), TermId(1)));
        assert_eq!(t.osp_key(), (TermId(3), TermId(1), TermId(2)));
    }
}
