//! Subcommand implementations.
//!
//! Every command returns the full text it would print, so the test suite
//! drives commands end-to-end and asserts on the output; `main` only
//! forwards to [`run`] and prints.

use crate::args::{ArgError, Args};
use minoan_blocking::{CanopyConfig, ErMode, LshConfig};
use minoan_datagen::{generate, profiles, ArrivalOrder, WorldConfig};
use minoan_er::clustering::ClusteringAlgorithm;
use minoan_er::pipeline::{BlockingMethod, Pipeline, PipelineConfig};
use minoan_er::{
    BenefitModel, IncrementalConfig, IncrementalResolver, Matcher, MatcherConfig, ResolverConfig,
    Strategy,
};
use minoan_eval::{metrics, progressive_curves, recall_auc};
use minoan_rdf::KbId;
use minoan_server::{Client, ResolveService, Server};
use minoan_store::{FrozenStore, TripleStore};
use std::fmt::Write as _;
use std::path::Path;

/// A CLI failure with a user-facing message.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError(e.0)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("i/o error: {e}"))
    }
}

const FLAGS: [&str; 4] = ["no-purge", "dirty", "stats", "shutdown"];

/// Entry point: parses `argv` (without program name) and runs the command.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv, &FLAGS)?;
    match args.command.as_str() {
        "help" => Ok(help()),
        "generate" => cmd_generate(&args),
        "stats" => cmd_stats(&args),
        "snapshot" => cmd_snapshot(&args),
        "inspect" => cmd_inspect(&args),
        "resolve" => cmd_resolve(&args),
        "eval" => cmd_eval(&args),
        "stream" => cmd_stream(&args),
        "incremental" => cmd_incremental(&args),
        "serve" => cmd_serve(&args),
        "query" => cmd_query(&args),
        other => Err(CliError(format!(
            "unknown command {other:?}; try `minoan help`"
        ))),
    }
}

fn help() -> String {
    "minoan — progressive entity resolution in the Web of Data (EDBT 2016 reproduction)

COMMANDS
  generate  --profile P --entities N --seed S --out DIR
            Generate a synthetic LOD world: one N-Triples file per KB plus
            truth.tsv with the ground-truth matching URI pairs.
  stats     --input FILE.nt [--input FILE.nt ...]
            Load KBs into the triple store and print VoID-style statistics.
  snapshot  --input FILE.nt [--input ...] --out FILE.mnstore
            Build a dictionary-encoded store snapshot.
  inspect   --snapshot FILE.mnstore
            Print statistics of a snapshot.
  resolve   --input FILE.nt --input FILE.nt [--strategy S] [--budget N]
            [--blocking B] [--backend materialized|streaming|mapreduce]
            [--workers N] [--pruning P] [--weighting W] [--show K]
            [--no-purge] [--dirty]
            Run the full pipeline over N-Triples/Turtle KBs and print
            matches.
  eval      --profile P --entities N --seed S [--strategy S] [--budget N]
            [--backend materialized|streaming|mapreduce] [--workers N]
            [--pruning P] [--weighting W] [--clustering A]
            Generate a world, resolve it, and score against ground truth;
            with --clustering also report cluster-level quality.
  stream    --profile P --entities N --seed S [--order O] [--arrival-budget N]
            Run the incremental resolver over a synthetic arrival stream.
  incremental
            --profile P --entities N --seed S [--batch-size N] [--order O]
            [--weighting W] [--pruning P] [--workers N] [--dirty]
            Feed a synthetic arrival stream into the updatable
            meta-blocking session batch by batch and report how much of
            each batch was handled by delta-sweeps vs full re-sweeps.
  serve     --profile P --entities N --seed S [--weighting W] [--pruning P]
            [--workers N] [--sweep-workers N] [--cache N] [--preload N]
            [--port N] [--addr-file PATH] [--dirty]
            Run the query-time resolution server over a synthetic world:
            answers RESOLVE/INGEST/STATS/SHUTDOWN on a TCP socket until a
            client sends SHUTDOWN. Port 0 picks an ephemeral port;
            --addr-file writes the bound address for scripts to discover.
  query     --addr HOST:PORT [--entity N] [--ingest 1,2,3] [--show K]
            [--stats] [--shutdown]
            Drive a running resolution server: ingest a batch, resolve an
            entity, print server stats, or shut it down.

PROFILES  center | periphery | center-periphery | lod | dirty | restaurants
          | rexa-dblp | bbc-dbpedia | yago-imdb
STRATEGIES  batch | random | static | progressive:pairs|attrs|coverage|links
ORDERS    kb-sequential | round-robin | shuffled | clustered
CLUSTERING  connected-components | center | merge-center | unique-mapping
BLOCKING  token | uri-infix | token+uri | attr-clustering | qgrams |
          sorted-neighborhood | minhash-lsh | canopy
PRUNING   none | wep | cep | wnp | wnp-reciprocal | cnp | cnp-reciprocal
          | blast
          (every method runs under every --backend, bit-identically;
          --workers pins the streaming/mapreduce parallelism)
WEIGHTING cbs | ecbs | js | ejs | arcs
"
    .to_string()
}

fn profile_by_name(name: &str, entities: usize, seed: u64) -> Result<WorldConfig, CliError> {
    Ok(match name {
        "center" => profiles::center_dense(entities, seed),
        "periphery" => profiles::periphery_sparse(entities, seed),
        "center-periphery" => profiles::center_periphery(entities, seed),
        "lod" => profiles::lod_cloud(entities, seed),
        "dirty" => profiles::dirty_single(entities, seed),
        "restaurants" => profiles::restaurants(seed),
        "rexa-dblp" => profiles::rexa_dblp(entities, seed),
        "bbc-dbpedia" => profiles::bbc_music_dbpedia(entities, seed),
        "yago-imdb" => profiles::yago_imdb(entities, seed),
        other => return Err(CliError(format!("unknown profile {other:?}"))),
    })
}

fn strategy_by_name(name: &str) -> Result<Strategy, CliError> {
    Ok(match name {
        "batch" => Strategy::Batch,
        "random" => Strategy::Random { seed: 0 },
        "static" => Strategy::StaticBestFirst,
        "progressive" | "progressive:pairs" => Strategy::Progressive(BenefitModel::PairQuantity),
        "progressive:attrs" => Strategy::Progressive(BenefitModel::AttributeCompleteness),
        "progressive:coverage" => Strategy::Progressive(BenefitModel::EntityCoverage),
        "progressive:links" => Strategy::Progressive(BenefitModel::RelationshipCompleteness),
        other => return Err(CliError(format!("unknown strategy {other:?}"))),
    })
}

fn cmd_generate(args: &Args) -> Result<String, CliError> {
    let profile = args.require("profile")?;
    let entities = args.get_parsed("entities", 500usize)?;
    let seed = args.get_parsed("seed", 42u64)?;
    let out_dir = Path::new(args.require("out")?).to_path_buf();
    let config = profile_by_name(profile, entities, seed)?;
    let world = generate(&config);
    std::fs::create_dir_all(&out_dir)?;
    let mut report = String::new();
    for kb in 0..world.dataset.kb_count() {
        let id = KbId(kb as u16);
        let info = world.dataset.kb(id);
        let path = out_dir.join(format!("{}.nt", info.name));
        std::fs::write(&path, world.dataset.to_ntriples(id))?;
        let _ = writeln!(
            report,
            "wrote {} ({} descriptions)",
            path.display(),
            info.entity_count
        );
    }
    let truth_path = out_dir.join("truth.tsv");
    let mut truth = String::new();
    for (a, b) in world.truth.matching_pair_iter() {
        let _ = writeln!(truth, "{}\t{}", world.dataset.uri(a), world.dataset.uri(b));
    }
    std::fs::write(&truth_path, truth)?;
    let _ = writeln!(
        report,
        "wrote {} ({} matching pairs)",
        truth_path.display(),
        world.truth.matching_pairs()
    );
    Ok(report)
}

fn load_store(inputs: &[String]) -> Result<FrozenStore, CliError> {
    if inputs.is_empty() {
        return Err(CliError("at least one --input is required".into()));
    }
    let mut store = TripleStore::new();
    for path in inputs {
        let name = Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("kb")
            .to_string();
        let doc = std::fs::read_to_string(path)
            .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
        if path.ends_with(".ttl") || path.ends_with(".turtle") {
            store
                .load_turtle(&name, &doc)
                .map_err(|e| CliError(format!("{path}: {e}")))?;
        } else {
            store
                .load_ntriples(&name, &doc)
                .map_err(|e| CliError(format!("{path}: {e}")))?;
        }
    }
    Ok(store.freeze())
}

fn cmd_stats(args: &Args) -> Result<String, CliError> {
    let store = load_store(args.get_all("input"))?;
    Ok(store.stats().render(&store))
}

fn cmd_snapshot(args: &Args) -> Result<String, CliError> {
    let store = load_store(args.get_all("input"))?;
    let out = args.require("out")?;
    store
        .save(out)
        .map_err(|e| CliError(format!("cannot write snapshot: {e}")))?;
    Ok(format!(
        "snapshot {} written: {} triples, {} terms, {} graphs\n",
        out,
        store.len(),
        store.dict().len(),
        store.graphs().len()
    ))
}

fn cmd_inspect(args: &Args) -> Result<String, CliError> {
    let path = args.require("snapshot")?;
    let store =
        FrozenStore::load(path).map_err(|e| CliError(format!("cannot load snapshot: {e}")))?;
    Ok(store.stats().render(&store))
}

fn blocking_by_name(name: &str) -> Result<BlockingMethod, CliError> {
    use minoan_blocking::Method;
    Ok(match name {
        "token" => BlockingMethod::Token,
        "uri-infix" => BlockingMethod::UriInfix,
        "token+uri" => BlockingMethod::TokenAndUri,
        "attr-clustering" => BlockingMethod::AttributeClustering {
            link_threshold: 0.3,
        },
        "qgrams" => BlockingMethod::Custom(Method::QGrams(3)),
        "sorted-neighborhood" => BlockingMethod::Custom(Method::SortedNeighborhood(6)),
        "minhash-lsh" => BlockingMethod::Custom(Method::MinHashLsh(LshConfig::default())),
        "canopy" => BlockingMethod::Custom(Method::Canopy(CanopyConfig::default())),
        other => return Err(CliError(format!("unknown blocking method {other:?}"))),
    })
}

fn pruning_by_name(name: &str) -> Result<minoan_er::pipeline::PruningMethod, CliError> {
    use minoan_er::pipeline::PruningMethod;
    Ok(match name {
        "none" => PruningMethod::None,
        "wep" => PruningMethod::Wep,
        "cep" => PruningMethod::Cep(None),
        "wnp" => PruningMethod::Wnp { reciprocal: false },
        "wnp-reciprocal" => PruningMethod::Wnp { reciprocal: true },
        "cnp" => PruningMethod::Cnp {
            reciprocal: false,
            k: None,
        },
        "cnp-reciprocal" => PruningMethod::Cnp {
            reciprocal: true,
            k: None,
        },
        "blast" => PruningMethod::blast(),
        other => {
            return Err(CliError(format!(
                "unknown pruning method {other:?}; valid: none | wep | cep | wnp | \
                 wnp-reciprocal | cnp | cnp-reciprocal | blast"
            )))
        }
    })
}

fn weighting_by_name(name: &str) -> Result<minoan_metablocking::WeightingScheme, CliError> {
    use minoan_metablocking::WeightingScheme;
    Ok(match name {
        "cbs" => WeightingScheme::Cbs,
        "ecbs" => WeightingScheme::Ecbs,
        "js" => WeightingScheme::Js,
        "ejs" => WeightingScheme::Ejs,
        "arcs" => WeightingScheme::Arcs,
        other => {
            return Err(CliError(format!(
                "unknown weighting scheme {other:?}; valid: cbs | ecbs | js | ejs | arcs"
            )))
        }
    })
}

/// Parses `--key` as a count ≥ 1. Zero, negatives and garbage all fail
/// with the expected range spelled out, the same way the backend error
/// lists its valid spellings — a typo must not silently pick a default.
fn positive_count(args: &Args, key: &str) -> Result<Option<usize>, CliError> {
    match args.get(key) {
        None => Ok(None),
        Some(raw) => raw
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .map(Some)
            .ok_or_else(|| {
                CliError(format!(
                    "option --{key}: expected a count ≥ 1, got {raw:?} \
                     (valid spellings: 1, 2, 3, …)"
                ))
            }),
    }
}

fn pipeline_config(args: &Args) -> Result<PipelineConfig, CliError> {
    let mut config = PipelineConfig::default();
    if args.flag("dirty") {
        config.mode = ErMode::Dirty;
    }
    if let Some(b) = args.get("blocking") {
        config.blocking = blocking_by_name(b)?;
    }
    if args.flag("no-purge") {
        config.purge = false;
    }
    if let Some(s) = args.get("strategy") {
        config.resolver.strategy = strategy_by_name(s)?;
    }
    if let Some(p) = args.get("pruning") {
        config.pruning = pruning_by_name(p)?;
    }
    if let Some(w) = args.get("weighting") {
        config.weighting = weighting_by_name(w)?;
    }
    if let Some(b) = args.get("backend") {
        config.backend = minoan_metablocking::ExecutionBackend::parse(b).ok_or_else(|| {
            CliError(format!(
                "unknown backend {b:?}; valid spellings: materialized | streaming | mapreduce"
            ))
        })?;
    }
    if let Some(workers) = positive_count(args, "workers")? {
        config.workers = Some(workers);
    }
    config.resolver.budget = args.get_parsed("budget", u64::MAX)?;
    config.matcher.threshold = args.get_parsed("threshold", config.matcher.threshold)?;
    Ok(config)
}

fn cmd_resolve(args: &Args) -> Result<String, CliError> {
    let store = load_store(args.get_all("input"))?;
    let dataset = store.to_dataset();
    let config = pipeline_config(args)?;
    let show = args.get_parsed("show", 10usize)?;
    let out = Pipeline::new(config).run(&dataset);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "{} KBs, {} descriptions | blocks {} → {} | candidates {} | comparisons {} | matches {} | discovered {}",
        dataset.kb_count(),
        dataset.len(),
        out.blocks_raw.0,
        out.blocks_clean.0,
        out.candidates,
        out.resolution.comparisons,
        out.resolution.matches.len(),
        out.resolution.discovered_candidates,
    );
    for (a, b, score) in out.resolution.matches.iter().take(show) {
        let _ = writeln!(
            report,
            "  {:.3}  {}  ≡  {}",
            score,
            dataset.uri(*a),
            dataset.uri(*b)
        );
    }
    if out.resolution.matches.len() > show {
        let _ = writeln!(report, "  … {} more", out.resolution.matches.len() - show);
    }
    Ok(report)
}

fn cmd_eval(args: &Args) -> Result<String, CliError> {
    let profile = args.require("profile")?;
    let entities = args.get_parsed("entities", 300usize)?;
    let seed = args.get_parsed("seed", 42u64)?;
    let world = generate(&profile_by_name(profile, entities, seed)?);
    let mut config = pipeline_config(args)?;
    if profile == "dirty" {
        config.mode = ErMode::Dirty;
    }
    let out = Pipeline::new(config).run(&world.dataset);
    let quality = metrics::resolution_quality(&world.truth, &out.resolution);
    let curves = progressive_curves(&world.dataset, &world.truth, &out.resolution.trace, 20);
    let auc = recall_auc(&curves);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "profile {profile} entities {entities} seed {seed}: precision {:.3} recall {:.3} f1 {:.3} auc {:.3} comparisons {}",
        quality.precision,
        quality.recall,
        quality.f1,
        auc,
        out.resolution.comparisons
    );
    if let Some(alg_name) = args.get("clustering") {
        let alg = clustering_by_name(alg_name)?;
        let clusters = alg.run(world.dataset.len(), &out.resolution.matches, |e| {
            world.dataset.kb_of(e).0
        });
        let truth_clusters: Vec<Vec<u32>> = world
            .truth
            .clusters()
            .iter()
            .filter(|c| c.len() >= 2)
            .map(|c| c.iter().map(|e| e.0).collect())
            .collect();
        let cq = minoan_eval::cluster_quality(world.dataset.len(), &clusters, &truth_clusters);
        let _ = writeln!(
            report,
            "clustering {}: {} clusters, pairwise F1 {:.3}, b-cubed F1 {:.3}, VI {:.3}",
            alg.name(),
            clusters.len(),
            cq.pairwise.f1,
            cq.bcubed.f1,
            cq.vi
        );
    }
    Ok(report)
}

fn clustering_by_name(name: &str) -> Result<ClusteringAlgorithm, CliError> {
    Ok(match name {
        "connected-components" => ClusteringAlgorithm::ConnectedComponents,
        "center" => ClusteringAlgorithm::Center,
        "merge-center" => ClusteringAlgorithm::MergeCenter,
        "unique-mapping" => ClusteringAlgorithm::UniqueMapping,
        other => return Err(CliError(format!("unknown clustering algorithm {other:?}"))),
    })
}

fn arrival_order(name: &str, seed: u64) -> Result<ArrivalOrder, CliError> {
    Ok(match name {
        "kb-sequential" => ArrivalOrder::KbSequential,
        "round-robin" => ArrivalOrder::RoundRobin,
        "shuffled" => ArrivalOrder::Shuffled { seed },
        "clustered" => ArrivalOrder::ClusteredBursts,
        other => return Err(CliError(format!("unknown arrival order {other:?}"))),
    })
}

fn cmd_stream(args: &Args) -> Result<String, CliError> {
    let profile = args.require("profile")?;
    let entities = args.get_parsed("entities", 300usize)?;
    let seed = args.get_parsed("seed", 42u64)?;
    let world = generate(&profile_by_name(profile, entities, seed)?);
    let order = arrival_order(args.get("order").unwrap_or("shuffled"), seed)?;
    let config = IncrementalConfig {
        budget_per_arrival: args.get_parsed("arrival-budget", 10u64)?,
        ..Default::default()
    };
    let matcher = Matcher::new(&world.dataset, MatcherConfig::default());
    let mut resolver = IncrementalResolver::new(&world.dataset, &matcher, config);
    resolver.arrive_all(order.order(&world.dataset, &world.truth));
    let pairs: Vec<_> = resolver.matches().iter().map(|&(a, b, _)| (a, b)).collect();
    let quality = metrics::match_quality(&world.truth, &pairs);
    Ok(format!(
        "stream {} over {profile}/{entities}: precision {:.3} recall {:.3} comparisons {} clusters {}\n",
        order.name(),
        quality.precision,
        quality.recall,
        resolver.comparisons(),
        resolver.clusters().len()
    ))
}

fn cmd_incremental(args: &Args) -> Result<String, CliError> {
    let profile = args.require("profile")?;
    let entities = args.get_parsed("entities", 300usize)?;
    let seed = args.get_parsed("seed", 42u64)?;
    let batch_size = positive_count(args, "batch-size")?.unwrap_or(50);
    let world = generate(&profile_by_name(profile, entities, seed)?);
    let order = arrival_order(args.get("order").unwrap_or("shuffled"), seed)?;
    let mode = if args.flag("dirty") || profile == "dirty" {
        ErMode::Dirty
    } else {
        ErMode::CleanClean
    };
    let mut session = minoan_metablocking::IncrementalSession::new(&world.dataset, mode);
    if let Some(w) = args.get("weighting") {
        session.scheme(weighting_by_name(w)?);
    }
    if let Some(p) = args.get("pruning") {
        session.pruning(pruning_by_name(p)?);
    }
    if let Some(workers) = positive_count(args, "workers")? {
        session.workers(workers);
    }
    let mut report = String::new();
    let mut delta_batches = 0usize;
    let mut swept = 0usize;
    let mut dirty = 0usize;
    let batches = order.batches(&world.dataset, &world.truth, batch_size);
    let num_batches = batches.len();
    for batch in batches {
        let r = session.ingest(&batch);
        if r.delta {
            delta_batches += 1;
            swept += r.swept_entities;
            dirty += r.dirty_entities;
        }
        let _ = writeln!(
            report,
            "batch +{:<4} arrived {:<6} blocks touched {:<5} dirty {:<5} swept {:<5} {}",
            r.arrived,
            r.num_arrived,
            r.touched_blocks,
            r.dirty_entities,
            r.swept_entities,
            if r.delta { "delta" } else { "full" },
        );
    }
    let outcome = session.outcome();
    let _ = writeln!(
        report,
        "incremental {} over {profile}/{entities} batch-size {batch_size}: \
         {delta_batches}/{num_batches} delta batches, {swept} entities swept \
         ({dirty} dirty), kept {} of {} comparisons (retention {:.3})",
        order.name(),
        outcome.pairs().len(),
        outcome.input_edges(),
        outcome.retention(),
    );
    Ok(report)
}

fn cmd_serve(args: &Args) -> Result<String, CliError> {
    let profile = args.require("profile")?;
    let entities = args.get_parsed("entities", 300usize)?;
    let seed = args.get_parsed("seed", 42u64)?;
    let world = generate(&profile_by_name(profile, entities, seed)?);
    let mode = if args.flag("dirty") || profile == "dirty" {
        ErMode::Dirty
    } else {
        ErMode::CleanClean
    };
    // Defaults mirror the incremental session's (ARCS × WNP).
    let scheme = match args.get("weighting") {
        Some(w) => weighting_by_name(w)?,
        None => minoan_metablocking::WeightingScheme::Arcs,
    };
    let pruning = match args.get("pruning") {
        Some(p) => pruning_by_name(p)?,
        None => minoan_er::pipeline::PruningMethod::Wnp { reciprocal: false },
    };
    let cache = args.get_parsed("cache", 1024usize)?;
    let preload = args.get_parsed("preload", 0usize)?;
    let workers = positive_count(args, "workers")?.unwrap_or(2);
    let port = args.get_parsed("port", 0u16)?;
    let service = ResolveService::new(&world.dataset, mode, scheme, pruning, cache);
    if let Some(sweep) = positive_count(args, "sweep-workers")? {
        service.sweep_workers(sweep);
    }
    if preload > 0 {
        let n = preload.min(world.dataset.len());
        let ids: Vec<u32> = (0..n as u32).collect();
        service
            .ingest(&ids)
            .map_err(|e| CliError(e.message().into()))?;
    }
    let server = Server::bind(("127.0.0.1", port), service, workers)?;
    let addr = server.local_addr()?;
    let mut report = String::new();
    let _ = writeln!(
        report,
        "listening on {addr} ({profile}/{entities}, cache {cache}, {workers} workers)"
    );
    if let Some(path) = args.get("addr-file") {
        // Scripts discover the ephemeral port here before we block in run().
        std::fs::write(path, format!("{addr}\n"))?;
    }
    server.run()?;
    let stats = server.service().service_stats();
    let _ = writeln!(
        report,
        "served {} resolves ({} coalesced, {} cache hits, {} misses), {} ingests",
        stats.resolves, stats.coalesced, stats.cache_hits, stats.cache_misses, stats.ingests
    );
    Ok(report)
}

fn parse_id_list(raw: &str) -> Result<Vec<u32>, CliError> {
    raw.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|t| {
            t.parse::<u32>()
                .map_err(|_| CliError(format!("option --ingest: cannot parse entity id {t:?}")))
        })
        .collect()
}

fn cmd_query(args: &Args) -> Result<String, CliError> {
    let addr = args.require("addr")?;
    let mut client =
        Client::connect(addr).map_err(|e| CliError(format!("cannot connect to {addr}: {e}")))?;
    let mut report = String::new();
    if let Some(raw) = args.get("ingest") {
        let ids = parse_id_list(raw)?;
        let r = client.ingest(&ids)?;
        let _ = writeln!(
            report,
            "ingested {}: version {} swept {} invalidated {} {}",
            r.arrived,
            r.version,
            r.swept,
            r.invalidated,
            if r.delta { "delta" } else { "full" },
        );
    }
    if let Some(raw) = args.get("entity") {
        let entity: u32 = raw
            .parse()
            .map_err(|_| CliError(format!("option --entity: cannot parse {raw:?}")))?;
        let r = client.resolve(entity)?;
        let show = args.get_parsed("show", 10usize)?;
        let pairs = r.weighted_pairs();
        let _ = writeln!(
            report,
            "entity {} @ version {}: {} matches",
            r.entity,
            r.version,
            pairs.len()
        );
        for p in pairs.iter().take(show) {
            let _ = writeln!(report, "  {:.4}  {}  —  {}", p.weight, p.a.0, p.b.0);
        }
        if pairs.len() > show {
            let _ = writeln!(report, "  … {} more", pairs.len() - show);
        }
    }
    if args.flag("stats") {
        let s = client.stats()?;
        let _ = writeln!(
            report,
            "version {} arrived {} | resolves {} coalesced {} hits {} misses {} ingests {}",
            s.version,
            s.num_arrived,
            s.resolves,
            s.coalesced,
            s.cache_hits,
            s.cache_misses,
            s.ingests
        );
    }
    if args.flag("shutdown") {
        client.shutdown()?;
        let _ = writeln!(report, "server shut down");
    }
    if report.is_empty() {
        return Err(CliError(
            "query: nothing to do; pass --entity N, --ingest 1,2,3, --stats or --shutdown".into(),
        ));
    }
    Ok(report)
}

// Referenced so the unused-import lint stays honest even when the resolver
// strategies below are driven only from tests.
#[allow(dead_code)]
fn _assert_types(_: ResolverConfig) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(cmd: &str) -> Result<String, CliError> {
        let argv: Vec<String> = cmd.split_whitespace().map(|s| s.to_string()).collect();
        run(&argv)
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("minoan_cli_{tag}"));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn help_lists_commands() {
        let h = run_str("help").unwrap();
        for cmd in [
            "generate",
            "stats",
            "snapshot",
            "resolve",
            "eval",
            "stream",
            "incremental",
        ] {
            assert!(h.contains(cmd), "help missing {cmd}");
        }
    }

    #[test]
    fn unknown_command_is_friendly() {
        let err = run_str("frobnicate").unwrap_err();
        assert!(err.0.contains("frobnicate"));
    }

    #[test]
    fn generate_then_stats_then_resolve() {
        let dir = tmp_dir("pipeline");
        let out = run_str(&format!(
            "generate --profile center --entities 120 --seed 3 --out {}",
            dir.display()
        ))
        .unwrap();
        assert!(out.contains("truth.tsv"));
        // Find the generated KB files.
        let mut nts: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let p = e.unwrap().path();
                (p.extension().is_some_and(|x| x == "nt")).then(|| p.display().to_string())
            })
            .collect();
        nts.sort();
        assert_eq!(nts.len(), 2, "center profile emits two KBs");
        let stats = run_str(&format!("stats --input {} --input {}", nts[0], nts[1])).unwrap();
        assert!(stats.contains("store:"));
        let resolve = run_str(&format!(
            "resolve --input {} --input {} --show 3",
            nts[0], nts[1]
        ))
        .unwrap();
        assert!(resolve.contains("matches"), "resolve output: {resolve}");
        assert!(resolve.contains('≡'), "should print matched URI pairs");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_and_inspect_round_trip() {
        let dir = tmp_dir("snap");
        run_str(&format!(
            "generate --profile center --entities 80 --seed 5 --out {}",
            dir.display()
        ))
        .unwrap();
        let nts: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let p = e.unwrap().path();
                (p.extension().is_some_and(|x| x == "nt")).then(|| p.display().to_string())
            })
            .collect();
        let snap = dir.join("world.mnstore");
        let out = run_str(&format!(
            "snapshot --input {} --input {} --out {}",
            nts[0],
            nts[1],
            snap.display()
        ))
        .unwrap();
        assert!(out.contains("snapshot"));
        let inspect = run_str(&format!("inspect --snapshot {}", snap.display())).unwrap();
        assert!(inspect.contains("store:"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eval_reports_quality() {
        let out = run_str("eval --profile center --entities 150 --seed 7").unwrap();
        assert!(out.contains("precision"));
        assert!(out.contains("auc"));
    }

    #[test]
    fn eval_with_each_strategy() {
        for s in ["batch", "random", "static", "progressive:coverage"] {
            let out = run_str(&format!(
                "eval --profile center --entities 100 --seed 9 --strategy {s}"
            ))
            .unwrap();
            assert!(out.contains("recall"), "{s}: {out}");
        }
        assert!(run_str("eval --profile center --strategy bogus").is_err());
    }

    #[test]
    fn stream_command_runs_each_order() {
        for order in ["kb-sequential", "round-robin", "shuffled", "clustered"] {
            let out = run_str(&format!(
                "stream --profile center --entities 100 --seed 11 --order {order}"
            ))
            .unwrap();
            assert!(out.contains(order), "{out}");
            assert!(out.contains("recall"));
        }
    }

    #[test]
    fn incremental_command_reports_delta_batches() {
        let out = run_str(
            "incremental --profile periphery --entities 120 --seed 11 \
             --batch-size 20 --weighting js --pruning wnp --workers 2",
        )
        .unwrap();
        assert!(out.contains("delta batches"), "{out}");
        assert!(out.contains("retention"), "{out}");
        // A supported scheme × pruning combination delta-sweeps every batch.
        assert!(!out.contains("full\n"), "{out}");
        assert!(out.contains("delta\n"), "{out}");
    }

    #[test]
    fn incremental_command_falls_back_for_unsupported_combos() {
        let out = run_str(
            "incremental --profile center --entities 80 --seed 3 \
             --batch-size 40 --weighting ecbs",
        )
        .unwrap();
        // ECBS has no delta path: every batch must be a full re-sweep.
        assert!(out.contains("0/"), "{out}");
        assert!(out.contains("full\n"), "{out}");
        assert!(!out.contains("delta\n"), "{out}");
    }

    #[test]
    fn incremental_command_rejects_bad_batch_size() {
        assert!(run_str("incremental --profile center --batch-size 0").is_err());
        assert!(run_str("incremental --profile center --batch-size lots").is_err());
    }

    #[test]
    fn eval_with_each_blocking_method() {
        for b in ["token", "qgrams", "minhash-lsh", "canopy"] {
            let out = run_str(&format!(
                "eval --profile center --entities 100 --seed 15 --blocking {b}"
            ))
            .unwrap();
            assert!(out.contains("precision"), "{b}: {out}");
        }
        assert!(run_str("eval --profile center --blocking bogus").is_err());
    }

    #[test]
    fn eval_with_clustering_reports_cluster_quality() {
        for alg in [
            "connected-components",
            "center",
            "merge-center",
            "unique-mapping",
        ] {
            let out = run_str(&format!(
                "eval --profile center --entities 100 --seed 13 --clustering {alg}"
            ))
            .unwrap();
            assert!(out.contains("b-cubed"), "{alg}: {out}");
        }
        assert!(run_str("eval --profile center --clustering bogus").is_err());
    }

    #[test]
    fn unknown_backend_lists_valid_spellings() {
        for cmd in [
            "eval --profile center --entities 40 --seed 1 --backend bogus",
            "eval --profile center --entities 40 --seed 1 --backend stream",
        ] {
            let err = run_str(cmd).unwrap_err();
            assert!(
                err.0.contains("materialized")
                    && err.0.contains("streaming")
                    && err.0.contains("mapreduce"),
                "error must list the valid spellings, got: {}",
                err.0
            );
        }
    }

    #[test]
    fn every_pruning_method_runs_under_every_backend() {
        for backend in ["materialized", "streaming", "mapreduce"] {
            for pruning in [
                "none",
                "wep",
                "cep",
                "wnp",
                "wnp-reciprocal",
                "cnp",
                "cnp-reciprocal",
                "blast",
            ] {
                let out = run_str(&format!(
                    "eval --profile center --entities 80 --seed 19 \
                     --backend {backend} --pruning {pruning} --workers 3"
                ))
                .unwrap();
                assert!(out.contains("precision"), "{backend}/{pruning}: {out}");
            }
        }
        assert!(run_str("eval --profile center --pruning bogus").is_err());
        assert!(run_str("eval --profile center --weighting bogus").is_err());
    }

    #[test]
    fn unknown_pruning_lists_blast_among_valid_spellings() {
        let err =
            run_str("eval --profile center --entities 40 --seed 1 --pruning bogus").unwrap_err();
        assert!(
            err.0.contains("blast") && err.0.contains("cnp-reciprocal"),
            "error must list the valid spellings incl. blast, got: {}",
            err.0
        );
    }

    #[test]
    fn blast_pruning_matches_across_backends_from_the_cli() {
        let base =
            run_str("eval --profile center --entities 100 --seed 27 --pruning blast").unwrap();
        assert!(base.contains("precision"), "{base}");
        for backend in ["streaming", "mapreduce"] {
            let other = run_str(&format!(
                "eval --profile center --entities 100 --seed 27 --pruning blast \
                 --backend {backend} --workers 3"
            ))
            .unwrap();
            assert_eq!(base, other, "{backend}");
        }
    }

    #[test]
    fn mapreduce_backend_matches_materialised_from_the_cli() {
        // The user-facing acceptance check: identical eval report (same
        // precision/recall/comparisons) whichever backend and worker
        // count the command line picks.
        let base = run_str("eval --profile center --entities 100 --seed 23 --pruning cnp").unwrap();
        for workers in [1, 8] {
            let mr = run_str(&format!(
                "eval --profile center --entities 100 --seed 23 --pruning cnp \
                 --backend mapreduce --workers {workers}"
            ))
            .unwrap();
            assert_eq!(base, mr, "workers={workers}");
        }
    }

    #[test]
    fn bad_worker_counts_are_rejected() {
        for w in ["0", "-3", "many"] {
            let err = run_str(&format!(
                "eval --profile center --entities 40 --seed 1 --workers {w}"
            ))
            .unwrap_err();
            assert!(err.0.contains("workers"), "{w}: {}", err.0);
        }
    }

    #[test]
    fn weighting_schemes_are_selectable() {
        for w in ["cbs", "ecbs", "js", "ejs", "arcs"] {
            let out = run_str(&format!(
                "eval --profile center --entities 60 --seed 21 --weighting {w} \
                 --backend streaming --pruning wep"
            ))
            .unwrap();
            assert!(out.contains("recall"), "{w}: {out}");
        }
    }

    #[test]
    fn serve_and_query_round_trip() {
        let dir = tmp_dir("serve");
        let addr_file = dir.join("addr.txt");
        std::fs::remove_file(&addr_file).ok();
        let serve_cmd = format!(
            "serve --profile center --entities 80 --seed 3 --weighting js --pruning wnp \
             --cache 64 --preload 40 --workers 2 --port 0 --addr-file {}",
            addr_file.display()
        );
        std::thread::scope(|s| {
            let server = s.spawn(move || run_str(&serve_cmd));
            // The server writes its ephemeral address before blocking.
            let addr = loop {
                if let Ok(text) = std::fs::read_to_string(&addr_file) {
                    if text.ends_with('\n') {
                        break text.trim().to_string();
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            };
            let resolve = run_str(&format!("query --addr {addr} --entity 7 --show 3")).unwrap();
            assert!(resolve.contains("entity 7 @ version 1"), "{resolve}");
            let ingest = run_str(&format!("query --addr {addr} --ingest 40,41,42")).unwrap();
            assert!(ingest.contains("ingested 3: version 2"), "{ingest}");
            // Re-ingesting an arrived entity is rejected but keeps serving.
            assert!(run_str(&format!("query --addr {addr} --ingest 40")).is_err());
            let stats = run_str(&format!("query --addr {addr} --stats")).unwrap();
            assert!(stats.contains("arrived 43"), "{stats}");
            let bye = run_str(&format!("query --addr {addr} --shutdown")).unwrap();
            assert!(bye.contains("shut down"), "{bye}");
            let report = server.join().unwrap().unwrap();
            assert!(report.contains("listening on"), "{report}");
            assert!(report.contains("resolves"), "{report}");
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn query_without_an_action_is_rejected() {
        let err = run_str("query --addr 127.0.0.1:1").unwrap_err();
        // Connection refused (nothing listening) or the no-action error —
        // either way the message names the problem.
        assert!(
            err.0.contains("cannot connect") || err.0.contains("nothing to do"),
            "{}",
            err.0
        );
    }

    #[test]
    fn serve_rejects_zero_counts_with_the_expected_range() {
        for cmd in [
            "serve --profile center --workers 0",
            "serve --profile center --sweep-workers 0",
            "incremental --profile center --batch-size 0",
            "eval --profile center --workers none",
        ] {
            let err = run_str(cmd).unwrap_err();
            assert!(err.0.contains("expected a count ≥ 1"), "{cmd}: {}", err.0);
        }
    }

    #[test]
    fn unknown_profile_rejected() {
        assert!(run_str("eval --profile mars --entities 10 --seed 1").is_err());
        assert!(run_str("generate --profile mars --out /tmp/x").is_err());
    }

    #[test]
    fn missing_inputs_rejected() {
        assert!(run_str("stats").is_err());
        assert!(run_str("resolve").is_err());
    }
}
