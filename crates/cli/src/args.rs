//! A minimal, dependency-free option parser.
//!
//! Grammar: `minoan <command> [--flag] [--key value]...`. Repeated `--key`
//! accumulates (used for `--input`). Unknown options are an error — typos
//! must not silently change an experiment.

use std::collections::BTreeMap;

/// Parsed command line.
#[derive(Debug, Default, Clone)]
pub struct Args {
    /// The subcommand (first positional).
    pub command: String,
    /// `--key value` options; repeated keys accumulate in order.
    options: BTreeMap<String, Vec<String>>,
    /// Bare `--flag` options.
    flags: Vec<String>,
}

/// Parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `argv` (without the program name). `known_flags` lists the
    /// options that take no value.
    pub fn parse(argv: &[String], known_flags: &[&str]) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut it = argv.iter().peekable();
        out.command = it
            .next()
            .cloned()
            .ok_or_else(|| ArgError("missing command; try `minoan help`".into()))?;
        if out.command.starts_with("--") {
            return Err(ArgError(format!(
                "expected a command, got option {}",
                out.command
            )));
        }
        while let Some(token) = it.next() {
            let Some(name) = token.strip_prefix("--") else {
                return Err(ArgError(format!(
                    "unexpected positional argument {token:?}"
                )));
            };
            if name.is_empty() {
                return Err(ArgError("bare `--` is not supported".into()));
            }
            if known_flags.contains(&name) {
                out.flags.push(name.to_string());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| ArgError(format!("option --{name} requires a value")))?;
            if value.starts_with("--") {
                return Err(ArgError(format!(
                    "option --{name} requires a value, got {value}"
                )));
            }
            out.options
                .entry(name.to_string())
                .or_default()
                .push(value.clone());
        }
        Ok(out)
    }

    /// Single-valued option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options
            .get(key)
            .and_then(|v| v.last())
            .map(|s| s.as_str())
    }

    /// All values of a repeatable option.
    pub fn get_all(&self, key: &str) -> &[String] {
        self.options.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Whether a bare flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Required option with a helpful error.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError(format!("missing required option --{key}")))
    }

    /// Parses an option as `T`, with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|_| ArgError(format!("option --{key}: cannot parse {raw:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = Args::parse(
            &argv("resolve --input a.nt --input b.nt --budget 100 --verbose"),
            &["verbose"],
        )
        .unwrap();
        assert_eq!(a.command, "resolve");
        assert_eq!(
            a.get_all("input"),
            &["a.nt".to_string(), "b.nt".to_string()]
        );
        assert_eq!(a.get("budget"), Some("100"));
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn missing_command_is_an_error() {
        assert!(Args::parse(&[], &[]).is_err());
        assert!(Args::parse(&argv("--input x"), &[]).is_err());
    }

    #[test]
    fn option_without_value_is_an_error() {
        assert!(Args::parse(&argv("stats --input"), &[]).is_err());
        assert!(Args::parse(&argv("stats --input --other x"), &[]).is_err());
    }

    #[test]
    fn positional_after_command_rejected() {
        assert!(Args::parse(&argv("stats file.nt"), &[]).is_err());
    }

    #[test]
    fn last_value_wins_for_get() {
        let a = Args::parse(&argv("x --seed 1 --seed 2"), &[]).unwrap();
        assert_eq!(a.get("seed"), Some("2"));
        assert_eq!(a.get_all("seed").len(), 2);
    }

    #[test]
    fn get_parsed_defaults_and_errors() {
        let a = Args::parse(&argv("x --n 42"), &[]).unwrap();
        assert_eq!(a.get_parsed("n", 0u64).unwrap(), 42);
        assert_eq!(a.get_parsed("missing", 7u64).unwrap(), 7);
        let bad = Args::parse(&argv("x --n forty"), &[]).unwrap();
        assert!(bad.get_parsed("n", 0u64).is_err());
    }

    #[test]
    fn require_reports_the_key() {
        let a = Args::parse(&argv("x"), &[]).unwrap();
        let err = a.require("out").unwrap_err();
        assert!(err.0.contains("--out"));
    }
}
