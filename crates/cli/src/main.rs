//! `minoan` binary entry point.

#![forbid(unsafe_code)]

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match minoan_cli::run(&argv) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
