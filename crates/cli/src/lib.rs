//! Command-line interface to the MinoanER reproduction.
//!
//! The binary is a thin wrapper over [`commands::run`]; everything,
//! including output formatting, lives in the library so the test suite can
//! exercise commands end-to-end.
//!
//! ```text
//! minoan generate --profile center --entities 500 --seed 42 --out /tmp/world
//! minoan stats    --input /tmp/world/center_a.nt --input /tmp/world/center_b.nt
//! minoan resolve  --input /tmp/world/center_a.nt --input /tmp/world/center_b.nt
//! minoan eval     --profile lod --entities 400 --seed 7 --strategy progressive:coverage
//! ```

#![forbid(unsafe_code)]

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};
pub use commands::{run, CliError};
