//! Arrival orders for streaming/incremental experiments.
//!
//! The incremental resolver's behaviour depends on *when* each description
//! arrives relative to its duplicates. Real feeds exhibit several shapes,
//! each reproduced here as a deterministic permutation of the dataset's
//! entity ids:
//!
//! * [`ArrivalOrder::KbSequential`] — whole KBs arrive one after another
//!   (a new source is onboarded; every duplicate pair straddles a long
//!   temporal gap).
//! * [`ArrivalOrder::RoundRobin`] — sources publish in lock-step (near-
//!   simultaneous duplicates).
//! * [`ArrivalOrder::Shuffled`] — fully interleaved, memoryless feed.
//! * [`ArrivalOrder::ClusteredBursts`] — all descriptions of one
//!   real-world entity arrive adjacently (ground-truth-informed; the
//!   easiest case and a useful upper bound).

use crate::truth::GroundTruth;
use minoan_rdf::{Dataset, EntityId, KbId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How entities arrive in a streaming experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalOrder {
    /// KB 0 fully, then KB 1, …
    KbSequential,
    /// One entity per KB in rotation.
    RoundRobin,
    /// Seeded uniform shuffle.
    Shuffled {
        /// Shuffle seed.
        seed: u64,
    },
    /// Duplicates of the same world entity arrive back-to-back.
    ClusteredBursts,
}

impl ArrivalOrder {
    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalOrder::KbSequential => "kb-sequential",
            ArrivalOrder::RoundRobin => "round-robin",
            ArrivalOrder::Shuffled { .. } => "shuffled",
            ArrivalOrder::ClusteredBursts => "clustered-bursts",
        }
    }

    /// Materialises the arrival permutation (every entity exactly once).
    pub fn order(&self, dataset: &Dataset, truth: &GroundTruth) -> Vec<EntityId> {
        match *self {
            ArrivalOrder::KbSequential => {
                let mut out = Vec::with_capacity(dataset.len());
                for kb in 0..dataset.kb_count() {
                    out.extend_from_slice(dataset.entities_of_kb(KbId(kb as u16)));
                }
                out
            }
            ArrivalOrder::RoundRobin => {
                let per_kb: Vec<&[EntityId]> = (0..dataset.kb_count())
                    .map(|kb| dataset.entities_of_kb(KbId(kb as u16)))
                    .collect();
                let longest = per_kb.iter().map(|l| l.len()).max().unwrap_or(0);
                let mut out = Vec::with_capacity(dataset.len());
                for i in 0..longest {
                    for list in &per_kb {
                        if let Some(&e) = list.get(i) {
                            out.push(e);
                        }
                    }
                }
                out
            }
            ArrivalOrder::Shuffled { seed } => {
                let mut out: Vec<EntityId> = dataset.entities().collect();
                let mut rng = StdRng::seed_from_u64(seed);
                out.shuffle(&mut rng);
                out
            }
            ArrivalOrder::ClusteredBursts => {
                let mut out = Vec::with_capacity(dataset.len());
                for cluster in truth.clusters() {
                    out.extend_from_slice(cluster);
                }
                // Clusters cover matchable descriptions; append any entity
                // not referenced by the truth (defensive — generators always
                // reference all).
                let mut seen = vec![false; dataset.len()];
                for &e in &out {
                    seen[e.index()] = true;
                }
                for e in dataset.entities() {
                    if !seen[e.index()] {
                        out.push(e);
                    }
                }
                out
            }
        }
    }

    /// All orders, for sweep experiments.
    pub fn all(seed: u64) -> Vec<ArrivalOrder> {
        vec![
            ArrivalOrder::KbSequential,
            ArrivalOrder::RoundRobin,
            ArrivalOrder::Shuffled { seed },
            ArrivalOrder::ClusteredBursts,
        ]
    }

    /// Materialises the arrival permutation chopped into batches of
    /// `batch_size` (the last batch may be shorter) — the shape the
    /// incremental ingest APIs consume.
    pub fn batches(
        &self,
        dataset: &Dataset,
        truth: &GroundTruth,
        batch_size: usize,
    ) -> Vec<Vec<EntityId>> {
        assert!(batch_size > 0, "batch_size must be positive");
        self.order(dataset, truth)
            .chunks(batch_size)
            .map(<[EntityId]>::to_vec)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, profiles};

    fn world() -> crate::GeneratedWorld {
        generate(&profiles::center_dense(80, 29))
    }

    fn assert_permutation(dataset: &Dataset, order: &[EntityId]) {
        assert_eq!(order.len(), dataset.len());
        let mut seen = vec![false; dataset.len()];
        for &e in order {
            assert!(!seen[e.index()], "{e:?} appears twice");
            seen[e.index()] = true;
        }
    }

    #[test]
    fn every_order_is_a_permutation() {
        let g = world();
        for order in ArrivalOrder::all(5) {
            let o = order.order(&g.dataset, &g.truth);
            assert_permutation(&g.dataset, &o);
        }
    }

    #[test]
    fn kb_sequential_groups_by_kb() {
        let g = world();
        let o = ArrivalOrder::KbSequential.order(&g.dataset, &g.truth);
        let kbs: Vec<u16> = o.iter().map(|&e| g.dataset.kb_of(e).0).collect();
        // Non-decreasing KB sequence.
        assert!(kbs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn round_robin_alternates() {
        let g = world();
        let o = ArrivalOrder::RoundRobin.order(&g.dataset, &g.truth);
        // The first kb_count() entries must cover distinct KBs (while all
        // KBs still have entities).
        let k = g.dataset.kb_count();
        let first: Vec<u16> = o.iter().take(k).map(|&e| g.dataset.kb_of(e).0).collect();
        let distinct: std::collections::HashSet<u16> = first.iter().copied().collect();
        assert_eq!(distinct.len(), k);
    }

    #[test]
    fn shuffled_differs_by_seed_but_is_deterministic() {
        let g = world();
        let a = ArrivalOrder::Shuffled { seed: 1 }.order(&g.dataset, &g.truth);
        let b = ArrivalOrder::Shuffled { seed: 1 }.order(&g.dataset, &g.truth);
        let c = ArrivalOrder::Shuffled { seed: 2 }.order(&g.dataset, &g.truth);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn clustered_bursts_keeps_duplicates_adjacent() {
        let g = world();
        let o = ArrivalOrder::ClusteredBursts.order(&g.dataset, &g.truth);
        // For each world entity with ≥ 2 descriptions, its positions in
        // the order must be contiguous.
        let pos: std::collections::HashMap<EntityId, usize> =
            o.iter().enumerate().map(|(i, &e)| (e, i)).collect();
        for cluster in g.truth.clusters() {
            if cluster.len() < 2 {
                continue;
            }
            let mut positions: Vec<usize> = cluster.iter().map(|e| pos[e]).collect();
            positions.sort_unstable();
            assert_eq!(
                positions[positions.len() - 1] - positions[0],
                positions.len() - 1,
                "cluster not contiguous"
            );
        }
    }

    #[test]
    fn batches_cover_the_order_exactly() {
        let g = world();
        for order in ArrivalOrder::all(11) {
            let flat = order.order(&g.dataset, &g.truth);
            let batched = order.batches(&g.dataset, &g.truth, 13);
            assert!(batched.iter().all(|b| b.len() <= 13));
            assert!(batched[..batched.len() - 1].iter().all(|b| b.len() == 13));
            let rejoined: Vec<EntityId> = batched.into_iter().flatten().collect();
            assert_eq!(rejoined, flat);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ArrivalOrder::KbSequential.name(), "kb-sequential");
        assert_eq!(ArrivalOrder::Shuffled { seed: 9 }.name(), "shuffled");
    }
}
