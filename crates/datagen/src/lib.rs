//! Synthetic LOD-cloud generator with exact ground truth.
//!
//! The paper evaluates on Web-of-Data KBs (DBpedia, GeoNames, BBCmusic, …)
//! that cannot be redistributed here. This crate substitutes them with a
//! *parameterised* generator that reproduces the phenomena the paper builds
//! on (§1):
//!
//! * **Highly similar** descriptions — many common tokens in values of
//!   semantically related attributes; typical of the *centre* of the LOD
//!   cloud (encyclopaedic KBs with shared vocabularies).
//! * **Somehow similar** descriptions — significantly fewer common tokens,
//!   attributes not semantically related; typical of the sparsely
//!   interlinked *periphery* (proprietary vocabularies — the paper notes
//!   58.24% of LOD vocabularies are used by a single KB).
//! * Skewed token popularity (Zipf), per-KB attribute vocabularies with a
//!   controllable overlap ratio, value noise, and a relationship graph
//!   between entities that per-KB descriptions inherit.
//!
//! The generator first builds a *world* of real-world entities (each with
//! canonical attributes, name tokens and links), then *describes* a subset
//! of the world in each configured KB, applying that KB's vocabulary
//! mapping and noise. Every description remembers which world entity it
//! describes — the [`GroundTruth`].
//!
//! # Example
//!
//! ```
//! use minoan_datagen::{profiles, generate};
//!
//! let world = generate(&profiles::center_dense(500, 42));
//! assert_eq!(world.dataset.kb_count(), 2);
//! assert!(world.truth.matching_pairs() > 0);
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod corruption;
pub mod emit;
pub mod profiles;
pub mod stream;
pub mod truth;
pub mod world;

pub use config::{KbConfig, WorldConfig};
pub use corruption::CorruptionModel;
pub use emit::{generate, GeneratedWorld};
pub use stream::ArrivalOrder;
pub use truth::GroundTruth;
pub use world::{World, WorldEntity};
