//! Character-level corruption models for value noise.
//!
//! Real cross-KB value divergence is not a single phenomenon: Wikipedia-
//! derived KBs differ by *spelling variation*, OCR-sourced feeds by
//! *systematic glyph confusion*, catalogue data by *abbreviation*, and
//! scraped text by *truncation*. Each model corrupts a single token
//! deterministically given the RNG, so worlds stay reproducible; the
//! generator picks the model per KB via
//! [`crate::KbConfig`]'s `corruption` field.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which corruption a KB applies to noisy tokens.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorruptionModel {
    /// Swap two adjacent characters (keyboard-style typo) — the default.
    #[default]
    Typo,
    /// Substitute characters from a confusion table (`o↔0`, `l↔1`, `rn↔m`,
    /// `e↔c` …) the way OCR errors cluster.
    Ocr,
    /// Truncate to a 2+-character prefix (the catalogue-abbreviation
    /// habit: "International" → "Intl"-style).
    Abbreviation,
    /// Duplicate or drop one character (fat-finger insertion/deletion).
    InsertDelete,
}

impl CorruptionModel {
    /// All models, for sweeps.
    pub const ALL: [CorruptionModel; 4] = [
        CorruptionModel::Typo,
        CorruptionModel::Ocr,
        CorruptionModel::Abbreviation,
        CorruptionModel::InsertDelete,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            CorruptionModel::Typo => "typo",
            CorruptionModel::Ocr => "ocr",
            CorruptionModel::Abbreviation => "abbreviation",
            CorruptionModel::InsertDelete => "insert-delete",
        }
    }

    /// Corrupts one token. Always returns a non-empty string different
    /// from a 3+-character input (shorter inputs may collide).
    pub fn corrupt(self, word: &str, rng: &mut StdRng) -> String {
        match self {
            CorruptionModel::Typo => typo(word, rng),
            CorruptionModel::Ocr => ocr(word, rng),
            CorruptionModel::Abbreviation => abbreviate(word, rng),
            CorruptionModel::InsertDelete => insert_delete(word, rng),
        }
    }
}

/// Adjacent-swap typo (falls back to an appended marker on tiny inputs).
pub fn typo(word: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() < 3 {
        return format!("{word}x");
    }
    let i = rng.gen_range(0..chars.len() - 1);
    let mut out = chars.clone();
    out.swap(i, i + 1);
    out.into_iter().collect()
}

/// OCR glyph-confusion table (lowercase input assumed; unknown characters
/// pass through). One randomly chosen eligible character is substituted;
/// if none is eligible, falls back to a typo.
pub fn ocr(word: &str, rng: &mut StdRng) -> String {
    const TABLE: [(char, char); 10] = [
        ('o', '0'),
        ('l', '1'),
        ('i', '1'),
        ('s', '5'),
        ('b', '6'),
        ('g', '9'),
        ('e', 'c'),
        ('a', 'o'),
        ('u', 'v'),
        ('h', 'b'),
    ];
    let chars: Vec<char> = word.chars().collect();
    let eligible: Vec<usize> = chars
        .iter()
        .enumerate()
        .filter(|(_, c)| TABLE.iter().any(|(from, _)| from == *c))
        .map(|(i, _)| i)
        .collect();
    if eligible.is_empty() {
        return typo(word, rng);
    }
    let pick = eligible[rng.gen_range(0..eligible.len())];
    let mut out = chars;
    let (_, to) = TABLE
        .iter()
        .find(|(from, _)| *from == out[pick])
        .expect("pick came from the eligible scan");
    out[pick] = *to;
    out.into_iter().collect()
}

/// Prefix abbreviation: keeps a 2+-character prefix at least one character
/// shorter than the input (or a typo on inputs too short to abbreviate).
pub fn abbreviate(word: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() <= 3 {
        return typo(word, rng);
    }
    let keep = rng.gen_range(2..=(chars.len() - 1).min(5));
    chars[..keep].iter().collect()
}

/// Single-character insertion (duplication) or deletion.
pub fn insert_delete(word: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() < 3 {
        return format!("{word}x");
    }
    let i = rng.gen_range(0..chars.len());
    let mut out = chars.clone();
    if rng.gen_bool(0.5) {
        out.insert(i, chars[i]); // duplicate
    } else {
        out.remove(i);
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn every_model_changes_long_words() {
        for model in CorruptionModel::ALL {
            let mut r = rng();
            for word in ["heraklion", "vineyard", "mountain", "published"] {
                let c = model.corrupt(word, &mut r);
                assert_ne!(c, word, "{} left {word} unchanged", model.name());
                assert!(!c.is_empty());
            }
        }
    }

    #[test]
    fn typo_is_adjacent_swap() {
        let mut r = rng();
        let c = typo("abcdef", &mut r);
        assert_eq!(c.len(), 6);
        let diff: Vec<usize> = c
            .chars()
            .zip("abcdef".chars())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diff.len(), 2);
        assert_eq!(diff[1], diff[0] + 1, "swap must be adjacent");
    }

    #[test]
    fn ocr_substitutes_from_the_table() {
        let mut r = rng();
        let c = ocr("location", &mut r);
        assert_eq!(
            c.chars().count(),
            "location".chars().count(),
            "OCR preserves length"
        );
        let diffs = c
            .chars()
            .zip("location".chars())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 1, "exactly one glyph confused: {c}");
    }

    #[test]
    fn ocr_without_eligible_chars_falls_back() {
        let mut r = rng();
        // No table characters at all.
        let c = ocr("xyz", &mut r);
        assert_ne!(c, "xyz");
    }

    #[test]
    fn abbreviation_shortens() {
        let mut r = rng();
        for word in ["international", "municipality", "heraklion"] {
            let c = abbreviate(word, &mut r);
            assert!(c.len() < word.len(), "{word} → {c}");
            assert!(word.starts_with(&c), "{c} must be a prefix of {word}");
        }
    }

    #[test]
    fn insert_delete_changes_length_by_one() {
        let mut r = rng();
        for word in ["heraklion", "athens", "crete"] {
            let c = insert_delete(word, &mut r);
            let delta = c.chars().count() as i64 - word.chars().count() as i64;
            assert_eq!(delta.abs(), 1, "{word} → {c}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        for model in CorruptionModel::ALL {
            let mut a = rng();
            let mut b = rng();
            assert_eq!(
                model.corrupt("systematic", &mut a),
                model.corrupt("systematic", &mut b)
            );
        }
    }

    #[test]
    fn names_stable() {
        let names: Vec<_> = CorruptionModel::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["typo", "ocr", "abbreviation", "insert-delete"]);
    }

    #[test]
    fn short_words_never_panic() {
        for model in CorruptionModel::ALL {
            let mut r = rng();
            for word in ["a", "ab", "xy"] {
                let c = model.corrupt(word, &mut r);
                assert!(!c.is_empty());
            }
        }
    }
}
