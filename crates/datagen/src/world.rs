//! The ground-truth world: real-world entities before any KB describes them.

use crate::config::WorldConfig;
use minoan_common::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One real-world entity.
#[derive(Clone, Debug)]
pub struct WorldEntity {
    /// Entity type (0..num_types); each type has its own attribute pool.
    pub etype: u32,
    /// Naming tokens: one globally unique token plus Zipf-sampled tokens.
    /// These feed the "name" attribute and the URI infix.
    pub name_tokens: Vec<u32>,
    /// Canonical attributes: (attribute id, value token list).
    pub attributes: Vec<(u32, Vec<u32>)>,
    /// Outgoing relationship links (world entity ids), sorted, no self-links.
    pub links: Vec<u32>,
}

/// The generated world: entities plus the undirected relationship graph.
#[derive(Clone, Debug)]
pub struct World {
    /// All entities; index = world entity id.
    pub entities: Vec<WorldEntity>,
    /// Undirected, deduplicated relationship edges `(a < b)`.
    pub links: Vec<(u32, u32)>,
    /// Number of canonical attribute names in use (ids `0..`).
    pub num_attr_names: u32,
    /// Token ids `0..vocab_tokens` are Zipf tokens; ids
    /// `vocab_tokens..vocab_tokens+num_entities` are unique name tokens.
    pub token_universe: u32,
}

/// Attribute-pool slots per type: `attrs_per_entity` canonical slots plus
/// two spares so descriptions of the same type do not all share the exact
/// same attribute set.
fn pool_size(attrs_per_entity: usize) -> usize {
    attrs_per_entity + 2
}

impl World {
    /// Generates the world for `config` (deterministic in `config.seed`).
    ///
    /// # Panics
    /// Panics if `config.validate()` would fail; call it first for friendly
    /// errors.
    pub fn generate(config: &WorldConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid WorldConfig: {e}"));
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5eed_0001);
        let zipf = Zipf::new(config.vocab_tokens, config.zipf_exponent);
        let pool = pool_size(config.attrs_per_entity);
        let num_attr_names = (config.num_types * pool) as u32;

        let mut entities = Vec::with_capacity(config.num_entities);
        // Preferential attachment pool: node ids repeated by degree + 1.
        let mut pa_pool: Vec<u32> = Vec::with_capacity(config.num_entities * 3);
        let mut links: Vec<(u32, u32)> = Vec::new();

        for id in 0..config.num_entities as u32 {
            let etype = rng.gen_range(0..config.num_types) as u32;
            // Unique token guarantees the entity is identifiable in
            // principle; Zipf tokens give it realistic common vocabulary.
            let unique = config.vocab_tokens as u32 + id;
            let mut name_tokens = vec![unique, zipf.sample(&mut rng) as u32];
            if rng.gen_bool(0.5) {
                name_tokens.push(zipf.sample(&mut rng) as u32);
            }

            // Attribute 0 of the type's pool is the name attribute; the rest
            // are sampled without replacement from the remaining pool.
            let base = etype as usize * pool;
            let mut slots: Vec<usize> = (1..pool).collect();
            let mut attributes = Vec::with_capacity(config.attrs_per_entity);
            attributes.push((base as u32, name_tokens.clone()));
            for _ in 1..config.attrs_per_entity {
                let pick = rng.gen_range(0..slots.len());
                let slot = slots.swap_remove(pick);
                let len = rng.gen_range(config.value_tokens_min..=config.value_tokens_max);
                let value: Vec<u32> = (0..len).map(|_| zipf.sample(&mut rng) as u32).collect();
                attributes.push(((base + slot) as u32, value));
            }

            // Relationship links via preferential attachment.
            let mut out: Vec<u32> = Vec::new();
            if id > 0 {
                let k = sample_poisson(&mut rng, config.mean_links / 2.0);
                for _ in 0..k {
                    let target = if rng.gen_bool(0.7) && !pa_pool.is_empty() {
                        pa_pool[rng.gen_range(0..pa_pool.len())]
                    } else {
                        rng.gen_range(0..id)
                    };
                    if target != id && !out.contains(&target) {
                        out.push(target);
                        links.push((target.min(id), target.max(id)));
                        pa_pool.push(target);
                        pa_pool.push(id);
                    }
                }
            }
            pa_pool.push(id);
            out.sort_unstable();

            entities.push(WorldEntity {
                etype,
                name_tokens,
                attributes,
                links: out,
            });
        }
        links.sort_unstable();
        links.dedup();

        Self {
            entities,
            links,
            num_attr_names,
            token_universe: (config.vocab_tokens + config.num_entities) as u32,
        }
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether the world is empty.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }
}

/// Knuth's Poisson sampler — fine for the small means used here.
fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k; // numeric safety valve; unreachable for sane means
        }
    }
}

/// Renders a token id as a stable pseudo-word (bijective base-105 syllable
/// encoding: 21 consonants × 5 vowels). Distinct ids always yield distinct
/// words, and every word is ≥ 2 alphabetic characters.
pub fn token_word(id: u32) -> String {
    const CONSONANTS: &[u8] = b"bcdfghjklmnpqrstvwxyz";
    const VOWELS: &[u8] = b"aeiou";
    let mut n = id as u64;
    let mut syllables = Vec::new();
    loop {
        let digit = (n % 105) as usize;
        syllables.push((CONSONANTS[digit / 5], VOWELS[digit % 5]));
        n /= 105;
        if n == 0 {
            break;
        }
        n -= 1; // bijective numeration: no leading-zero ambiguity
    }
    let mut word = String::with_capacity(syllables.len() * 2);
    for (c, v) in syllables.into_iter().rev() {
        word.push(c as char);
        word.push(v as char);
    }
    word
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let c = WorldConfig::small(99);
        let w1 = World::generate(&c);
        let w2 = World::generate(&c);
        assert_eq!(w1.len(), w2.len());
        for (a, b) in w1.entities.iter().zip(&w2.entities) {
            assert_eq!(a.name_tokens, b.name_tokens);
            assert_eq!(a.attributes, b.attributes);
            assert_eq!(a.links, b.links);
        }
        assert_eq!(w1.links, w2.links);
    }

    #[test]
    fn different_seeds_differ() {
        let w1 = World::generate(&WorldConfig::small(1));
        let w2 = World::generate(&WorldConfig::small(2));
        let same = w1
            .entities
            .iter()
            .zip(&w2.entities)
            .filter(|(a, b)| a.name_tokens == b.name_tokens)
            .count();
        assert!(same < w1.len() / 2, "seeds produce near-identical worlds");
    }

    #[test]
    fn every_entity_has_unique_name_token() {
        let c = WorldConfig::small(5);
        let w = World::generate(&c);
        for (id, e) in w.entities.iter().enumerate() {
            assert_eq!(e.name_tokens[0], c.vocab_tokens as u32 + id as u32);
            assert!(!e.attributes.is_empty());
            assert_eq!(e.attributes[0].1, e.name_tokens, "attribute 0 is the name");
        }
    }

    #[test]
    fn attribute_ids_respect_type_pools() {
        let c = WorldConfig::small(5);
        let w = World::generate(&c);
        let pool = pool_size(c.attrs_per_entity) as u32;
        for e in &w.entities {
            for (attr, _) in &e.attributes {
                assert_eq!(attr / pool, e.etype, "attribute outside type pool");
            }
            // No duplicate attribute slots per entity.
            let mut ids: Vec<u32> = e.attributes.iter().map(|(a, _)| *a).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), e.attributes.len());
        }
    }

    #[test]
    fn links_are_consistent_and_undirected() {
        let w = World::generate(&WorldConfig::small(3));
        for (a, b) in &w.links {
            assert!(a < b);
            assert!((*b as usize) < w.len());
        }
        let mut dedup = w.links.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), w.links.len());
        // Mean links should be in the right ballpark (config says 2.0).
        let avg = 2.0 * w.links.len() as f64 / w.len() as f64;
        assert!(avg > 0.5 && avg < 5.0, "avg degree {avg}");
    }

    #[test]
    fn token_words_are_unique_and_wordlike() {
        let mut seen = std::collections::HashSet::new();
        for id in 0..20_000u32 {
            let word = token_word(id);
            assert!(word.len() >= 2);
            assert!(word.chars().all(|ch| ch.is_ascii_lowercase()));
            assert!(seen.insert(word), "collision at id {id}");
        }
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let total: usize = (0..n).map(|_| sample_poisson(&mut rng, 3.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "poisson mean {mean}");
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
    }
}
