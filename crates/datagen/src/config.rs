//! Generator configuration.

use crate::corruption::CorruptionModel;
use serde::{Deserialize, Serialize};

/// Configuration of one synthetic knowledge base.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KbConfig {
    /// KB name; also used in its URI namespace `http://{name}.example.org/resource/`.
    pub name: String,
    /// Fraction of world entities this KB describes (0..=1].
    pub coverage: f64,
    /// Probability that an attribute keeps its *canonical* (shared) name;
    /// otherwise it is renamed into this KB's proprietary vocabulary.
    /// Centre KBs ≈ 0.8–0.9, periphery KBs ≈ 0.1–0.3.
    pub vocab_overlap: f64,
    /// Probability that a canonical value token survives verbatim; surviving
    /// failures are replaced by a KB-local paraphrase token. Controls the
    /// "highly similar" (≈0.8) vs "somehow similar" (≈0.3) regimes.
    pub token_overlap: f64,
    /// Probability of a character-level typo on a surviving token.
    pub typo_rate: f64,
    /// Which corruption model typo'd tokens go through.
    #[serde(default)]
    pub corruption: CorruptionModel,
    /// Probability that each canonical attribute of the entity appears in
    /// this KB's description at all.
    pub attr_coverage: f64,
    /// Mean number of KB-specific extra attributes (noise attributes with
    /// unrelated values) added to each description.
    pub extra_attrs: f64,
    /// Probability that a world relationship link between two entities both
    /// described by this KB is materialised as a resource-valued attribute.
    pub link_keep: f64,
    /// Number of descriptions this KB holds per described entity (1 for
    /// clean KBs; >1 produces intra-KB duplicates, i.e. dirty ER).
    pub dups_per_entity: usize,
    /// When true, entity URIs are opaque numeric ids (periphery KBs often
    /// mint them), so URI infixes carry no naming evidence.
    pub opaque_uris: bool,
}

impl KbConfig {
    /// A centre-of-the-LOD-cloud KB: broad coverage, shared vocabulary,
    /// highly similar descriptions.
    pub fn center(name: &str) -> Self {
        Self {
            name: name.to_string(),
            coverage: 0.9,
            vocab_overlap: 0.85,
            token_overlap: 0.9,
            typo_rate: 0.02,
            corruption: CorruptionModel::Typo,
            attr_coverage: 0.9,
            extra_attrs: 1.0,
            link_keep: 0.8,
            dups_per_entity: 1,
            opaque_uris: false,
        }
    }

    /// A periphery KB: partial coverage, proprietary vocabulary, somehow
    /// similar descriptions with few common tokens.
    pub fn periphery(name: &str) -> Self {
        Self {
            name: name.to_string(),
            coverage: 0.75,
            vocab_overlap: 0.2,
            token_overlap: 0.6,
            typo_rate: 0.05,
            corruption: CorruptionModel::Typo,
            attr_coverage: 0.6,
            extra_attrs: 2.0,
            link_keep: 0.8,
            dups_per_entity: 1,
            opaque_uris: true,
        }
    }
}

/// Configuration of a whole synthetic world.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorldConfig {
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Number of real-world entities.
    pub num_entities: usize,
    /// Number of entity types (each type has its own attribute pool).
    pub num_types: usize,
    /// Canonical attributes per entity (sampled from its type's pool).
    pub attrs_per_entity: usize,
    /// Size of the global value-token vocabulary.
    pub vocab_tokens: usize,
    /// Zipf exponent of token popularity (≈1.0 for natural text).
    pub zipf_exponent: f64,
    /// Value length in tokens (uniform in `value_tokens_min..=value_tokens_max`).
    pub value_tokens_min: usize,
    /// See `value_tokens_min`.
    pub value_tokens_max: usize,
    /// Mean out-degree of the world relationship graph (preferential
    /// attachment).
    pub mean_links: f64,
    /// The knowledge bases describing this world.
    pub kbs: Vec<KbConfig>,
}

impl WorldConfig {
    /// A small default world, handy for tests.
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            num_entities: 200,
            num_types: 3,
            attrs_per_entity: 5,
            vocab_tokens: 2_000,
            zipf_exponent: 1.0,
            value_tokens_min: 1,
            value_tokens_max: 4,
            mean_links: 2.0,
            kbs: vec![KbConfig::center("alpha"), KbConfig::center("beta")],
        }
    }

    /// Validates parameter ranges, returning a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_entities == 0 {
            return Err("num_entities must be positive".into());
        }
        if self.num_types == 0 {
            return Err("num_types must be positive".into());
        }
        if self.vocab_tokens == 0 {
            return Err("vocab_tokens must be positive".into());
        }
        if self.value_tokens_min == 0 || self.value_tokens_min > self.value_tokens_max {
            return Err("value token range must satisfy 1 <= min <= max".into());
        }
        if self.kbs.is_empty() {
            return Err("at least one KB is required".into());
        }
        for kb in &self.kbs {
            for (label, v) in [
                ("coverage", kb.coverage),
                ("vocab_overlap", kb.vocab_overlap),
                ("token_overlap", kb.token_overlap),
                ("typo_rate", kb.typo_rate),
                ("attr_coverage", kb.attr_coverage),
                ("link_keep", kb.link_keep),
            ] {
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("KB '{}': {label} = {v} outside [0,1]", kb.name));
                }
            }
            if kb.coverage == 0.0 {
                return Err(format!("KB '{}': coverage must be > 0", kb.name));
            }
            if kb.dups_per_entity == 0 {
                return Err(format!("KB '{}': dups_per_entity must be >= 1", kb.name));
            }
            if kb.extra_attrs < 0.0 {
                return Err(format!("KB '{}': extra_attrs must be >= 0", kb.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_is_valid() {
        assert!(WorldConfig::small(1).validate().is_ok());
    }

    #[test]
    fn invalid_ranges_are_caught() {
        let mut c = WorldConfig::small(1);
        c.num_entities = 0;
        assert!(c.validate().is_err());

        let mut c = WorldConfig::small(1);
        c.kbs[0].token_overlap = 1.5;
        assert!(c.validate().unwrap_err().contains("token_overlap"));

        let mut c = WorldConfig::small(1);
        c.kbs.clear();
        assert!(c.validate().is_err());

        let mut c = WorldConfig::small(1);
        c.value_tokens_min = 5;
        c.value_tokens_max = 2;
        assert!(c.validate().is_err());

        let mut c = WorldConfig::small(1);
        c.kbs[0].dups_per_entity = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn config_round_trips_through_serde() {
        // serde_json is not among the approved offline crates, so round-trip
        // through the serde data model is validated structurally instead:
        // Clone + Debug equality is enough to catch field drift.
        let c = WorldConfig::small(7);
        let c2 = c.clone();
        assert_eq!(format!("{c:?}"), format!("{c2:?}"));
    }

    #[test]
    fn presets_differ_in_regime() {
        let c = KbConfig::center("c");
        let p = KbConfig::periphery("p");
        assert!(c.token_overlap > p.token_overlap);
        assert!(c.vocab_overlap > p.vocab_overlap);
        assert!(!c.opaque_uris && p.opaque_uris);
    }
}
