//! Named dataset profiles.
//!
//! The MinoanER line of work evaluates on recurring benchmark families
//! (Restaurants, Rexa–DBLP, BBCmusic–DBpedia, YAGO–IMDb). The real data is
//! not redistributable, so each profile below is a synthetic analogue tuned
//! to the family's *regime*: KB count, size ratio, vocabulary overlap and
//! token overlap. Absolute sizes are scaled by the caller-supplied entity
//! count so tests stay fast while benches can grow them.

use crate::config::{KbConfig, WorldConfig};

fn base(num_entities: usize, seed: u64) -> WorldConfig {
    WorldConfig {
        seed,
        num_entities,
        num_types: 4,
        attrs_per_entity: 6,
        vocab_tokens: (num_entities * 12).max(1_000),
        zipf_exponent: 1.0,
        value_tokens_min: 1,
        value_tokens_max: 4,
        mean_links: 3.5,
        kbs: Vec::new(),
    }
}

/// Two centre-of-the-cloud KBs: highly similar descriptions, shared
/// vocabulary (the easy regime — DBpedia ↔ YAGO style).
pub fn center_dense(num_entities: usize, seed: u64) -> WorldConfig {
    let mut c = base(num_entities, seed);
    c.kbs = vec![KbConfig::center("dbp"), KbConfig::center("ygo")];
    c
}

/// Two periphery KBs: somehow similar descriptions with few common tokens,
/// proprietary vocabularies, opaque URIs (the hard regime the progressive
/// update phase targets).
pub fn periphery_sparse(num_entities: usize, seed: u64) -> WorldConfig {
    let mut c = base(num_entities, seed);
    c.kbs = vec![
        KbConfig::periphery("openfood"),
        KbConfig::periphery("bio2rdf"),
    ];
    c
}

/// Two KBs whose values agree token-for-token but suffer heavy
/// character-level corruption (typo rate ≈ 0.45, short values): the OCR /
/// transliteration regime where *exact* token blocking collapses and the
/// fuzzy blocker families (q-grams, LSH) earn their comparisons.
pub fn typo_noisy(num_entities: usize, seed: u64) -> WorldConfig {
    typo_noisy_with(num_entities, seed, crate::CorruptionModel::Typo)
}

/// [`typo_noisy`] with an explicit corruption model (OCR confusion,
/// abbreviation, insert/delete) — the E17 sweep.
pub fn typo_noisy_with(
    num_entities: usize,
    seed: u64,
    model: crate::CorruptionModel,
) -> WorldConfig {
    let mut c = base(num_entities, seed);
    c.value_tokens_min = 1;
    c.value_tokens_max = 2;
    let noisy = |name: &str| {
        let mut kb = KbConfig::center(name);
        kb.typo_rate = 0.45;
        kb.token_overlap = 0.97;
        kb.vocab_overlap = 0.85;
        kb.corruption = model;
        // Scanned/transliterated feeds mint opaque ids: no URI evidence,
        // the corrupted values are all there is.
        kb.opaque_uris = true;
        kb
    };
    c.kbs = vec![noisy("scanA"), noisy("scanB")];
    c
}

/// One centre + one periphery KB — the cross-regime case.
pub fn center_periphery(num_entities: usize, seed: u64) -> WorldConfig {
    let mut c = base(num_entities, seed);
    c.kbs = vec![KbConfig::center("dbp"), KbConfig::periphery("bbcmusic")];
    c
}

/// A small LOD cloud: two centre and two periphery KBs describing one
/// world (multi-source ER).
pub fn lod_cloud(num_entities: usize, seed: u64) -> WorldConfig {
    let mut c = base(num_entities, seed);
    c.kbs = vec![
        KbConfig::center("dbp"),
        KbConfig::center("ygo"),
        KbConfig::periphery("openfood"),
        KbConfig::periphery("geo"),
    ];
    c
}

/// A single dirty KB with intra-source duplicates.
pub fn dirty_single(num_entities: usize, seed: u64) -> WorldConfig {
    let mut c = base(num_entities, seed);
    let mut kb = KbConfig::center("dirty");
    kb.coverage = 1.0;
    kb.dups_per_entity = 2;
    kb.token_overlap = 0.85;
    c.kbs = vec![kb];
    c
}

/// Restaurants analogue: small, two clean sources, near-identical schema.
pub fn restaurants(seed: u64) -> WorldConfig {
    let mut c = base(430, seed);
    c.num_types = 1;
    c.attrs_per_entity = 4;
    let mut a = KbConfig::center("fodors");
    let mut b = KbConfig::center("zagat");
    a.coverage = 0.8;
    b.coverage = 0.77;
    c.kbs = vec![a, b];
    c
}

/// Rexa–DBLP analogue: bibliographic, moderate heterogeneity, size-skewed
/// sources.
pub fn rexa_dblp(num_entities: usize, seed: u64) -> WorldConfig {
    let mut c = base(num_entities, seed);
    c.num_types = 2;
    let mut rexa = KbConfig::periphery("rexa");
    rexa.coverage = 0.35;
    rexa.token_overlap = 0.55;
    rexa.vocab_overlap = 0.45;
    let mut dblp = KbConfig::center("dblp");
    dblp.coverage = 0.95;
    c.kbs = vec![rexa, dblp];
    c
}

/// BBCmusic–DBpedia analogue: centre + periphery with opaque URIs on the
/// periphery side and strong relationship structure (bands ↔ members).
pub fn bbc_music_dbpedia(num_entities: usize, seed: u64) -> WorldConfig {
    let mut c = center_periphery(num_entities, seed);
    c.mean_links = 4.0;
    c.kbs[1].link_keep = 0.8;
    c
}

/// YAGO–IMDb analogue: two large centre-style KBs but with low attribute
/// overlap (movies described by very different property sets).
pub fn yago_imdb(num_entities: usize, seed: u64) -> WorldConfig {
    let mut c = base(num_entities, seed);
    let mut yago = KbConfig::center("yago");
    let mut imdb = KbConfig::center("imdb");
    yago.vocab_overlap = 0.4;
    imdb.vocab_overlap = 0.4;
    imdb.token_overlap = 0.6;
    c.kbs = vec![yago, imdb];
    c
}

/// All named profiles with a common size, for sweep-style experiments.
pub fn all_profiles(num_entities: usize, seed: u64) -> Vec<(&'static str, WorldConfig)> {
    // NOTE: typo_noisy is intentionally not in this sweep — it exists for
    // the fuzzy-blocking experiment (E9), not the main pipeline grid.
    vec![
        ("center_dense", center_dense(num_entities, seed)),
        ("periphery_sparse", periphery_sparse(num_entities, seed)),
        ("center_periphery", center_periphery(num_entities, seed)),
        ("lod_cloud", lod_cloud(num_entities, seed)),
        ("dirty_single", dirty_single(num_entities, seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn all_profiles_validate_and_generate() {
        for (name, cfg) in all_profiles(120, 3) {
            cfg.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            let g = generate(&cfg);
            assert!(!g.dataset.is_empty(), "{name} generated nothing");
            assert!(g.truth.matching_pairs() > 0, "{name} has no ground truth");
        }
    }

    #[test]
    fn named_analogues_validate() {
        for cfg in [
            restaurants(1),
            rexa_dblp(200, 1),
            bbc_music_dbpedia(200, 1),
            yago_imdb(200, 1),
        ] {
            cfg.validate().expect("profile must validate");
        }
    }

    #[test]
    fn dirty_profile_is_single_kb() {
        let g = generate(&dirty_single(100, 2));
        assert_eq!(g.dataset.kb_count(), 1);
        assert!(g.truth.matching_pairs() >= 90, "every entity is duplicated");
    }

    #[test]
    fn lod_cloud_spans_four_kbs() {
        let g = generate(&lod_cloud(80, 2));
        assert_eq!(g.dataset.kb_count(), 4);
        // Some entities described by 3+ KBs → clusters larger than 2.
        assert!(g.truth.clusters().iter().any(|c| c.len() >= 3));
    }
}
