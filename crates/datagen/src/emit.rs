//! Rendering a [`World`] into per-KB RDF descriptions + ground truth.

use crate::config::{KbConfig, WorldConfig};
use crate::truth::GroundTruth;
use crate::world::{token_word, World};
use minoan_common::{FxHashSet, FxHasher};
use minoan_rdf::{Dataset, DatasetBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hash::{Hash, Hasher};

/// A generated dataset with its exact ground truth and the underlying world.
#[derive(Debug)]
pub struct GeneratedWorld {
    /// The multi-KB dataset, ready for blocking.
    pub dataset: Dataset,
    /// Which description refers to which world entity.
    pub truth: GroundTruth,
    /// The canonical world (kept for diagnostics and ablations).
    pub world: World,
}

/// Deterministic coin in `[0, 1)` derived from hashed coordinates — used
/// where a decision must be *consistent* (e.g. a KB renames an attribute
/// the same way every time it appears).
fn det_coin(seed: u64, a: u64, b: u64) -> f64 {
    let mut h = FxHasher::default();
    (seed, a, b).hash(&mut h);
    (h.finish() >> 11) as f64 / (1u64 << 53) as f64
}

/// Canonical (shared) predicate IRI for attribute id `attr`. The name
/// attribute of each type pool gets a name-like IRI (real KBs use
/// `rdfs:label`-style predicates), which string-similarity matchers key on.
fn canonical_predicate(attr: u32, is_name: bool) -> String {
    if is_name {
        format!("http://ontology.example.org/name{attr}")
    } else {
        format!("http://ontology.example.org/attr{attr}")
    }
}

/// Proprietary predicate IRI of `kb` for attribute id `attr`.
fn proprietary_predicate(kb: &KbConfig, attr: u32, is_name: bool) -> String {
    if is_name {
        format!("http://{}.example.org/ontology/label{attr}", kb.name)
    } else {
        format!("http://{}.example.org/ontology/p{attr}", kb.name)
    }
}

/// Renders a canonical token list as a value string under a KB's noise
/// model: each token survives with `token_overlap` (then possibly typo'd),
/// otherwise it is replaced by a random vocabulary token.
fn render_value(tokens: &[u32], kb: &KbConfig, vocab: usize, rng: &mut StdRng) -> String {
    let mut words = Vec::with_capacity(tokens.len());
    for &t in tokens {
        if rng.gen_bool(kb.token_overlap) {
            let w = token_word(t);
            if rng.gen_bool(kb.typo_rate) {
                words.push(kb.corruption.corrupt(&w, rng));
            } else {
                words.push(w);
            }
        } else {
            words.push(token_word(rng.gen_range(0..vocab) as u32));
        }
    }
    words.join(" ")
}

fn capitalize(word: &str) -> String {
    let mut cs = word.chars();
    match cs.next() {
        Some(c) => c.to_uppercase().collect::<String>() + cs.as_str(),
        None => String::new(),
    }
}

/// Generates the dataset + ground truth for `config`.
///
/// Descriptions are created KB by KB in world-entity order, so entity ids
/// are stable and the ground truth aligns by construction. Deterministic in
/// `config.seed`.
///
/// # Panics
/// Panics on an invalid configuration (see [`WorldConfig::validate`]).
pub fn generate(config: &WorldConfig) -> GeneratedWorld {
    let world = World::generate(config);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0e31_7a11);
    let mut builder = DatasetBuilder::new();
    let mut entity_of: Vec<u32> = Vec::new();

    for (kb_idx, kbc) in config.kbs.iter().enumerate() {
        let namespace = format!("http://{}.example.org/resource/", kbc.name);
        let kb = builder.add_kb(&kbc.name, &namespace);

        // Which world entities this KB describes.
        let described: Vec<u32> = (0..world.len() as u32)
            .filter(|_| rng.gen_bool(kbc.coverage))
            .collect();

        // Mint URIs first so relationship links can reference them.
        let mut used: FxHashSet<String> = FxHashSet::default();
        let mut uri_of: Vec<Vec<String>> = Vec::with_capacity(described.len());
        let mut opaque_seq = 0usize;
        for &w in &described {
            let we = &world.entities[w as usize];
            let mut dup_uris = Vec::with_capacity(kbc.dups_per_entity);
            for _ in 0..kbc.dups_per_entity {
                let uri = if kbc.opaque_uris {
                    opaque_seq += 1;
                    format!("{namespace}id{opaque_seq:06}")
                } else {
                    let base: String = we
                        .name_tokens
                        .iter()
                        .map(|&t| capitalize(&token_word(t)))
                        .collect::<Vec<_>>()
                        .join("_");
                    let mut uri = format!("{namespace}{base}");
                    let mut k = 2;
                    while used.contains(&uri) {
                        uri = format!("{namespace}{base}_{k}");
                        k += 1;
                    }
                    uri
                };
                used.insert(uri.clone());
                dup_uris.push(uri);
            }
            uri_of.push(dup_uris);
        }

        // Emit attribute values. The name attribute (index 0) is always
        // present, so the description is created exactly when we reach it —
        // keeping EntityId order == emission order.
        for (di, &w) in described.iter().enumerate() {
            let we = &world.entities[w as usize];
            for uri in &uri_of[di] {
                for (ai, (attr, value)) in we.attributes.iter().enumerate() {
                    let is_name = ai == 0;
                    if !is_name && !rng.gen_bool(kbc.attr_coverage) {
                        continue;
                    }
                    let shared =
                        det_coin(config.seed, kb_idx as u64, *attr as u64) < kbc.vocab_overlap;
                    let pred = if shared {
                        canonical_predicate(*attr, is_name)
                    } else {
                        proprietary_predicate(kbc, *attr, is_name)
                    };
                    let value_str = render_value(value, kbc, config.vocab_tokens, &mut rng);
                    builder.add_literal(kb, uri, &pred, &value_str);
                }
                // rdf:type — realistic large-block generator (type blocks are
                // what block purging exists to remove).
                builder.add_resource(
                    kb,
                    uri,
                    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                    &format!("http://ontology.example.org/class/Type{}", we.etype),
                );
                // Extra KB-specific noise attributes.
                let extras = poisson(&mut rng, kbc.extra_attrs);
                for _ in 0..extras {
                    let j = rng.gen_range(0..8);
                    let pred = format!("http://{}.example.org/ontology/extra{j}", kbc.name);
                    let len = rng.gen_range(1..=3);
                    let val: Vec<String> = (0..len)
                        .map(|_| token_word(rng.gen_range(0..config.vocab_tokens) as u32))
                        .collect();
                    builder.add_literal(kb, uri, &pred, &val.join(" "));
                }
                entity_of.push(w);
            }
        }

        // Materialise relationship links (first duplicate only: duplicates
        // within a dirty KB rarely repeat the full link structure).
        let rel_shared = det_coin(config.seed, kb_idx as u64, u64::MAX) < kbc.vocab_overlap;
        let rel_pred = if rel_shared {
            "http://ontology.example.org/related".to_string()
        } else {
            format!("http://{}.example.org/ontology/related", kbc.name)
        };
        let mut pos_of = vec![usize::MAX; world.len()];
        for (di, &w) in described.iter().enumerate() {
            pos_of[w as usize] = di;
        }
        for &(a, b) in &world.links {
            let (pa, pb) = (pos_of[a as usize], pos_of[b as usize]);
            if pa != usize::MAX && pb != usize::MAX && rng.gen_bool(kbc.link_keep) {
                builder.add_resource(kb, &uri_of[pa][0], &rel_pred, &uri_of[pb][0]);
            }
        }
    }

    let dataset = builder.build();
    debug_assert_eq!(dataset.len(), entity_of.len());
    let truth = GroundTruth::new(entity_of, world.len(), world.links.clone());
    GeneratedWorld {
        dataset,
        truth,
        world,
    }
}

fn poisson(rng: &mut StdRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let (mut k, mut p) = (0usize, 1.0f64);
    loop {
        p *= rng.gen::<f64>();
        if p <= l || k > 1000 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use minoan_rdf::EntityId;

    #[test]
    fn generation_is_deterministic() {
        let c = WorldConfig::small(42);
        let g1 = generate(&c);
        let g2 = generate(&c);
        assert_eq!(g1.dataset.len(), g2.dataset.len());
        for e in g1.dataset.entities() {
            assert_eq!(g1.dataset.uri(e), g2.dataset.uri(e));
            assert_eq!(
                g1.dataset.description(e).attributes.len(),
                g2.dataset.description(e).attributes.len()
            );
        }
        assert_eq!(g1.truth.matching_pairs(), g2.truth.matching_pairs());
    }

    #[test]
    fn truth_aligns_with_descriptions() {
        let c = WorldConfig::small(7);
        let g = generate(&c);
        assert_eq!(g.truth.num_descriptions(), g.dataset.len());
        // With two ~90%-coverage KBs most world entities get 2 descriptions.
        assert!(g.truth.matchable_entities() > c.num_entities / 2);
        assert!(g.truth.matching_pairs() > 0);
        // Matching descriptions live in different KBs (clean KBs).
        for (a, b) in g.truth.matching_pair_iter() {
            assert_ne!(g.dataset.kb_of(a), g.dataset.kb_of(b));
        }
    }

    #[test]
    fn clean_kb_has_one_description_per_entity() {
        let c = WorldConfig::small(3);
        let g = generate(&c);
        for kbi in 0..g.dataset.kb_count() {
            let kb = minoan_rdf::KbId(kbi as u16);
            let mut seen = std::collections::HashSet::new();
            for &e in g.dataset.entities_of_kb(kb) {
                assert!(seen.insert(g.truth.world_of(e)), "duplicate in clean KB");
            }
        }
    }

    #[test]
    fn dirty_kb_produces_intra_kb_duplicates() {
        let mut c = WorldConfig::small(5);
        c.kbs = vec![crate::config::KbConfig::center("solo")];
        c.kbs[0].dups_per_entity = 2;
        let g = generate(&c);
        assert!(g.truth.matching_pairs() > 0);
        for (a, b) in g.truth.matching_pair_iter() {
            assert_eq!(
                g.dataset.kb_of(a),
                g.dataset.kb_of(b),
                "dirty pairs are intra-KB"
            );
        }
    }

    #[test]
    fn opaque_uris_hide_naming_evidence() {
        let mut c = WorldConfig::small(9);
        c.kbs[1] = crate::config::KbConfig::periphery("peri");
        let g = generate(&c);
        let kb1 = minoan_rdf::KbId(1);
        for &e in g.dataset.entities_of_kb(kb1).iter().take(20) {
            assert!(
                g.dataset.uri(e).contains("/id0"),
                "expected opaque URI, got {}",
                g.dataset.uri(e)
            );
        }
    }

    #[test]
    fn center_pairs_share_more_tokens_than_periphery_pairs() {
        let mut center = WorldConfig::small(11);
        center.kbs = vec![
            crate::config::KbConfig::center("a"),
            crate::config::KbConfig::center("b"),
        ];
        let mut periphery = center.clone();
        periphery.kbs = vec![
            crate::config::KbConfig::periphery("a"),
            crate::config::KbConfig::periphery("b"),
        ];
        let avg_overlap = |g: &GeneratedWorld| -> f64 {
            let mut total = 0.0;
            let mut n = 0usize;
            for (a, b) in g.truth.matching_pair_iter().take(200) {
                let ta: std::collections::HashSet<String> =
                    g.dataset.literal_tokens(a).into_iter().collect();
                let tb: std::collections::HashSet<String> =
                    g.dataset.literal_tokens(b).into_iter().collect();
                let inter = ta.intersection(&tb).count();
                let union = ta.union(&tb).count();
                if union > 0 {
                    total += inter as f64 / union as f64;
                    n += 1;
                }
            }
            total / n.max(1) as f64
        };
        let gc = generate(&center);
        let gp = generate(&periphery);
        let (oc, op) = (avg_overlap(&gc), avg_overlap(&gp));
        assert!(
            oc > op + 0.15,
            "center overlap {oc:.3} should clearly exceed periphery {op:.3}"
        );
    }

    #[test]
    fn relationship_links_exist_in_dataset() {
        let g = generate(&WorldConfig::small(13));
        let linked = g
            .dataset
            .entities()
            .filter(|&e| !g.dataset.neighbors(e).is_empty())
            .count();
        assert!(linked > 0, "no neighbour links materialised");
    }

    #[test]
    fn proprietary_vocabulary_ratio_tracks_config() {
        let mut c = WorldConfig::small(17);
        c.kbs = vec![
            crate::config::KbConfig::periphery("p1"),
            crate::config::KbConfig::periphery("p2"),
        ];
        let g = generate(&c);
        let preds = g.dataset.predicates();
        let proprietary = preds
            .iter()
            .filter(|(_, name)| name.contains("p1.example.org") || name.contains("p2.example.org"))
            .count();
        assert!(
            proprietary * 2 > preds.len(),
            "periphery KBs should use mostly proprietary vocabulary ({proprietary}/{})",
            preds.len()
        );
    }

    #[test]
    fn first_description_is_entity_zeroish() {
        // Sanity: EntityId(0) exists and maps to a valid world entity.
        let g = generate(&WorldConfig::small(1));
        let w = g.truth.world_of(EntityId(0));
        assert!((w as usize) < g.world.len());
    }
}
