//! Ground truth: which descriptions refer to which real-world entity.

use minoan_rdf::EntityId;

/// Exact ground truth emitted alongside a generated [`crate::GeneratedWorld`].
///
/// Everything the evaluation needs: the description → world-entity map, the
/// per-entity description clusters, and the world relationship graph (for
/// the relationship-completeness quality dimension).
#[derive(Clone, Debug)]
pub struct GroundTruth {
    /// `entity_of[d]` = world entity described by description `d`.
    entity_of: Vec<u32>,
    /// `clusters[w]` = descriptions of world entity `w` (sorted ascending).
    clusters: Vec<Vec<EntityId>>,
    /// Undirected world relationship edges `(a < b)` between world entities.
    world_links: Vec<(u32, u32)>,
    /// Total number of matching description pairs (Σ C(|cluster|, 2)).
    matching_pairs: u64,
}

impl GroundTruth {
    /// Builds the truth from the description → world map and world links.
    pub fn new(
        entity_of: Vec<u32>,
        num_world_entities: usize,
        world_links: Vec<(u32, u32)>,
    ) -> Self {
        let mut clusters: Vec<Vec<EntityId>> = vec![Vec::new(); num_world_entities];
        for (d, &w) in entity_of.iter().enumerate() {
            clusters[w as usize].push(EntityId(d as u32));
        }
        let matching_pairs = clusters
            .iter()
            .map(|c| (c.len() as u64) * (c.len().saturating_sub(1) as u64) / 2)
            .sum();
        Self {
            entity_of,
            clusters,
            world_links,
            matching_pairs,
        }
    }

    /// Number of descriptions covered.
    pub fn num_descriptions(&self) -> usize {
        self.entity_of.len()
    }

    /// Number of world entities (including those with < 2 descriptions).
    pub fn num_world_entities(&self) -> usize {
        self.clusters.len()
    }

    /// World entity described by `d`.
    pub fn world_of(&self, d: EntityId) -> u32 {
        self.entity_of[d.index()]
    }

    /// Whether two descriptions refer to the same world entity.
    pub fn is_match(&self, a: EntityId, b: EntityId) -> bool {
        a != b && self.entity_of[a.index()] == self.entity_of[b.index()]
    }

    /// Descriptions of world entity `w`, sorted ascending.
    pub fn cluster(&self, w: u32) -> &[EntityId] {
        &self.clusters[w as usize]
    }

    /// All clusters (index = world entity id).
    pub fn clusters(&self) -> &[Vec<EntityId>] {
        &self.clusters
    }

    /// Total number of matching description pairs — the recall denominator.
    pub fn matching_pairs(&self) -> u64 {
        self.matching_pairs
    }

    /// World entities with at least two descriptions (the ones ER can
    /// actually resolve) — the entity-coverage denominator.
    pub fn matchable_entities(&self) -> usize {
        self.clusters.iter().filter(|c| c.len() >= 2).count()
    }

    /// Undirected world relationship edges.
    pub fn world_links(&self) -> &[(u32, u32)] {
        &self.world_links
    }

    /// World relationship edges whose *both* endpoints are matchable — the
    /// relationship-completeness denominator.
    pub fn matchable_links(&self) -> usize {
        self.world_links
            .iter()
            .filter(|(a, b)| {
                self.clusters[*a as usize].len() >= 2 && self.clusters[*b as usize].len() >= 2
            })
            .count()
    }

    /// Iterates all matching description pairs `(a < b)`.
    pub fn matching_pair_iter(&self) -> impl Iterator<Item = (EntityId, EntityId)> + '_ {
        self.clusters.iter().flat_map(|c| {
            c.iter()
                .enumerate()
                .flat_map(move |(i, &a)| c[i + 1..].iter().map(move |&b| (a, b)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GroundTruth {
        // 5 descriptions over 3 world entities: w0 = {0,2}, w1 = {1,3,4}, w2 = {}.
        GroundTruth::new(vec![0, 1, 0, 1, 1], 3, vec![(0, 1), (1, 2)])
    }

    #[test]
    fn clusters_and_pairs() {
        let t = truth();
        assert_eq!(t.cluster(0), &[EntityId(0), EntityId(2)]);
        assert_eq!(t.cluster(1), &[EntityId(1), EntityId(3), EntityId(4)]);
        assert!(t.cluster(2).is_empty());
        assert_eq!(t.matching_pairs(), 1 + 3);
        assert_eq!(t.matchable_entities(), 2);
    }

    #[test]
    fn is_match_semantics() {
        let t = truth();
        assert!(t.is_match(EntityId(0), EntityId(2)));
        assert!(t.is_match(EntityId(3), EntityId(4)));
        assert!(!t.is_match(EntityId(0), EntityId(1)));
        assert!(
            !t.is_match(EntityId(0), EntityId(0)),
            "self pair is not a match"
        );
    }

    #[test]
    fn matchable_links_require_both_sides() {
        let t = truth();
        // (0,1): both matchable. (1,2): w2 has no descriptions.
        assert_eq!(t.matchable_links(), 1);
    }

    #[test]
    fn matching_pair_iter_agrees_with_count() {
        let t = truth();
        let pairs: Vec<_> = t.matching_pair_iter().collect();
        assert_eq!(pairs.len() as u64, t.matching_pairs());
        assert!(pairs.contains(&(EntityId(0), EntityId(2))));
        assert!(pairs.iter().all(|(a, b)| a < b));
    }
}
