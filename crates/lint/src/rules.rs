//! The rule catalogue.
//!
//! Each rule is a scan over the masked source of one file (or one
//! manifest). Rules are deliberately repo-specific: the file lists below
//! name the modules whose invariants PRs 1–5 established.

use crate::source::ScannedFile;

/// One diagnostic emitted by a rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (byte-based).
    pub col: u32,
    /// Stable code, e.g. `ML001`.
    pub code: &'static str,
    /// Rule name, e.g. `hot-path-alloc`.
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Static description of a rule, for `--list-rules` and docs.
pub struct RuleInfo {
    /// Stable code.
    pub code: &'static str,
    /// Kebab-case name used in `lint.toml` and `lint:allow(...)`.
    pub name: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// Every rule the engine knows, in code order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        code: "ML000",
        name: "allow-missing-reason",
        summary: "a lint:allow escape without a written justification (unsuppressable)",
    },
    RuleInfo {
        code: "ML001",
        name: "hot-path-alloc",
        summary: "per-token String allocation (format!/to_string/String::new/to_owned) in a hot-path module",
    },
    RuleInfo {
        code: "ML002",
        name: "hash-order-leak",
        summary: "hash-map types in flat-core modules, or unsorted hash-map iteration anywhere",
    },
    RuleInfo {
        code: "ML003",
        name: "float-accumulation",
        summary: "raw f64 accumulation in thread-parallel modules (use stats::pairwise_sum)",
    },
    RuleInfo {
        code: "ML004",
        name: "legacy-oracle-reach",
        summary: "legacy oracles (legacy_*_with/rebuild_from_blocks/from_groups) referenced outside tests",
    },
    RuleInfo {
        code: "ML005",
        name: "unwrap-in-lib",
        summary: "unwrap()/uninformative expect() in library code",
    },
    RuleInfo {
        code: "ML006",
        name: "dep-drift",
        summary: "manifest dependency outside the workspace/vendor shim layer",
    },
    RuleInfo {
        code: "ML007",
        name: "forbid-unsafe",
        summary: "crate root missing #![forbid(unsafe_code)]",
    },
];

/// Looks a rule up by name.
pub fn rule_by_name(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

/// Hot-path modules: no per-token string allocation (ML001). These are the
/// flat-pipeline stages PR 5 made string-free plus the sweep kernels, and
/// the per-request paths of the resolution service (a query must not
/// allocate strings any more than a sweep row may).
const HOT_PATH_FILES: &[&str] = &[
    "crates/blocking/src/builders.rs",
    "crates/blocking/src/layout.rs",
    "crates/blocking/src/purge.rs",
    "crates/blocking/src/filter.rs",
    "crates/metablocking/src/kernel.rs",
    "crates/metablocking/src/sweep.rs",
    "crates/metablocking/src/streaming.rs",
    "crates/metablocking/src/parallel.rs",
    "crates/metablocking/src/query.rs",
    "crates/server/src/service.rs",
    "crates/server/src/server.rs",
];

/// Flat-core modules: hash-map *types* are banned outright (ML002 tier A) —
/// iteration order must never be able to leak into outputs.
const FLAT_CORE_FILES: &[&str] = &[
    "crates/blocking/src/layout.rs",
    "crates/blocking/src/purge.rs",
    "crates/blocking/src/filter.rs",
    "crates/metablocking/src/kernel.rs",
    "crates/metablocking/src/sweep.rs",
    "crates/metablocking/src/streaming.rs",
    "crates/metablocking/src/parallel.rs",
];

/// Thread-parallel modules: raw f64 accumulation is suspect (ML003) —
/// cross-thread reductions must go through `stats::pairwise_sum`.
const PARALLEL_FILES: &[&str] = &[
    "crates/blocking/src/layout.rs",
    "crates/blocking/src/parallel.rs",
    "crates/metablocking/src/kernel.rs",
    "crates/metablocking/src/sweep.rs",
    "crates/metablocking/src/streaming.rs",
    "crates/metablocking/src/parallel.rs",
    "crates/mapreduce/src/engine.rs",
];

/// Crates whose non-test library code must not `unwrap()` (ML005).
const UNWRAP_CRATES: &[&str] = &[
    "common",
    "blocking",
    "metablocking",
    "server",
    "store",
    "core",
    "eval",
    "similarity",
];

/// Names only tests/benches may reference (ML004).
const LEGACY_ORACLES: &[&str] = &[
    "legacy_purge_with",
    "legacy_filter_with",
    "rebuild_from_blocks",
    "from_groups",
];

const HASH_TYPES: &[&str] = &[
    "FxHashMap",
    "FxHashSet",
    "HashMap",
    "HashSet",
    "hash_map",
    "hash_set",
];

/// Minimum `.expect("…")` message length ML005 accepts.
const MIN_EXPECT_MSG: usize = 8;

fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

fn in_crate_src(rel: &str) -> bool {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split_once('/'))
        .map(|(_, rest)| rest.starts_with("src/"))
        .unwrap_or(false)
}

/// Whether the *path* denotes test-only compilation units.
pub fn is_test_path(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    parts
        .iter()
        .any(|p| *p == "tests" || *p == "benches" || *p == "examples")
}

fn is_crate_root(rel: &str) -> bool {
    if rel == "src/lib.rs" {
        return true;
    }
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((_, tail)) = rest.split_once('/') {
            return tail == "src/lib.rs" || tail == "src/main.rs";
        }
    }
    false
}

/// Runs every source-level rule over one scanned Rust file.
pub fn check_rust(rel: &str, scanned: &ScannedFile, out: &mut Vec<Diagnostic>) {
    let test_path = is_test_path(rel);

    if is_crate_root(rel) && !scanned.masked.contains("#![forbid(unsafe_code)]") {
        out.push(diag(
            rel,
            1,
            1,
            "forbid-unsafe",
            "crate root must carry `#![forbid(unsafe_code)]` — the workspace is \
             unsafe-free and that must stay compiler-enforced"
                .to_string(),
        ));
    }

    // Inline allows lacking a justification are themselves diagnostics.
    for a in &scanned.allows {
        if !a.has_reason {
            out.push(diag(
                rel,
                a.line,
                1,
                "allow-missing-reason",
                "lint:allow(...) must carry a justification: `// lint:allow(rule): why`"
                    .to_string(),
            ));
        }
        for r in &a.rules {
            if rule_by_name(r).is_none() {
                out.push(diag(
                    rel,
                    a.line,
                    1,
                    "allow-missing-reason",
                    format!("lint:allow names unknown rule `{r}`"),
                ));
            }
        }
    }

    if !test_path {
        if HOT_PATH_FILES.contains(&rel) {
            hot_path_alloc(rel, scanned, out);
        }
        if FLAT_CORE_FILES.contains(&rel) {
            hash_types_banned(rel, scanned, out);
        } else {
            hash_iteration(rel, scanned, out);
        }
        if PARALLEL_FILES.contains(&rel) {
            float_accumulation(rel, scanned, out);
        }
        let in_unwrap_scope = crate_of(rel)
            .map(|c| UNWRAP_CRATES.contains(&c))
            .unwrap_or(false)
            && in_crate_src(rel);
        if in_unwrap_scope {
            unwrap_in_lib(rel, scanned, out);
        }
        legacy_oracle_reach(rel, scanned, out);
    }

    out.sort_by(|a, b| (a.line, a.col, a.code).cmp(&(b.line, b.col, b.code)));
    out.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
}

fn diag(rel: &str, line: u32, col: u32, rule: &'static str, message: String) -> Diagnostic {
    let info = rule_by_name(rule).expect("rule names are static and known");
    Diagnostic {
        path: rel.to_string(),
        line,
        col,
        code: info.code,
        rule: info.name,
        message,
    }
}

/// Byte offsets of `needle` in `hay`.
fn find_all(hay: &str, needle: &str) -> Vec<usize> {
    let mut offs = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = hay[from..].find(needle) {
        offs.push(from + rel);
        from += rel + needle.len();
    }
    offs
}

/// Byte offsets where `name` occurs as a whole identifier.
fn find_ident(hay: &str, name: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    find_all(hay, name)
        .into_iter()
        .filter(|&off| {
            let before_ok = off == 0 || !is_ident(bytes[off - 1]);
            let after = off + name.len();
            let after_ok = after >= bytes.len() || !is_ident(bytes[after]);
            before_ok && after_ok
        })
        .collect()
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// ML001 — string allocation patterns in hot-path modules.
fn hot_path_alloc(rel: &str, s: &ScannedFile, out: &mut Vec<Diagnostic>) {
    const PATTERNS: &[(&str, &str)] = &[
        ("format!", "`format!` allocates a String per call"),
        (".to_string()", "`.to_string()` allocates a String per call"),
        (
            "String::new(",
            "`String::new()` allocates in a hot-path module",
        ),
        (
            ".to_owned()",
            "`.to_owned()` allocates in a hot-path module",
        ),
        (
            "String::from(",
            "`String::from` allocates in a hot-path module",
        ),
    ];
    for (pat, why) in PATTERNS {
        for off in find_all(&s.masked, pat) {
            if s.in_test(off) {
                continue;
            }
            let (line, col) = s.line_col(off);
            out.push(diag(
                rel,
                line,
                col,
                "hot-path-alloc",
                format!("{why} — hot paths must stay allocation-free (intern or reuse a buffer)"),
            ));
        }
    }
}

/// ML002 tier A — hash-map types banned in flat-core modules.
fn hash_types_banned(rel: &str, s: &ScannedFile, out: &mut Vec<Diagnostic>) {
    for ty in HASH_TYPES {
        for off in find_ident(&s.masked, ty) {
            if s.in_test(off) {
                continue;
            }
            let (line, col) = s.line_col(off);
            out.push(diag(
                rel,
                line,
                col,
                "hash-order-leak",
                format!(
                    "`{ty}` in a flat-core module — hash iteration order must not be able \
                     to leak into pipeline outputs; use slabs or a BTree container"
                ),
            ));
        }
    }
}

/// Identifiers bound (via `let` or a field/annotation) to a type whose
/// outermost constructor is one of `types`. `wrappers` lists additional
/// leading tokens tolerated between `:` and the type (for the float rule,
/// `Vec<` et al.).
fn bound_idents(s: &ScannedFile, types: &[&str], wrappers: &[&str]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for ty in types {
        for off in find_ident(&s.masked, ty) {
            let (line, col) = s.line_col(off);
            let line_text = s.masked_line(line as usize - 1);
            let before = &line_text[..(col as usize - 1).min(line_text.len())];
            // `NAME: Type` (annotation or struct field): walk colons right
            // to left, skipping `::` path separators so qualified types
            // (`q: std::collections::HashSet<u32>`) still resolve.
            let mut end = before.len();
            let mut annotated = false;
            while let Some(colon) = before[..end].rfind(':') {
                if colon > 0 && before.as_bytes()[colon - 1] == b':' {
                    end = colon - 1;
                    continue;
                }
                if before[colon + 1..].starts_with(':') {
                    end = colon;
                    continue;
                }
                let between = before[colon + 1..].trim_start();
                if only_type_prefix(between, wrappers) {
                    if let Some(name) = last_ident(&before[..colon]) {
                        names.push(name);
                        annotated = true;
                    }
                }
                break;
            }
            if annotated {
                continue;
            }
            // `let [mut] NAME = Type::...`.
            if before.trim_end().ends_with('=') {
                if let Some(name) = let_binding_name(before) {
                    names.push(name);
                }
            }
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

/// True when `between` (text from `:` to the type name) is only path
/// segments, references, or one of the allowed wrappers.
fn only_type_prefix(mut between: &str, wrappers: &[&str]) -> bool {
    loop {
        between = between.trim_start();
        if between.is_empty() {
            return true;
        }
        if let Some(rest) = between.strip_prefix('&') {
            between = rest;
            continue;
        }
        if let Some(rest) = between.strip_prefix("mut ") {
            between = rest;
            continue;
        }
        if let Some(w) = wrappers.iter().find(|w| between.starts_with(**w)) {
            between = &between[w.len()..];
            continue;
        }
        // A path segment `ident::`.
        let seg_len = between.bytes().take_while(|&b| is_ident(b)).count();
        if seg_len > 0 && between[seg_len..].starts_with("::") {
            between = &between[seg_len + 2..];
            continue;
        }
        return false;
    }
}

fn last_ident(text: &str) -> Option<String> {
    let bytes = text.trim_end().as_bytes();
    let end = bytes.len();
    let start = (0..end).rev().take_while(|&i| is_ident(bytes[i])).last()?;
    if end > start {
        Some(String::from_utf8_lossy(&bytes[start..end]).into_owned())
    } else {
        None
    }
}

/// From `let mut name = ` prefix text, extracts `name`.
fn let_binding_name(before: &str) -> Option<String> {
    let t = before.trim_end().trim_end_matches('=').trim_end();
    let let_pos = t.rfind("let ")?;
    let mut rest = t[let_pos + 4..].trim_start();
    if let Some(r) = rest.strip_prefix("mut ") {
        rest = r.trim_start();
    }
    let name: String = rest
        .bytes()
        .take_while(|&b| is_ident(b))
        .map(|b| b as char)
        .collect();
    // Only a simple `let name =` (no pattern, no annotation) reaches here.
    if !name.is_empty() && rest[name.len()..].trim_start().is_empty() {
        Some(name)
    } else {
        None
    }
}

/// ML002 tier B — unsorted iteration over hash-bound locals/fields.
fn hash_iteration(rel: &str, s: &ScannedFile, out: &mut Vec<Diagnostic>) {
    let names = bound_idents(s, &["FxHashMap", "FxHashSet", "HashMap", "HashSet"], &[]);
    const ITER_METHODS: &[&str] = &[
        ".iter()",
        ".iter_mut()",
        ".into_iter()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".drain(",
    ];
    for name in &names {
        for m in ITER_METHODS {
            let pat = format!("{name}{m}");
            for off in find_all(&s.masked, &pat) {
                if s.in_test(off) || is_mid_ident(&s.masked, off) {
                    continue;
                }
                check_sorted_window(rel, s, off, name, out);
            }
        }
        // `for x in name {` / `for x in &name {`.
        for off in find_ident(&s.masked, name) {
            if s.in_test(off) {
                continue;
            }
            let before = s.masked[..off].trim_end();
            let prefixed = before.ends_with(" in")
                || before.ends_with("&") && {
                    let b2 = before.trim_end_matches(['&', ' ']).trim_end();
                    b2.ends_with(" in")
                };
            if !prefixed {
                continue;
            }
            let after = s.masked[off + name.len()..].trim_start();
            if after.starts_with('{') {
                check_sorted_window(rel, s, off, name, out);
            }
        }
    }
}

fn is_mid_ident(masked: &str, off: usize) -> bool {
    off > 0 && is_ident(masked.as_bytes()[off - 1])
}

/// Suppresses the tier-B diagnostic when a statement near the iteration —
/// the statement before it (`xs.sort(); for x in xs`), its own, or the one
/// right after — establishes an order (`sort…`) or an ordered container
/// (`BTree…`), or is order-insensitive (`.count()`).
fn check_sorted_window(
    rel: &str,
    s: &ScannedFile,
    off: usize,
    name: &str,
    out: &mut Vec<Diagnostic>,
) {
    let bytes = s.masked.as_bytes();
    let window_end = {
        let mut semis = 0;
        let mut i = off;
        while i < bytes.len() && semis < 2 && i - off < 600 {
            if bytes[i] == b';' {
                semis += 1;
            }
            i += 1;
        }
        i
    };
    let window_start = {
        let mut semis = 0;
        let mut i = off;
        while i > 0 && semis < 2 && off - i < 200 {
            i -= 1;
            if bytes[i] == b';' {
                semis += 1;
            }
        }
        i
    };
    let window = &s.masked[window_start..window_end];
    if window.contains("sort") || window.contains("BTree") || window.contains(".count()") {
        return;
    }
    let (line, col) = s.line_col(off);
    out.push(diag(
        rel,
        line,
        col,
        "hash-order-leak",
        format!(
            "iteration over hash-bound `{name}` with no sort in reach — hash order \
             must not decide emission order (collect + sort, or use a BTree container)"
        ),
    ));
}

/// ML003 — raw float accumulation in thread-parallel modules.
fn float_accumulation(rel: &str, s: &ScannedFile, out: &mut Vec<Diagnostic>) {
    for off in find_all(&s.masked, ".sum::<f64>()") {
        if s.in_test(off) {
            continue;
        }
        let (line, col) = s.line_col(off);
        out.push(diag(
            rel,
            line,
            col,
            "float-accumulation",
            "`.sum::<f64>()` reduces in iteration order — route the reduction through \
             `minoan_common::stats::pairwise_sum` so the tree shape is fixed"
                .to_string(),
        ));
    }
    let float_names = float_bound_idents(s);
    if float_names.is_empty() {
        return;
    }
    for op in ["+=", "-="] {
        for off in find_all(&s.masked, op) {
            if s.in_test(off) {
                continue;
            }
            let (line, col) = s.line_col(off);
            let line_text = s.masked_line(line as usize - 1);
            let lvalue = &line_text[..(col as usize - 1).min(line_text.len())];
            let fired = idents_in(lvalue)
                .into_iter()
                .find(|i| float_names.contains(i));
            if let Some(name) = fired {
                out.push(diag(
                    rel,
                    line,
                    col,
                    "float-accumulation",
                    format!(
                        "raw f64 accumulation into `{name}` in a thread-parallel module — \
                         cross-thread reductions must use stats::pairwise_sum; per-entity \
                         serial accumulation needs a justified lint:allow"
                    ),
                ));
            }
        }
    }
}

/// Identifiers bound to `f64` storage (scalar, slice, or Vec).
fn float_bound_idents(s: &ScannedFile) -> Vec<String> {
    let mut names = bound_idents(s, &["f64"], &["Vec<", "Box<", "[", "]"]);
    // `let mut x = 0.0;` style: float literal initialisers. A line can
    // hold several `let` statements, so scan every occurrence.
    for (idx, _) in s.line_starts.iter().enumerate() {
        let line = s.masked_line(idx);
        let mut search = 0;
        while let Some(p) = line[search..].find("let ") {
            let let_pos = search + p;
            search = let_pos + 4;
            let stmt_end = line[let_pos..]
                .find(';')
                .map(|p| p + let_pos)
                .unwrap_or(line.len());
            let Some(eq) = line[let_pos..stmt_end].find('=').map(|p| p + let_pos) else {
                continue;
            };
            if line.as_bytes().get(eq + 1) == Some(&b'=') {
                continue;
            }
            let Some(name) = let_binding_name(&line[let_pos..eq + 1]) else {
                continue;
            };
            let mut init = line[eq + 1..].trim_start();
            if let Some(r) = init.strip_prefix("vec![") {
                init = r.trim_start();
            }
            if starts_with_float_literal(init) || init.starts_with("f64::") {
                names.push(name);
            }
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

fn starts_with_float_literal(text: &str) -> bool {
    let bytes = text.as_bytes();
    let digits = bytes.iter().take_while(|b| b.is_ascii_digit()).count();
    digits > 0
        && bytes.get(digits) == Some(&b'.')
        && bytes.get(digits + 1).is_some_and(|b| b.is_ascii_digit())
}

fn idents_in(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if is_ident(bytes[i]) && !bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && is_ident(bytes[i]) {
                i += 1;
            }
            out.push(text[start..i].to_string());
        } else {
            i += 1;
        }
    }
    out
}

/// ML004 — legacy oracles referenced outside tests/benches.
fn legacy_oracle_reach(rel: &str, s: &ScannedFile, out: &mut Vec<Diagnostic>) {
    for name in LEGACY_ORACLES {
        for off in find_ident(&s.masked, name) {
            if s.in_test(off) {
                continue;
            }
            // Definition sites (`fn from_groups(`) are fine.
            let before = s.masked[..off].trim_end();
            if before.ends_with("fn") {
                continue;
            }
            let (line, col) = s.line_col(off);
            out.push(diag(
                rel,
                line,
                col,
                "legacy-oracle-reach",
                format!(
                    "`{name}` is a legacy oracle/compat shim — reachable only from \
                     tests, benches, or #[cfg(test)] code (allowlist deliberate \
                     production uses with a justification)"
                ),
            ));
        }
    }
}

/// ML005 — unwrap()/weak expect() in library code.
fn unwrap_in_lib(rel: &str, s: &ScannedFile, out: &mut Vec<Diagnostic>) {
    for off in find_all(&s.masked, ".unwrap()") {
        if s.in_test(off) {
            continue;
        }
        let (line, col) = s.line_col(off);
        out.push(diag(
            rel,
            line,
            col,
            "unwrap-in-lib",
            "`.unwrap()` in library code — propagate the error or use \
             `.expect(\"reason\")` stating the violated invariant"
                .to_string(),
        ));
    }
    for off in find_all(&s.masked, ".expect(") {
        if s.in_test(off) {
            continue;
        }
        // The message bytes are masked; measure the literal via the masked
        // span between the quotes (escapes collapse to spaces, same length).
        let after = &s.masked[off + ".expect(".len()..];
        let trimmed = after.trim_start();
        let msg_len = if let Some(rest) = trimmed.strip_prefix('"') {
            rest.find('"').unwrap_or(0)
        } else {
            0
        };
        if msg_len >= MIN_EXPECT_MSG {
            continue;
        }
        let (line, col) = s.line_col(off);
        out.push(diag(
            rel,
            line,
            col,
            "unwrap-in-lib",
            format!(
                "`.expect()` message under {MIN_EXPECT_MSG} characters (or not a string \
                 literal) — state the invariant that failed"
            ),
        ));
    }
}

/// ML006 — manifest scan: every dependency must stay inside the workspace
/// or the `vendor/` shim layer (the build container has no registry).
pub fn check_manifest(rel: &str, text: &str, out: &mut Vec<Diagnostic>) {
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = crate::config_strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            section = line
                .trim_start_matches('[')
                .trim_end_matches(']')
                .trim()
                .to_string();
            if section.contains("dependencies.") {
                // `[dependencies.foo]` long-form tables are not used in this
                // workspace; flag the style itself so entries stay greppable.
                out.push(diag(
                    rel,
                    (idx + 1) as u32,
                    1,
                    "dep-drift",
                    "long-form dependency tables are not used here — declare deps \
                     inline so the workspace/vendor constraint stays checkable"
                        .to_string(),
                ));
            }
            continue;
        }
        let is_dep_section = section == "dependencies"
            || section.ends_with("-dependencies")
            || section.ends_with(".dependencies");
        if !is_dep_section {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        if key.ends_with(".workspace") && value == "true" {
            continue;
        }
        if key.ends_with(".path") {
            continue;
        }
        let ok = value.contains("workspace = true")
            || (value.contains("path = \"") && !value.contains("git ="));
        if ok {
            continue;
        }
        let reason = if value.contains("git =") {
            "git dependency"
        } else if value.starts_with('"') {
            "registry version requirement"
        } else {
            "dependency without a workspace path"
        };
        out.push(diag(
            rel,
            (idx + 1) as u32,
            1,
            "dep-drift",
            format!(
                "{reason} for `{key}` — the registry is unreachable in the build \
                 container; vendor an API-compatible shim under vendor/ instead"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;

    fn run(rel: &str, src: &str) -> Vec<Diagnostic> {
        let s = scan(src);
        let mut out = Vec::new();
        check_rust(rel, &s, &mut out);
        out
    }

    #[test]
    fn binder_extraction() {
        let s = scan(
            "struct X { inner: FxHashMap<u32, u32>, adj: Vec<FxHashSet<u32>> }\n\
             fn f() { let mut m = HashMap::new(); let q: std::collections::HashSet<u32> = x; }\n",
        );
        let names = bound_idents(&s, &["FxHashMap", "FxHashSet", "HashMap", "HashSet"], &[]);
        assert!(names.contains(&"inner".to_string()));
        assert!(names.contains(&"m".to_string()));
        assert!(names.contains(&"q".to_string()));
        // Vec<FxHashSet<..>> is not hash-outermost: iterating it is fine.
        assert!(!names.contains(&"adj".to_string()));
    }

    #[test]
    fn float_binders() {
        let s = scan(
            "struct K { arcs: Vec<f64> }\nfn f(w: f64) { let mut sum = 0.0; let n = 0u64; \
             let v = vec![0.0f64; 3]; }\n",
        );
        let names = float_bound_idents(&s);
        assert!(names.contains(&"arcs".to_string()));
        assert!(names.contains(&"sum".to_string()));
        assert!(names.contains(&"w".to_string()));
        assert!(names.contains(&"v".to_string()));
        assert!(!names.contains(&"n".to_string()));
    }

    #[test]
    fn expect_message_length_checked() {
        let fire = run(
            "crates/store/src/x.rs",
            "fn f(o: Option<u32>) -> u32 { o.expect(\"no\") }\n",
        );
        assert_eq!(fire.len(), 1);
        assert_eq!(fire[0].code, "ML005");
        let clean = run(
            "crates/store/src/x.rs",
            "fn f(o: Option<u32>) -> u32 { o.expect(\"stats slab sized at build\") }\n",
        );
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn manifest_rule() {
        let mut out = Vec::new();
        check_manifest(
            "crates/x/Cargo.toml",
            "[package]\nname = \"x\"\n[dependencies]\nserde.workspace = true\n\
             rand = { path = \"../../vendor/rand\" }\nregex = \"1.10\"\n",
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 6);
        assert!(out[0].message.contains("registry"));
    }
}
