//! `minoan-lint` — first-party static analysis for the MinoanER workspace.
//!
//! Custom rustc/clippy lints are impossible offline, so this crate ships
//! its own comment- and string-literal-aware Rust scanner plus a rules
//! engine that walks every workspace `crates/*/src` (and `tests/`,
//! `examples/`, `benches/`) tree and emits `file:line:col` diagnostics
//! with stable rule codes. Deliberate exceptions are recorded either
//! inline (`// lint:allow(rule): reason`) or in `lint.toml` — both forms
//! *require* a written justification.
//!
//! The rules encode the invariants PRs 1–5 established (see
//! `CONTRIBUTING.md` for the full catalogue):
//!
//! | code  | rule                  | invariant |
//! |-------|-----------------------|-----------|
//! | ML001 | `hot-path-alloc`      | no per-token `String`/`format!` in hot-path modules |
//! | ML002 | `hash-order-leak`     | hash iteration order never decides output order |
//! | ML003 | `float-accumulation`  | float reductions go through `stats::pairwise_sum` |
//! | ML004 | `legacy-oracle-reach` | legacy oracles reachable only from tests/benches |
//! | ML005 | `unwrap-in-lib`       | library code propagates errors or explains its expects |
//! | ML006 | `dep-drift`           | dependencies stay inside the workspace / `vendor/` |
//! | ML007 | `forbid-unsafe`       | every crate root carries `#![forbid(unsafe_code)]` |

#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod rules;
pub mod source;

pub use config::{glob_match, Config, ConfigAllow};
pub use engine::{
    collect_files, find_root, lint_manifest_source, lint_rust_source, lint_workspace, load_config,
    AllowedDiagnostic, Outcome,
};
pub use rules::{rule_by_name, Diagnostic, RuleInfo, RULES};

// Internal convenience used by the manifest rule.
pub(crate) use config::strip_toml_comment as config_strip_comment;
