//! `lint.toml` parsing and path-glob matching.
//!
//! The config is a flat list of `[[allow]]` entries:
//!
//! ```toml
//! [[allow]]
//! rule = "legacy-oracle-reach"
//! path = "crates/bench/src/*.rs"
//! reason = "the bench harness exists to measure flat vs legacy paths"
//! ```
//!
//! `path` is a glob over workspace-relative paths (`*` within one path
//! segment, `**` across segments). `line` optionally pins the entry to one
//! line. Every entry **must** carry a `reason` of at least ten characters —
//! an allowlist entry without a written justification is a config error.

/// One `[[allow]]` entry from `lint.toml`.
#[derive(Clone, Debug)]
pub struct ConfigAllow {
    /// Rule name the entry suppresses.
    pub rule: String,
    /// Workspace-relative path glob.
    pub path: String,
    /// Optional 1-based line restriction.
    pub line: Option<u32>,
    /// Written justification (required, ≥ 10 chars).
    pub reason: String,
}

/// Parsed lint configuration.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Allowlist entries, in file order.
    pub allows: Vec<ConfigAllow>,
}

impl Config {
    /// Parses the restricted TOML subset used by `lint.toml`.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut allows: Vec<ConfigAllow> = Vec::new();
        let mut current: Option<(usize, ConfigAllow)> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some((at, entry)) = current.take() {
                    validate(at, &entry)?;
                    allows.push(entry);
                }
                current = Some((
                    idx + 1,
                    ConfigAllow {
                        rule: String::new(),
                        path: String::new(),
                        line: None,
                        reason: String::new(),
                    },
                ));
                continue;
            }
            let Some((at, entry)) = current.as_mut() else {
                return Err(format!(
                    "lint.toml:{}: content outside an [[allow]] entry: `{line}`",
                    idx + 1
                ));
            };
            let _ = at;
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml:{}: expected `key = value`", idx + 1));
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "rule" => entry.rule = unquote(value, idx + 1)?,
                "path" => entry.path = unquote(value, idx + 1)?,
                "reason" => entry.reason = unquote(value, idx + 1)?,
                "line" => {
                    entry.line =
                        Some(value.parse::<u32>().map_err(|_| {
                            format!("lint.toml:{}: `line` must be an integer", idx + 1)
                        })?)
                }
                other => {
                    return Err(format!("lint.toml:{}: unknown key `{other}`", idx + 1));
                }
            }
        }
        if let Some((at, entry)) = current.take() {
            validate(at, &entry)?;
            allows.push(entry);
        }
        Ok(Config { allows })
    }
}

fn validate(at: usize, entry: &ConfigAllow) -> Result<(), String> {
    if entry.rule.is_empty() {
        return Err(format!("lint.toml:{at}: [[allow]] entry is missing `rule`"));
    }
    if entry.path.is_empty() {
        return Err(format!("lint.toml:{at}: [[allow]] entry is missing `path`"));
    }
    if entry.reason.trim().len() < 10 {
        return Err(format!(
            "lint.toml:{at}: [[allow]] entry for `{}` on `{}` needs a written \
             justification (`reason`, at least 10 characters)",
            entry.rule, entry.path
        ));
    }
    Ok(())
}

fn unquote(value: &str, line: usize) -> Result<String, String> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!(
            "lint.toml:{line}: expected a quoted string, got `{v}`"
        ))
    }
}

/// Removes a trailing `# comment`, respecting quoted strings.
pub(crate) fn strip_toml_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Matches `path` against `pattern`: `*` spans within one `/`-separated
/// segment, `**` spans any number of segments.
pub fn glob_match(pattern: &str, path: &str) -> bool {
    let pat: Vec<&str> = pattern.split('/').collect();
    let segs: Vec<&str> = path.split('/').collect();
    match_segments(&pat, &segs)
}

fn match_segments(pat: &[&str], segs: &[&str]) -> bool {
    match pat.first() {
        None => segs.is_empty(),
        Some(&"**") => (0..=segs.len()).any(|skip| match_segments(&pat[1..], &segs[skip..])),
        Some(p) => match segs.first() {
            None => false,
            Some(s) => {
                match_one(p.as_bytes(), s.as_bytes()) && match_segments(&pat[1..], &segs[1..])
            }
        },
    }
}

fn match_one(pat: &[u8], s: &[u8]) -> bool {
    if pat.is_empty() {
        return s.is_empty();
    }
    if pat[0] == b'*' {
        (0..=s.len()).any(|skip| match_one(&pat[1..], &s[skip..]))
    } else {
        !s.is_empty() && pat[0] == s[0] && match_one(&pat[1..], &s[1..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries() {
        let cfg = Config::parse(
            "# header\n[[allow]]\nrule = \"dep-drift\"\npath = \"crates/x/Cargo.toml\"\n\
             reason = \"because of the vendored shim layer\"\n\n[[allow]]\n\
             rule = \"unwrap-in-lib\"\npath = \"crates/*/src/*.rs\"\nline = 12\n\
             reason = \"message is checked above\"  # trailing\n",
        )
        .unwrap();
        assert_eq!(cfg.allows.len(), 2);
        assert_eq!(cfg.allows[0].rule, "dep-drift");
        assert_eq!(cfg.allows[1].line, Some(12));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let err = Config::parse("[[allow]]\nrule = \"x\"\npath = \"y\"\n").unwrap_err();
        assert!(err.contains("justification"), "{err}");
    }

    #[test]
    fn globs() {
        assert!(glob_match(
            "crates/*/src/*.rs",
            "crates/blocking/src/purge.rs"
        ));
        assert!(!glob_match(
            "crates/*/src/*.rs",
            "crates/blocking/src/sub/purge.rs"
        ));
        assert!(glob_match(
            "crates/**/*.rs",
            "crates/blocking/src/sub/purge.rs"
        ));
        assert!(glob_match(
            "crates/bench/src/**",
            "crates/bench/src/blockbuild.rs"
        ));
        assert!(glob_match("tests/*.rs", "tests/blocking_layout.rs"));
        assert!(!glob_match("tests/*.rs", "crates/x/tests/y.rs"));
    }
}
