//! Comment- and string-literal-aware Rust source scanning.
//!
//! The rules engine never sees raw source: it works on a *masked* copy in
//! which every comment and every string-literal body has been blanked to
//! spaces (newlines preserved, byte offsets unchanged), so substring rules
//! cannot fire on prose. Alongside the mask the scanner extracts the two
//! pieces of structure the rules need: the byte spans of test-only code
//! (`#[cfg(test)]` / `#[test]` items) and the inline
//! `// lint:allow(rule): reason` escapes.

/// One inline `lint:allow` directive.
#[derive(Clone, Debug)]
pub struct Allow {
    /// 1-based line of the comment.
    pub line: u32,
    /// Rule names listed inside `lint:allow(...)`.
    pub rules: Vec<String>,
    /// Whether a `: reason` tail with actual text follows the rule list.
    pub has_reason: bool,
    /// True when the comment is alone on its line (the directive then
    /// applies to the *next* line instead of its own).
    pub own_line: bool,
}

/// A scanned source file: mask, line table, test spans, allow directives.
pub struct ScannedFile {
    /// Masked copy of the source — identical byte length, with comments
    /// and string-literal bodies replaced by spaces.
    pub masked: String,
    /// Byte offset of the start of each line (line `i` is 0-based here).
    pub line_starts: Vec<usize>,
    /// Byte ranges (start, end) of `#[cfg(test)]` / `#[test]` items.
    pub test_spans: Vec<(usize, usize)>,
    /// Inline allow directives, in file order.
    pub allows: Vec<Allow>,
}

impl ScannedFile {
    /// 1-based (line, col) of a byte offset.
    pub fn line_col(&self, offset: usize) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (
            (line + 1) as u32,
            (offset - self.line_starts[line] + 1) as u32,
        )
    }

    /// Whether `offset` falls inside test-only code.
    pub fn in_test(&self, offset: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(s, e)| s <= offset && offset < e)
    }

    /// The masked text of 0-based line `i`.
    pub fn masked_line(&self, i: usize) -> &str {
        let start = self.line_starts[i];
        let end = self
            .line_starts
            .get(i + 1)
            .copied()
            .unwrap_or(self.masked.len());
        self.masked[start..end].trim_end_matches('\n')
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Scans `source`, producing the mask and the extracted structure.
pub fn scan(source: &str) -> ScannedFile {
    let bytes = source.as_bytes();
    let mut masked = bytes.to_vec();
    // (start, end) byte ranges of comments, for allow-directive parsing.
    let mut comments: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            let start = i;
            while i < bytes.len() && bytes[i] != b'\n' {
                masked[i] = b' ';
                i += 1;
            }
            comments.push((start, i));
        } else if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let start = i;
            masked[i] = b' ';
            masked[i + 1] = b' ';
            i += 2;
            let mut depth = 1u32;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    depth += 1;
                    masked[i] = b' ';
                    masked[i + 1] = b' ';
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    depth -= 1;
                    masked[i] = b' ';
                    masked[i + 1] = b' ';
                    i += 2;
                } else {
                    if bytes[i] != b'\n' {
                        masked[i] = b' ';
                    }
                    i += 1;
                }
            }
            comments.push((start, i));
        } else if b == b'"' {
            i = mask_plain_string(bytes, &mut masked, i);
        } else if b == b'\'' {
            i = char_or_lifetime(bytes, &mut masked, i);
        } else if is_ident_byte(b) && (i == 0 || !is_ident_byte(bytes[i - 1])) {
            // Token start: check for raw/byte string prefixes before
            // consuming the identifier wholesale.
            if let Some(next) = string_prefix(bytes, &mut masked, i) {
                i = next;
            } else {
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
            }
        } else {
            i += 1;
        }
    }

    let masked = String::from_utf8(masked).expect("masking only rewrites ASCII bytes");
    let mut line_starts = vec![0usize];
    for (off, b) in source.bytes().enumerate() {
        if b == b'\n' {
            line_starts.push(off + 1);
        }
    }
    let allows = parse_allows(source, &comments, &line_starts);
    let test_spans = find_test_spans(&masked);
    ScannedFile {
        masked,
        line_starts,
        test_spans,
        allows,
    }
}

/// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'` at an
/// identifier-start position. Returns the offset past the literal, or
/// `None` when the token is an ordinary identifier.
fn string_prefix(bytes: &[u8], masked: &mut [u8], i: usize) -> Option<usize> {
    let n = bytes.len();
    match bytes[i] {
        b'r' => {
            let mut j = i + 1;
            while j < n && bytes[j] == b'#' {
                j += 1;
            }
            if j < n && bytes[j] == b'"' {
                Some(mask_raw_string(bytes, masked, j, j - i - 1))
            } else {
                None
            }
        }
        b'b' => {
            if i + 1 < n && bytes[i + 1] == b'"' {
                Some(mask_plain_string(bytes, masked, i + 1))
            } else if i + 1 < n && bytes[i + 1] == b'\'' {
                Some(char_or_lifetime(bytes, masked, i + 1))
            } else if i + 1 < n && bytes[i + 1] == b'r' {
                let mut j = i + 2;
                while j < n && bytes[j] == b'#' {
                    j += 1;
                }
                if j < n && bytes[j] == b'"' {
                    Some(mask_raw_string(bytes, masked, j, j - i - 2))
                } else {
                    None
                }
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Masks a `"..."` body; `i` is the opening quote. Returns offset past the
/// closing quote.
fn mask_plain_string(bytes: &[u8], masked: &mut [u8], i: usize) -> usize {
    let n = bytes.len();
    let mut j = i + 1;
    while j < n {
        match bytes[j] {
            b'\\' => {
                masked[j] = b' ';
                if j + 1 < n && bytes[j + 1] != b'\n' {
                    masked[j + 1] = b' ';
                }
                j += 2;
            }
            b'"' => return j + 1,
            b'\n' => j += 1,
            _ => {
                masked[j] = b' ';
                j += 1;
            }
        }
    }
    j
}

/// Masks a raw string body; `quote` is the opening `"`, `hashes` the number
/// of `#` in the delimiter. Returns offset past the closing delimiter.
fn mask_raw_string(bytes: &[u8], masked: &mut [u8], quote: usize, hashes: usize) -> usize {
    let n = bytes.len();
    let mut j = quote + 1;
    while j < n {
        if bytes[j] == b'"' {
            let end = j + 1 + hashes;
            if end <= n && bytes[j + 1..end].iter().all(|&b| b == b'#') {
                return end;
            }
        }
        if bytes[j] != b'\n' {
            masked[j] = b' ';
        }
        j += 1;
    }
    j
}

/// Distinguishes a char literal from a lifetime; `i` is the `'`. Masks the
/// char body when it is a literal. Returns the offset to continue from.
fn char_or_lifetime(bytes: &[u8], masked: &mut [u8], i: usize) -> usize {
    let n = bytes.len();
    if i + 1 >= n {
        return i + 1;
    }
    if bytes[i + 1] == b'\\' {
        // Escaped char literal: scan to the closing quote.
        let mut j = i + 1;
        while j < n && bytes[j] != b'\'' {
            if bytes[j] == b'\\' {
                masked[j] = b' ';
                if j + 1 < n {
                    masked[j + 1] = b' ';
                }
                j += 2;
            } else {
                masked[j] = b' ';
                j += 1;
            }
        }
        j + 1
    } else if i + 2 < n && bytes[i + 2] == b'\'' && bytes[i + 1] != b'\'' {
        // Simple one-byte char literal 'x'.
        masked[i + 1] = b' ';
        i + 3
    } else {
        // Lifetime (or multibyte char literal, whose bytes cannot collide
        // with any ASCII rule pattern): leave as-is.
        i + 1
    }
}

/// Extracts `lint:allow(...)` directives from line comments.
fn parse_allows(source: &str, comments: &[(usize, usize)], line_starts: &[usize]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for &(start, end) in comments {
        let text = &source[start..end];
        // Directives live in ordinary `//` comments only — doc comments may
        // *mention* the syntax without enacting it — and must lead the
        // comment text.
        let Some(body) = text.strip_prefix("//") else {
            continue;
        };
        if body.starts_with('/') || body.starts_with('!') {
            continue;
        }
        let body = body.trim_start();
        let Some(after) = body.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = after.find(')') else {
            continue;
        };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let tail = after[close + 1..].trim();
        let has_reason = tail
            .strip_prefix(':')
            .map(|t| t.trim().len() >= 4)
            .unwrap_or(false);
        let line_idx = match line_starts.binary_search(&start) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let own_line = source[line_starts[line_idx]..start]
            .chars()
            .all(|c| c.is_whitespace());
        allows.push(Allow {
            line: (line_idx + 1) as u32,
            rules,
            has_reason,
            own_line,
        });
    }
    allows
}

/// Byte spans of `#[cfg(test)]` / `#[test]` items, found by scanning the
/// masked source and brace-matching the following item.
fn find_test_spans(masked: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for marker in ["#[cfg(test)]", "#[cfg(any(test", "#[test]"] {
        let mut from = 0usize;
        while let Some(rel) = masked[from..].find(marker) {
            let start = from + rel;
            // End of this attribute: its closing `]`.
            let attr_end = masked[start..]
                .find(']')
                .map(|p| start + p + 1)
                .unwrap_or(masked.len());
            if let Some(end) = item_end(masked, attr_end) {
                spans.push((start, end));
            }
            from = attr_end;
        }
    }
    spans.sort_unstable();
    spans
}

/// From just past an attribute, skips further attributes and scans to the
/// end of the item: the matching `}` of its first brace, or a `;`.
fn item_end(masked: &str, mut i: usize) -> Option<usize> {
    let bytes = masked.as_bytes();
    let n = bytes.len();
    loop {
        while i < n && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        if i < n && bytes[i] == b'#' {
            // Another attribute: skip to its `]`.
            while i < n && bytes[i] != b']' {
                i += 1;
            }
            i += 1;
            continue;
        }
        break;
    }
    while i < n && bytes[i] != b'{' && bytes[i] != b';' {
        i += 1;
    }
    if i >= n {
        return None;
    }
    if bytes[i] == b';' {
        return Some(i + 1);
    }
    let mut depth = 0i64;
    while i < n {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    Some(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let a = \"format!\"; // format!\nlet b = 1; /* format! */\n";
        let s = scan(src);
        assert!(!s.masked.contains("format!"));
        assert_eq!(s.masked.len(), src.len());
        assert_eq!(s.masked.matches('\n').count(), 2);
    }

    #[test]
    fn masks_raw_and_byte_strings() {
        let src = "let a = r#\"HashMap\"#; let b = b\"HashSet\"; let c = 'x';";
        let s = scan(src);
        assert!(!s.masked.contains("HashMap"));
        assert!(!s.masked.contains("HashSet"));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x.trim() }";
        let s = scan(src);
        assert!(s.masked.contains("x.trim()"));
    }

    #[test]
    fn test_mod_span_covers_body() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let s = scan(src);
        let off = src.find("unwrap").unwrap();
        assert!(s.in_test(off));
        assert!(!s.in_test(0));
    }

    #[test]
    fn allow_directive_parsed() {
        let src = "let m = 1; // lint:allow(hash-order-leak): sorted two lines below\n";
        let s = scan(src);
        assert_eq!(s.allows.len(), 1);
        assert_eq!(s.allows[0].rules, vec!["hash-order-leak"]);
        assert!(s.allows[0].has_reason);
        assert!(!s.allows[0].own_line);
    }

    #[test]
    fn allow_without_reason_detected() {
        let src = "// lint:allow(unwrap-in-lib)\nlet y = x.unwrap();\n";
        let s = scan(src);
        assert_eq!(s.allows.len(), 1);
        assert!(!s.allows[0].has_reason);
        assert!(s.allows[0].own_line);
    }
}
