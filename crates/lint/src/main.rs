//! The `minoan-lint` binary.
//!
//! ```text
//! minoan-lint [--root DIR] [--config FILE] [--deny] [--show-allowed]
//!             [--rule NAME]... [--list-rules]
//! ```
//!
//! Without `--deny` the run always exits 0 (report mode); with `--deny` any
//! surviving diagnostic exits 1 — that is the CI gate. Config or usage
//! errors exit 2.

#![forbid(unsafe_code)]

use minoan_lint::{find_root, lint_workspace, Config, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    deny: bool,
    show_allowed: bool,
    rules: Vec<String>,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        config: None,
        deny: false,
        show_allowed: false,
        rules: Vec::new(),
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = Some(PathBuf::from(it.next().ok_or("--root needs a value")?)),
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a value")?))
            }
            "--deny" => args.deny = true,
            "--show-allowed" => args.show_allowed = true,
            "--list-rules" => args.list_rules = true,
            "--rule" => {
                let name = it.next().ok_or("--rule needs a value")?;
                if minoan_lint::rule_by_name(&name).is_none() {
                    return Err(format!("unknown rule `{name}` (see --list-rules)"));
                }
                args.rules.push(name);
            }
            "--help" | "-h" => {
                println!(
                    "minoan-lint: workspace static analysis\n\
                     usage: minoan-lint [--root DIR] [--config FILE] [--deny] \
                     [--show-allowed] [--rule NAME]... [--list-rules]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("minoan-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for r in RULES {
            println!("{}  {:<22}  {}", r.code, r.name, r.summary);
        }
        return ExitCode::SUCCESS;
    }
    let cwd = std::env::current_dir().expect("current directory must be readable");
    let root = match args.root.or_else(|| find_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("minoan-lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };
    let config = match args.config {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(text) => match Config::parse(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("minoan-lint: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("minoan-lint: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => match minoan_lint::load_config(&root) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("minoan-lint: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let outcome = match lint_workspace(&root, &config) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("minoan-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let fired: Vec<_> = outcome
        .fired
        .iter()
        .filter(|d| args.rules.is_empty() || args.rules.iter().any(|r| r == d.rule))
        .collect();
    for d in &fired {
        println!(
            "{}:{}:{}: {} [{}] {}",
            d.path, d.line, d.col, d.code, d.rule, d.message
        );
    }
    if args.show_allowed {
        for a in &outcome.allowed {
            println!(
                "allowed ({}): {}:{}:{}: {} [{}]",
                a.via, a.diag.path, a.diag.line, a.diag.col, a.diag.code, a.diag.rule
            );
        }
    }
    println!(
        "minoan-lint: {} diagnostic{} ({} allowed) across {} files",
        fired.len(),
        if fired.len() == 1 { "" } else { "s" },
        outcome.allowed.len(),
        outcome.files
    );
    if args.deny && !fired.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
