//! Workspace walking, allowlist application, and the public entry points.

use crate::config::{glob_match, Config};
use crate::rules::{check_manifest, check_rust, Diagnostic};
use crate::source::scan;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A diagnostic that an allowlist entry suppressed, with its provenance.
#[derive(Clone, Debug)]
pub struct AllowedDiagnostic {
    /// The suppressed diagnostic.
    pub diag: Diagnostic,
    /// Where the suppression came from (`inline` or `lint.toml`).
    pub via: &'static str,
}

/// Lint results for one file or one workspace run.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Diagnostics that survived the allowlists, in stable order.
    pub fired: Vec<Diagnostic>,
    /// Diagnostics suppressed by an allowlist entry.
    pub allowed: Vec<AllowedDiagnostic>,
    /// Number of files scanned.
    pub files: usize,
}

/// Lints one Rust source with a workspace-relative `rel` path deciding
/// which rules apply. Public so fixtures can exercise rules against
/// virtual paths.
pub fn lint_rust_source(rel: &str, source: &str, config: &Config) -> Outcome {
    let scanned = scan(source);
    let mut raw = Vec::new();
    check_rust(rel, &scanned, &mut raw);
    let mut outcome = Outcome {
        files: 1,
        ..Outcome::default()
    };
    for d in raw {
        // ML000 (allow hygiene) is never suppressable.
        if d.code == "ML000" {
            outcome.fired.push(d);
            continue;
        }
        let inline = scanned.allows.iter().any(|a| {
            a.has_reason
                && a.rules.iter().any(|r| r == d.rule)
                && ((!a.own_line && a.line == d.line) || (a.own_line && a.line + 1 == d.line))
        });
        if inline {
            outcome.allowed.push(AllowedDiagnostic {
                diag: d,
                via: "inline",
            });
            continue;
        }
        if config_allows(config, &d) {
            outcome.allowed.push(AllowedDiagnostic {
                diag: d,
                via: "lint.toml",
            });
            continue;
        }
        outcome.fired.push(d);
    }
    outcome
}

/// Lints one `Cargo.toml` with a workspace-relative `rel` path.
pub fn lint_manifest_source(rel: &str, text: &str, config: &Config) -> Outcome {
    let mut raw = Vec::new();
    check_manifest(rel, text, &mut raw);
    let mut outcome = Outcome {
        files: 1,
        ..Outcome::default()
    };
    for d in raw {
        if config_allows(config, &d) {
            outcome.allowed.push(AllowedDiagnostic {
                diag: d,
                via: "lint.toml",
            });
        } else {
            outcome.fired.push(d);
        }
    }
    outcome
}

fn config_allows(config: &Config, d: &Diagnostic) -> bool {
    config.allows.iter().any(|a| {
        a.rule == d.rule
            && glob_match(&a.path, &d.path)
            && a.line.map(|l| l == d.line).unwrap_or(true)
    })
}

/// Lints the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path, config: &Config) -> io::Result<Outcome> {
    let mut outcome = Outcome::default();
    for rel in collect_files(root)? {
        let text = fs::read_to_string(root.join(&rel))?;
        let mut one = if rel.ends_with("Cargo.toml") {
            lint_manifest_source(&rel, &text, config)
        } else {
            lint_rust_source(&rel, &text, config)
        };
        outcome.fired.append(&mut one.fired);
        outcome.allowed.append(&mut one.allowed);
        outcome.files += 1;
    }
    outcome
        .fired
        .sort_by(|a, b| (&a.path, a.line, a.col, a.code).cmp(&(&b.path, b.line, b.col, b.code)));
    Ok(outcome)
}

/// Workspace-relative paths of everything the lint scans, sorted.
pub fn collect_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files: Vec<String> = Vec::new();
    files.push("Cargo.toml".to_string());
    // Facade sources and workspace-level test/example trees.
    for dir in ["src", "tests", "examples", "benches"] {
        walk_rs(&root.join(dir), root, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for c in crate_dirs {
            let manifest = c.join("Cargo.toml");
            if manifest.is_file() {
                files.push(rel_of(&manifest, root));
            }
            for dir in ["src", "tests", "examples", "benches"] {
                walk_rs(&c.join(dir), root, &mut files)?;
            }
        }
    }
    files.sort();
    files.dedup();
    Ok(files)
}

fn rel_of(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn walk_rs(dir: &Path, root: &Path, files: &mut Vec<String>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            // Fixture trees deliberately violate rules; target is build junk.
            if name == "lint_fixtures" || name == "target" || name.starts_with('.') {
                continue;
            }
            walk_rs(&path, root, files)?;
        } else if name.ends_with(".rs") {
            files.push(rel_of(&path, root));
        }
    }
    Ok(())
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Loads `lint.toml` from the workspace root (missing file = empty config).
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    if !path.is_file() {
        return Ok(Config::default());
    }
    let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    Config::parse(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_allow_suppresses_same_and_next_line() {
        let cfg = Config::default();
        let src = "\
fn f(o: Option<u32>) -> u32 {
    // lint:allow(unwrap-in-lib): checked by caller, fixture for engine test
    o.unwrap()
}
";
        let out = lint_rust_source("crates/store/src/x.rs", src, &cfg);
        assert!(out.fired.is_empty(), "{:?}", out.fired);
        assert_eq!(out.allowed.len(), 1);
        assert_eq!(out.allowed[0].via, "inline");
    }

    #[test]
    fn allow_without_reason_fires_ml000_and_original() {
        let cfg = Config::default();
        let src = "fn f(o: Option<u32>) -> u32 {\n    o.unwrap() // lint:allow(unwrap-in-lib)\n}\n";
        let out = lint_rust_source("crates/store/src/x.rs", src, &cfg);
        let codes: Vec<&str> = out.fired.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"ML000"), "{codes:?}");
        assert!(codes.contains(&"ML005"), "{codes:?}");
    }

    #[test]
    fn config_allow_suppresses() {
        let cfg = Config::parse(
            "[[allow]]\nrule = \"unwrap-in-lib\"\npath = \"crates/store/src/*.rs\"\n\
             reason = \"engine test fixture entry\"\n",
        )
        .unwrap();
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
        let out = lint_rust_source("crates/store/src/x.rs", src, &cfg);
        assert!(out.fired.is_empty());
        assert_eq!(out.allowed.len(), 1);
        assert_eq!(out.allowed[0].via, "lint.toml");
    }
}
