pub fn f(ws: &[f64]) -> f64 {
    minoan_common::stats::pairwise_sum(ws)
}
