pub fn f(ws: &[f64]) -> f64 {
    let mut sum = 0.0;
    for &w in ws {
        sum += w;
    }
    sum
}
