use minoan_common::FxHashMap;
pub fn f() {
    let m: FxHashMap<u32, u32> = FxHashMap::default();
    drop(m);
}
