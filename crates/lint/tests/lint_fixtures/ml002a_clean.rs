pub fn f(xs: &mut [u32]) {
    xs.sort_unstable();
}
