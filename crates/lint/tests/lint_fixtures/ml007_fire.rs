//! Fixture crate root missing the attribute.

pub fn f() {}
