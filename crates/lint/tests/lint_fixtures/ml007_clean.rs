//! Fixture crate root carrying the attribute.

#![forbid(unsafe_code)]

pub fn f() {}
