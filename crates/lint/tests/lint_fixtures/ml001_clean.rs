pub fn hot(buf: &mut Vec<u32>, x: u32) {
    buf.push(x);
}
