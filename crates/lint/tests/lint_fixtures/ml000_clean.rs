pub fn f(o: Option<u32>) -> u32 {
    // lint:allow(unwrap-in-lib): caller guarantees presence in this fixture
    o.unwrap()
}
