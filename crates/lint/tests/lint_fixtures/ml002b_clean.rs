use std::collections::HashMap;
pub fn f(m: &HashMap<u32, u32>, out: &mut Vec<u32>) {
    let mut ks: Vec<u32> = m.keys().copied().collect();
    ks.sort_unstable();
    for k in ks {
        out.push(k);
    }
}
