pub fn f(o: Option<u32>) -> u32 {
    o.expect("slot populated during the build phase")
}
