use std::collections::HashMap;
pub fn f(m: &HashMap<u32, u32>, out: &mut Vec<u32>) {
    for (k, _) in m.iter() {
        out.push(*k);
    }
}
