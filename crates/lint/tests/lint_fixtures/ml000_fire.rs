pub fn f(o: Option<u32>) -> u32 {
    o.unwrap() // lint:allow(unwrap-in-lib)
}
