pub fn f(groups: Groups) -> Collection {
    Collection::from_groups(groups)
}
