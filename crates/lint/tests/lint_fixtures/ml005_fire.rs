pub fn f(o: Option<u32>) -> u32 {
    o.unwrap()
}

pub fn g(o: Option<u32>) -> u32 {
    o.expect("no")
}
