pub fn f() {}

#[cfg(test)]
mod tests {
    #[test]
    fn oracle_is_test_only() {
        let _ = super::Collection::from_groups(super::groups());
    }
}
