pub fn hot(x: u32) -> String {
    format!("k{x}")
}
