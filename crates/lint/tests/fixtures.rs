//! Fixture suite: every rule has one firing and one clean fixture under
//! `lint_fixtures/` (a directory the workspace walker deliberately skips).
//! Firing fixtures assert exact rule codes *and* line numbers so the rules
//! cannot silently drift; clean fixtures pin the sanctioned idiom.
//!
//! Fixtures are linted against *virtual* workspace-relative paths — the
//! path decides which scope lists apply, so e.g. the hot-path fixture is
//! presented as `crates/metablocking/src/kernel.rs`.

#![forbid(unsafe_code)]

use minoan_lint::{lint_manifest_source, lint_rust_source, Config};

/// `(code, line)` pairs of surviving diagnostics, in report order.
fn fired(rel: &str, src: &str) -> Vec<(&'static str, u32)> {
    lint_rust_source(rel, src, &Config::default())
        .fired
        .iter()
        .map(|d| (d.code, d.line))
        .collect()
}

#[test]
fn ml000_allow_missing_reason_fires() {
    let src = include_str!("lint_fixtures/ml000_fire.rs");
    // The reason-less escape is itself a diagnostic AND fails to suppress.
    assert_eq!(
        fired("crates/store/src/fixture.rs", src),
        vec![("ML000", 2), ("ML005", 2)]
    );
}

#[test]
fn ml000_clean_allow_suppresses() {
    let src = include_str!("lint_fixtures/ml000_clean.rs");
    let out = lint_rust_source("crates/store/src/fixture.rs", src, &Config::default());
    assert!(out.fired.is_empty(), "{:?}", out.fired);
    assert_eq!(out.allowed.len(), 1);
    assert_eq!(out.allowed[0].via, "inline");
}

#[test]
fn ml001_hot_path_alloc_fires() {
    let src = include_str!("lint_fixtures/ml001_fire.rs");
    assert_eq!(
        fired("crates/metablocking/src/kernel.rs", src),
        vec![("ML001", 2)]
    );
}

#[test]
fn ml001_clean() {
    let src = include_str!("lint_fixtures/ml001_clean.rs");
    assert_eq!(fired("crates/metablocking/src/kernel.rs", src), vec![]);
}

#[test]
fn ml002_tier_a_hash_type_fires_in_flat_core() {
    let src = include_str!("lint_fixtures/ml002a_fire.rs");
    assert_eq!(
        fired("crates/metablocking/src/sweep.rs", src),
        vec![("ML002", 1), ("ML002", 3)]
    );
}

#[test]
fn ml002_tier_a_clean() {
    let src = include_str!("lint_fixtures/ml002a_clean.rs");
    assert_eq!(fired("crates/metablocking/src/sweep.rs", src), vec![]);
}

#[test]
fn ml002_tier_b_unsorted_iteration_fires() {
    let src = include_str!("lint_fixtures/ml002b_fire.rs");
    assert_eq!(fired("crates/eval/src/fixture.rs", src), vec![("ML002", 3)]);
}

#[test]
fn ml002_tier_b_sorted_is_clean() {
    let src = include_str!("lint_fixtures/ml002b_clean.rs");
    assert_eq!(fired("crates/eval/src/fixture.rs", src), vec![]);
}

#[test]
fn ml003_float_accumulation_fires() {
    let src = include_str!("lint_fixtures/ml003_fire.rs");
    assert_eq!(
        fired("crates/metablocking/src/streaming.rs", src),
        vec![("ML003", 4)]
    );
}

#[test]
fn ml003_pairwise_sum_is_clean() {
    let src = include_str!("lint_fixtures/ml003_clean.rs");
    assert_eq!(fired("crates/metablocking/src/streaming.rs", src), vec![]);
}

#[test]
fn ml004_legacy_oracle_fires_outside_tests() {
    let src = include_str!("lint_fixtures/ml004_fire.rs");
    assert_eq!(fired("crates/cli/src/fixture.rs", src), vec![("ML004", 2)]);
}

#[test]
fn ml004_test_span_reference_is_clean() {
    let src = include_str!("lint_fixtures/ml004_clean.rs");
    assert_eq!(fired("crates/cli/src/fixture.rs", src), vec![]);
}

#[test]
fn ml005_unwrap_and_weak_expect_fire() {
    let src = include_str!("lint_fixtures/ml005_fire.rs");
    assert_eq!(
        fired("crates/store/src/fixture.rs", src),
        vec![("ML005", 2), ("ML005", 6)]
    );
}

#[test]
fn ml005_descriptive_expect_is_clean() {
    let src = include_str!("lint_fixtures/ml005_clean.rs");
    assert_eq!(fired("crates/store/src/fixture.rs", src), vec![]);
}

#[test]
fn ml006_dep_drift_fires() {
    let src = include_str!("lint_fixtures/ml006_fire.toml");
    let out = lint_manifest_source("crates/fixture/Cargo.toml", src, &Config::default());
    let got: Vec<(&str, u32)> = out.fired.iter().map(|d| (d.code, d.line)).collect();
    // Registry version, git dep, and the long-form table header.
    assert_eq!(got, vec![("ML006", 5), ("ML006", 6), ("ML006", 9)]);
}

#[test]
fn ml006_workspace_and_path_deps_are_clean() {
    let src = include_str!("lint_fixtures/ml006_clean.toml");
    let out = lint_manifest_source("crates/fixture/Cargo.toml", src, &Config::default());
    assert!(out.fired.is_empty(), "{:?}", out.fired);
}

#[test]
fn ml007_missing_forbid_fires_on_crate_root() {
    let src = include_str!("lint_fixtures/ml007_fire.rs");
    assert_eq!(fired("crates/fixture/src/lib.rs", src), vec![("ML007", 1)]);
    // The same file at a non-root path is out of scope.
    assert_eq!(fired("crates/fixture/src/util.rs", src), vec![]);
}

#[test]
fn ml007_present_forbid_is_clean() {
    let src = include_str!("lint_fixtures/ml007_clean.rs");
    assert_eq!(fired("crates/fixture/src/lib.rs", src), vec![]);
}
