//! Self-check: the real workspace must stay clean under `--deny` semantics.
//! This is the same walk + config the CI gate runs, so a violation anywhere
//! in the tree fails this test with the full diagnostic list.

#![forbid(unsafe_code)]

use minoan_lint::{lint_workspace, load_config};
use std::path::Path;

#[test]
fn real_workspace_is_clean_under_deny() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = load_config(&root).expect("workspace lint.toml must parse");
    let out = lint_workspace(&root, &config).expect("workspace sources must be readable");
    assert!(
        out.fired.is_empty(),
        "workspace is not lint-clean:\n{}",
        out.fired
            .iter()
            .map(|d| format!(
                "{}:{}:{}: {} [{}] {}",
                d.path, d.line, d.col, d.code, d.rule, d.message
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the walk actually covered the tree and the allowlists carry
    // written justifications rather than being empty.
    assert!(out.files > 100, "walked only {} files", out.files);
    assert!(!out.allowed.is_empty());
    assert!(config.allows.iter().all(|a| a.reason.trim().len() >= 10));
}
