//! Cluster fault and straggler simulation.
//!
//! The engine executes jobs on local threads, where tasks neither fail nor
//! straggle. A real Hadoop deployment — the substrate of references \[4,5\]
//! — loses task attempts to bad nodes and suffers stragglers, and relies
//! on two mechanisms to keep makespan bounded: **task retry** (a failed
//! attempt is rescheduled, up to a cap) and **speculative execution** (a
//! backup attempt of the slowest running task races the original).
//!
//! This module replays the *measured* per-task durations of a
//! [`crate::JobStats`] through a deterministic event-driven cluster model
//! with injected failures and stragglers, so experiments can report how
//! the parallel meta-blocking jobs would behave under cluster pathologies
//! without owning a cluster. Durations are real; only their scheduling is
//! simulated.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Fault-injection configuration.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Probability that a task *attempt* fails at a uniformly random point
    /// of its execution (the work done until then is lost).
    pub failure_probability: f64,
    /// Probability that an attempt runs on a straggling node.
    pub straggler_probability: f64,
    /// Duration multiplier of straggling attempts (> 1).
    pub straggler_factor: f64,
    /// Maximum attempts per task before the job fails.
    pub max_attempts: u32,
    /// Launch a speculative backup attempt when a task has run longer than
    /// this multiple of the median completed-task duration.
    pub speculative_threshold: Option<f64>,
    /// RNG seed (simulation is deterministic given the seed).
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            failure_probability: 0.02,
            straggler_probability: 0.05,
            straggler_factor: 5.0,
            max_attempts: 4,
            speculative_threshold: Some(1.5),
            seed: 0xfa017,
        }
    }
}

/// Outcome of a simulated run.
#[derive(Clone, Debug, PartialEq)]
pub struct SimOutcome {
    /// Simulated makespan, nanoseconds.
    pub makespan_nanos: u64,
    /// Attempts that failed and were retried.
    pub failed_attempts: u32,
    /// Speculative attempts launched.
    pub speculative_attempts: u32,
    /// Speculative attempts that finished before the original.
    pub speculative_wins: u32,
    /// Whether the job completed (false = some task exhausted retries).
    pub completed: bool,
}

#[derive(Clone, Copy)]
struct Attempt {
    task: usize,
    finish: u64,
    speculative: bool,
}

/// Simulates `tasks` (durations in nanoseconds) on `workers` nodes under
/// `config`. Event-driven: at every completion instant the freed worker
/// takes the next pending task, a retry, or a speculative backup.
///
/// # Panics
/// Panics if `workers == 0` or the config is out of range.
pub fn simulate_cluster(tasks: &[u64], workers: usize, config: &FaultConfig) -> SimOutcome {
    assert!(workers > 0, "need at least one worker");
    assert!(
        (0.0..1.0).contains(&config.failure_probability),
        "failure probability in [0,1)"
    );
    assert!(
        (0.0..=1.0).contains(&config.straggler_probability),
        "straggler probability in [0,1]"
    );
    assert!(
        config.straggler_factor >= 1.0,
        "straggler factor must be ≥ 1"
    );
    assert!(config.max_attempts >= 1, "need at least one attempt");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = tasks.len();
    let mut outcome = SimOutcome {
        makespan_nanos: 0,
        failed_attempts: 0,
        speculative_attempts: 0,
        speculative_wins: 0,
        completed: true,
    };
    if n == 0 {
        return outcome;
    }

    let mut pending: std::collections::VecDeque<usize> = (0..n).collect();
    let mut attempts_used = vec![0u32; n];
    let mut done = vec![false; n];
    let mut running: Vec<Attempt> = Vec::new(); // at most `workers`
    let mut completed_durations: Vec<u64> = Vec::new();
    let mut speculated = vec![false; n];
    let mut now = 0u64;
    let mut done_count = 0usize;

    // Launches one attempt: draws straggler slowdown and failure; a
    // failing attempt finishes (and frees its worker) at a uniform point
    // of its slowed duration, with the work lost. `will_fail` (parallel to
    // `running`) records which in-flight attempts are doomed.
    let mut will_fail: Vec<bool> = Vec::new();
    let launch = |task: usize,
                  now: u64,
                  speculative: bool,
                  rng: &mut StdRng,
                  outcome: &mut SimOutcome|
     -> (Attempt, bool) {
        let base = tasks[task].max(1);
        let slowed = if rng.gen_bool(config.straggler_probability) {
            (base as f64 * config.straggler_factor) as u64
        } else {
            base
        };
        if rng.gen_bool(config.failure_probability) {
            outcome.failed_attempts += 1;
            let partial = ((slowed as f64) * rng.gen_range(0.05..0.95)) as u64;
            (
                Attempt {
                    task,
                    finish: now + partial.max(1),
                    speculative,
                },
                true,
            )
        } else {
            if speculative {
                outcome.speculative_attempts += 1;
            }
            (
                Attempt {
                    task,
                    finish: now + slowed,
                    speculative,
                },
                false,
            )
        }
    };

    // Fill the initial workers.
    while running.len() < workers {
        let Some(task) = pending.pop_front() else {
            break;
        };
        attempts_used[task] += 1;
        let (a, fails) = launch(task, now, false, &mut rng, &mut outcome);
        running.push(a);
        will_fail.push(fails);
    }

    while done_count < n {
        // Next completion event.
        let Some((idx, _)) = running
            .iter()
            .enumerate()
            .min_by_key(|(_, a)| (a.finish, a.task))
        else {
            outcome.completed = false;
            break;
        };
        let attempt = running.swap_remove(idx);
        let failed = will_fail.swap_remove(idx);
        now = attempt.finish;

        if !done[attempt.task] {
            if failed {
                if attempts_used[attempt.task] >= config.max_attempts {
                    outcome.completed = false;
                    break;
                }
                pending.push_back(attempt.task);
            } else {
                done[attempt.task] = true;
                done_count += 1;
                completed_durations.push(tasks[attempt.task]);
                if attempt.speculative {
                    outcome.speculative_wins += 1;
                }
            }
        }

        // Refill the freed worker: pending first, then speculation.
        let mut launched = false;
        while let Some(task) = pending.pop_front() {
            if done[task] {
                continue;
            }
            attempts_used[task] += 1;
            let (a, fails) = launch(task, now, false, &mut rng, &mut outcome);
            running.push(a);
            will_fail.push(fails);
            launched = true;
            break;
        }
        if !launched {
            if let Some(threshold) = config.speculative_threshold {
                if !completed_durations.is_empty() {
                    let mut sorted = completed_durations.clone();
                    sorted.sort_unstable();
                    let median = sorted[sorted.len() / 2].max(1);
                    // The attempt with the most *remaining* time — a
                    // straggling node shows up here as a far-off finish.
                    if let Some((candidate, remaining)) = running
                        .iter()
                        .filter(|a| !a.speculative && !speculated[a.task] && !done[a.task])
                        .max_by_key(|a| a.finish)
                        .map(|a| (a.task, a.finish.saturating_sub(now)))
                    {
                        if remaining as f64 > threshold * median as f64 {
                            speculated[candidate] = true;
                            attempts_used[candidate] += 1;
                            let (a, fails) = launch(candidate, now, true, &mut rng, &mut outcome);
                            running.push(a);
                            will_fail.push(fails);
                        }
                    }
                }
            }
        }
    }

    outcome.makespan_nanos = now.max(
        running
            .iter()
            .zip(&will_fail)
            .filter(|(a, failed)| !**failed && !done[a.task])
            .map(|(a, _)| a.finish)
            .max()
            .unwrap_or(now),
    );
    outcome
}

/// The fault-free reference makespan (greedy list scheduling), for
/// overhead ratios.
pub fn fault_free_makespan(tasks: &[u64], workers: usize) -> u64 {
    assert!(workers > 0, "need at least one worker");
    let mut sorted: Vec<u64> = tasks.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut loads = vec![0u64; workers];
    for t in sorted {
        *loads.iter_mut().min().expect("workers >= 1") += t;
    }
    loads.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, nanos: u64) -> Vec<u64> {
        vec![nanos; n]
    }

    fn no_faults() -> FaultConfig {
        FaultConfig {
            failure_probability: 0.0,
            straggler_probability: 0.0,
            straggler_factor: 1.0,
            speculative_threshold: None,
            ..Default::default()
        }
    }

    #[test]
    fn fault_free_simulation_matches_list_scheduling() {
        let tasks = vec![100, 200, 300, 400, 500];
        for workers in [1, 2, 4] {
            let sim = simulate_cluster(&tasks, workers, &no_faults());
            assert!(sim.completed);
            assert_eq!(sim.failed_attempts, 0);
            // Event-driven FIFO vs LPT differ slightly; both bounded by
            // serial time and at least the critical path.
            let serial: u64 = tasks.iter().sum();
            assert!(sim.makespan_nanos <= serial);
            assert!(sim.makespan_nanos >= serial / workers as u64);
        }
    }

    #[test]
    fn failures_increase_makespan() {
        let tasks = uniform(64, 1_000_000);
        let clean = simulate_cluster(&tasks, 8, &no_faults());
        let faulty = simulate_cluster(
            &tasks,
            8,
            &FaultConfig {
                failure_probability: 0.2,
                max_attempts: 10,
                straggler_probability: 0.0,
                straggler_factor: 1.0,
                speculative_threshold: None,
                ..Default::default()
            },
        );
        assert!(faulty.completed);
        assert!(faulty.failed_attempts > 0);
        assert!(
            faulty.makespan_nanos > clean.makespan_nanos,
            "retries must cost time: {} vs {}",
            faulty.makespan_nanos,
            clean.makespan_nanos
        );
    }

    #[test]
    fn speculation_mitigates_stragglers() {
        let tasks = uniform(64, 1_000_000);
        let base = FaultConfig {
            failure_probability: 0.0,
            straggler_probability: 0.08,
            straggler_factor: 10.0,
            ..Default::default()
        };
        let without = simulate_cluster(
            &tasks,
            8,
            &FaultConfig {
                speculative_threshold: None,
                ..base
            },
        );
        let with = simulate_cluster(
            &tasks,
            8,
            &FaultConfig {
                speculative_threshold: Some(1.5),
                ..base
            },
        );
        assert!(with.completed && without.completed);
        assert!(with.speculative_attempts > 0, "speculation never triggered");
        assert!(
            with.makespan_nanos <= without.makespan_nanos,
            "speculation should not hurt: {} vs {}",
            with.makespan_nanos,
            without.makespan_nanos
        );
    }

    #[test]
    fn retry_exhaustion_fails_the_job() {
        let tasks = uniform(4, 1000);
        let sim = simulate_cluster(
            &tasks,
            2,
            &FaultConfig {
                failure_probability: 0.999,
                max_attempts: 2,
                straggler_probability: 0.0,
                straggler_factor: 1.0,
                speculative_threshold: None,
                ..Default::default()
            },
        );
        assert!(!sim.completed);
        assert!(sim.failed_attempts >= 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let tasks: Vec<u64> = (1..=40).map(|i| i * 10_000).collect();
        let cfg = FaultConfig::default();
        let a = simulate_cluster(&tasks, 6, &cfg);
        let b = simulate_cluster(&tasks, 6, &cfg);
        assert_eq!(a, b);
        let c = simulate_cluster(&tasks, 6, &FaultConfig { seed: 99, ..cfg });
        // Different seed almost surely perturbs something.
        assert!(a != c || a.failed_attempts == 0);
    }

    #[test]
    fn empty_job_is_instant() {
        let sim = simulate_cluster(&[], 4, &FaultConfig::default());
        assert_eq!(sim.makespan_nanos, 0);
        assert!(sim.completed);
    }

    #[test]
    fn fault_free_makespan_bounds() {
        let tasks = vec![5, 5, 5, 5];
        assert_eq!(fault_free_makespan(&tasks, 4), 5);
        assert_eq!(fault_free_makespan(&tasks, 1), 20);
        assert_eq!(fault_free_makespan(&[], 3), 0);
    }

    #[test]
    #[should_panic(expected = "worker")]
    fn zero_workers_rejected() {
        simulate_cluster(&[1], 0, &FaultConfig::default());
    }
}
