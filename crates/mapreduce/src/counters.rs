//! Job counters, mirroring Hadoop's named counters.

use minoan_common::FxHashMap;
use parking_lot::Mutex;

/// Thread-safe named `u64` counters.
///
/// Tasks increment counters during map/reduce; the engine exposes the final
/// totals on the [`crate::JobResult`]. Contention is irrelevant at our task
/// granularity, so a single mutex-protected map keeps things simple.
#[derive(Default, Debug)]
pub struct Counters {
    inner: Mutex<FxHashMap<&'static str, u64>>,
}

impl Counters {
    /// Creates an empty counter group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name` (creating it at 0).
    pub fn add(&self, name: &'static str, delta: u64) {
        *self.inner.lock().entry(name).or_insert(0) += delta;
    }

    /// Increments counter `name` by one.
    pub fn incr(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.inner.lock().get(name).copied().unwrap_or(0)
    }

    /// Snapshot of all counters, sorted by name.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        let mut v: Vec<_> = self.inner.lock().iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let c = Counters::new();
        assert_eq!(c.get("maps"), 0);
        c.incr("maps");
        c.add("maps", 4);
        assert_eq!(c.get("maps"), 5);
    }

    #[test]
    fn snapshot_sorted() {
        let c = Counters::new();
        c.incr("z");
        c.incr("a");
        assert_eq!(c.snapshot(), vec![("a", 1), ("z", 1)]);
    }

    #[test]
    fn concurrent_increments_sum() {
        let c = Counters::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.incr("n");
                    }
                });
            }
        });
        assert_eq!(c.get("n"), 8000);
    }
}
