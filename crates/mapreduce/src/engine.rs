//! The execution engine: parallel map, combiner, shuffle, parallel reduce.

use crate::counters::Counters;
use minoan_common::FxHashMap;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Per-phase execution statistics of one job.
#[derive(Clone, Debug, Default)]
pub struct JobStats {
    /// Wall time of the parallel map phase, nanoseconds.
    pub map_nanos: u64,
    /// Wall time of the parallel partition shuffle + reduce, nanoseconds.
    pub shuffle_nanos: u64,
    /// Wall time of the final gather/merge, nanoseconds.
    pub reduce_nanos: u64,
    /// Number of map tasks (input chunks).
    pub map_tasks: usize,
    /// Number of distinct intermediate keys (= reduce groups).
    pub reduce_groups: usize,
    /// Number of intermediate key–value pairs after combining.
    pub intermediate_pairs: usize,
    /// Measured duration of each map task, nanoseconds (task order).
    pub map_task_nanos: Vec<u64>,
    /// Measured duration of each shuffle+reduce partition, nanoseconds.
    pub partition_nanos: Vec<u64>,
}

impl JobStats {
    /// Total wall time of the job in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.map_nanos + self.shuffle_nanos + self.reduce_nanos
    }

    /// Models the job's makespan on `workers` parallel workers by greedy
    /// longest-processing-time scheduling of the *measured* task
    /// durations (map tasks, then partitions, plus the serial gather).
    ///
    /// This is the cluster simulation used when physical cores are not
    /// available: task durations are real, only their overlap is modeled.
    pub fn modeled_nanos(&self, workers: usize) -> u64 {
        let workers = workers.max(1);
        let phase = |tasks: &[u64]| -> u64 {
            let mut sorted: Vec<u64> = tasks.to_vec();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let mut loads = vec![0u64; workers];
            for t in sorted {
                let min = loads.iter_mut().min().expect("workers >= 1");
                *min += t;
            }
            loads.into_iter().max().unwrap_or(0)
        };
        phase(&self.map_task_nanos) + phase(&self.partition_nanos) + self.reduce_nanos
    }
}

/// Output, counters and statistics of a completed job.
#[derive(Debug)]
pub struct JobResult<O> {
    /// Reduce output, ordered by intermediate key (then emission order).
    pub output: Vec<O>,
    /// Aggregated named counters.
    pub counters: Counters,
    /// Phase timings and sizes.
    pub stats: JobStats,
}

/// A MapReduce execution engine with a fixed worker-thread count.
///
/// The engine is stateless between jobs; it can be cloned freely and reused.
#[derive(Clone, Copy, Debug)]
pub struct Engine {
    workers: usize,
}

impl Default for Engine {
    /// An engine using all available CPU parallelism.
    fn default() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }
}

impl Engine {
    /// Creates an engine with `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// Number of worker threads used by map and reduce phases.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs a job without combiner. See [`Engine::run_full`].
    pub fn run<I, K, V, O, M, R>(&self, inputs: Vec<I>, map_fn: M, reduce_fn: R) -> JobResult<O>
    where
        I: Send + Sync,
        K: Ord + std::hash::Hash + Clone + Send,
        V: Send,
        O: Send,
        M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
        R: Fn(&K, &mut Vec<V>, &mut Vec<O>) + Sync,
    {
        self.run_full(
            inputs,
            |input, emit, _c| map_fn(input, emit),
            None::<fn(&K, Vec<V>) -> Vec<V>>,
            |key, vals, out, _c| reduce_fn(key, vals, out),
        )
    }

    /// Runs a job with a combiner applied to each map task's local output.
    pub fn run_combined<I, K, V, O, M, C, R>(
        &self,
        inputs: Vec<I>,
        map_fn: M,
        combine_fn: C,
        reduce_fn: R,
    ) -> JobResult<O>
    where
        I: Send + Sync,
        K: Ord + std::hash::Hash + Clone + Send,
        V: Send,
        O: Send,
        M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
        C: Fn(&K, Vec<V>) -> Vec<V> + Sync,
        R: Fn(&K, &mut Vec<V>, &mut Vec<O>) + Sync,
    {
        self.run_full(
            inputs,
            |input, emit, _c| map_fn(input, emit),
            Some(combine_fn),
            |key, vals, out, _c| reduce_fn(key, vals, out),
        )
    }

    /// Full-control entry point: map and reduce closures also receive the
    /// job [`Counters`]; `combine_fn` (if given) is applied per map task.
    /// Uses hash partitioning (Hadoop's default partitioner).
    ///
    /// Determinism contract: map tasks are contiguous input chunks taken in
    /// order; each key group's value list preserves (chunk index, emission
    /// index) order; output is ordered by key, then by reduce emission
    /// order. The worker count never changes the result.
    pub fn run_full<I, K, V, O, M, C, R>(
        &self,
        inputs: Vec<I>,
        map_fn: M,
        combine_fn: Option<C>,
        reduce_fn: R,
    ) -> JobResult<O>
    where
        I: Send + Sync,
        K: Ord + std::hash::Hash + Clone + Send,
        V: Send,
        O: Send,
        M: Fn(&I, &mut dyn FnMut(K, V), &Counters) + Sync,
        C: Fn(&K, Vec<V>) -> Vec<V> + Sync,
        R: Fn(&K, &mut Vec<V>, &mut Vec<O>, &Counters) + Sync,
    {
        let hasher = minoan_common::FxBuildHasher::default();
        self.run_inner(
            inputs,
            move |k: &K, parts: usize| {
                use std::hash::BuildHasher;
                (hasher.hash_one(k) as usize) % parts
            },
            map_fn,
            combine_fn,
            reduce_fn,
        )
    }

    /// As [`Engine::run_full`] (no combiner) with an explicit partitioner
    /// hook: `partitioner(key, partitions)` assigns each intermediate key
    /// to a reduce partition (any out-of-range result is clamped).
    /// Hadoop exposes the same hook for jobs whose keys carry locality —
    /// e.g. the entity-partitioned meta-blocking jobs range-partition
    /// entity ids so a reducer owns a contiguous id slice. The output is
    /// globally key-sorted either way; the partitioner only shapes the
    /// per-partition work distribution, never the result.
    pub fn run_partitioned<I, K, V, O, P, M, R>(
        &self,
        inputs: Vec<I>,
        partitioner: P,
        map_fn: M,
        reduce_fn: R,
    ) -> JobResult<O>
    where
        I: Send + Sync,
        K: Ord + std::hash::Hash + Clone + Send,
        V: Send,
        O: Send,
        P: Fn(&K, usize) -> usize + Sync,
        M: Fn(&I, &mut dyn FnMut(K, V), &Counters) + Sync,
        R: Fn(&K, &mut Vec<V>, &mut Vec<O>, &Counters) + Sync,
    {
        self.run_inner(
            inputs,
            partitioner,
            map_fn,
            None::<fn(&K, Vec<V>) -> Vec<V>>,
            reduce_fn,
        )
    }

    fn run_inner<I, K, V, O, P, M, C, R>(
        &self,
        inputs: Vec<I>,
        partitioner: P,
        map_fn: M,
        combine_fn: Option<C>,
        reduce_fn: R,
    ) -> JobResult<O>
    where
        I: Send + Sync,
        K: Ord + std::hash::Hash + Clone + Send,
        V: Send,
        O: Send,
        P: Fn(&K, usize) -> usize + Sync,
        M: Fn(&I, &mut dyn FnMut(K, V), &Counters) + Sync,
        C: Fn(&K, Vec<V>) -> Vec<V> + Sync,
        R: Fn(&K, &mut Vec<V>, &mut Vec<O>, &Counters) + Sync,
    {
        let counters = Counters::new();
        let mut stats = JobStats::default();
        // Each reduce partition owns a disjoint key set, so grouping and
        // reducing run in parallel per partition.
        let partitions = self.workers;
        let part_of = |k: &K| -> usize { partitioner(k, partitions).min(partitions - 1) };

        // ---- Map phase -----------------------------------------------------
        let t0 = Instant::now();
        // 4 chunks per worker bounds scheduling skew without creating
        // per-item overhead.
        let num_chunks = if inputs.is_empty() {
            0
        } else {
            (self.workers * 4).min(inputs.len())
        };
        stats.map_tasks = num_chunks;
        let map_task_nanos: Vec<std::sync::atomic::AtomicU64> = (0..num_chunks)
            .map(|_| std::sync::atomic::AtomicU64::new(0))
            .collect();
        // chunk_outputs[chunk][partition] = that chunk's spill for the partition.
        // Per chunk, per partition: that chunk's spilled (key, value) pairs.
        type Spills<K, V> = Vec<Vec<Mutex<Vec<(K, V)>>>>;
        let chunk_outputs: Spills<K, V> = (0..num_chunks)
            .map(|_| (0..partitions).map(|_| Mutex::new(Vec::new())).collect())
            .collect();
        if num_chunks > 0 {
            let chunk_size = inputs.len().div_ceil(num_chunks);
            let next = AtomicUsize::new(0);
            let inputs = &inputs;
            let map_fn = &map_fn;
            let combine_fn = &combine_fn;
            let counters_ref = &counters;
            let chunk_outputs = &chunk_outputs;
            let next = &next;
            let part_of = &part_of;
            let map_task_nanos = &map_task_nanos;
            std::thread::scope(|scope| {
                for _ in 0..self.workers.min(num_chunks) {
                    scope.spawn(move || loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= num_chunks {
                            break;
                        }
                        // Ceil-divided chunks can overshoot: clamp both
                        // ends (trailing chunks may be empty).
                        let lo = (c * chunk_size).min(inputs.len());
                        let hi = ((c + 1) * chunk_size).min(inputs.len());
                        let task_start = Instant::now();
                        let mut local: Vec<(K, V)> = Vec::new();
                        for input in &inputs[lo..hi] {
                            map_fn(input, &mut |k, v| local.push((k, v)), counters_ref);
                        }
                        if let Some(combine) = combine_fn {
                            local = combine_local(local, combine);
                        }
                        // Spill into per-partition buffers.
                        let mut parts: Vec<Vec<(K, V)>> =
                            (0..partitions).map(|_| Vec::new()).collect();
                        for (k, v) in local {
                            parts[part_of(&k)].push((k, v));
                        }
                        for (p, buf) in parts.into_iter().enumerate() {
                            *chunk_outputs[c][p].lock() = buf;
                        }
                        map_task_nanos[c]
                            .store(task_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    });
                }
            });
        }
        stats.map_nanos = t0.elapsed().as_nanos() as u64;
        stats.map_task_nanos = map_task_nanos
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect();

        // ---- Shuffle + reduce, parallel per partition ------------------------
        let t1 = Instant::now();
        // Each partition groups its keys (chunk order preserved within each
        // key group), sorts them, and reduces sequentially in key order.
        type PartResults<K, O> = Vec<Mutex<Vec<(K, Vec<O>)>>>;
        let part_results: PartResults<K, O> =
            (0..partitions).map(|_| Mutex::new(Vec::new())).collect();
        let partition_nanos: Vec<std::sync::atomic::AtomicU64> = (0..partitions)
            .map(|_| std::sync::atomic::AtomicU64::new(0))
            .collect();
        let pairs_total = AtomicUsize::new(0);
        let groups_total = AtomicUsize::new(0);
        if num_chunks > 0 {
            let next = AtomicUsize::new(0);
            let reduce_fn = &reduce_fn;
            let counters_ref = &counters;
            let chunk_outputs = &chunk_outputs;
            let part_results = &part_results;
            let pairs_total = &pairs_total;
            let groups_total = &groups_total;
            let next = &next;
            let partition_nanos = &partition_nanos;
            std::thread::scope(|scope| {
                for _ in 0..self.workers.min(partitions) {
                    scope.spawn(move || loop {
                        let p = next.fetch_add(1, Ordering::Relaxed);
                        if p >= partitions {
                            break;
                        }
                        let task_start = Instant::now();
                        let mut groups: FxHashMap<K, Vec<V>> = FxHashMap::default();
                        let mut pairs = 0usize;
                        for chunk in chunk_outputs {
                            for (k, v) in std::mem::take(&mut *chunk[p].lock()) {
                                pairs += 1;
                                groups.entry(k).or_default().push(v);
                            }
                        }
                        pairs_total.fetch_add(pairs, Ordering::Relaxed);
                        let mut grouped: Vec<(K, Vec<V>)> = groups.into_iter().collect();
                        grouped.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                        groups_total.fetch_add(grouped.len(), Ordering::Relaxed);
                        let mut results: Vec<(K, Vec<O>)> = Vec::with_capacity(grouped.len());
                        for (key, mut vals) in grouped {
                            let mut out = Vec::new();
                            reduce_fn(&key, &mut vals, &mut out, counters_ref);
                            results.push((key, out));
                        }
                        *part_results[p].lock() = results;
                        partition_nanos[p]
                            .store(task_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    });
                }
            });
        }
        stats.intermediate_pairs = pairs_total.load(Ordering::Relaxed);
        stats.reduce_groups = groups_total.load(Ordering::Relaxed);
        stats.shuffle_nanos = t1.elapsed().as_nanos() as u64;
        stats.partition_nanos = partition_nanos
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect();

        // ---- Gather: merge partitions back into global key order ------------
        let t2 = Instant::now();
        let mut all: Vec<(K, Vec<O>)> = Vec::with_capacity(stats.reduce_groups);
        for slot in part_results {
            all.append(&mut slot.into_inner());
        }
        all.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut output = Vec::new();
        for (_, mut out) in all {
            output.append(&mut out);
        }
        stats.reduce_nanos = t2.elapsed().as_nanos() as u64;

        JobResult {
            output,
            counters,
            stats,
        }
    }
}

/// Groups a map task's local emissions by key (preserving first-seen key
/// order is unnecessary — the shuffle re-sorts) and applies the combiner.
fn combine_local<K, V, C>(local: Vec<(K, V)>, combine: &C) -> Vec<(K, V)>
where
    K: Ord + std::hash::Hash + Clone,
    C: Fn(&K, Vec<V>) -> Vec<V>,
{
    let mut by_key: FxHashMap<K, Vec<V>> = FxHashMap::default();
    for (k, v) in local {
        by_key.entry(k).or_default().push(v);
    }
    let mut grouped: Vec<(K, Vec<V>)> = by_key.into_iter().collect();
    grouped.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::new();
    for (k, vals) in grouped {
        for v in combine(&k, vals) {
            out.push((k.clone(), v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word_count(engine: &Engine, docs: Vec<&'static str>) -> Vec<(String, u64)> {
        engine
            .run(
                docs,
                |doc, emit| {
                    for w in doc.split_whitespace() {
                        emit(w.to_string(), 1u64);
                    }
                },
                |k, vs, out| out.push((k.clone(), vs.iter().sum())),
            )
            .output
    }

    #[test]
    fn word_count_is_correct_and_sorted() {
        let e = Engine::new(4);
        let out = word_count(&e, vec!["b a b", "c b"]);
        assert_eq!(out, vec![("a".into(), 1), ("b".into(), 3), ("c".into(), 1)]);
    }

    #[test]
    fn worker_count_does_not_change_result() {
        let docs = vec!["x y z", "y y", "z x q w e r t", "q q q"];
        let single = word_count(&Engine::new(1), docs.clone());
        for n in [2, 3, 8] {
            assert_eq!(word_count(&Engine::new(n), docs.clone()), single);
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let e = Engine::new(4);
        let r = e.run(
            Vec::<u32>::new(),
            |_, _emit: &mut dyn FnMut(u32, u32)| {},
            |_, _, _out: &mut Vec<u32>| {},
        );
        assert!(r.output.is_empty());
        assert_eq!(r.stats.map_tasks, 0);
        assert_eq!(r.stats.reduce_groups, 0);
    }

    #[test]
    fn combiner_reduces_intermediate_pairs_without_changing_result() {
        let docs: Vec<&str> = vec!["a a a a a a a a", "a a a a"];
        let e = Engine::new(2);
        let plain = e.run(
            docs.clone(),
            |d, emit| {
                for w in d.split_whitespace() {
                    emit(w.to_string(), 1u64);
                }
            },
            |k, vs, out| out.push((k.clone(), vs.iter().sum::<u64>())),
        );
        let combined = e.run_combined(
            docs,
            |d, emit| {
                for w in d.split_whitespace() {
                    emit(w.to_string(), 1u64);
                }
            },
            |_k, vs: Vec<u64>| vec![vs.iter().sum::<u64>()],
            |k, vs, out| out.push((k.clone(), vs.iter().sum::<u64>())),
        );
        assert_eq!(plain.output, combined.output);
        assert!(combined.stats.intermediate_pairs < plain.stats.intermediate_pairs);
        assert_eq!(
            combined.stats.intermediate_pairs, 2,
            "one pair per map task"
        );
    }

    #[test]
    fn counters_aggregate_across_phases() {
        let e = Engine::new(3);
        let r = e.run_full(
            vec![1u32, 2, 3, 4, 5],
            |x, emit, c| {
                c.incr("mapped");
                emit(x % 2, *x);
            },
            None::<fn(&u32, Vec<u32>) -> Vec<u32>>,
            |_k, vs, out: &mut Vec<u32>, c| {
                c.incr("reduced");
                out.push(vs.iter().sum());
            },
        );
        assert_eq!(r.counters.get("mapped"), 5);
        assert_eq!(r.counters.get("reduced"), 2);
        assert_eq!(r.output, vec![2 + 4, 1 + 3 + 5]);
    }

    #[test]
    fn value_order_within_group_is_input_order() {
        let e = Engine::new(4);
        let inputs: Vec<u32> = (0..100).collect();
        let r = e.run(
            inputs,
            |x, emit| emit((), *x),
            |_k, vs, out: &mut Vec<Vec<u32>>| out.push(vs.clone()),
        );
        assert_eq!(r.output.len(), 1);
        let expected: Vec<u32> = (0..100).collect();
        assert_eq!(r.output[0], expected);
    }

    #[test]
    fn stats_are_populated() {
        let e = Engine::new(2);
        let r = e.run(
            vec!["a b", "b c"],
            |d, emit| {
                for w in d.split_whitespace() {
                    emit(w.to_string(), 1u64);
                }
            },
            |k, vs, out| out.push((k.clone(), vs.iter().sum::<u64>())),
        );
        assert_eq!(r.stats.intermediate_pairs, 4);
        assert_eq!(r.stats.reduce_groups, 3);
        assert!(r.stats.map_tasks >= 1);
        assert!(r.stats.total_nanos() > 0);
    }

    #[test]
    fn custom_partitioner_matches_hash_partitioner_output() {
        let docs = vec!["x y z", "y y", "z x q w e r t", "q q q"];
        let e = Engine::new(3);
        let hashed = word_count(&e, docs.clone());
        let ranged = e
            .run_partitioned(
                docs,
                // Range partitioner on the first byte; deliberately skewed,
                // and deliberately out of range for some keys (clamped).
                |k: &String, parts| (k.as_bytes()[0] as usize - b'a' as usize) * parts / 4,
                |d, emit, _c| {
                    for w in d.split_whitespace() {
                        emit(w.to_string(), 1u64);
                    }
                },
                |k, vs, out, _c| out.push((k.clone(), vs.iter().sum::<u64>())),
            )
            .output;
        assert_eq!(hashed, ranged);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let e = Engine::new(0);
        assert_eq!(e.workers(), 1);
        assert_eq!(word_count(&e, vec!["hi"]), vec![("hi".into(), 1)]);
    }
}
