//! A deterministic, in-process MapReduce engine.
//!
//! MinoanER runs blocking and meta-blocking "via Hadoop MapReduce" (paper
//! §1, refs [4, 5]). A Hadoop cluster is not available here, so this crate
//! provides a faithful single-machine substitute that preserves the
//! programming model those algorithms are expressed in:
//!
//! * **map** over input splits (parallel across worker threads),
//! * optional **combiner** applied to each map task's local output,
//! * a **shuffle** grouping values by key — hash-partitioned by default,
//!   with a pluggable partitioner hook ([`Engine::run_partitioned`]) for
//!   jobs whose keys carry locality (e.g. range-partitioned entity ids),
//! * **reduce** over key groups (parallel across worker threads),
//! * named **counters** aggregated across tasks, and per-phase timings.
//!
//! Executions are *deterministic*: map tasks own contiguous input chunks,
//! shuffle preserves (chunk, emission) order within each key group, reduce
//! output is ordered by key. Running with 1 or N workers yields the same
//! result, so parallel speedup experiments (EXPERIMENTS.md E7) compare
//! identical work.
//!
//! # Example
//!
//! ```
//! use minoan_mapreduce::Engine;
//!
//! // Word count.
//! let docs = vec!["to be or not to be", "be fast"];
//! let engine = Engine::new(4);
//! let result = engine.run(
//!     docs,
//!     |doc, emit| {
//!         for w in doc.split_whitespace() {
//!             emit(w.to_string(), 1u64);
//!         }
//!     },
//!     |word, counts, out| out.push((word.clone(), counts.iter().sum::<u64>())),
//! );
//! let freq = result.output;
//! assert!(freq.contains(&("be".to_string(), 3)));
//! ```

#![forbid(unsafe_code)]

mod counters;
mod engine;
pub mod faults;

pub use counters::Counters;
pub use engine::{Engine, JobResult, JobStats};
pub use faults::{fault_free_makespan, simulate_cluster, FaultConfig, SimOutcome};
