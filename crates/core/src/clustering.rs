//! Entity clustering: from pairwise matches to resolved entities.
//!
//! Matching emits weighted pairs; the final ER output is a *partition* of
//! the descriptions. The naive transitive closure (connected components)
//! over-merges as soon as one false match bridges two entities, so the ER
//! literature developed center-based alternatives. This module implements
//! the four standard algorithms (as in the JedAI toolkit's entity
//! clustering stage):
//!
//! * [`connected_components`] — transitive closure (the baseline; exactly
//!   what the engine's union-find produces).
//! * [`center_clustering`] — scan edges by descending weight; the first
//!   endpoint seen becomes a *center*, the other a *satellite*; satellites
//!   never recruit further members, so false bridges stop at one hop.
//! * [`merge_center_clustering`] — like center clustering, but an edge
//!   between two centers merges their clusters (recovers recall that
//!   center clustering gives up).
//! * [`unique_mapping_clustering`] — clean–clean ER: greedy maximum-weight
//!   one-to-one assignment across KBs (each description pairs with at most
//!   one per other KB).
//!
//! All functions take the matches as `(a, b, weight)` over a universe of
//! `n` descriptions and return the non-singleton clusters, sorted, so the
//! outputs are directly comparable in tests and experiments.

use minoan_common::{FxHashMap, FxHashSet, UnionFind};
use minoan_rdf::EntityId;

/// Sorts edges by descending weight (ties: ascending pair) — the canonical
/// processing order of the center-based algorithms.
fn by_weight_desc(matches: &[(EntityId, EntityId, f64)]) -> Vec<(EntityId, EntityId, f64)> {
    let mut edges = matches.to_vec();
    edges.sort_by(|x, y| {
        y.2.partial_cmp(&x.2)
            .expect("match weights must be finite")
            .then_with(|| (x.0, x.1).cmp(&(y.0, y.1)))
    });
    edges
}

/// Extracts sorted non-singleton clusters from a union-find.
fn clusters_of(uf: &mut UnionFind, n: usize) -> Vec<Vec<u32>> {
    let mut by_root: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    for i in 0..n as u32 {
        by_root.entry(uf.find(i)).or_default().push(i);
    }
    let mut out: Vec<Vec<u32>> = by_root.into_values().filter(|c| c.len() >= 2).collect();
    for c in &mut out {
        c.sort_unstable();
    }
    out.sort();
    out
}

/// Transitive closure over all matches.
pub fn connected_components(n: usize, matches: &[(EntityId, EntityId, f64)]) -> Vec<Vec<u32>> {
    let mut uf = UnionFind::new(n);
    for &(a, b, _) in matches {
        uf.union(a.0, b.0);
    }
    clusters_of(&mut uf, n)
}

/// Center clustering (Haveliwala et al.): by descending weight, an edge
/// whose endpoints are both unassigned makes the smaller-id endpoint a
/// center and the other its satellite; an edge from an unassigned node to
/// a *center* joins it as a satellite; satellite–satellite and
/// satellite–center edges are ignored.
pub fn center_clustering(n: usize, matches: &[(EntityId, EntityId, f64)]) -> Vec<Vec<u32>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Role {
        Free,
        Center,
        Satellite,
    }
    let mut role = vec![Role::Free; n];
    let mut uf = UnionFind::new(n);
    for (a, b, _) in by_weight_desc(matches) {
        let (ia, ib) = (a.index(), b.index());
        match (role[ia], role[ib]) {
            (Role::Free, Role::Free) => {
                role[ia] = Role::Center;
                role[ib] = Role::Satellite;
                uf.union(a.0, b.0);
            }
            (Role::Free, Role::Center) => {
                role[ia] = Role::Satellite;
                uf.union(a.0, b.0);
            }
            (Role::Center, Role::Free) => {
                role[ib] = Role::Satellite;
                uf.union(a.0, b.0);
            }
            _ => {} // satellite involved, or two centers: skip
        }
    }
    clusters_of(&mut uf, n)
}

/// Merge-center clustering: center clustering, except an edge between two
/// *centers* merges their clusters.
pub fn merge_center_clustering(n: usize, matches: &[(EntityId, EntityId, f64)]) -> Vec<Vec<u32>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Role {
        Free,
        Center,
        Satellite,
    }
    let mut role = vec![Role::Free; n];
    let mut uf = UnionFind::new(n);
    for (a, b, _) in by_weight_desc(matches) {
        let (ia, ib) = (a.index(), b.index());
        match (role[ia], role[ib]) {
            (Role::Free, Role::Free) => {
                role[ia] = Role::Center;
                role[ib] = Role::Satellite;
                uf.union(a.0, b.0);
            }
            (Role::Free, Role::Center) => {
                role[ia] = Role::Satellite;
                uf.union(a.0, b.0);
            }
            (Role::Center, Role::Free) => {
                role[ib] = Role::Satellite;
                uf.union(a.0, b.0);
            }
            (Role::Center, Role::Center) => {
                uf.union(a.0, b.0);
            }
            _ => {}
        }
    }
    clusters_of(&mut uf, n)
}

/// Unique-mapping clustering for clean–clean ER: edges by descending
/// weight; an edge is accepted iff neither endpoint is already mapped to
/// the other endpoint's KB. `kb_of(e)` supplies the KB partition.
pub fn unique_mapping_clustering(
    n: usize,
    matches: &[(EntityId, EntityId, f64)],
    mut kb_of: impl FnMut(EntityId) -> u16,
) -> Vec<Vec<u32>> {
    let mut uf = UnionFind::new(n);
    let mut mapped: FxHashSet<(u32, u16)> = FxHashSet::default();
    for (a, b, _) in by_weight_desc(matches) {
        let (ka, kb) = (kb_of(a), kb_of(b));
        if ka == kb {
            continue; // intra-KB pairs are never accepted in clean–clean
        }
        if mapped.contains(&(a.0, kb)) || mapped.contains(&(b.0, ka)) {
            continue;
        }
        mapped.insert((a.0, kb));
        mapped.insert((b.0, ka));
        uf.union(a.0, b.0);
    }
    clusters_of(&mut uf, n)
}

/// Which clustering algorithm to run (for experiment sweeps and the CLI).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClusteringAlgorithm {
    /// Transitive closure.
    ConnectedComponents,
    /// Center clustering.
    Center,
    /// Merge-center clustering.
    MergeCenter,
    /// Greedy one-to-one across KBs.
    UniqueMapping,
}

impl ClusteringAlgorithm {
    /// All algorithms.
    pub const ALL: [ClusteringAlgorithm; 4] = [
        ClusteringAlgorithm::ConnectedComponents,
        ClusteringAlgorithm::Center,
        ClusteringAlgorithm::MergeCenter,
        ClusteringAlgorithm::UniqueMapping,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ClusteringAlgorithm::ConnectedComponents => "connected-components",
            ClusteringAlgorithm::Center => "center",
            ClusteringAlgorithm::MergeCenter => "merge-center",
            ClusteringAlgorithm::UniqueMapping => "unique-mapping",
        }
    }

    /// Runs the algorithm.
    pub fn run(
        self,
        n: usize,
        matches: &[(EntityId, EntityId, f64)],
        kb_of: impl FnMut(EntityId) -> u16,
    ) -> Vec<Vec<u32>> {
        match self {
            ClusteringAlgorithm::ConnectedComponents => connected_components(n, matches),
            ClusteringAlgorithm::Center => center_clustering(n, matches),
            ClusteringAlgorithm::MergeCenter => merge_center_clustering(n, matches),
            ClusteringAlgorithm::UniqueMapping => unique_mapping_clustering(n, matches, kb_of),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    /// Chain with a weak false bridge: {0,1} and {2,3} are strong pairs,
    /// (1,2) is a weak bridge.
    fn bridged() -> Vec<(EntityId, EntityId, f64)> {
        vec![
            (e(0), e(1), 0.95),
            (e(2), e(3), 0.9),
            (e(1), e(2), 0.4), // the false bridge
        ]
    }

    #[test]
    fn connected_components_over_merges_across_the_bridge() {
        let clusters = connected_components(4, &bridged());
        assert_eq!(clusters, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn center_clustering_stops_the_bridge() {
        let clusters = center_clustering(4, &bridged());
        assert_eq!(clusters, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn merge_center_merges_center_to_center_edges() {
        // Two strong pairs whose *centers* share an edge.
        let edges = vec![
            (e(0), e(1), 0.95), // 0 center, 1 satellite
            (e(2), e(3), 0.9),  // 2 center, 3 satellite
            (e(0), e(2), 0.8),  // center–center → merge under merge-center
        ];
        let center = center_clustering(4, &edges);
        let merged = merge_center_clustering(4, &edges);
        assert_eq!(center, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(merged, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn unique_mapping_takes_the_heaviest_cross_kb_edge() {
        // KBs: 0,1 in KB 0; 2,3 in KB 1. Entity 0 has two candidates.
        let kb = |x: EntityId| if x.0 < 2 { 0u16 } else { 1u16 };
        let edges = vec![
            (e(0), e(2), 0.9),
            (e(0), e(3), 0.8), // loses: 0 already mapped to KB 1
            (e(1), e(3), 0.7),
        ];
        let clusters = unique_mapping_clustering(4, &edges, kb);
        assert_eq!(clusters, vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn unique_mapping_ignores_intra_kb_edges() {
        let kb = |x: EntityId| if x.0 < 2 { 0u16 } else { 1u16 };
        let edges = vec![(e(0), e(1), 0.99)];
        assert!(unique_mapping_clustering(4, &edges, kb).is_empty());
    }

    #[test]
    fn empty_matches_empty_clusters() {
        for alg in ClusteringAlgorithm::ALL {
            assert!(alg.run(5, &[], |_| 0).is_empty(), "{}", alg.name());
        }
    }

    #[test]
    fn all_outputs_are_partitions() {
        let edges = bridged();
        for alg in ClusteringAlgorithm::ALL {
            let clusters = alg.run(6, &edges, |x| (x.0 % 2) as u16);
            let mut seen = std::collections::HashSet::new();
            for c in &clusters {
                assert!(c.len() >= 2);
                for &m in c {
                    assert!(seen.insert(m), "{}: {m} in two clusters", alg.name());
                }
            }
        }
    }

    #[test]
    fn deterministic_under_permutation_of_equal_weight_input() {
        let edges = bridged();
        let mut reversed = edges.clone();
        reversed.reverse();
        for alg in ClusteringAlgorithm::ALL {
            assert_eq!(
                alg.run(4, &edges, |_| 0),
                alg.run(4, &reversed, |_| 0),
                "{} depends on input order",
                alg.name()
            );
        }
    }

    #[test]
    fn names_stable() {
        let names: Vec<_> = ClusteringAlgorithm::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec![
                "connected-components",
                "center",
                "merge-center",
                "unique-mapping"
            ]
        );
    }
}
