//! The resolution trace: one record per executed comparison.
//!
//! Progressive evaluation (recall@budget curves, quality-dimension curves)
//! is computed entirely from this trace plus the ground truth, so the
//! engine records every comparison in execution order.

use minoan_rdf::EntityId;
use serde::Serialize;

/// One executed comparison.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct TraceStep {
    /// 1-based comparison counter (the consumed budget after this step).
    pub comparison: u64,
    /// Smaller endpoint.
    pub a: u32,
    /// Larger endpoint.
    pub b: u32,
    /// Value similarity computed by the matcher.
    pub value_similarity: f64,
    /// Composite score (value + neighbour evidence) the decision used.
    pub score: f64,
    /// Scheduler benefit at pop time.
    pub benefit: f64,
    /// Whether the pair was declared a match.
    pub matched: bool,
    /// Whether this pair was *discovered* by the update phase (not present
    /// in the blocking candidates).
    pub discovered: bool,
}

impl TraceStep {
    /// The pair as entity ids.
    pub fn pair(&self) -> (EntityId, EntityId) {
        (EntityId(self.a), EntityId(self.b))
    }
}

/// The full trace of a resolution run.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Trace {
    steps: Vec<TraceStep>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a step (engine-internal).
    pub fn push(&mut self, step: TraceStep) {
        debug_assert_eq!(
            step.comparison as usize,
            self.steps.len() + 1,
            "steps in order"
        );
        self.steps.push(step);
    }

    /// All steps in execution order.
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// Number of comparisons executed.
    pub fn comparisons(&self) -> u64 {
        self.steps.len() as u64
    }

    /// Number of matches found.
    pub fn matches(&self) -> usize {
        self.steps.iter().filter(|s| s.matched).count()
    }

    /// Steps that were matches, in order.
    pub fn match_steps(&self) -> impl Iterator<Item = &TraceStep> {
        self.steps.iter().filter(|s| s.matched)
    }

    /// Comparison index at which the `n`-th match (1-based) was found.
    pub fn budget_for_nth_match(&self, n: usize) -> Option<u64> {
        self.match_steps()
            .nth(n.saturating_sub(1))
            .map(|s| s.comparison)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(i: u64, matched: bool) -> TraceStep {
        TraceStep {
            comparison: i,
            a: 0,
            b: 1,
            value_similarity: 0.5,
            score: 0.5,
            benefit: 0.5,
            matched,
            discovered: false,
        }
    }

    #[test]
    fn counts_and_accessors() {
        let mut t = Trace::new();
        t.push(step(1, true));
        t.push(step(2, false));
        t.push(step(3, true));
        assert_eq!(t.comparisons(), 3);
        assert_eq!(t.matches(), 2);
        assert_eq!(t.budget_for_nth_match(1), Some(1));
        assert_eq!(t.budget_for_nth_match(2), Some(3));
        assert_eq!(t.budget_for_nth_match(3), None);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert_eq!(t.comparisons(), 0);
        assert_eq!(t.matches(), 0);
        assert!(t.budget_for_nth_match(1).is_none());
    }

    #[test]
    fn pair_accessor() {
        let s = step(1, false);
        assert_eq!(s.pair(), (EntityId(0), EntityId(1)));
    }
}
