//! Oracle runs: upper bounds for progressive scheduling.
//!
//! To evaluate *scheduling* quality in isolation, the matcher is replaced
//! with a ground-truth oracle that decides every comparison perfectly.
//! Two bounds matter:
//!
//! * [`oracle_trace`] — the given candidate ranking, decided by the
//!   oracle: how much recall the *schedule* could extract if matching were
//!   free of errors (isolates scheduling from matching quality).
//! * [`perfect_trace`] — all true matches first: the absolute optimum any
//!   progressive method could reach with these candidates (the ceiling
//!   both the paper's scheduler and the baselines are measured against).
//!
//! Both produce ordinary [`Trace`]s, so the evaluation crate's progressive
//! curves apply unchanged.

use crate::trace::{Trace, TraceStep};
use minoan_rdf::EntityId;

/// Replays `pairs` in the given order, deciding each with `is_match`;
/// stops at `budget` comparisons.
#[allow(clippy::explicit_counter_loop)] // the counter is budget-gated, not an index
pub fn oracle_trace(
    pairs: &[(EntityId, EntityId, f64)],
    mut is_match: impl FnMut(EntityId, EntityId) -> bool,
    budget: u64,
) -> Trace {
    let mut trace = Trace::new();
    let mut comparisons = 0u64;
    for &(a, b, w) in pairs {
        if comparisons >= budget {
            break;
        }
        comparisons += 1;
        let matched = is_match(a, b);
        let sim = if matched { 1.0 } else { 0.0 };
        trace.push(TraceStep {
            comparison: comparisons,
            a: a.0,
            b: b.0,
            value_similarity: sim,
            score: sim,
            benefit: w,
            matched,
            discovered: false,
        });
    }
    trace
}

/// The perfect schedule: all true matches first (in input order), then the
/// non-matches — the recall-at-budget ceiling for this candidate set.
#[allow(clippy::explicit_counter_loop)] // the counter is budget-gated, not an index
pub fn perfect_trace(
    pairs: &[(EntityId, EntityId, f64)],
    mut is_match: impl FnMut(EntityId, EntityId) -> bool,
    budget: u64,
) -> Trace {
    let mut ordered: Vec<(EntityId, EntityId, f64, bool)> = pairs
        .iter()
        .map(|&(a, b, w)| (a, b, w, is_match(a, b)))
        .collect();
    ordered.sort_by(|x, y| y.3.cmp(&x.3).then((x.0, x.1).cmp(&(y.0, y.1))));
    let mut trace = Trace::new();
    let mut comparisons = 0u64;
    for (a, b, w, matched) in ordered {
        if comparisons >= budget {
            break;
        }
        comparisons += 1;
        let sim = if matched { 1.0 } else { 0.0 };
        trace.push(TraceStep {
            comparison: comparisons,
            a: a.0,
            b: b.0,
            value_similarity: sim,
            score: sim,
            benefit: w,
            matched,
            discovered: false,
        });
    }
    trace
}

/// Scheduling efficiency of a trace against the perfect ceiling: the ratio
/// of matches found within the first `budget` comparisons. 1.0 = the
/// schedule wasted nothing; the divisor counts what the perfect schedule
/// finds in the same budget.
pub fn schedule_efficiency(actual: &Trace, perfect: &Trace, budget: u64) -> f64 {
    let found = |t: &Trace| {
        t.steps()
            .iter()
            .filter(|s| s.comparison <= budget && s.matched)
            .count() as f64
    };
    let ceiling = found(perfect);
    if ceiling == 0.0 {
        return 1.0;
    }
    (found(actual) / ceiling).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    /// Five pairs; (0,1) and (2,3) are true matches.
    fn pairs() -> Vec<(EntityId, EntityId, f64)> {
        vec![
            (e(4), e(5), 0.9), // false, high weight
            (e(0), e(1), 0.5), // true
            (e(6), e(7), 0.4), // false
            (e(2), e(3), 0.3), // true
            (e(8), e(9), 0.1), // false
        ]
    }

    fn oracle(a: EntityId, b: EntityId) -> bool {
        matches!((a.0, b.0), (0, 1) | (2, 3))
    }

    #[test]
    fn oracle_trace_follows_input_order() {
        let t = oracle_trace(&pairs(), oracle, u64::MAX);
        assert_eq!(t.comparisons(), 5);
        assert_eq!(t.matches(), 2);
        let matched: Vec<bool> = t.steps().iter().map(|s| s.matched).collect();
        assert_eq!(matched, vec![false, true, false, true, false]);
    }

    #[test]
    fn oracle_trace_respects_budget() {
        let t = oracle_trace(&pairs(), oracle, 2);
        assert_eq!(t.comparisons(), 2);
        assert_eq!(t.matches(), 1);
    }

    #[test]
    fn perfect_trace_front_loads_matches() {
        let t = perfect_trace(&pairs(), oracle, u64::MAX);
        let matched: Vec<bool> = t.steps().iter().map(|s| s.matched).collect();
        assert_eq!(matched, vec![true, true, false, false, false]);
    }

    #[test]
    fn perfect_trace_with_budget_two_finds_both() {
        let t = perfect_trace(&pairs(), oracle, 2);
        assert_eq!(t.matches(), 2);
    }

    #[test]
    fn efficiency_of_perfect_is_one() {
        let p = perfect_trace(&pairs(), oracle, u64::MAX);
        assert_eq!(schedule_efficiency(&p, &p, 2), 1.0);
    }

    #[test]
    fn efficiency_of_input_order_is_partial() {
        let actual = oracle_trace(&pairs(), oracle, u64::MAX);
        let perfect = perfect_trace(&pairs(), oracle, u64::MAX);
        // At budget 2 input order finds 1 of the 2 the ceiling finds.
        assert!((schedule_efficiency(&actual, &perfect, 2) - 0.5).abs() < 1e-12);
        // With the full budget both find everything.
        assert_eq!(schedule_efficiency(&actual, &perfect, 5), 1.0);
    }

    #[test]
    fn efficiency_with_no_matches_is_one() {
        let no_match = |_: EntityId, _: EntityId| false;
        let a = oracle_trace(&pairs(), no_match, u64::MAX);
        let p = perfect_trace(&pairs(), no_match, u64::MAX);
        assert_eq!(schedule_efficiency(&a, &p, 3), 1.0);
    }

    #[test]
    fn empty_pairs() {
        let t = oracle_trace(&[], oracle, 10);
        assert_eq!(t.comparisons(), 0);
        let p = perfect_trace(&[], oracle, 10);
        assert_eq!(p.comparisons(), 0);
    }
}
