//! Benefit models for the scheduling phase.
//!
//! "In contrast to existing works in progressive relational ER, which
//! consider the quantity of entity pairs resolved as the benefit of ER, we
//! explore different aspects of data quality" (paper §1): attribute
//! completeness, entity coverage and relationship completeness. Each model
//! scores a candidate as `likelihood × quality factor`, where likelihood
//! is the candidate's match prior (meta-blocking weight + neighbour
//! evidence) and the factor encodes the targeted quality dimension given
//! the *current* resolution state.

use crate::candidates::Candidate;
use minoan_common::{FxHashMap, FxHashSet, UnionFind};
use minoan_rdf::{Dataset, EntityId};

/// The benefit a scheduled comparison is expected to contribute.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum BenefitModel {
    /// Baseline (Altowim et al.): every resolved pair counts equally, so
    /// benefit = match likelihood.
    PairQuantity,
    /// Targets descriptions-per-entity: merges that add *new attribute
    /// information* to a cluster score higher.
    AttributeCompleteness,
    /// Targets distinct real-world entities: first resolutions of
    /// still-unresolved descriptions score higher than pile-ons.
    EntityCoverage,
    /// Targets entity *graphs*: pairs whose neighbourhoods are already
    /// partially resolved score higher (completing connected structures).
    RelationshipCompleteness,
}

impl BenefitModel {
    /// All models, for sweeps.
    pub const ALL: [BenefitModel; 4] = [
        BenefitModel::PairQuantity,
        BenefitModel::AttributeCompleteness,
        BenefitModel::EntityCoverage,
        BenefitModel::RelationshipCompleteness,
    ];

    /// Short name for experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            BenefitModel::PairQuantity => "pair-quantity",
            BenefitModel::AttributeCompleteness => "attr-completeness",
            BenefitModel::EntityCoverage => "entity-coverage",
            BenefitModel::RelationshipCompleteness => "rel-completeness",
        }
    }

    /// Scores `cand` under this model against the current `state`.
    pub fn score(self, state: &ResolutionState, cand: &Candidate) -> f64 {
        let likelihood = cand.likelihood();
        if likelihood <= 0.0 {
            return 0.0;
        }
        let factor = match self {
            BenefitModel::PairQuantity => 1.0,
            BenefitModel::AttributeCompleteness => {
                // Attribute novelty × freshness: the first merges of an
                // entity add the most new attribute names; later pile-ons
                // add progressively less.
                let fresh = match (state.resolved(cand.a), state.resolved(cand.b)) {
                    (false, false) => 1.0,
                    (true, false) | (false, true) => 0.6,
                    (true, true) => 0.25,
                };
                (0.3 + 0.7 * state.attribute_gain(cand.a, cand.b)) * fresh
            }
            BenefitModel::EntityCoverage => {
                match (state.resolved(cand.a), state.resolved(cand.b)) {
                    (false, false) => 1.0,
                    (true, false) | (false, true) => 0.4,
                    (true, true) => 0.1,
                }
            }
            BenefitModel::RelationshipCompleteness => {
                // A relationship is completed when *both* its endpoint
                // entities are covered: behave like entity coverage but
                // only graph-embedded entities count, and neighbourhood
                // alignment adds a final nudge.
                let fresh = match (state.resolved(cand.a), state.resolved(cand.b)) {
                    (false, false) => 1.0,
                    (true, false) | (false, true) => 0.4,
                    (true, true) => 0.1,
                };
                let linked = if state.is_linked(cand.a) && state.is_linked(cand.b) {
                    1.0
                } else {
                    0.3
                };
                fresh * linked * (0.8 + 0.2 * state.resolved_neighbor_fraction(cand.a, cand.b))
            }
        };
        likelihood * factor
    }
}

/// Live state of the resolution: clusters so far plus the bookkeeping the
/// quality-oriented benefit models read.
pub struct ResolutionState<'d> {
    dataset: &'d Dataset,
    clusters: UnionFind,
    resolved: Vec<bool>,
    /// Attribute-name sets per cluster root (predicate symbol ids).
    cluster_attrs: FxHashMap<u32, FxHashSet<u32>>,
    matches: usize,
}

/// Cap on neighbourhood cross-products examined per benefit evaluation —
/// keeps scoring O(1) on hub entities.
const NEIGHBOR_CAP: usize = 8;

impl<'d> ResolutionState<'d> {
    /// Fresh state: every description is its own singleton cluster.
    pub fn new(dataset: &'d Dataset) -> Self {
        Self {
            dataset,
            clusters: UnionFind::new(dataset.len()),
            resolved: vec![false; dataset.len()],
            cluster_attrs: FxHashMap::default(),
            matches: 0,
        }
    }

    /// Number of recorded matches.
    pub fn matches(&self) -> usize {
        self.matches
    }

    /// Whether `e` participates in at least one match.
    pub fn resolved(&self, e: EntityId) -> bool {
        self.resolved[e.index()]
    }

    /// Whether `e` has any neighbour in the relationship graph.
    pub fn is_linked(&self, e: EntityId) -> bool {
        !self.dataset.neighbors(e).is_empty()
    }

    /// Whether `a` and `b` are already in the same cluster.
    pub fn same_cluster(&self, a: EntityId, b: EntityId) -> bool {
        self.clusters.find_immutable(a.0) == self.clusters.find_immutable(b.0)
    }

    /// The cluster structure (read-only view via clone of roots).
    pub fn clusters_mut(&mut self) -> &mut UnionFind {
        &mut self.clusters
    }

    /// Final clusters with at least `min` members.
    pub fn final_clusters(&mut self, min: usize) -> Vec<Vec<u32>> {
        self.clusters.clusters(min)
    }

    fn attrs_of_cluster(&self, e: EntityId) -> FxHashSet<u32> {
        let root = self.clusters.find_immutable(e.0);
        if let Some(set) = self.cluster_attrs.get(&root) {
            return set.clone();
        }
        self.entity_attrs(e)
    }

    fn entity_attrs(&self, e: EntityId) -> FxHashSet<u32> {
        self.dataset
            .description(e)
            .attributes
            .iter()
            .map(|(p, _)| p.0)
            .collect()
    }

    /// Fraction of *new* attribute names a merge of the two clusters would
    /// contribute, in `[0, 1]` (symmetric difference over union).
    pub fn attribute_gain(&self, a: EntityId, b: EntityId) -> f64 {
        let sa = self.attrs_of_cluster(a);
        let sb = self.attrs_of_cluster(b);
        let inter = sa.intersection(&sb).count();
        let union = sa.len() + sb.len() - inter;
        if union == 0 {
            return 0.0;
        }
        (union - inter) as f64 / union as f64
    }

    /// Fraction of neighbour pairs `(na, nb)` already resolved into the
    /// same cluster, examined over a capped neighbour window (16² pairs).
    pub fn resolved_neighbor_fraction(&self, a: EntityId, b: EntityId) -> f64 {
        let na = self.dataset.neighbors(a);
        let nb = self.dataset.neighbors(b);
        if na.is_empty() || nb.is_empty() {
            return 0.0;
        }
        let mut hits = 0usize;
        let mut total = 0usize;
        for &x in na.iter().take(NEIGHBOR_CAP) {
            for &y in nb.iter().take(NEIGHBOR_CAP) {
                total += 1;
                if x != y && self.same_cluster(x, y) {
                    hits += 1;
                }
            }
        }
        hits as f64 / total as f64
    }

    /// Records an accepted match: unions the clusters, merges attribute
    /// sets, marks both endpoints resolved.
    pub fn record_match(&mut self, a: EntityId, b: EntityId) {
        let attrs_a = self
            .cluster_attrs
            .remove(&self.clusters.find(a.0))
            .unwrap_or_else(|| self.entity_attrs(a));
        let attrs_b = self
            .cluster_attrs
            .remove(&self.clusters.find(b.0))
            .unwrap_or_else(|| self.entity_attrs(b));
        self.clusters.union(a.0, b.0);
        let root = self.clusters.find(a.0);
        let mut merged = attrs_a;
        merged.extend(attrs_b);
        self.cluster_attrs.insert(root, merged);
        self.resolved[a.index()] = true;
        self.resolved[b.index()] = true;
        self.matches += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::CandidatePool;
    use minoan_rdf::DatasetBuilder;

    /// 2 KBs × 3 entities; a0–b0 linked to a1–b1 (world structure).
    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/");
        let k1 = b.add_kb("b", "http://b/");
        for (kb, pre) in [(k0, "http://a"), (k1, "http://b")] {
            for i in 0..3 {
                b.add_literal(kb, &format!("{pre}/{i}"), &format!("{pre}/o/p{i}"), "v");
            }
            b.add_resource(
                kb,
                &format!("{pre}/0"),
                &format!("{pre}/o/rel"),
                &format!("{pre}/1"),
            );
        }
        b.build()
    }

    fn cand(pool: &mut CandidatePool, a: u32, b: u32, prior: f64) -> Candidate {
        let id = pool.insert(EntityId(a), EntityId(b), prior);
        pool.get(id).clone()
    }

    #[test]
    fn pair_quantity_equals_likelihood() {
        let ds = dataset();
        let state = ResolutionState::new(&ds);
        let mut pool = CandidatePool::new();
        let c = cand(&mut pool, 0, 3, 0.8);
        assert_eq!(BenefitModel::PairQuantity.score(&state, &c), 0.8);
    }

    #[test]
    fn entity_coverage_prefers_fresh_entities() {
        let ds = dataset();
        let mut state = ResolutionState::new(&ds);
        let mut pool = CandidatePool::new();
        let fresh = cand(&mut pool, 1, 4, 0.5);
        let before = BenefitModel::EntityCoverage.score(&state, &fresh);
        state.record_match(EntityId(1), EntityId(4));
        let after = BenefitModel::EntityCoverage.score(&state, &fresh);
        assert!(before > after, "resolved endpoints must score lower");
        let half = cand(&mut pool, 1, 5, 0.5);
        let half_score = BenefitModel::EntityCoverage.score(&state, &half);
        assert!(half_score < before && half_score > after);
    }

    #[test]
    fn attribute_gain_tracks_cluster_merges() {
        let ds = dataset();
        let mut state = ResolutionState::new(&ds);
        // a/0 has {p0, rel}, b/0 has {p0', rel'} — all predicate names are
        // KB-qualified here, so gain is 1.0 (fully disjoint sets).
        assert!((state.attribute_gain(EntityId(0), EntityId(3)) - 1.0).abs() < 1e-12);
        // Same entity → zero gain.
        assert_eq!(state.attribute_gain(EntityId(0), EntityId(0)), 0.0);
        // After merging 0 and 3, the cluster has both attribute sets; a new
        // pair against the cluster gains less.
        let gain_before = state.attribute_gain(EntityId(0), EntityId(4));
        state.record_match(EntityId(0), EntityId(3));
        let gain_after = state.attribute_gain(EntityId(0), EntityId(4));
        assert!(gain_after <= gain_before + 1e-12);
    }

    #[test]
    fn relationship_completeness_rises_with_resolved_neighbors() {
        let ds = dataset();
        let mut state = ResolutionState::new(&ds);
        let mut pool = CandidatePool::new();
        // Pair (0, 3): neighbours are 1 (of 0) and 4 (of 3).
        let c = cand(&mut pool, 0, 3, 1.0);
        let before = BenefitModel::RelationshipCompleteness.score(&state, &c);
        state.record_match(EntityId(1), EntityId(4));
        let after = BenefitModel::RelationshipCompleteness.score(&state, &c);
        assert!(after > before, "resolved neighbour link must raise benefit");
        assert!(
            (after - 1.0).abs() < 1e-12,
            "all neighbour pairs resolved → factor 1"
        );
    }

    #[test]
    fn no_neighbors_means_zero_fraction() {
        let ds = dataset();
        let state = ResolutionState::new(&ds);
        assert_eq!(
            state.resolved_neighbor_fraction(EntityId(2), EntityId(5)),
            0.0
        );
    }

    #[test]
    fn zero_likelihood_scores_zero_under_all_models() {
        let ds = dataset();
        let state = ResolutionState::new(&ds);
        let mut pool = CandidatePool::new();
        let c = cand(&mut pool, 2, 5, 0.0);
        for m in BenefitModel::ALL {
            assert_eq!(m.score(&state, &c), 0.0, "{m:?}");
        }
    }

    #[test]
    fn record_match_updates_all_bookkeeping() {
        let ds = dataset();
        let mut state = ResolutionState::new(&ds);
        assert!(!state.resolved(EntityId(0)));
        state.record_match(EntityId(0), EntityId(3));
        assert!(state.resolved(EntityId(0)) && state.resolved(EntityId(3)));
        assert!(state.same_cluster(EntityId(0), EntityId(3)));
        assert_eq!(state.matches(), 1);
        // Transitive merge keeps attribute union coherent.
        state.record_match(EntityId(3), EntityId(1));
        assert!(state.same_cluster(EntityId(0), EntityId(1)));
        let clusters = state.final_clusters(2);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0], vec![0, 1, 3]);
    }

    #[test]
    fn model_names_are_stable() {
        let names: Vec<_> = BenefitModel::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "pair-quantity",
                "attr-completeness",
                "entity-coverage",
                "rel-completeness"
            ]
        );
    }
}
