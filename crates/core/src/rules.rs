//! Composite matching rules.
//!
//! The MinoanER platform line of work refined the single-threshold matcher
//! into a small set of *composite rules* that fire without any dataset-
//! specific threshold tuning, exploiting reciprocity ("I am your best
//! candidate and you are mine") instead of absolute similarity values:
//!
//! * **R1 — reciprocal name match**: two descriptions whose name-like
//!   literals are each other's best candidate with near-identical strings.
//! * **R2 — reciprocal value match**: each other's top-1 by value
//!   similarity, above a loose floor.
//! * **R3 — rank aggregation**: a weighted combination of the value rank
//!   and the neighbour-agreement score; fires on reciprocal top-1
//!   aggregated rank.
//!
//! Rules are tried in that order; each accepted match consumes its
//! endpoints (unique mapping), so later rules only see what earlier,
//! higher-precision rules left behind.

use crate::matcher::Matcher;
use minoan_common::{FxHashMap, FxHashSet};
use minoan_rdf::{Dataset, EntityId};
use minoan_similarity::jaro_winkler;

/// Which rule accepted a match (provenance for evaluation).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rule {
    /// Reciprocal name match.
    NameReciprocity,
    /// Reciprocal top value similarity.
    ValueReciprocity,
    /// Rank aggregation of value and neighbour evidence.
    RankAggregation,
}

impl Rule {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NameReciprocity => "R1-name",
            Rule::ValueReciprocity => "R2-value",
            Rule::RankAggregation => "R3-rank",
        }
    }
}

/// Configuration of the composite-rule resolver.
#[derive(Clone, Copy, Debug)]
pub struct CompositeConfig {
    /// Minimum Jaro–Winkler between names for R1.
    pub name_threshold: f64,
    /// Minimum value similarity for R2 (a loose floor, not a tuned
    /// threshold — reciprocity does the real filtering).
    pub value_floor: f64,
    /// Weight of the neighbour-agreement component in R3 (the rest goes to
    /// value similarity).
    pub neighbor_weight: f64,
    /// Minimum aggregated score for R3.
    pub aggregate_floor: f64,
}

impl Default for CompositeConfig {
    fn default() -> Self {
        Self {
            name_threshold: 0.92,
            value_floor: 0.4,
            neighbor_weight: 0.4,
            aggregate_floor: 0.2,
        }
    }
}

/// One accepted match with its provenance.
#[derive(Clone, Copy, Debug)]
pub struct RuleMatch {
    /// Smaller endpoint.
    pub a: EntityId,
    /// Larger endpoint.
    pub b: EntityId,
    /// The score the accepting rule saw.
    pub score: f64,
    /// The rule that fired.
    pub rule: Rule,
}

/// Output of [`CompositeResolver::run`].
#[derive(Debug, Default)]
pub struct CompositeResolution {
    /// Accepted matches in acceptance order.
    pub matches: Vec<RuleMatch>,
    /// Similarity evaluations performed (cost measure).
    pub comparisons: u64,
}

impl CompositeResolution {
    /// Matches accepted by a given rule.
    pub fn by_rule(&self, rule: Rule) -> impl Iterator<Item = &RuleMatch> {
        self.matches.iter().filter(move |m| m.rule == rule)
    }
}

/// The composite-rule resolver. Operates on the candidate pairs produced
/// by (meta-)blocking; never compares outside them.
pub struct CompositeResolver<'d> {
    dataset: &'d Dataset,
    matcher: &'d Matcher,
    config: CompositeConfig,
}

impl<'d> CompositeResolver<'d> {
    /// Creates a resolver over a dataset and its pre-built matcher.
    pub fn new(dataset: &'d Dataset, matcher: &'d Matcher, config: CompositeConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.neighbor_weight),
            "neighbor weight must be in [0,1]"
        );
        Self {
            dataset,
            matcher,
            config,
        }
    }

    /// Runs all rules over the candidate pairs.
    pub fn run(&self, pairs: &[(EntityId, EntityId, f64)]) -> CompositeResolution {
        let mut out = CompositeResolution::default();
        // Adjacency: entity → candidate partners.
        let mut partners: FxHashMap<EntityId, Vec<EntityId>> = FxHashMap::default();
        let mut seen: FxHashSet<(EntityId, EntityId)> = FxHashSet::default();
        for &(a, b, _) in pairs {
            let key = (a.min(b), a.max(b));
            if seen.insert(key) {
                partners.entry(key.0).or_default().push(key.1);
                partners.entry(key.1).or_default().push(key.0);
            }
        }
        for list in partners.values_mut() {
            list.sort_unstable();
        }

        // Cache value similarities (each counted once as a comparison).
        let mut value_cache: FxHashMap<(EntityId, EntityId), f64> = FxHashMap::default();
        let mut value_of = |a: EntityId, b: EntityId, comparisons: &mut u64| -> f64 {
            let key = (a.min(b), a.max(b));
            *value_cache.entry(key).or_insert_with(|| {
                *comparisons += 1;
                self.matcher.value_similarity(key.0, key.1)
            })
        };

        let mut consumed: FxHashSet<EntityId> = FxHashSet::default();
        let accept = |a: EntityId,
                      b: EntityId,
                      score: f64,
                      rule: Rule,
                      out: &mut CompositeResolution,
                      consumed: &mut FxHashSet<EntityId>| {
            out.matches.push(RuleMatch {
                a: a.min(b),
                b: a.max(b),
                score,
                rule,
            });
            consumed.insert(a);
            consumed.insert(b);
        };

        // --- R1: reciprocal name match ---------------------------------
        let name_best = self.best_by(&partners, |a, b| self.name_similarity(a, b));
        for (&e, &(best, sim)) in name_best.iter() {
            if consumed.contains(&e) || consumed.contains(&best) || e >= best {
                continue;
            }
            if sim >= self.config.name_threshold && name_best.get(&best).map(|&(x, _)| x) == Some(e)
            {
                accept(e, best, sim, Rule::NameReciprocity, &mut out, &mut consumed);
            }
        }

        // --- R2: reciprocal value match --------------------------------
        let mut value_best: FxHashMap<EntityId, (EntityId, f64)> = FxHashMap::default();
        // lint:allow(hash-order-leak): independent per-key best-match fill; no emission order here
        for (&e, list) in partners.iter() {
            if consumed.contains(&e) {
                continue;
            }
            let mut best: Option<(EntityId, f64)> = None;
            for &p in list {
                if consumed.contains(&p) {
                    continue;
                }
                let v = value_of(e, p, &mut out.comparisons);
                if best.is_none_or(|(_, bv)| v > bv) {
                    best = Some((p, v));
                }
            }
            if let Some(b) = best {
                value_best.insert(e, b);
            }
        }
        let mut r2: Vec<(EntityId, EntityId, f64)> = Vec::new();
        for (&e, &(best, sim)) in value_best.iter() {
            if e < best
                && sim >= self.config.value_floor
                && value_best.get(&best).map(|&(x, _)| x) == Some(e)
            {
                r2.push((e, best, sim));
            }
        }
        r2.sort_by(|x, y| {
            y.2.partial_cmp(&x.2)
                .expect("R2 similarities are finite by construction")
                .then((x.0, x.1).cmp(&(y.0, y.1)))
        });
        for (a, b, sim) in r2 {
            if !consumed.contains(&a) && !consumed.contains(&b) {
                accept(a, b, sim, Rule::ValueReciprocity, &mut out, &mut consumed);
            }
        }

        // --- R3: rank aggregation ---------------------------------------
        let agg_best = self.best_by(&partners, |a, b| {
            if consumed.contains(&a) || consumed.contains(&b) {
                return -1.0;
            }
            let v = value_of(a, b, &mut out.comparisons);
            let n = self.neighbor_agreement(a, b);
            (1.0 - self.config.neighbor_weight) * v + self.config.neighbor_weight * n
        });
        let mut r3: Vec<(EntityId, EntityId, f64)> = Vec::new();
        for (&e, &(best, score)) in agg_best.iter() {
            if e < best
                && score >= self.config.aggregate_floor
                && agg_best.get(&best).map(|&(x, _)| x) == Some(e)
            {
                r3.push((e, best, score));
            }
        }
        r3.sort_by(|x, y| {
            y.2.partial_cmp(&x.2)
                .expect("R3 aggregate scores are finite by construction")
                .then((x.0, x.1).cmp(&(y.0, y.1)))
        });
        for (a, b, score) in r3 {
            if !consumed.contains(&a) && !consumed.contains(&b) {
                accept(a, b, score, Rule::RankAggregation, &mut out, &mut consumed);
            }
        }

        out.matches.sort_by_key(|x| (x.a, x.b));
        out
    }

    /// Best partner per entity under a scoring function (ties: smaller id).
    fn best_by(
        &self,
        partners: &FxHashMap<EntityId, Vec<EntityId>>,
        mut score: impl FnMut(EntityId, EntityId) -> f64,
    ) -> FxHashMap<EntityId, (EntityId, f64)> {
        let mut out: FxHashMap<EntityId, (EntityId, f64)> = FxHashMap::default();
        let mut keys: Vec<&EntityId> = partners.keys().collect();
        keys.sort_unstable();
        for &e in keys {
            let mut best: Option<(EntityId, f64)> = None;
            for &p in &partners[&e] {
                let s = score(e, p);
                if s < 0.0 {
                    continue;
                }
                if best.is_none_or(|(_, bs)| s > bs) {
                    best = Some((p, s));
                }
            }
            if let Some(b) = best {
                out.insert(e, b);
            }
        }
        out
    }

    /// Jaro–Winkler of the two descriptions' first name-like literals;
    /// −1 when either side has none (rule not applicable).
    fn name_similarity(&self, a: EntityId, b: EntityId) -> f64 {
        let na = self.dataset.name_values(a);
        let nb = self.dataset.name_values(b);
        match (na.first(), nb.first()) {
            (Some(x), Some(y)) => jaro_winkler(&x.to_lowercase(), &y.to_lowercase()),
            _ => -1.0,
        }
    }

    /// Structural neighbour agreement: of `a`'s neighbours, the fraction
    /// with ≥ 1 candidate-or-identical counterpart among `b`'s neighbours
    /// — cheap containment over the two sorted neighbour lists' token sets.
    fn neighbor_agreement(&self, a: EntityId, b: EntityId) -> f64 {
        let na = self.dataset.neighbors(a);
        let nb = self.dataset.neighbors(b);
        if na.is_empty() || nb.is_empty() {
            return 0.0;
        }
        let cap = 8usize;
        let mut agreeing = 0usize;
        let mut considered = 0usize;
        for &x in na.iter().take(cap) {
            considered += 1;
            let tx = self.matcher.tokens_of(x);
            if tx.is_empty() {
                continue;
            }
            for &y in nb.iter().take(cap) {
                if minoan_similarity::jaccard(tx, self.matcher.tokens_of(y)) >= 0.35 {
                    agreeing += 1;
                    break;
                }
            }
        }
        agreeing as f64 / considered as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::MatcherConfig;
    use minoan_blocking::{builders, ErMode};
    use minoan_datagen::{generate, profiles, GeneratedWorld};
    use minoan_metablocking::{prune, BlockingGraph, WeightingScheme};

    fn candidates(g: &GeneratedWorld) -> Vec<(EntityId, EntityId, f64)> {
        let blocks = builders::token_blocking(&g.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        prune::wnp(&graph, WeightingScheme::Arcs, false)
            .pairs
            .into_iter()
            .map(|p| (p.a, p.b, p.weight))
            .collect()
    }

    fn run(g: &GeneratedWorld, config: CompositeConfig) -> CompositeResolution {
        let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
        let pairs = candidates(g);
        CompositeResolver::new(&g.dataset, &matcher, config).run(&pairs)
    }

    #[test]
    fn rules_achieve_high_precision_without_tuned_threshold() {
        let g = generate(&profiles::center_dense(200, 41));
        let res = run(&g, CompositeConfig::default());
        assert!(!res.matches.is_empty());
        let tp = res
            .matches
            .iter()
            .filter(|m| g.truth.is_match(m.a, m.b))
            .count();
        let precision = tp as f64 / res.matches.len() as f64;
        assert!(precision > 0.9, "precision {precision}");
        let recall = tp as f64 / g.truth.matching_pairs() as f64;
        assert!(recall > 0.5, "recall {recall}");
    }

    #[test]
    fn unique_mapping_holds() {
        let g = generate(&profiles::center_dense(150, 43));
        let res = run(&g, CompositeConfig::default());
        let mut seen: FxHashSet<EntityId> = FxHashSet::default();
        for m in &res.matches {
            assert!(seen.insert(m.a), "{:?} matched twice", m.a);
            assert!(seen.insert(m.b), "{:?} matched twice", m.b);
        }
    }

    #[test]
    fn name_rule_fires_on_clean_names() {
        let g = generate(&profiles::center_dense(150, 47));
        let res = run(&g, CompositeConfig::default());
        let r1 = res.by_rule(Rule::NameReciprocity).count();
        assert!(r1 > 0, "R1 should fire on centre data with shared labels");
        // R1 matches must be near-perfect.
        let r1_tp = res
            .by_rule(Rule::NameReciprocity)
            .filter(|m| g.truth.is_match(m.a, m.b))
            .count();
        assert!(r1_tp as f64 / r1 as f64 > 0.9);
    }

    #[test]
    fn later_rules_add_recall_over_r1_alone() {
        let g = generate(&profiles::periphery_sparse(200, 53));
        let res = run(&g, CompositeConfig::default());
        let total = res.matches.len();
        let r1 = res.by_rule(Rule::NameReciprocity).count();
        assert!(total >= r1, "rules must compose");
        assert!(
            res.by_rule(Rule::ValueReciprocity).count() > 0
                || res.by_rule(Rule::RankAggregation).count() > 0,
            "R2/R3 should contribute on noisy periphery data"
        );
    }

    #[test]
    fn comparisons_are_bounded_by_candidate_count() {
        let g = generate(&profiles::center_dense(120, 59));
        let pairs = candidates(&g);
        let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
        let res =
            CompositeResolver::new(&g.dataset, &matcher, CompositeConfig::default()).run(&pairs);
        // Value similarities are cached per pair: at most one comparison
        // per distinct candidate pair.
        assert!(res.comparisons <= pairs.len() as u64);
    }

    #[test]
    fn empty_candidates_empty_output() {
        let g = generate(&profiles::center_dense(50, 61));
        let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
        let res = CompositeResolver::new(&g.dataset, &matcher, CompositeConfig::default()).run(&[]);
        assert!(res.matches.is_empty());
        assert_eq!(res.comparisons, 0);
    }

    #[test]
    fn rule_names_stable() {
        assert_eq!(Rule::NameReciprocity.name(), "R1-name");
        assert_eq!(Rule::ValueReciprocity.name(), "R2-value");
        assert_eq!(Rule::RankAggregation.name(), "R3-rank");
    }

    #[test]
    fn deterministic() {
        let g = generate(&profiles::lod_cloud(120, 67));
        let a = run(&g, CompositeConfig::default());
        let b = run(&g, CompositeConfig::default());
        assert_eq!(a.matches.len(), b.matches.len());
        for (x, y) in a.matches.iter().zip(&b.matches) {
            assert_eq!((x.a, x.b, x.rule), (y.a, y.b, y.rule));
        }
    }
}
