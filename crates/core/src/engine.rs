//! The progressive resolution engine: schedule → match → update, under a
//! cost budget.

use crate::benefit::{BenefitModel, ResolutionState};
use crate::candidates::CandidatePool;
use crate::matcher::Matcher;
use crate::scheduler::Scheduler;
use crate::trace::{Trace, TraceStep};
use minoan_common::FxHashSet;
use minoan_rdf::{Dataset, EntityId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Comparison-ordering strategy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Strategy {
    /// Candidates in input order (classic batch ER).
    Batch,
    /// Candidates in random order (the naive progressive baseline).
    Random {
        /// Shuffle seed.
        seed: u64,
    },
    /// Candidates by descending meta-blocking prior, computed once — no
    /// update phase (static best-first).
    StaticBestFirst,
    /// The full MinoanER loop: benefit-driven scheduling with neighbour
    /// propagation on every match.
    Progressive(BenefitModel),
}

impl Strategy {
    /// Short name for tables.
    pub fn name(&self) -> String {
        match self {
            Strategy::Batch => "batch".into(),
            Strategy::Random { .. } => "random".into(),
            Strategy::StaticBestFirst => "static-best-first".into(),
            Strategy::Progressive(m) => format!("progressive/{}", m.name()),
        }
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct ResolverConfig {
    /// Ordering strategy.
    pub strategy: Strategy,
    /// Maximum number of comparisons (the paper's computational cost
    /// budget). `u64::MAX` = run to exhaustion.
    pub budget: u64,
    /// Propagation strength `α`: a match with score `s` adds `α·s`
    /// neighbour evidence to each linked pair.
    pub alpha: f64,
    /// Evidence increase required before a previously compared pair is
    /// re-scheduled (prevents re-comparison churn).
    pub recompare_margin: f64,
    /// In clean–clean data, consume matched endpoints so an entity matches
    /// at most one description per other KB.
    pub unique_mapping: bool,
    /// Cap on neighbours examined per endpoint during the update phase.
    pub max_neighbors: usize,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        Self {
            strategy: Strategy::Progressive(BenefitModel::PairQuantity),
            budget: u64::MAX,
            alpha: 0.5,
            recompare_margin: 0.15,
            unique_mapping: false,
            max_neighbors: 16,
        }
    }
}

/// Output of a resolution run.
#[derive(Debug)]
pub struct Resolution {
    /// Per-comparison trace in execution order.
    pub trace: Trace,
    /// Final clusters with ≥ 2 members (sorted, deterministic).
    pub clusters: Vec<Vec<u32>>,
    /// Accepted matches `(a, b, score)` in acceptance order.
    pub matches: Vec<(EntityId, EntityId, f64)>,
    /// Comparisons executed (= trace length).
    pub comparisons: u64,
    /// Candidates created by the update phase that blocking had missed.
    pub discovered_candidates: usize,
}

/// The resolver: dataset + matcher + configuration.
pub struct ProgressiveResolver<'d> {
    dataset: &'d Dataset,
    matcher: Matcher,
    config: ResolverConfig,
}

impl<'d> ProgressiveResolver<'d> {
    /// Creates a resolver. The matcher must have been built on the same
    /// dataset.
    pub fn new(dataset: &'d Dataset, matcher: Matcher, config: ResolverConfig) -> Self {
        assert!(config.alpha >= 0.0, "alpha must be non-negative");
        assert!(
            config.recompare_margin >= 0.0,
            "margin must be non-negative"
        );
        Self {
            dataset,
            matcher,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ResolverConfig {
        &self.config
    }

    /// Resolves the candidate pairs (meta-blocking output: `(a, b, weight)`).
    pub fn run(&self, pairs: &[(EntityId, EntityId, f64)]) -> Resolution {
        match self.config.strategy {
            Strategy::Progressive(model) => self.run_progressive(pairs, model),
            Strategy::Batch => self.run_fixed_order(pairs.to_vec()),
            Strategy::StaticBestFirst => {
                let mut sorted = pairs.to_vec();
                sorted.sort_by(|x, y| {
                    y.2.partial_cmp(&x.2)
                        .expect("finite weights")
                        .then_with(|| (x.0, x.1).cmp(&(y.0, y.1)))
                });
                self.run_fixed_order(sorted)
            }
            Strategy::Random { seed } => {
                let mut shuffled = pairs.to_vec();
                let mut rng = StdRng::seed_from_u64(seed);
                shuffled.shuffle(&mut rng);
                self.run_fixed_order(shuffled)
            }
        }
    }

    /// Fixed-order strategies: no scheduling, no update phase.
    fn run_fixed_order(&self, pairs: Vec<(EntityId, EntityId, f64)>) -> Resolution {
        let mut state = ResolutionState::new(self.dataset);
        let mut trace = Trace::new();
        let mut matches = Vec::new();
        let mut consumed: FxHashSet<(u32, u16)> = FxHashSet::default();
        let mut comparisons = 0u64;
        for (a, b, w) in pairs {
            if comparisons >= self.config.budget {
                break;
            }
            if state.same_cluster(a, b) || self.consumed(&consumed, a, b) {
                continue;
            }
            comparisons += 1;
            let value_sim = self.matcher.value_similarity(a, b);
            let matched = self.matcher.is_match(value_sim, value_sim);
            trace.push(TraceStep {
                comparison: comparisons,
                a: a.0,
                b: b.0,
                value_similarity: value_sim,
                score: value_sim,
                benefit: w,
                matched,
                discovered: false,
            });
            if matched {
                state.record_match(a, b);
                matches.push((a, b, value_sim));
                self.consume(&mut consumed, a, b);
            }
        }
        Resolution {
            clusters: state.final_clusters(2),
            trace,
            matches,
            comparisons,
            discovered_candidates: 0,
        }
    }

    /// The full progressive loop.
    fn run_progressive(
        &self,
        pairs: &[(EntityId, EntityId, f64)],
        model: BenefitModel,
    ) -> Resolution {
        let mut pool = CandidatePool::from_weighted_pairs(pairs);
        let mut state = ResolutionState::new(self.dataset);
        let mut scheduler = Scheduler::new();
        let mut consumed: FxHashSet<(u32, u16)> = FxHashSet::default();

        // Initial schedule.
        for id in pool.ids() {
            let benefit = model.score(&state, pool.get(id));
            scheduler.push(&pool, id, benefit);
        }

        let mut trace = Trace::new();
        let mut matches = Vec::new();
        let mut comparisons = 0u64;
        let mut discovered = 0usize;

        while comparisons < self.config.budget {
            // --- Schedule phase -------------------------------------------
            let popped = scheduler.pop_best(&pool, |id| {
                let c = pool.get(id);
                // A re-comparison is scheduled only when evidence grew AND
                // the cached value similarity says the decision could flip.
                let worth_recomparing = match c.last_value {
                    None => true,
                    Some(v) => {
                        pool.comparable(id, self.config.recompare_margin)
                            && self.matcher.could_rematch(v, c.evidence)
                    }
                };
                let eligible = worth_recomparing
                    && !state.same_cluster(c.a, c.b)
                    && !self.consumed(&consumed, c.a, c.b);
                if eligible {
                    model.score(&state, c)
                } else {
                    -1.0
                }
            });
            let Some((id, benefit)) = popped else { break };
            if benefit < 0.0 {
                continue; // ineligible entry drained without budget cost
            }
            let (a, b, evidence, was_discovered) = {
                let c = pool.get(id);
                (c.a, c.b, c.evidence, c.prior == 0.0)
            };

            // --- Match phase ----------------------------------------------
            comparisons += 1;
            let value_sim = self.matcher.value_similarity(a, b);
            pool.mark_compared(id, value_sim);
            let score = self.matcher.composite(value_sim, evidence);
            let matched = self.matcher.is_match(value_sim, score);
            trace.push(TraceStep {
                comparison: comparisons,
                a: a.0,
                b: b.0,
                value_similarity: value_sim,
                score,
                benefit,
                matched,
                discovered: was_discovered,
            });

            // --- Update phase ---------------------------------------------
            if matched {
                state.record_match(a, b);
                matches.push((a, b, score));
                self.consume(&mut consumed, a, b);
                if self.config.alpha > 0.0 {
                    discovered +=
                        self.propagate(a, b, score, &mut pool, &mut scheduler, &state, model);
                }
            }
        }

        Resolution {
            clusters: state.final_clusters(2),
            trace,
            matches,
            comparisons,
            discovered_candidates: discovered,
        }
    }

    /// Propagates a match `(a, b, score)` to the cross product of their
    /// neighbourhoods; returns the number of newly *discovered* candidates.
    #[allow(clippy::too_many_arguments)]
    fn propagate(
        &self,
        a: EntityId,
        b: EntityId,
        score: f64,
        pool: &mut CandidatePool,
        scheduler: &mut Scheduler,
        state: &ResolutionState<'_>,
        model: BenefitModel,
    ) -> usize {
        let cap = self.config.max_neighbors;
        let mut discovered = 0usize;
        let na = self.dataset.neighbors(a);
        let nb = self.dataset.neighbors(b);
        // Hub damping: one matched pair among *large* neighbourhoods is
        // weak evidence for any single neighbour pair — scale by the
        // geometric mean of the neighbourhood sizes, but leave small
        // neighbourhoods (≤ 2×2, where alignment is near-certain) undamped.
        let damp = (((na.len().min(cap) * nb.len().min(cap)) as f64).sqrt() / 2.0).max(1.0);
        let delta = self.config.alpha * score / damp;
        // Deltas too small to ever flip a decision are not worth creating
        // candidates for (they would flood the scheduler).
        const MIN_DISCOVERY_DELTA: f64 = 0.05;
        for &x in na.iter().take(cap) {
            for &y in nb.iter().take(cap) {
                if x == y || state.same_cluster(x, y) {
                    continue;
                }
                // Respect the ER mode: in clean KBs an intra-KB pair can
                // never be a match.
                if self.dataset.kb_of(x) == self.dataset.kb_of(y)
                    && self.dataset.kb_of(a) != self.dataset.kb_of(b)
                {
                    continue;
                }
                let existed = pool.get_by_pair(x, y).is_some();
                if !existed && delta < MIN_DISCOVERY_DELTA {
                    continue;
                }
                let id = pool.add_evidence(x, y, delta);
                if !existed {
                    discovered += 1;
                }
                let benefit = model.score(state, pool.get(id));
                scheduler.push(pool, id, benefit);
            }
        }
        discovered
    }

    fn consumed(&self, consumed: &FxHashSet<(u32, u16)>, a: EntityId, b: EntityId) -> bool {
        if !self.config.unique_mapping {
            return false;
        }
        consumed.contains(&(a.0, self.dataset.kb_of(b).0))
            || consumed.contains(&(b.0, self.dataset.kb_of(a).0))
    }

    fn consume(&self, consumed: &mut FxHashSet<(u32, u16)>, a: EntityId, b: EntityId) {
        if self.config.unique_mapping {
            consumed.insert((a.0, self.dataset.kb_of(b).0));
            consumed.insert((b.0, self.dataset.kb_of(a).0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::MatcherConfig;
    use minoan_blocking::{builders, ErMode};
    use minoan_datagen::{generate, profiles, GeneratedWorld};
    use minoan_metablocking::{prune, BlockingGraph, WeightingScheme};

    fn candidates(g: &GeneratedWorld, mode: ErMode) -> Vec<(EntityId, EntityId, f64)> {
        let blocks = builders::token_blocking(&g.dataset, mode);
        let cleaned = minoan_blocking::filter::clean(&blocks);
        let graph = BlockingGraph::build(&cleaned);
        prune::wnp(&graph, WeightingScheme::Arcs, false)
            .pairs
            .into_iter()
            .map(|p| (p.a, p.b, p.weight))
            .collect()
    }

    fn resolver<'a>(g: &'a GeneratedWorld, config: ResolverConfig) -> ProgressiveResolver<'a> {
        let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
        ProgressiveResolver::new(&g.dataset, matcher, config)
    }

    fn truth_quality(g: &GeneratedWorld, res: &Resolution) -> (f64, f64) {
        let tp = res
            .matches
            .iter()
            .filter(|(a, b, _)| g.truth.is_match(*a, *b))
            .count() as f64;
        let precision = if res.matches.is_empty() {
            0.0
        } else {
            tp / res.matches.len() as f64
        };
        let recall = tp / g.truth.matching_pairs() as f64;
        (precision, recall)
    }

    #[test]
    fn progressive_resolves_center_data_well() {
        let g = generate(&profiles::center_dense(200, 31));
        let pairs = candidates(&g, ErMode::CleanClean);
        let res = resolver(&g, ResolverConfig::default()).run(&pairs);
        let (precision, recall) = truth_quality(&g, &res);
        assert!(precision > 0.9, "precision {precision}");
        assert!(recall > 0.75, "recall {recall}");
        assert!(!res.clusters.is_empty());
    }

    #[test]
    fn budget_is_respected_exactly() {
        let g = generate(&profiles::center_dense(150, 7));
        let pairs = candidates(&g, ErMode::CleanClean);
        for budget in [0u64, 10, 100] {
            let res = resolver(
                &g,
                ResolverConfig {
                    budget,
                    ..Default::default()
                },
            )
            .run(&pairs);
            assert!(res.comparisons <= budget);
            assert_eq!(res.trace.comparisons(), res.comparisons);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let g = generate(&profiles::center_periphery(120, 3));
        let pairs = candidates(&g, ErMode::CleanClean);
        let r1 = resolver(&g, ResolverConfig::default()).run(&pairs);
        let r2 = resolver(&g, ResolverConfig::default()).run(&pairs);
        assert_eq!(r1.comparisons, r2.comparisons);
        assert_eq!(r1.matches.len(), r2.matches.len());
        for (s1, s2) in r1.trace.steps().iter().zip(r2.trace.steps()) {
            assert_eq!((s1.a, s1.b, s1.matched), (s2.a, s2.b, s2.matched));
        }
    }

    #[test]
    fn progressive_beats_random_early() {
        let g = generate(&profiles::center_dense(200, 17));
        let pairs = candidates(&g, ErMode::CleanClean);
        let budget = (pairs.len() / 5) as u64; // 20% of the work
        let prog = resolver(
            &g,
            ResolverConfig {
                budget,
                ..Default::default()
            },
        )
        .run(&pairs);
        let rand = resolver(
            &g,
            ResolverConfig {
                budget,
                strategy: Strategy::Random { seed: 5 },
                ..Default::default()
            },
        )
        .run(&pairs);
        assert!(
            prog.matches.len() > rand.matches.len(),
            "progressive {} must beat random {} at 20% budget",
            prog.matches.len(),
            rand.matches.len()
        );
    }

    #[test]
    fn propagation_recovers_periphery_matches() {
        let g = generate(&profiles::periphery_sparse(250, 23));
        let pairs = candidates(&g, ErMode::CleanClean);
        let base = ResolverConfig {
            strategy: Strategy::Progressive(BenefitModel::PairQuantity),
            ..Default::default()
        };
        let without = resolver(
            &g,
            ResolverConfig {
                alpha: 0.0,
                ..base.clone()
            },
        )
        .run(&pairs);
        let with = resolver(&g, ResolverConfig { alpha: 0.6, ..base }).run(&pairs);
        let (_, recall_without) = truth_quality(&g, &without);
        let (prec_with, recall_with) = truth_quality(&g, &with);
        assert!(
            recall_with > recall_without,
            "update phase must add recall on periphery data: {recall_with} vs {recall_without}"
        );
        assert!(
            prec_with > 0.6,
            "propagation precision collapsed: {prec_with}"
        );
        assert!(
            with.discovered_candidates > 0,
            "no pairs discovered by propagation"
        );
    }

    #[test]
    fn unique_mapping_limits_matches_per_entity() {
        let g = generate(&profiles::center_dense(120, 9));
        let pairs = candidates(&g, ErMode::CleanClean);
        let res = resolver(
            &g,
            ResolverConfig {
                unique_mapping: true,
                ..Default::default()
            },
        )
        .run(&pairs);
        let mut seen: std::collections::HashSet<(u32, u16)> = std::collections::HashSet::new();
        for (a, b, _) in &res.matches {
            assert!(
                seen.insert((a.0, g.dataset.kb_of(*b).0)),
                "{a:?} matched twice into same KB"
            );
            assert!(
                seen.insert((b.0, g.dataset.kb_of(*a).0)),
                "{b:?} matched twice into same KB"
            );
        }
    }

    #[test]
    fn static_best_first_orders_by_prior() {
        let g = generate(&profiles::center_dense(100, 11));
        let pairs = candidates(&g, ErMode::CleanClean);
        let res = resolver(
            &g,
            ResolverConfig {
                strategy: Strategy::StaticBestFirst,
                ..Default::default()
            },
        )
        .run(&pairs);
        let benefits: Vec<f64> = res.trace.steps().iter().map(|s| s.benefit).collect();
        assert!(
            benefits.windows(2).all(|w| w[0] >= w[1] - 1e-9),
            "not descending"
        );
    }

    #[test]
    fn batch_visits_input_order() {
        let g = generate(&profiles::center_dense(80, 13));
        let pairs = candidates(&g, ErMode::CleanClean);
        let res = resolver(
            &g,
            ResolverConfig {
                strategy: Strategy::Batch,
                budget: 10,
                ..Default::default()
            },
        )
        .run(&pairs);
        for (step, (a, b, _)) in res.trace.steps().iter().zip(pairs.iter()) {
            assert_eq!((step.a, step.b), (a.0, b.0));
        }
    }

    #[test]
    fn all_benefit_models_run() {
        let g = generate(&profiles::lod_cloud(80, 19));
        let pairs = candidates(&g, ErMode::CleanClean);
        for model in BenefitModel::ALL {
            let res = resolver(
                &g,
                ResolverConfig {
                    strategy: Strategy::Progressive(model),
                    ..Default::default()
                },
            )
            .run(&pairs);
            let (precision, _) = truth_quality(&g, &res);
            assert!(precision > 0.5, "{model:?} precision too low: {precision}");
        }
    }

    #[test]
    fn empty_candidates_yield_empty_resolution() {
        let g = generate(&profiles::center_dense(50, 2));
        let res = resolver(&g, ResolverConfig::default()).run(&[]);
        assert_eq!(res.comparisons, 0);
        assert!(res.matches.is_empty());
        assert!(res.clusters.is_empty());
    }

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::Batch.name(), "batch");
        assert_eq!(
            Strategy::Progressive(BenefitModel::EntityCoverage).name(),
            "progressive/entity-coverage"
        );
    }
}
