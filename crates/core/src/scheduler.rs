//! The scheduling phase: a lazy max-priority queue over candidates.
//!
//! Benefits change as resolution progresses (entity coverage drops once an
//! endpoint is resolved; relationship completeness rises as neighbours
//! match), so stored priorities go stale. The scheduler handles this
//! lazily:
//!
//! * every benefit-raising event pushes a *fresh* entry carrying the
//!   candidate's current epoch — stale epochs are discarded on pop;
//! * on pop, the current benefit is recomputed; if it still beats the next
//!   entry it is returned, otherwise the entry is re-queued at its true
//!   priority. Priorities only need to be correct at pop time.

use crate::candidates::{CandidateId, CandidatePool};
use minoan_common::OrdF64;
use std::collections::BinaryHeap;

#[derive(PartialEq, Eq)]
struct Entry {
    priority: OrdF64,
    /// Tie-break: lower candidate id first (deterministic schedules).
    id: std::cmp::Reverse<u32>,
    epoch: u32,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Lazy max-heap scheduler.
#[derive(Default)]
pub struct Scheduler {
    heap: BinaryHeap<Entry>,
}

/// Slack under which a re-scored entry is accepted without re-queueing.
const EPS: f64 = 1e-9;

impl Scheduler {
    /// Empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current number of queued entries (including stale ones).
    pub fn queued(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Queues `id` at `priority` with the candidate's current epoch.
    pub fn push(&mut self, pool: &CandidatePool, id: CandidateId, priority: f64) {
        self.heap.push(Entry {
            priority: OrdF64(priority),
            id: std::cmp::Reverse(id.0),
            epoch: pool.get(id).epoch,
        });
    }

    /// Pops the candidate with the highest *current* priority.
    ///
    /// `rescore` must return the candidate's up-to-date priority; it is
    /// invoked on every considered entry, so it should be cheap. Returns
    /// `None` when no valid entry remains.
    pub fn pop_best(
        &mut self,
        pool: &CandidatePool,
        mut rescore: impl FnMut(CandidateId) -> f64,
    ) -> Option<(CandidateId, f64)> {
        while let Some(entry) = self.heap.pop() {
            let id = CandidateId(entry.id.0);
            // Stale: a newer entry for this candidate exists (epoch bumped).
            if entry.epoch != pool.get(id).epoch {
                continue;
            }
            let current = rescore(id);
            let next_best = self.heap.peek().map(|e| e.priority.0).unwrap_or(f64::MIN);
            if current + EPS >= next_best {
                return Some((id, current));
            }
            // True priority dropped below the next entry: re-queue.
            self.heap.push(Entry {
                priority: OrdF64(current),
                id: entry.id,
                epoch: entry.epoch,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_rdf::EntityId;

    fn pool_with(n: u32) -> CandidatePool {
        let mut p = CandidatePool::new();
        for i in 0..n {
            p.insert(EntityId(i), EntityId(i + 100), 0.5);
        }
        p
    }

    #[test]
    fn pops_in_priority_order() {
        let pool = pool_with(3);
        let mut s = Scheduler::new();
        s.push(&pool, CandidateId(0), 0.3);
        s.push(&pool, CandidateId(1), 0.9);
        s.push(&pool, CandidateId(2), 0.6);
        let order: Vec<u32> = std::iter::from_fn(|| {
            s.pop_best(&pool, |id| match id.0 {
                0 => 0.3,
                1 => 0.9,
                _ => 0.6,
            })
            .map(|(id, _)| id.0)
        })
        .collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn stale_epochs_are_skipped() {
        let mut pool = pool_with(2);
        let mut s = Scheduler::new();
        s.push(&pool, CandidateId(0), 0.9);
        // Bump candidate 0's epoch (as the update phase would) and re-push.
        pool.add_evidence(EntityId(0), EntityId(100), 0.2);
        s.push(&pool, CandidateId(0), 0.95);
        s.push(&pool, CandidateId(1), 0.5);
        let (id, p) = s
            .pop_best(&pool, |id| if id.0 == 0 { 0.95 } else { 0.5 })
            .unwrap();
        assert_eq!(id.0, 0);
        assert!((p - 0.95).abs() < 1e-12);
        // The stale 0.9 entry must not deliver candidate 0 twice.
        let (id2, _) = s.pop_best(&pool, |_| 0.5).unwrap();
        assert_eq!(id2.0, 1);
        assert!(s.pop_best(&pool, |_| 0.0).is_none());
    }

    #[test]
    fn drifted_priorities_are_requeued() {
        let pool = pool_with(2);
        let mut s = Scheduler::new();
        s.push(&pool, CandidateId(0), 1.0); // stored high…
        s.push(&pool, CandidateId(1), 0.8);
        // …but its true priority collapsed to 0.1.
        let (first, p) = s
            .pop_best(&pool, |id| if id.0 == 0 { 0.1 } else { 0.8 })
            .unwrap();
        assert_eq!(first.0, 1, "candidate 1 must overtake");
        assert!((p - 0.8).abs() < 1e-12);
        let (second, p2) = s.pop_best(&pool, |_| 0.1).unwrap();
        assert_eq!(second.0, 0);
        assert!((p2 - 0.1).abs() < 1e-12);
    }

    #[test]
    fn deterministic_tie_break_by_id() {
        let pool = pool_with(3);
        let mut s = Scheduler::new();
        s.push(&pool, CandidateId(2), 0.5);
        s.push(&pool, CandidateId(0), 0.5);
        s.push(&pool, CandidateId(1), 0.5);
        let order: Vec<u32> =
            std::iter::from_fn(|| s.pop_best(&pool, |_| 0.5).map(|(i, _)| i.0)).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn empty_pop_returns_none() {
        let pool = pool_with(1);
        let mut s = Scheduler::new();
        assert!(s.pop_best(&pool, |_| 1.0).is_none());
        assert!(s.is_empty());
    }
}
