//! # MinoanER — progressive entity resolution in the Web of Data
//!
//! This crate is the paper's primary contribution: it extends the typical
//! ER workflow (blocking → meta-blocking → matching) with a **scheduling**
//! phase that picks which candidate comparisons run and in what order, a
//! **matching** phase that executes them, and an **update** phase that
//! propagates match results to *neighbour* (linked) descriptions —
//! discovering and promoting candidate pairs that blocking alone misses —
//! iterating until a computational **cost budget** is consumed.
//!
//! Unlike prior progressive relational ER (Altowim et al., PVLDB 2014),
//! which maximises the *quantity* of resolved pairs, the scheduler here can
//! target three data-quality **benefit models**:
//! [`BenefitModel::AttributeCompleteness`], [`BenefitModel::EntityCoverage`]
//! and [`BenefitModel::RelationshipCompleteness`]
//! (plus [`BenefitModel::PairQuantity`], the baseline).
//!
//! ## Modules
//!
//! * [`candidates`] — the candidate pool: prior weights from meta-blocking
//!   plus accumulated neighbour evidence.
//! * [`matcher`] — value similarity (IDF-weighted token overlap + string
//!   similarity on name attributes) and the composite score that folds in
//!   neighbour evidence.
//! * [`benefit`] — the four benefit models over the live resolution state.
//! * [`scheduler`] — the lazy priority queue driving the schedule phase.
//! * [`engine`] — the schedule → match → update loop under a budget.
//! * [`trace`] — the per-comparison resolution trace evaluation consumes.
//! * [`pipeline`] — the end-to-end MinoanER platform API (Figure 1 of the
//!   paper): dataset in, resolution out.
//!
//! ## Quickstart
//!
//! ```
//! use minoan_datagen::{generate, profiles};
//! use minoan_er::pipeline::{Pipeline, PipelineConfig};
//!
//! let g = generate(&profiles::center_dense(150, 1));
//! let out = Pipeline::new(PipelineConfig::default()).run(&g.dataset);
//! assert!(!out.resolution.matches.is_empty());
//! ```

#![forbid(unsafe_code)]

pub mod benefit;
pub mod candidates;
pub mod clustering;
pub mod engine;
pub mod incremental;
pub mod matcher;
pub mod oracle;
pub mod pipeline;
pub mod rules;
pub mod scheduler;
pub mod trace;

pub use benefit::BenefitModel;
pub use candidates::{CandidateId, CandidatePool};
pub use clustering::ClusteringAlgorithm;
pub use engine::{ProgressiveResolver, Resolution, ResolverConfig, Strategy};
pub use incremental::{ArrivalReport, IncrementalConfig, IncrementalResolver};
pub use matcher::{Matcher, MatcherConfig, ValueMeasure};
pub use oracle::{oracle_trace, perfect_trace, schedule_efficiency};
pub use pipeline::{Pipeline, PipelineConfig, PipelineOutput};
pub use rules::{CompositeConfig, CompositeResolution, CompositeResolver, Rule, RuleMatch};
pub use trace::{Trace, TraceStep};
