//! The candidate pool.
//!
//! A *candidate* is an ordered description pair `(a < b)` that the engine
//! may compare. Candidates enter the pool from meta-blocking (with a
//! *prior* weight normalised to `(0, 1]`) or are *discovered* by the update
//! phase when their neighbours match (prior 0, neighbour evidence > 0).

use minoan_common::FxHashMap;
use minoan_rdf::EntityId;

/// Dense candidate handle within a [`CandidatePool`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CandidateId(pub u32);

impl CandidateId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// State of one candidate pair.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Smaller endpoint.
    pub a: EntityId,
    /// Larger endpoint.
    pub b: EntityId,
    /// Normalised meta-blocking weight in `[0, 1]` (0 for discovered pairs).
    pub prior: f64,
    /// Accumulated neighbour evidence (unbounded; clamped when scored).
    pub evidence: f64,
    /// Evidence level at the time of the last comparison; `None` if never
    /// compared. A candidate is re-comparable once evidence grows past
    /// this by the engine's re-comparison margin.
    pub compared_at: Option<f64>,
    /// Value similarity measured at the last comparison (cached — the
    /// engine uses it to skip re-comparisons that cannot flip the
    /// decision).
    pub last_value: Option<f64>,
    /// Bumped whenever the candidate's priority inputs change; stale heap
    /// entries are detected by comparing epochs.
    pub epoch: u32,
}

impl Candidate {
    /// Match-likelihood prior combining meta-blocking weight and neighbour
    /// evidence, in `[0, 1]`.
    pub fn likelihood(&self) -> f64 {
        (self.prior + self.evidence).min(1.0)
    }
}

/// All candidates, addressable by id and by pair.
#[derive(Default, Debug)]
pub struct CandidatePool {
    candidates: Vec<Candidate>,
    by_pair: FxHashMap<(EntityId, EntityId), CandidateId>,
}

impl CandidatePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a pool from weighted pairs, normalising priors by the maximum
    /// weight (so the best blocking evidence maps to prior 1.0).
    pub fn from_weighted_pairs(pairs: &[(EntityId, EntityId, f64)]) -> Self {
        let max_w = pairs.iter().map(|p| p.2).fold(0.0f64, f64::max);
        let mut pool = Self::new();
        for &(a, b, w) in pairs {
            let prior = if max_w > 0.0 {
                (w / max_w).clamp(0.0, 1.0)
            } else {
                0.0
            };
            pool.insert(a, b, prior);
        }
        pool
    }

    /// Number of candidates (compared or not).
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Inserts a candidate with the given prior (normalising `a`,`b`
    /// order). If the pair exists, keeps the max prior. Returns its id.
    pub fn insert(&mut self, a: EntityId, b: EntityId, prior: f64) -> CandidateId {
        assert_ne!(a, b, "self-pair candidate");
        let key = (a.min(b), a.max(b));
        if let Some(&id) = self.by_pair.get(&key) {
            let c = &mut self.candidates[id.index()];
            if prior > c.prior {
                c.prior = prior;
                c.epoch += 1;
            }
            return id;
        }
        let id = CandidateId(self.candidates.len() as u32);
        self.candidates.push(Candidate {
            a: key.0,
            b: key.1,
            prior,
            evidence: 0.0,
            compared_at: None,
            last_value: None,
            epoch: 0,
        });
        self.by_pair.insert(key, id);
        id
    }

    /// Looks a candidate up by pair.
    pub fn get_by_pair(&self, a: EntityId, b: EntityId) -> Option<CandidateId> {
        self.by_pair.get(&(a.min(b), a.max(b))).copied()
    }

    /// Immutable candidate access.
    pub fn get(&self, id: CandidateId) -> &Candidate {
        &self.candidates[id.index()]
    }

    /// Adds neighbour evidence to a pair, creating the candidate if absent
    /// (a *discovered* pair). Bumps the epoch. Returns the id.
    pub fn add_evidence(&mut self, a: EntityId, b: EntityId, delta: f64) -> CandidateId {
        let id = match self.get_by_pair(a, b) {
            Some(id) => id,
            None => self.insert(a, b, 0.0),
        };
        let c = &mut self.candidates[id.index()];
        c.evidence += delta;
        c.epoch += 1;
        id
    }

    /// Records that the candidate was just compared at its current
    /// evidence level, caching the measured value similarity.
    pub fn mark_compared(&mut self, id: CandidateId, value_sim: f64) {
        let c = &mut self.candidates[id.index()];
        c.compared_at = Some(c.evidence);
        c.last_value = Some(value_sim);
    }

    /// Whether the candidate may be (re-)compared: never compared, or its
    /// evidence grew by more than `margin` since the last comparison.
    pub fn comparable(&self, id: CandidateId, margin: f64) -> bool {
        let c = &self.candidates[id.index()];
        match c.compared_at {
            None => true,
            Some(at) => c.evidence > at + margin,
        }
    }

    /// Iterates all candidate ids.
    pub fn ids(&self) -> impl Iterator<Item = CandidateId> {
        (0..self.candidates.len() as u32).map(CandidateId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn insert_normalises_pair_order() {
        let mut p = CandidatePool::new();
        let id1 = p.insert(e(5), e(2), 0.7);
        let id2 = p.insert(e(2), e(5), 0.3);
        assert_eq!(id1, id2);
        assert_eq!(p.len(), 1);
        let c = p.get(id1);
        assert_eq!((c.a, c.b), (e(2), e(5)));
        assert_eq!(c.prior, 0.7, "max prior wins");
    }

    #[test]
    fn from_weighted_pairs_normalises_to_unit() {
        let pairs = vec![(e(0), e(1), 2.0), (e(0), e(2), 4.0), (e(1), e(2), 1.0)];
        let p = CandidatePool::from_weighted_pairs(&pairs);
        let best = p.get_by_pair(e(0), e(2)).unwrap();
        assert_eq!(p.get(best).prior, 1.0);
        let worst = p.get_by_pair(e(1), e(2)).unwrap();
        assert_eq!(p.get(worst).prior, 0.25);
    }

    #[test]
    fn evidence_accumulates_and_discovers() {
        let mut p = CandidatePool::new();
        assert!(p.get_by_pair(e(1), e(9)).is_none());
        let id = p.add_evidence(e(9), e(1), 0.2);
        assert_eq!(p.get(id).prior, 0.0, "discovered pair has no prior");
        p.add_evidence(e(1), e(9), 0.3);
        let c = p.get(id);
        assert!((c.evidence - 0.5).abs() < 1e-12);
        assert_eq!(c.epoch, 2);
    }

    #[test]
    fn likelihood_is_clamped() {
        let mut p = CandidatePool::new();
        let id = p.insert(e(0), e(1), 0.9);
        p.add_evidence(e(0), e(1), 5.0);
        assert_eq!(p.get(id).likelihood(), 1.0);
    }

    #[test]
    fn recomparison_gate() {
        let mut p = CandidatePool::new();
        let id = p.insert(e(0), e(1), 0.5);
        assert!(p.comparable(id, 0.1));
        p.mark_compared(id, 0.33);
        assert!(!p.comparable(id, 0.1), "just compared");
        assert_eq!(p.get(id).last_value, Some(0.33));
        p.add_evidence(e(0), e(1), 0.05);
        assert!(!p.comparable(id, 0.1), "below margin");
        p.add_evidence(e(0), e(1), 0.1);
        assert!(p.comparable(id, 0.1), "evidence grew past margin");
    }

    #[test]
    #[should_panic(expected = "self-pair")]
    fn self_pair_rejected() {
        let mut p = CandidatePool::new();
        p.insert(e(3), e(3), 1.0);
    }
}
