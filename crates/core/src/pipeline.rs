//! The end-to-end MinoanER platform (Figure 1 of the paper).
//!
//! `Dataset → Blocking → Meta-blocking → Progressive matching → Resolution`
//! behind a single configurable entry point. Each stage is also available
//! separately (see the respective crates) — the pipeline just wires them
//! with sensible defaults.

use crate::engine::{ProgressiveResolver, Resolution, ResolverConfig};
use crate::matcher::{Matcher, MatcherConfig};
use minoan_blocking::{builders, filter, purge, BlockCollection, ErMode};
use minoan_mapreduce::Engine;
use minoan_metablocking::{
    parallel, prune, streaming, BlockingGraph, ExecutionBackend, StreamingOptions, WeightingScheme,
};
use minoan_rdf::{Dataset, EntityId};

/// Which blocking-key extractor to use.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BlockingMethod {
    /// Tokens of attribute values (and resource-URI infixes).
    Token,
    /// Tokens of the subject-URI infix only.
    UriInfix,
    /// Union of the two (the paper's "descriptions or URIs" criterion).
    TokenAndUri,
    /// Attribute-clustering blocking with the given link threshold.
    AttributeClustering {
        /// Minimum attribute-vocabulary Jaccard to link two attributes.
        link_threshold: f64,
    },
    /// Any blocker from the full method catalogue (q-grams, sorted
    /// neighborhood, MinHash-LSH, canopy, …).
    Custom(minoan_blocking::Method),
}

/// Which meta-blocking pruning algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PruningMethod {
    /// No pruning: all blocking-graph edges become candidates.
    None,
    /// Weighted edge pruning.
    Wep,
    /// Cardinality edge pruning (global top-k; `None` = literature default).
    Cep(Option<usize>),
    /// Weighted node pruning; `reciprocal` = intersection variant.
    Wnp {
        /// Both endpoints must retain the edge.
        reciprocal: bool,
    },
    /// Cardinality node pruning; per-node `k` (`None` = default).
    Cnp {
        /// Both endpoints must retain the edge.
        reciprocal: bool,
        /// Per-node cardinality override.
        k: Option<usize>,
    },
}

/// Full pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Dirty or clean–clean ER.
    pub mode: ErMode,
    /// Blocking-key extractor.
    pub blocking: BlockingMethod,
    /// Run comparison-based block purging.
    pub purge: bool,
    /// Run block filtering with this retain ratio (`None` disables).
    pub filter_ratio: Option<f64>,
    /// Meta-blocking edge weighting scheme.
    pub weighting: WeightingScheme,
    /// Meta-blocking pruning algorithm.
    pub pruning: PruningMethod,
    /// Meta-blocking execution backend. [`ExecutionBackend::Streaming`]
    /// runs *every* pruning method (edge-centric WEP/CEP included)
    /// without materialising the blocking graph;
    /// [`ExecutionBackend::Materialized`] builds the CSR graph first;
    /// [`ExecutionBackend::MapReduce`] runs the entity-partitioned
    /// MapReduce jobs on [`minoan_mapreduce`]. Output is bit-identical
    /// across all three.
    pub backend: ExecutionBackend,
    /// Worker threads for the streaming sweeps / MapReduce engine
    /// (`None` = all available parallelism). Results never depend on it.
    pub workers: Option<usize>,
    /// Matcher configuration.
    pub matcher: MatcherConfig,
    /// Progressive engine configuration.
    pub resolver: ResolverConfig,
}

impl Default for PipelineConfig {
    /// The defaults used throughout EXPERIMENTS.md: token+URI blocking,
    /// purge + filter(0.8), ARCS-weighted WNP, progressive pair-quantity.
    fn default() -> Self {
        Self {
            mode: ErMode::CleanClean,
            blocking: BlockingMethod::TokenAndUri,
            purge: true,
            filter_ratio: Some(filter::DEFAULT_RATIO),
            weighting: WeightingScheme::Arcs,
            pruning: PruningMethod::Wnp { reciprocal: false },
            backend: ExecutionBackend::Materialized,
            workers: None,
            matcher: MatcherConfig::default(),
            resolver: ResolverConfig::default(),
        }
    }
}

/// Stage-by-stage statistics plus the final resolution.
#[derive(Debug)]
pub struct PipelineOutput {
    /// (blocks, comparisons-with-repetition) straight out of blocking.
    pub blocks_raw: (usize, u64),
    /// Same after purging/filtering.
    pub blocks_clean: (usize, u64),
    /// Number of candidate pairs handed to the engine.
    pub candidates: usize,
    /// The progressive resolution result.
    pub resolution: Resolution,
}

/// The MinoanER pipeline.
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline with `config`.
    pub fn new(config: PipelineConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs blocking only (exposed for experiments).
    pub fn block(&self, dataset: &Dataset) -> BlockCollection {
        match self.config.blocking {
            BlockingMethod::Token => builders::token_blocking(dataset, self.config.mode),
            BlockingMethod::UriInfix => builders::uri_infix_blocking(dataset, self.config.mode),
            BlockingMethod::TokenAndUri => {
                builders::token_and_uri_blocking(dataset, self.config.mode)
            }
            BlockingMethod::Custom(method) => method.run(dataset, self.config.mode),
            BlockingMethod::AttributeClustering { link_threshold } => {
                builders::attribute_clustering_blocking(dataset, self.config.mode, link_threshold)
            }
        }
    }

    /// Runs block cleaning (purge + filter) per the configuration.
    pub fn clean_blocks(&self, blocks: BlockCollection) -> BlockCollection {
        let blocks = if self.config.purge {
            purge::purge(&blocks).collection
        } else {
            blocks
        };
        match self.config.filter_ratio {
            Some(r) => filter::filter_with(&blocks, r),
            None => blocks,
        }
    }

    /// Runs meta-blocking, returning weighted candidates.
    ///
    /// Every backend drives every [`PruningMethod`] natively — there is
    /// deliberately no fall-through to [`BlockingGraph::build`] from the
    /// streaming or MapReduce arms, and the three backends produce
    /// bit-identical candidates.
    pub fn meta_block(&self, blocks: &BlockCollection) -> Vec<(EntityId, EntityId, f64)> {
        let scheme = self.config.weighting;
        let pruned = match self.config.backend {
            ExecutionBackend::Streaming => {
                let opts = match self.config.workers {
                    Some(w) => StreamingOptions::with_threads(w),
                    None => StreamingOptions::default(),
                };
                match self.config.pruning {
                    PruningMethod::None => {
                        return streaming::weighted_edges_with(blocks, scheme, &opts)
                            .into_iter()
                            .map(|p| (p.a, p.b, p.weight))
                            .collect();
                    }
                    PruningMethod::Wep => streaming::wep_with(blocks, scheme, &opts),
                    PruningMethod::Cep(k) => streaming::cep_with(blocks, scheme, k, &opts),
                    PruningMethod::Wnp { reciprocal } => {
                        streaming::wnp_with(blocks, scheme, reciprocal, &opts)
                    }
                    PruningMethod::Cnp { reciprocal, k } => {
                        streaming::cnp_with(blocks, scheme, reciprocal, k, &opts)
                    }
                }
            }
            ExecutionBackend::MapReduce => {
                let engine = match self.config.workers {
                    Some(w) => Engine::new(w),
                    None => Engine::default(),
                };
                match self.config.pruning {
                    PruningMethod::None => {
                        return parallel::weighted_edges(blocks, scheme, &engine)
                            .into_iter()
                            .map(|p| (p.a, p.b, p.weight))
                            .collect();
                    }
                    PruningMethod::Wep => parallel::wep(blocks, scheme, &engine),
                    PruningMethod::Cep(k) => parallel::cep(blocks, scheme, k, &engine),
                    PruningMethod::Wnp { reciprocal } => {
                        parallel::wnp(blocks, scheme, reciprocal, &engine)
                    }
                    PruningMethod::Cnp { reciprocal, k } => {
                        parallel::cnp(blocks, scheme, reciprocal, k, &engine)
                    }
                }
            }
            ExecutionBackend::Materialized => {
                let graph = BlockingGraph::build(blocks);
                match self.config.pruning {
                    PruningMethod::None => {
                        return graph
                            .edges()
                            .iter()
                            .map(|e| (e.a, e.b, scheme.weight(&graph, e)))
                            .collect();
                    }
                    PruningMethod::Wep => prune::wep(&graph, scheme),
                    PruningMethod::Cep(k) => prune::cep(&graph, scheme, k),
                    PruningMethod::Wnp { reciprocal } => prune::wnp(&graph, scheme, reciprocal),
                    PruningMethod::Cnp { reciprocal, k } => {
                        prune::cnp(&graph, scheme, reciprocal, k)
                    }
                }
            }
        };
        pruned
            .pairs
            .into_iter()
            .map(|p| (p.a, p.b, p.weight))
            .collect()
    }

    /// Runs the full pipeline on `dataset`.
    pub fn run(&self, dataset: &Dataset) -> PipelineOutput {
        let raw = self.block(dataset);
        let blocks_raw = (raw.len(), raw.total_comparisons());
        let clean = self.clean_blocks(raw);
        let blocks_clean = (clean.len(), clean.total_comparisons());
        let candidates = self.meta_block(&clean);
        let matcher = Matcher::new(dataset, self.config.matcher.clone());
        let resolver = ProgressiveResolver::new(dataset, matcher, self.config.resolver.clone());
        let resolution = resolver.run(&candidates);
        PipelineOutput {
            blocks_raw,
            blocks_clean,
            candidates: candidates.len(),
            resolution,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benefit::BenefitModel;
    use crate::engine::Strategy;
    use minoan_datagen::{generate, profiles};

    #[test]
    fn default_pipeline_end_to_end() {
        let g = generate(&profiles::center_dense(150, 41));
        let out = Pipeline::new(PipelineConfig::default()).run(&g.dataset);
        assert!(out.blocks_raw.0 > 0);
        assert!(
            out.blocks_clean.1 <= out.blocks_raw.1,
            "cleaning must not add comparisons"
        );
        assert!(out.candidates > 0);
        let tp = out
            .resolution
            .matches
            .iter()
            .filter(|(a, b, _)| g.truth.is_match(*a, *b))
            .count() as f64;
        let recall = tp / g.truth.matching_pairs() as f64;
        assert!(recall > 0.7, "pipeline recall {recall}");
    }

    #[test]
    fn every_blocking_method_works() {
        let g = generate(&profiles::center_dense(80, 1));
        for blocking in [
            BlockingMethod::Token,
            BlockingMethod::UriInfix,
            BlockingMethod::TokenAndUri,
            BlockingMethod::AttributeClustering {
                link_threshold: 0.2,
            },
        ] {
            let cfg = PipelineConfig {
                blocking,
                ..Default::default()
            };
            let out = Pipeline::new(cfg).run(&g.dataset);
            assert!(out.blocks_raw.0 > 0, "{blocking:?} produced no blocks");
        }
    }

    #[test]
    fn every_pruning_method_works() {
        let g = generate(&profiles::center_dense(80, 2));
        for pruning in [
            PruningMethod::None,
            PruningMethod::Wep,
            PruningMethod::Cep(None),
            PruningMethod::Wnp { reciprocal: true },
            PruningMethod::Cnp {
                reciprocal: false,
                k: None,
            },
        ] {
            let cfg = PipelineConfig {
                pruning,
                ..Default::default()
            };
            let out = Pipeline::new(cfg).run(&g.dataset);
            assert!(out.candidates > 0, "{pruning:?} produced no candidates");
        }
    }

    #[test]
    fn pruning_none_keeps_every_edge() {
        let g = generate(&profiles::center_dense(60, 3));
        let all = Pipeline::new(PipelineConfig {
            pruning: PruningMethod::None,
            ..Default::default()
        });
        let wep = Pipeline::new(PipelineConfig {
            pruning: PruningMethod::Wep,
            ..Default::default()
        });
        let blocks_a = all.clean_blocks(all.block(&g.dataset));
        let ca = all.meta_block(&blocks_a).len();
        let cw = wep.meta_block(&blocks_a).len();
        assert!(cw < ca, "WEP must prune ({cw} vs {ca})");
    }

    #[test]
    fn alternative_backends_match_materialised_backend() {
        let g = generate(&profiles::center_dense(120, 9));
        for pruning in [
            PruningMethod::None,
            PruningMethod::Wep,
            PruningMethod::Cep(None),
            PruningMethod::Wnp { reciprocal: false },
            PruningMethod::Cnp {
                reciprocal: true,
                k: None,
            },
        ] {
            let base = PipelineConfig {
                pruning,
                ..Default::default()
            };
            let m = Pipeline::new(base.clone()).run(&g.dataset);
            for backend in [ExecutionBackend::Streaming, ExecutionBackend::MapReduce] {
                let s = Pipeline::new(PipelineConfig {
                    backend,
                    ..base.clone()
                })
                .run(&g.dataset);
                assert_eq!(m.candidates, s.candidates, "{backend:?}/{pruning:?}");
                assert_eq!(
                    m.resolution.matches, s.resolution.matches,
                    "{backend:?}/{pruning:?}"
                );
                assert_eq!(
                    m.resolution.comparisons, s.resolution.comparisons,
                    "{backend:?}/{pruning:?}"
                );
            }
        }
    }

    #[test]
    fn candidate_lists_are_bitwise_equal_across_backends() {
        // Stronger than the end-to-end check above: the weighted
        // candidate list itself must agree pair-for-pair and bit-for-bit
        // for every backend × pruning method × weighting scheme combo.
        let g = generate(&profiles::center_dense(100, 17));
        for scheme in WeightingScheme::ALL {
            for pruning in [
                PruningMethod::None,
                PruningMethod::Wep,
                PruningMethod::Cep(Some(40)),
                PruningMethod::Wnp { reciprocal: true },
                PruningMethod::Cnp {
                    reciprocal: false,
                    k: Some(2),
                },
            ] {
                let base = PipelineConfig {
                    pruning,
                    weighting: scheme,
                    ..Default::default()
                };
                let mat = Pipeline::new(base.clone());
                let blocks = mat.clean_blocks(mat.block(&g.dataset));
                let m = mat.meta_block(&blocks);
                for backend in [ExecutionBackend::Streaming, ExecutionBackend::MapReduce] {
                    let s = Pipeline::new(PipelineConfig {
                        backend,
                        workers: Some(3),
                        ..base.clone()
                    })
                    .meta_block(&blocks);
                    assert_eq!(m.len(), s.len(), "{backend:?}/{scheme:?}/{pruning:?}");
                    for (x, y) in m.iter().zip(&s) {
                        assert_eq!((x.0, x.1), (y.0, y.1), "{backend:?}/{scheme:?}/{pruning:?}");
                        assert_eq!(
                            x.2.to_bits(),
                            y.2.to_bits(),
                            "{backend:?}/{scheme:?}/{pruning:?}: weight bits"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dirty_mode_pipeline() {
        let g = generate(&profiles::dirty_single(80, 4));
        let cfg = PipelineConfig {
            mode: ErMode::Dirty,
            resolver: ResolverConfig {
                strategy: Strategy::Progressive(BenefitModel::EntityCoverage),
                ..Default::default()
            },
            ..Default::default()
        };
        let out = Pipeline::new(cfg).run(&g.dataset);
        assert!(!out.resolution.matches.is_empty());
    }
}
