//! The end-to-end MinoanER platform (Figure 1 of the paper).
//!
//! `Dataset → Blocking → Meta-blocking → Progressive matching → Resolution`
//! behind a single configurable entry point. Each stage is also available
//! separately (see the respective crates) — the pipeline just wires them
//! with sensible defaults.

use crate::engine::{ProgressiveResolver, Resolution, ResolverConfig};
use crate::matcher::{Matcher, MatcherConfig};
use minoan_blocking::{builders, filter, purge, BlockCollection, ErMode};
use minoan_metablocking::{ExecutionBackend, Session, WeightingScheme};
use minoan_rdf::{Dataset, EntityId};

/// Which blocking-key extractor to use.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BlockingMethod {
    /// Tokens of attribute values (and resource-URI infixes).
    Token,
    /// Tokens of the subject-URI infix only.
    UriInfix,
    /// Union of the two (the paper's "descriptions or URIs" criterion).
    TokenAndUri,
    /// Attribute-clustering blocking with the given link threshold.
    AttributeClustering {
        /// Minimum attribute-vocabulary Jaccard to link two attributes.
        link_threshold: f64,
    },
    /// Any blocker from the full method catalogue (q-grams, sorted
    /// neighborhood, MinHash-LSH, canopy, …).
    Custom(minoan_blocking::Method),
}

/// Which meta-blocking pruning algorithm to run — re-exported from
/// [`minoan_metablocking::Pruning`], so the pipeline config speaks the
/// session's language directly (the historical variants are unchanged;
/// `Blast` and `Supervised` extend the catalogue).
pub use minoan_metablocking::Pruning as PruningMethod;

/// Full pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Dirty or clean–clean ER.
    pub mode: ErMode,
    /// Blocking-key extractor.
    pub blocking: BlockingMethod,
    /// Run comparison-based block purging.
    pub purge: bool,
    /// Run block filtering with this retain ratio (`None` disables).
    pub filter_ratio: Option<f64>,
    /// Meta-blocking edge weighting scheme.
    pub weighting: WeightingScheme,
    /// Meta-blocking pruning algorithm.
    pub pruning: PruningMethod,
    /// Meta-blocking execution backend. [`ExecutionBackend::Streaming`]
    /// runs *every* pruning method (edge-centric WEP/CEP included)
    /// without materialising the blocking graph;
    /// [`ExecutionBackend::Materialized`] builds the CSR graph first;
    /// [`ExecutionBackend::MapReduce`] runs the entity-partitioned
    /// MapReduce jobs on [`minoan_mapreduce`]. Output is bit-identical
    /// across all three.
    pub backend: ExecutionBackend,
    /// Worker threads for the streaming sweeps / MapReduce engine
    /// (`None` = all available parallelism). Results never depend on it.
    pub workers: Option<usize>,
    /// Matcher configuration.
    pub matcher: MatcherConfig,
    /// Progressive engine configuration.
    pub resolver: ResolverConfig,
}

impl Default for PipelineConfig {
    /// The defaults used throughout EXPERIMENTS.md: token+URI blocking,
    /// purge + filter(0.8), ARCS-weighted WNP, progressive pair-quantity.
    fn default() -> Self {
        Self {
            mode: ErMode::CleanClean,
            blocking: BlockingMethod::TokenAndUri,
            purge: true,
            filter_ratio: Some(filter::DEFAULT_RATIO),
            weighting: WeightingScheme::Arcs,
            pruning: PruningMethod::Wnp { reciprocal: false },
            backend: ExecutionBackend::Materialized,
            workers: None,
            matcher: MatcherConfig::default(),
            resolver: ResolverConfig::default(),
        }
    }
}

/// Stage-by-stage statistics plus the final resolution.
#[derive(Debug)]
pub struct PipelineOutput {
    /// (blocks, comparisons-with-repetition) straight out of blocking.
    pub blocks_raw: (usize, u64),
    /// Same after purging/filtering.
    pub blocks_clean: (usize, u64),
    /// Number of candidate pairs handed to the engine.
    pub candidates: usize,
    /// The progressive resolution result.
    pub resolution: Resolution,
}

/// The MinoanER pipeline.
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline with `config`.
    pub fn new(config: PipelineConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs blocking only (exposed for experiments).
    pub fn block(&self, dataset: &Dataset) -> BlockCollection {
        match self.config.blocking {
            BlockingMethod::Token => builders::token_blocking(dataset, self.config.mode),
            BlockingMethod::UriInfix => builders::uri_infix_blocking(dataset, self.config.mode),
            BlockingMethod::TokenAndUri => {
                builders::token_and_uri_blocking(dataset, self.config.mode)
            }
            BlockingMethod::Custom(method) => method.run(dataset, self.config.mode),
            BlockingMethod::AttributeClustering { link_threshold } => {
                builders::attribute_clustering_blocking(dataset, self.config.mode, link_threshold)
            }
        }
    }

    /// Runs block cleaning (purge + filter) per the configuration. The
    /// `workers` knob bounds the successor slab builds like it bounds the
    /// meta-blocking sweeps; results never depend on it.
    pub fn clean_blocks(&self, blocks: BlockCollection) -> BlockCollection {
        let threads = self
            .config
            .workers
            .unwrap_or_else(minoan_common::default_threads);
        let blocks = if self.config.purge {
            purge::purge_with_threads(&blocks, purge::DEFAULT_SMOOTHING, threads).collection
        } else {
            blocks
        };
        match self.config.filter_ratio {
            Some(r) => filter::filter_with_threads(&blocks, r, threads),
            None => blocks,
        }
    }

    /// Opens a configured [`Session`] over `blocks` — the meta-blocking
    /// entry point everything in the pipeline (and the experiment
    /// harnesses) goes through. Callers that sweep several schemes or
    /// pruning families should hold on to the session so its shared
    /// state (CSR graph, sweep scratch) is built once.
    pub fn meta_block_session<'b>(&self, blocks: &'b BlockCollection) -> Session<'b> {
        let mut session = Session::new(blocks);
        session
            .scheme(self.config.weighting)
            .pruning(self.config.pruning)
            .backend(self.config.backend);
        if let Some(w) = self.config.workers {
            session.workers(w);
        }
        session
    }

    /// Runs meta-blocking, returning weighted candidates.
    ///
    /// Every backend drives every [`PruningMethod`] natively through the
    /// [`Session`] — there is deliberately no fall-through to the
    /// materialised graph from the streaming or MapReduce arms, and the
    /// three backends produce bit-identical candidates.
    pub fn meta_block(&self, blocks: &BlockCollection) -> Vec<(EntityId, EntityId, f64)> {
        self.meta_block_session(blocks).run().into_candidates()
    }

    /// Runs the full pipeline on `dataset`.
    pub fn run(&self, dataset: &Dataset) -> PipelineOutput {
        let raw = self.block(dataset);
        let blocks_raw = (raw.len(), raw.total_comparisons());
        let clean = self.clean_blocks(raw);
        let blocks_clean = (clean.len(), clean.total_comparisons());
        let candidates = self.meta_block(&clean);
        let matcher = Matcher::new(dataset, self.config.matcher.clone());
        let resolver = ProgressiveResolver::new(dataset, matcher, self.config.resolver.clone());
        let resolution = resolver.run(&candidates);
        PipelineOutput {
            blocks_raw,
            blocks_clean,
            candidates: candidates.len(),
            resolution,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benefit::BenefitModel;
    use crate::engine::Strategy;
    use minoan_datagen::{generate, profiles};

    #[test]
    fn default_pipeline_end_to_end() {
        let g = generate(&profiles::center_dense(150, 41));
        let out = Pipeline::new(PipelineConfig::default()).run(&g.dataset);
        assert!(out.blocks_raw.0 > 0);
        assert!(
            out.blocks_clean.1 <= out.blocks_raw.1,
            "cleaning must not add comparisons"
        );
        assert!(out.candidates > 0);
        let tp = out
            .resolution
            .matches
            .iter()
            .filter(|(a, b, _)| g.truth.is_match(*a, *b))
            .count() as f64;
        let recall = tp / g.truth.matching_pairs() as f64;
        assert!(recall > 0.7, "pipeline recall {recall}");
    }

    #[test]
    fn every_blocking_method_works() {
        let g = generate(&profiles::center_dense(80, 1));
        for blocking in [
            BlockingMethod::Token,
            BlockingMethod::UriInfix,
            BlockingMethod::TokenAndUri,
            BlockingMethod::AttributeClustering {
                link_threshold: 0.2,
            },
        ] {
            let cfg = PipelineConfig {
                blocking,
                ..Default::default()
            };
            let out = Pipeline::new(cfg).run(&g.dataset);
            assert!(out.blocks_raw.0 > 0, "{blocking:?} produced no blocks");
        }
    }

    #[test]
    fn every_pruning_method_works() {
        let g = generate(&profiles::center_dense(80, 2));
        for pruning in [
            PruningMethod::None,
            PruningMethod::Wep,
            PruningMethod::Cep(None),
            PruningMethod::Wnp { reciprocal: true },
            PruningMethod::Cnp {
                reciprocal: false,
                k: None,
            },
            PruningMethod::blast(),
        ] {
            let cfg = PipelineConfig {
                pruning,
                ..Default::default()
            };
            let out = Pipeline::new(cfg).run(&g.dataset);
            assert!(out.candidates > 0, "{pruning:?} produced no candidates");
        }
    }

    #[test]
    fn pruning_none_keeps_every_edge() {
        let g = generate(&profiles::center_dense(60, 3));
        let all = Pipeline::new(PipelineConfig {
            pruning: PruningMethod::None,
            ..Default::default()
        });
        let wep = Pipeline::new(PipelineConfig {
            pruning: PruningMethod::Wep,
            ..Default::default()
        });
        let blocks_a = all.clean_blocks(all.block(&g.dataset));
        let ca = all.meta_block(&blocks_a).len();
        let cw = wep.meta_block(&blocks_a).len();
        assert!(cw < ca, "WEP must prune ({cw} vs {ca})");
    }

    #[test]
    fn alternative_backends_match_materialised_backend() {
        let g = generate(&profiles::center_dense(120, 9));
        for pruning in [
            PruningMethod::None,
            PruningMethod::Wep,
            PruningMethod::Cep(None),
            PruningMethod::Wnp { reciprocal: false },
            PruningMethod::Cnp {
                reciprocal: true,
                k: None,
            },
        ] {
            let base = PipelineConfig {
                pruning,
                ..Default::default()
            };
            let m = Pipeline::new(base.clone()).run(&g.dataset);
            for backend in [ExecutionBackend::Streaming, ExecutionBackend::MapReduce] {
                let s = Pipeline::new(PipelineConfig {
                    backend,
                    ..base.clone()
                })
                .run(&g.dataset);
                assert_eq!(m.candidates, s.candidates, "{backend:?}/{pruning:?}");
                assert_eq!(
                    m.resolution.matches, s.resolution.matches,
                    "{backend:?}/{pruning:?}"
                );
                assert_eq!(
                    m.resolution.comparisons, s.resolution.comparisons,
                    "{backend:?}/{pruning:?}"
                );
            }
        }
    }

    #[test]
    fn candidate_lists_are_bitwise_equal_across_backends() {
        // Stronger than the end-to-end check above: the weighted
        // candidate list itself must agree pair-for-pair and bit-for-bit
        // for every backend × pruning method × weighting scheme combo.
        let g = generate(&profiles::center_dense(100, 17));
        for scheme in WeightingScheme::ALL {
            for pruning in [
                PruningMethod::None,
                PruningMethod::Wep,
                PruningMethod::Cep(Some(40)),
                PruningMethod::Wnp { reciprocal: true },
                PruningMethod::Cnp {
                    reciprocal: false,
                    k: Some(2),
                },
                PruningMethod::blast(),
            ] {
                let base = PipelineConfig {
                    pruning,
                    weighting: scheme,
                    ..Default::default()
                };
                let mat = Pipeline::new(base.clone());
                let blocks = mat.clean_blocks(mat.block(&g.dataset));
                let m = mat.meta_block(&blocks);
                for backend in [ExecutionBackend::Streaming, ExecutionBackend::MapReduce] {
                    let s = Pipeline::new(PipelineConfig {
                        backend,
                        workers: Some(3),
                        ..base.clone()
                    })
                    .meta_block(&blocks);
                    assert_eq!(m.len(), s.len(), "{backend:?}/{scheme:?}/{pruning:?}");
                    for (x, y) in m.iter().zip(&s) {
                        assert_eq!((x.0, x.1), (y.0, y.1), "{backend:?}/{scheme:?}/{pruning:?}");
                        assert_eq!(
                            x.2.to_bits(),
                            y.2.to_bits(),
                            "{backend:?}/{scheme:?}/{pruning:?}: weight bits"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn supervised_pruning_runs_through_the_pipeline_on_every_backend() {
        use minoan_metablocking::{BlockingGraph, FeatureExtractor, Perceptron, TrainingSet};
        let g = generate(&profiles::center_dense(100, 21));
        let base = Pipeline::new(PipelineConfig::default());
        let blocks = base.clean_blocks(base.block(&g.dataset));
        let graph = BlockingGraph::build(&blocks);
        let extractor = FeatureExtractor::fit(&graph);
        let set = TrainingSet::sample(&graph, &extractor, |a, b| g.truth.is_match(a, b), 40, 11);
        let model = Perceptron::train(&set, 12);
        let cfg = |backend| PipelineConfig {
            pruning: PruningMethod::Supervised(model),
            backend,
            workers: Some(3),
            ..Default::default()
        };
        let m = Pipeline::new(cfg(ExecutionBackend::Materialized)).meta_block(&blocks);
        assert!(!m.is_empty(), "supervised pruning kept nothing");
        for backend in [ExecutionBackend::Streaming, ExecutionBackend::MapReduce] {
            let s = Pipeline::new(cfg(backend)).meta_block(&blocks);
            assert_eq!(m.len(), s.len(), "{backend:?}");
            for (x, y) in m.iter().zip(&s) {
                assert_eq!((x.0, x.1), (y.0, y.1), "{backend:?}");
                assert_eq!(x.2.to_bits(), y.2.to_bits(), "{backend:?}: weight bits");
            }
        }
    }

    #[test]
    fn dirty_mode_pipeline() {
        let g = generate(&profiles::dirty_single(80, 4));
        let cfg = PipelineConfig {
            mode: ErMode::Dirty,
            resolver: ResolverConfig {
                strategy: Strategy::Progressive(BenefitModel::EntityCoverage),
                ..Default::default()
            },
            ..Default::default()
        };
        let out = Pipeline::new(cfg).run(&g.dataset);
        assert!(!out.resolution.matches.is_empty());
    }
}
