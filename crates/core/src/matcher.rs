//! The matching phase: value similarity of two descriptions.
//!
//! Schema-agnostic value similarity is the primary signal: IDF-weighted
//! token overlap over all blocking tokens of the two descriptions. Where
//! name-like attributes exist, a Jaro–Winkler component on their values is
//! blended in. The engine further combines this *value* similarity with
//! accumulated *neighbour* evidence (see [`Matcher::composite`]) — the
//! paper's "similarity evidence of entity neighbors".

use minoan_common::Interner;
use minoan_rdf::{Dataset, EntityId};
use minoan_similarity::{jaro_winkler, token, TfIdfWeights};

/// Token-level similarity measure used on value tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValueMeasure {
    /// Plain Jaccard over distinct tokens.
    Jaccard,
    /// IDF-weighted Jaccard (default — rare shared tokens dominate).
    WeightedJaccard,
    /// TF-IDF cosine.
    TfIdfCosine,
}

/// Matcher configuration.
#[derive(Clone, Debug)]
pub struct MatcherConfig {
    /// Token measure.
    pub measure: ValueMeasure,
    /// Weight of the name-string component (0 disables it). The token
    /// component gets `1 − name_weight` when names are present.
    pub name_weight: f64,
    /// Similarity threshold at or above which a pair is declared a match.
    pub threshold: f64,
    /// Weight of neighbour evidence in the composite score (`β`); the value
    /// similarity gets `1 − β` when evidence is present.
    pub evidence_weight: f64,
    /// Minimum *value* similarity any match must have, regardless of
    /// neighbour evidence — evidence corroborates weak token overlap, it
    /// never substitutes for zero overlap.
    pub value_floor: f64,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        Self {
            measure: ValueMeasure::TfIdfCosine,
            name_weight: 0.25,
            threshold: 0.4,
            evidence_weight: 0.3,
            value_floor: 0.3,
        }
    }
}

/// Precomputed matcher over a dataset.
///
/// Construction tokenises every description once, interns tokens and
/// builds corpus IDF statistics; [`Matcher::value_similarity`] is then a
/// linear merge over two small sorted vectors.
pub struct Matcher {
    config: MatcherConfig,
    /// Sorted, deduplicated token-id vector per entity.
    tokens: Vec<Box<[u32]>>,
    /// First name-like literal per entity (for the string component).
    names: Vec<Option<Box<str>>>,
    idf: TfIdfWeights,
}

impl Matcher {
    /// Builds the matcher for `dataset` under `config`.
    pub fn new(dataset: &Dataset, config: MatcherConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.name_weight)
                && (0.0..=1.0).contains(&config.evidence_weight)
                && (0.0..=1.0).contains(&config.threshold)
                && (0.0..=1.0).contains(&config.value_floor),
            "matcher weights must be in [0,1]"
        );
        let mut interner = Interner::with_capacity(dataset.len() * 4);
        let mut tokens: Vec<Box<[u32]>> = Vec::with_capacity(dataset.len());
        let mut names: Vec<Option<Box<str>>> = Vec::with_capacity(dataset.len());
        for e in dataset.entities() {
            let toks: Vec<u32> = dataset
                .blocking_tokens(e)
                .into_iter()
                .map(|t| interner.intern(&t).0)
                .collect();
            tokens.push(token::prepare(toks).into_boxed_slice());
            names.push(dataset.name_values(e).first().map(|s| (*s).into()));
        }
        let idf = TfIdfWeights::build(interner.len(), tokens.iter());
        Self {
            config,
            tokens,
            names,
            idf,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MatcherConfig {
        &self.config
    }

    /// Value similarity of two descriptions in `[0, 1]`.
    pub fn value_similarity(&self, a: EntityId, b: EntityId) -> f64 {
        let (ta, tb) = (&self.tokens[a.index()], &self.tokens[b.index()]);
        let tok_sim = match self.config.measure {
            ValueMeasure::Jaccard => token::jaccard(ta, tb),
            ValueMeasure::WeightedJaccard => token::weighted_jaccard(ta, tb, |t| self.idf.idf(t)),
            ValueMeasure::TfIdfCosine => self.idf.cosine(ta, tb),
        };
        let name_sim = match (&self.names[a.index()], &self.names[b.index()]) {
            (Some(na), Some(nb)) if self.config.name_weight > 0.0 => {
                Some(jaro_winkler(&na.to_lowercase(), &nb.to_lowercase()))
            }
            _ => None,
        };
        match name_sim {
            Some(ns) => (1.0 - self.config.name_weight) * tok_sim + self.config.name_weight * ns,
            None => tok_sim,
        }
    }

    /// Composite score folding neighbour `evidence` into the value
    /// similarity as an *additive boost*: with evidence `ε` and weight `β`,
    /// `score = min(1, value + β·min(1, ε))`. Evidence can only help — a
    /// pair never scores below its value similarity (matched neighbours are
    /// positive evidence, per the paper's update phase).
    pub fn composite(&self, value_sim: f64, evidence: f64) -> f64 {
        if evidence <= 0.0 {
            return value_sim;
        }
        (value_sim + self.config.evidence_weight * evidence.min(1.0)).min(1.0)
    }

    /// Whether a pair is a match: composite score at or above the
    /// threshold *and* value similarity at or above the floor.
    pub fn is_match(&self, value_sim: f64, score: f64) -> bool {
        score >= self.config.threshold && value_sim >= self.config.value_floor
    }

    /// Whether a previously measured pair could now be declared a match
    /// given its (grown) neighbour evidence. Value similarity is
    /// deterministic, so a re-comparison is worth scheduling only when
    /// this returns `true`.
    pub fn could_rematch(&self, last_value: f64, evidence: f64) -> bool {
        self.is_match(last_value, self.composite(last_value, evidence))
    }

    /// The token ids of an entity (sorted, deduplicated) — exposed for
    /// diagnostics and tests.
    pub fn tokens_of(&self, e: EntityId) -> &[u32] {
        &self.tokens[e.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_datagen::{generate, profiles};
    use minoan_rdf::DatasetBuilder;

    fn toy() -> Dataset {
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/");
        let k1 = b.add_kb("b", "http://b/");
        b.add_literal(
            k0,
            "http://a/knossos",
            "http://o/label",
            "Knossos Palace ruins",
        );
        b.add_literal(
            k0,
            "http://a/athens",
            "http://o/label",
            "Athens Acropolis ruins",
        );
        b.add_literal(
            k1,
            "http://b/knossos",
            "http://o/name",
            "Knossos Palace site",
        );
        b.add_literal(
            k1,
            "http://b/sparta",
            "http://o/name",
            "Ancient Sparta site",
        );
        b.build()
    }

    #[test]
    fn matching_pair_scores_higher_than_non_matching() {
        let ds = toy();
        let m = Matcher::new(&ds, MatcherConfig::default());
        let ka = ds.entity_by_uri("http://a/knossos").unwrap();
        let kb = ds.entity_by_uri("http://b/knossos").unwrap();
        let sp = ds.entity_by_uri("http://b/sparta").unwrap();
        assert!(m.value_similarity(ka, kb) > m.value_similarity(ka, sp));
        assert!(m.value_similarity(ka, kb) > 0.4);
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let ds = toy();
        for measure in [
            ValueMeasure::Jaccard,
            ValueMeasure::WeightedJaccard,
            ValueMeasure::TfIdfCosine,
        ] {
            let m = Matcher::new(
                &ds,
                MatcherConfig {
                    measure,
                    ..Default::default()
                },
            );
            for a in ds.entities() {
                for b in ds.entities() {
                    let s = m.value_similarity(a, b);
                    assert!((0.0..=1.0 + 1e-9).contains(&s), "{measure:?} gave {s}");
                    assert!((s - m.value_similarity(b, a)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn identical_descriptions_score_near_one() {
        let ds = toy();
        let m = Matcher::new(&ds, MatcherConfig::default());
        for e in ds.entities() {
            assert!(m.value_similarity(e, e) > 0.99);
        }
    }

    #[test]
    fn composite_blends_evidence() {
        let ds = toy();
        let m = Matcher::new(&ds, MatcherConfig::default());
        assert_eq!(m.composite(0.3, 0.0), 0.3, "no evidence → value only");
        let boosted = m.composite(0.3, 1.0);
        assert!((boosted - (0.3 + m.config().evidence_weight)).abs() < 1e-12);
        assert!(m.composite(0.9, 10.0) <= 1.0, "evidence clamped");
        // Evidence never hurts.
        assert!(m.composite(0.3, 0.2) >= 0.3);
    }

    #[test]
    fn threshold_separates_truth_on_generated_data() {
        let g = generate(&profiles::center_dense(150, 14));
        let m = Matcher::new(&g.dataset, MatcherConfig::default());
        // Average similarity of true pairs must clearly exceed random pairs.
        let mut truth_sims = Vec::new();
        for (a, b) in g.truth.matching_pair_iter().take(150) {
            truth_sims.push(m.value_similarity(a, b));
        }
        let mut rand_sims = Vec::new();
        let n = g.dataset.len() as u32;
        for i in 0..150u32 {
            let (a, b) = (EntityId(i % n), EntityId((i * 7 + 3) % n));
            if a != b && !g.truth.is_match(a, b) {
                rand_sims.push(m.value_similarity(a, b));
            }
        }
        let tm = minoan_common::stats::mean(&truth_sims);
        let rm = minoan_common::stats::mean(&rand_sims);
        assert!(
            tm > rm + 0.3,
            "separation too weak: true {tm:.3} vs random {rm:.3}"
        );
    }

    #[test]
    fn name_component_requires_both_names() {
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/");
        let k1 = b.add_kb("b", "http://b/");
        // One side has a label, the other only an unrelated property.
        b.add_literal(k0, "http://a/x", "http://o/label", "shared words here");
        b.add_literal(k1, "http://b/x", "http://o/population", "shared words here");
        let ds = b.build();
        let m = Matcher::new(&ds, MatcherConfig::default());
        let a = ds.entity_by_uri("http://a/x").unwrap();
        let bb = ds.entity_by_uri("http://b/x").unwrap();
        // Falls back to pure token similarity = 1.0 (same tokens).
        assert!(m.value_similarity(a, bb) > 0.99);
    }

    #[test]
    #[should_panic(expected = "matcher weights")]
    fn invalid_config_panics() {
        let ds = toy();
        let _ = Matcher::new(
            &ds,
            MatcherConfig {
                threshold: 1.5,
                ..Default::default()
            },
        );
    }
}
