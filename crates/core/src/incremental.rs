//! Incremental (streaming) entity resolution over the updatable blocking
//! slabs.
//!
//! The Web of Data is not static: KBs publish descriptions continuously,
//! and a pay-as-you-go platform must fold new descriptions into the
//! resolved state without re-running the batch pipeline. This module is
//! the matching half of that mode; the blocking half is
//! [`minoan_blocking::IncrementalCollection`] (the delta-appendable token
//! index shared with `minoan_metablocking::IncrementalSession`, the
//! delta-sweep meta-blocking session). Each arrival
//!
//! 1. is absorbed into the incremental collection — tokenised through
//!    the same string-free `KeyAssignments` path as the batch builders
//!    and delta-merged into the per-key sorted member slabs (no private
//!    inverted index, no re-tokenisation of what already arrived),
//! 2. generates candidates among the *already arrived* descriptions by
//!    counting block co-occurrences (incremental CBS weighting) — the
//!    co-occurrence list is collected from the sorted member slabs and
//!    reduced by run-length counting, so candidate order never depends
//!    on hash-map iteration,
//! 3. compares the top candidates best-first under a per-arrival budget,
//! 4. records matches into the shared cluster state and propagates
//!    neighbour evidence exactly like the batch update phase; each
//!    pair's accumulated evidence is kept as its contribution list and
//!    reduced with a fixed-shape pairwise sum, so a pair's boost does
//!    not depend on the order matches were found in.
//!
//! The state after all arrivals is equivalent in spirit (not comparison
//! order) to a batch run — `tests/incremental_vs_batch.rs` and the E11
//! experiment measure how close.
//!
//! ```
//! use minoan_datagen::{generate, profiles};
//! use minoan_er::incremental::{IncrementalConfig, IncrementalResolver};
//! use minoan_er::matcher::{Matcher, MatcherConfig};
//!
//! let g = generate(&profiles::center_dense(80, 7));
//! let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
//! let mut inc = IncrementalResolver::new(&g.dataset, &matcher, IncrementalConfig::default());
//! let ids: Vec<_> = g.dataset.entities().collect();
//! for batch in ids.chunks(8) {
//!     inc.arrive_batch(batch);
//! }
//! assert_eq!(inc.arrived_count(), g.dataset.len());
//! assert!(!inc.matches().is_empty());
//! ```

use crate::benefit::ResolutionState;
use crate::matcher::Matcher;
use minoan_blocking::{ErMode, IncrementalCollection};
use minoan_common::stats::pairwise_sum;
use minoan_common::{FxHashMap, FxHashSet};
use minoan_rdf::{Dataset, EntityId};

/// Configuration of the incremental resolver.
///
/// The budget defaults come from a 50k-entity calibration sweep of the
/// `minoan-bench incremental --calibrate` harness (center-profile world,
/// default matcher): per-arrival comparison budgets above ~8 and
/// candidate pools above ~24 stopped improving recall (< 0.5 % per
/// doubling) while comparisons grew linearly, so the defaults sit at the
/// knee with one notch of headroom.
#[derive(Clone, Copy, Debug)]
pub struct IncrementalConfig {
    /// Maximum candidates compared per arrival.
    pub budget_per_arrival: u64,
    /// Maximum candidates generated per arrival (top by common blocks).
    pub max_candidates: usize,
    /// Skip blocks holding more than this many *other* arrived
    /// descriptions (stop-token guard, the incremental analogue of block
    /// purging).
    pub max_token_frequency: usize,
    /// Neighbour-propagation strength (0 disables the update phase).
    pub alpha: f64,
    /// In clean–clean data, an arrived entity matches at most one
    /// description per other KB.
    pub unique_mapping: bool,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        Self {
            budget_per_arrival: 10,
            max_candidates: 32,
            max_token_frequency: 64,
            alpha: 0.4,
            unique_mapping: true,
        }
    }
}

/// What one arrival did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ArrivalReport {
    /// Candidates generated for the newcomer.
    pub candidates: usize,
    /// Comparisons executed.
    pub comparisons: u64,
    /// Matches accepted `(other, score)` — the newcomer is implicit.
    pub matches: Vec<(EntityId, f64)>,
}

/// The incremental resolver.
///
/// Borrows the full dataset (the universe descriptions are drawn from) but
/// only ever *sees* the descriptions that have arrived.
pub struct IncrementalResolver<'d> {
    dataset: &'d Dataset,
    matcher: &'d Matcher,
    config: IncrementalConfig,
    state: ResolutionState<'d>,
    /// The updatable blocking index: per-key sorted member slabs,
    /// delta-appended per arrival.
    blocks: IncrementalCollection<'d>,
    consumed: FxHashSet<(u32, u16)>,
    matches: Vec<(EntityId, EntityId, f64)>,
    total_comparisons: u64,
    /// Pending neighbour evidence from matches: pair → contribution
    /// list, reduced by pairwise sum when read (keyed lookups only — the
    /// map is never iterated, so no hash-order dependence).
    evidence: FxHashMap<(EntityId, EntityId), Vec<f64>>,
    /// Reusable co-occurrence scratch for candidate generation.
    occs: Vec<EntityId>,
}

impl<'d> IncrementalResolver<'d> {
    /// Creates an empty resolver over a dataset and its matcher.
    pub fn new(dataset: &'d Dataset, matcher: &'d Matcher, config: IncrementalConfig) -> Self {
        assert!(config.alpha >= 0.0, "alpha must be non-negative");
        assert!(
            config.max_candidates > 0,
            "need at least one candidate slot"
        );
        Self {
            dataset,
            matcher,
            config,
            state: ResolutionState::new(dataset),
            blocks: IncrementalCollection::new(dataset, ErMode::CleanClean),
            consumed: FxHashSet::default(),
            matches: Vec::new(),
            total_comparisons: 0,
            evidence: FxHashMap::default(),
            occs: Vec::new(),
        }
    }

    /// Number of descriptions that have arrived.
    pub fn arrived_count(&self) -> usize {
        self.blocks.num_arrived()
    }

    /// All accepted matches so far, in acceptance order.
    pub fn matches(&self) -> &[(EntityId, EntityId, f64)] {
        &self.matches
    }

    /// Total comparisons executed so far.
    pub fn comparisons(&self) -> u64 {
        self.total_comparisons
    }

    /// Final clusters (≥ 2 members) of the current state.
    pub fn clusters(&mut self) -> Vec<Vec<u32>> {
        self.state.final_clusters(2)
    }

    /// Processes the arrival of `e`. Arriving twice is a no-op.
    pub fn arrive(&mut self, e: EntityId) -> ArrivalReport {
        if self.blocks.has_arrived(e) {
            return ArrivalReport::default();
        }
        self.blocks.absorb(&[e]);
        self.resolve_arrival(e)
    }

    /// Processes a batch of arrivals: the whole batch is absorbed into
    /// the blocking slabs first (one delta-merge instead of one per
    /// entity), then each member is resolved in order — so same-batch
    /// co-occurrences are already visible as candidates. Already-arrived
    /// members and repeats *within* the batch are dropped silently, like
    /// [`Self::arrive`]; the set below is membership-only (never
    /// iterated), so resolution keeps first-occurrence batch order.
    pub fn arrive_batch(&mut self, batch: &[EntityId]) -> ArrivalReport {
        let mut seen: FxHashSet<EntityId> = FxHashSet::default();
        let fresh: Vec<EntityId> = batch
            .iter()
            .copied()
            .filter(|&e| !self.blocks.has_arrived(e) && seen.insert(e))
            .collect();
        self.blocks.absorb(&fresh);
        let mut total = ArrivalReport::default();
        for &e in &fresh {
            let r = self.resolve_arrival(e);
            total.candidates += r.candidates;
            total.comparisons += r.comparisons;
            total.matches.extend(r.matches);
        }
        total
    }

    /// Processes a stream of arrivals one by one.
    pub fn arrive_all(&mut self, entities: impl IntoIterator<Item = EntityId>) -> ArrivalReport {
        let mut total = ArrivalReport::default();
        for e in entities {
            let r = self.arrive(e);
            total.candidates += r.candidates;
            total.comparisons += r.comparisons;
            total.matches.extend(r.matches);
        }
        total
    }

    /// Candidate generation and budgeted matching for one just-absorbed
    /// entity.
    fn resolve_arrival(&mut self, e: EntityId) -> ArrivalReport {
        // --- Candidate generation: block co-occurrence counting ----------
        // Collect the comparable co-members of the newcomer's blocks from
        // the sorted slabs, then reduce duplicates by run-length counting:
        // candidates come out ordered, with no hash map in the path.
        let mut occs = std::mem::take(&mut self.occs);
        occs.clear();
        for &s in self.blocks.entity_keys(e) {
            let members = self.blocks.key_members(s);
            if members.is_empty() || members.len() - 1 > self.config.max_token_frequency {
                continue; // unblocked or stop token
            }
            occs.extend(
                members
                    .iter()
                    .copied()
                    .filter(|&o| o != e && self.comparable(e, o)),
            );
        }
        occs.sort_unstable();
        let mut candidates: Vec<(EntityId, f64)> = Vec::new();
        let mut i = 0usize;
        while i < occs.len() {
            let other = occs[i];
            let mut j = i + 1;
            while j < occs.len() && occs[j] == other {
                j += 1;
            }
            let cbs = (j - i) as u32;
            let boost = self.boost_of(pair_key(e, other));
            candidates.push((other, cbs as f64 + boost * 100.0));
            i = j;
        }
        self.occs = occs;
        candidates.sort_by(|x, y| {
            y.1.partial_cmp(&x.1)
                .expect("candidate scores are finite: cbs counts plus bounded boost")
                .then(x.0.cmp(&y.0))
        });
        candidates.truncate(self.config.max_candidates);

        // --- Budgeted best-first matching --------------------------------
        let mut report = ArrivalReport {
            candidates: candidates.len(),
            ..Default::default()
        };
        for &(other, _) in &candidates {
            if report.comparisons >= self.config.budget_per_arrival {
                break;
            }
            if self.state.same_cluster(e, other) || self.is_consumed(e, other) {
                continue;
            }
            report.comparisons += 1;
            self.total_comparisons += 1;
            let value = self.matcher.value_similarity(e, other);
            let boost = self.boost_of(pair_key(e, other));
            let score = self.matcher.composite(value, boost);
            if self.matcher.is_match(value, score) {
                self.state.record_match(e, other);
                self.matches.push((e.min(other), e.max(other), score));
                report.matches.push((other, score));
                self.consume(e, other);
                if self.config.alpha > 0.0 {
                    self.propagate(e, other, score);
                }
                if self.config.unique_mapping {
                    // The newcomer may still match entities of *other* KBs;
                    // keep scanning.
                    continue;
                }
            }
        }
        report
    }

    /// Accumulated neighbour-evidence boost of a pair — a fixed-shape
    /// pairwise reduction of its contribution list, independent of the
    /// order the contributions arrived in.
    fn boost_of(&self, key: (EntityId, EntityId)) -> f64 {
        self.evidence
            .get(&key)
            .map(|contributions| pairwise_sum(contributions))
            .unwrap_or(0.0)
    }

    /// Stores neighbour evidence for the pairs linked to a fresh match; if
    /// the counterpart pair has already arrived it will be found at its
    /// next arrival-driven comparison (or immediately, when both ends have
    /// arrived, via a direct budgeted re-check).
    fn propagate(&mut self, a: EntityId, b: EntityId, score: f64) {
        const CAP: usize = 8;
        let na = self.dataset.neighbors(a);
        let nb = self.dataset.neighbors(b);
        let damp = (((na.len().min(CAP) * nb.len().min(CAP)) as f64).sqrt() / 2.0).max(1.0);
        let delta = self.config.alpha * score / damp;
        if delta < 0.02 {
            return;
        }
        let mut recheck: Vec<(EntityId, EntityId)> = Vec::new();
        for &x in na.iter().take(CAP) {
            for &y in nb.iter().take(CAP) {
                if x == y || !self.comparable(x, y) {
                    continue;
                }
                let key = pair_key(x, y);
                self.evidence.entry(key).or_default().push(delta);
                if self.blocks.has_arrived(x) && self.blocks.has_arrived(y) {
                    recheck.push(key);
                }
            }
        }
        // Immediate re-check of fully-arrived influenced pairs (bounded).
        for (x, y) in recheck.into_iter().take(CAP) {
            if self.state.same_cluster(x, y) || self.is_consumed(x, y) {
                continue;
            }
            self.total_comparisons += 1;
            let value = self.matcher.value_similarity(x, y);
            let boost = self.boost_of((x, y));
            let score = self.matcher.composite(value, boost);
            if self.matcher.is_match(value, score) {
                self.state.record_match(x, y);
                self.matches.push((x.min(y), x.max(y), score));
                self.consume(x, y);
            }
        }
    }

    fn comparable(&self, a: EntityId, b: EntityId) -> bool {
        a != b && self.dataset.kb_of(a) != self.dataset.kb_of(b)
    }

    fn is_consumed(&self, a: EntityId, b: EntityId) -> bool {
        self.config.unique_mapping
            && (self.consumed.contains(&(a.0, self.dataset.kb_of(b).0))
                || self.consumed.contains(&(b.0, self.dataset.kb_of(a).0)))
    }

    fn consume(&mut self, a: EntityId, b: EntityId) {
        if self.config.unique_mapping {
            self.consumed.insert((a.0, self.dataset.kb_of(b).0));
            self.consumed.insert((b.0, self.dataset.kb_of(a).0));
        }
    }
}

#[inline]
fn pair_key(a: EntityId, b: EntityId) -> (EntityId, EntityId) {
    (a.min(b), a.max(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::MatcherConfig;
    use minoan_datagen::{generate, profiles, GeneratedWorld};

    fn world() -> GeneratedWorld {
        generate(&profiles::center_dense(200, 71))
    }

    fn quality(g: &GeneratedWorld, matches: &[(EntityId, EntityId, f64)]) -> (f64, f64) {
        if matches.is_empty() {
            return (0.0, 0.0);
        }
        let tp = matches
            .iter()
            .filter(|(a, b, _)| g.truth.is_match(*a, *b))
            .count() as f64;
        (
            tp / matches.len() as f64,
            tp / g.truth.matching_pairs() as f64,
        )
    }

    #[test]
    fn streaming_resolution_reaches_batch_like_quality() {
        let g = world();
        let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
        let mut inc = IncrementalResolver::new(&g.dataset, &matcher, IncrementalConfig::default());
        inc.arrive_all(g.dataset.entities());
        let (precision, recall) = quality(&g, inc.matches());
        assert!(precision > 0.9, "precision {precision}");
        assert!(recall > 0.6, "recall {recall}");
        assert!(!inc.clusters().is_empty());
    }

    #[test]
    fn arrival_order_invariance_of_quality() {
        let g = world();
        let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
        // Forward order.
        let mut fwd = IncrementalResolver::new(&g.dataset, &matcher, IncrementalConfig::default());
        fwd.arrive_all(g.dataset.entities());
        // Reverse order.
        let mut rev = IncrementalResolver::new(&g.dataset, &matcher, IncrementalConfig::default());
        let mut order: Vec<EntityId> = g.dataset.entities().collect();
        order.reverse();
        rev.arrive_all(order);
        let (_, recall_fwd) = quality(&g, fwd.matches());
        let (_, recall_rev) = quality(&g, rev.matches());
        assert!(
            (recall_fwd - recall_rev).abs() < 0.15,
            "order should not change quality much: {recall_fwd} vs {recall_rev}"
        );
    }

    #[test]
    fn batched_arrivals_match_streamed_quality() {
        let g = world();
        let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
        let mut streamed =
            IncrementalResolver::new(&g.dataset, &matcher, IncrementalConfig::default());
        streamed.arrive_all(g.dataset.entities());
        let mut batched =
            IncrementalResolver::new(&g.dataset, &matcher, IncrementalConfig::default());
        let ids: Vec<EntityId> = g.dataset.entities().collect();
        for batch in ids.chunks(25) {
            batched.arrive_batch(batch);
        }
        assert_eq!(batched.arrived_count(), g.dataset.len());
        let (_, recall_streamed) = quality(&g, streamed.matches());
        let (precision_batched, recall_batched) = quality(&g, batched.matches());
        assert!(precision_batched > 0.9, "precision {precision_batched}");
        assert!(
            (recall_streamed - recall_batched).abs() < 0.15,
            "batching should not change quality much: {recall_streamed} vs {recall_batched}"
        );
    }

    #[test]
    fn double_arrival_is_noop() {
        let g = world();
        let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
        let mut inc = IncrementalResolver::new(&g.dataset, &matcher, IncrementalConfig::default());
        let e = EntityId(0);
        inc.arrive(e);
        let before = inc.comparisons();
        let r = inc.arrive(e);
        assert_eq!(r, ArrivalReport::default());
        assert_eq!(inc.comparisons(), before);
        assert_eq!(inc.arrived_count(), 1);
        // Batches silently drop already-arrived members too.
        let r = inc.arrive_batch(&[e]);
        assert_eq!(r, ArrivalReport::default());
        assert_eq!(inc.arrived_count(), 1);
    }

    #[test]
    fn duplicates_within_a_batch_are_dropped() {
        let g = world();
        let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
        let mut inc = IncrementalResolver::new(&g.dataset, &matcher, IncrementalConfig::default());
        // The same not-yet-arrived entity repeated in one batch must be
        // absorbed once, not trip the slab delta-merge's arrived assert.
        let (a, b) = (EntityId(0), EntityId(1));
        inc.arrive_batch(&[a, a, b, a]);
        assert_eq!(inc.arrived_count(), 2);
        // Repeats of already-arrived members stay a silent no-op too.
        let r = inc.arrive_batch(&[a, b, b]);
        assert_eq!(r, ArrivalReport::default());
        assert_eq!(inc.arrived_count(), 2);
    }

    #[test]
    fn budget_per_arrival_is_respected() {
        let g = world();
        let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
        let config = IncrementalConfig {
            budget_per_arrival: 3,
            ..Default::default()
        };
        let mut inc = IncrementalResolver::new(&g.dataset, &matcher, config);
        for e in g.dataset.entities() {
            let r = inc.arrive(e);
            assert!(
                r.comparisons <= 3,
                "arrival exceeded budget: {}",
                r.comparisons
            );
        }
    }

    #[test]
    fn unique_mapping_enforced() {
        let g = world();
        let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
        let mut inc = IncrementalResolver::new(&g.dataset, &matcher, IncrementalConfig::default());
        inc.arrive_all(g.dataset.entities());
        let mut seen: FxHashSet<(u32, u16)> = FxHashSet::default();
        for (a, b, _) in inc.matches() {
            assert!(
                seen.insert((a.0, g.dataset.kb_of(*b).0)),
                "{a:?} double-matched"
            );
            assert!(
                seen.insert((b.0, g.dataset.kb_of(*a).0)),
                "{b:?} double-matched"
            );
        }
    }

    #[test]
    fn stop_tokens_are_skipped() {
        let g = world();
        let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
        // Frequency cap of 1: every shared block becomes a stop block after
        // its second carrier, so candidate counts collapse.
        let strict = IncrementalConfig {
            max_token_frequency: 1,
            ..Default::default()
        };
        let mut inc_strict = IncrementalResolver::new(&g.dataset, &matcher, strict);
        let mut inc_default =
            IncrementalResolver::new(&g.dataset, &matcher, IncrementalConfig::default());
        let strict_report = inc_strict.arrive_all(g.dataset.entities());
        let default_report = inc_default.arrive_all(g.dataset.entities());
        assert!(strict_report.candidates < default_report.candidates);
    }

    #[test]
    fn empty_resolver_state() {
        let g = world();
        let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
        let mut inc = IncrementalResolver::new(&g.dataset, &matcher, IncrementalConfig::default());
        assert_eq!(inc.arrived_count(), 0);
        assert_eq!(inc.comparisons(), 0);
        assert!(inc.matches().is_empty());
        assert!(inc.clusters().is_empty());
    }
}
