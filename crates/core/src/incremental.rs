//! Incremental (streaming) entity resolution.
//!
//! The Web of Data is not static: KBs publish descriptions continuously,
//! and a pay-as-you-go platform must fold new descriptions into the
//! resolved state without re-running the batch pipeline. This module
//! provides that mode: descriptions *arrive* one at a time (or in
//! batches); each arrival
//!
//! 1. indexes the newcomer's blocking tokens into an incremental inverted
//!    index,
//! 2. generates candidates among the *already arrived* descriptions by
//!    common-token counting (an incremental token-blocking + CBS
//!    weighting),
//! 3. compares the top candidates best-first under a per-arrival budget,
//! 4. records matches into the shared cluster state and propagates
//!    neighbour evidence exactly like the batch update phase.
//!
//! The state after all arrivals is equivalent in spirit (not comparison
//! order) to a batch run — the `incremental_stream` example and the E11
//! experiment measure how close.

use crate::benefit::ResolutionState;
use crate::matcher::Matcher;
use minoan_common::{FxHashMap, FxHashSet};
use minoan_rdf::{Dataset, EntityId};

/// Configuration of the incremental resolver.
#[derive(Clone, Copy, Debug)]
pub struct IncrementalConfig {
    /// Maximum candidates compared per arrival.
    pub budget_per_arrival: u64,
    /// Maximum candidates generated per arrival (top by common tokens).
    pub max_candidates: usize,
    /// Skip tokens occurring in more than this many arrived descriptions
    /// (stop-token guard, the incremental analogue of block purging).
    pub max_token_frequency: usize,
    /// Neighbour-propagation strength (0 disables the update phase).
    pub alpha: f64,
    /// In clean–clean data, an arrived entity matches at most one
    /// description per other KB.
    pub unique_mapping: bool,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        Self {
            budget_per_arrival: 10,
            max_candidates: 32,
            max_token_frequency: 64,
            alpha: 0.4,
            unique_mapping: true,
        }
    }
}

/// What one arrival did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ArrivalReport {
    /// Candidates generated for the newcomer.
    pub candidates: usize,
    /// Comparisons executed.
    pub comparisons: u64,
    /// Matches accepted `(other, score)` — the newcomer is implicit.
    pub matches: Vec<(EntityId, f64)>,
}

/// The incremental resolver.
///
/// Borrows the full dataset (the universe descriptions are drawn from) but
/// only ever *sees* the descriptions that have arrived.
pub struct IncrementalResolver<'d> {
    dataset: &'d Dataset,
    matcher: &'d Matcher,
    config: IncrementalConfig,
    state: ResolutionState<'d>,
    /// token id → arrived entities carrying it.
    index: FxHashMap<u32, Vec<EntityId>>,
    arrived: Vec<bool>,
    consumed: FxHashSet<(u32, u16)>,
    matches: Vec<(EntityId, EntityId, f64)>,
    total_comparisons: u64,
    /// Pending neighbour evidence from matches: pair → accumulated boost.
    evidence: FxHashMap<(EntityId, EntityId), f64>,
}

impl<'d> IncrementalResolver<'d> {
    /// Creates an empty resolver over a dataset and its matcher.
    pub fn new(dataset: &'d Dataset, matcher: &'d Matcher, config: IncrementalConfig) -> Self {
        assert!(config.alpha >= 0.0, "alpha must be non-negative");
        assert!(
            config.max_candidates > 0,
            "need at least one candidate slot"
        );
        Self {
            dataset,
            matcher,
            config,
            state: ResolutionState::new(dataset),
            index: FxHashMap::default(),
            arrived: vec![false; dataset.len()],
            consumed: FxHashSet::default(),
            matches: Vec::new(),
            total_comparisons: 0,
            evidence: FxHashMap::default(),
        }
    }

    /// Number of descriptions that have arrived.
    pub fn arrived_count(&self) -> usize {
        self.arrived.iter().filter(|&&a| a).count()
    }

    /// All accepted matches so far, in acceptance order.
    pub fn matches(&self) -> &[(EntityId, EntityId, f64)] {
        &self.matches
    }

    /// Total comparisons executed so far.
    pub fn comparisons(&self) -> u64 {
        self.total_comparisons
    }

    /// Final clusters (≥ 2 members) of the current state.
    pub fn clusters(&mut self) -> Vec<Vec<u32>> {
        self.state.final_clusters(2)
    }

    /// Processes the arrival of `e`. Arriving twice is a no-op.
    pub fn arrive(&mut self, e: EntityId) -> ArrivalReport {
        if self.arrived[e.index()] {
            return ArrivalReport::default();
        }
        self.arrived[e.index()] = true;
        let tokens = self.matcher.tokens_of(e);

        // --- Candidate generation: common-token counting -----------------
        let mut common: FxHashMap<EntityId, u32> = FxHashMap::default();
        for &t in tokens {
            if let Some(carriers) = self.index.get(&t) {
                if carriers.len() > self.config.max_token_frequency {
                    continue; // stop token
                }
                for &other in carriers {
                    *common.entry(other).or_insert(0) += 1;
                }
            }
        }
        // Index the newcomer *after* lookup so it is not its own candidate.
        for &t in tokens {
            self.index.entry(t).or_default().push(e);
        }

        let mut candidates: Vec<(EntityId, f64)> = common
            .into_iter()
            .filter(|&(other, _)| self.comparable(e, other))
            .map(|(other, cbs)| {
                let boost = self
                    .evidence
                    .get(&pair_key(e, other))
                    .copied()
                    .unwrap_or(0.0);
                (other, cbs as f64 + boost * 100.0)
            })
            .collect();
        candidates.sort_by(|x, y| {
            y.1.partial_cmp(&x.1)
                .expect("candidate scores are finite: cbs counts plus bounded boost")
                .then(x.0.cmp(&y.0))
        });
        candidates.truncate(self.config.max_candidates);

        // --- Budgeted best-first matching --------------------------------
        let mut report = ArrivalReport {
            candidates: candidates.len(),
            ..Default::default()
        };
        for &(other, _) in &candidates {
            if report.comparisons >= self.config.budget_per_arrival {
                break;
            }
            if self.state.same_cluster(e, other) || self.is_consumed(e, other) {
                continue;
            }
            report.comparisons += 1;
            self.total_comparisons += 1;
            let value = self.matcher.value_similarity(e, other);
            let boost = self
                .evidence
                .get(&pair_key(e, other))
                .copied()
                .unwrap_or(0.0);
            let score = self.matcher.composite(value, boost);
            if self.matcher.is_match(value, score) {
                self.state.record_match(e, other);
                self.matches.push((e.min(other), e.max(other), score));
                report.matches.push((other, score));
                self.consume(e, other);
                if self.config.alpha > 0.0 {
                    self.propagate(e, other, score);
                }
                if self.config.unique_mapping {
                    // The newcomer may still match entities of *other* KBs;
                    // keep scanning.
                    continue;
                }
            }
        }
        report
    }

    /// Processes a batch of arrivals in order.
    pub fn arrive_all(&mut self, entities: impl IntoIterator<Item = EntityId>) -> ArrivalReport {
        let mut total = ArrivalReport::default();
        for e in entities {
            let r = self.arrive(e);
            total.candidates += r.candidates;
            total.comparisons += r.comparisons;
            total.matches.extend(r.matches);
        }
        total
    }

    /// Stores neighbour evidence for the pairs linked to a fresh match; if
    /// the counterpart pair has already arrived it will be found at its
    /// next arrival-driven comparison (or immediately, when both ends have
    /// arrived, via a direct budgeted re-check).
    fn propagate(&mut self, a: EntityId, b: EntityId, score: f64) {
        const CAP: usize = 8;
        let na = self.dataset.neighbors(a);
        let nb = self.dataset.neighbors(b);
        let damp = (((na.len().min(CAP) * nb.len().min(CAP)) as f64).sqrt() / 2.0).max(1.0);
        let delta = self.config.alpha * score / damp;
        if delta < 0.02 {
            return;
        }
        let mut recheck: Vec<(EntityId, EntityId)> = Vec::new();
        for &x in na.iter().take(CAP) {
            for &y in nb.iter().take(CAP) {
                if x == y || !self.comparable(x, y) {
                    continue;
                }
                let key = pair_key(x, y);
                *self.evidence.entry(key).or_insert(0.0) += delta;
                if self.arrived[x.index()] && self.arrived[y.index()] {
                    recheck.push(key);
                }
            }
        }
        // Immediate re-check of fully-arrived influenced pairs (bounded).
        for (x, y) in recheck.into_iter().take(CAP) {
            if self.state.same_cluster(x, y) || self.is_consumed(x, y) {
                continue;
            }
            self.total_comparisons += 1;
            let value = self.matcher.value_similarity(x, y);
            let boost = self.evidence[&pair_key(x, y)];
            let score = self.matcher.composite(value, boost);
            if self.matcher.is_match(value, score) {
                self.state.record_match(x, y);
                self.matches.push((x.min(y), x.max(y), score));
                self.consume(x, y);
            }
        }
    }

    fn comparable(&self, a: EntityId, b: EntityId) -> bool {
        a != b && self.dataset.kb_of(a) != self.dataset.kb_of(b)
    }

    fn is_consumed(&self, a: EntityId, b: EntityId) -> bool {
        self.config.unique_mapping
            && (self.consumed.contains(&(a.0, self.dataset.kb_of(b).0))
                || self.consumed.contains(&(b.0, self.dataset.kb_of(a).0)))
    }

    fn consume(&mut self, a: EntityId, b: EntityId) {
        if self.config.unique_mapping {
            self.consumed.insert((a.0, self.dataset.kb_of(b).0));
            self.consumed.insert((b.0, self.dataset.kb_of(a).0));
        }
    }
}

#[inline]
fn pair_key(a: EntityId, b: EntityId) -> (EntityId, EntityId) {
    (a.min(b), a.max(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::MatcherConfig;
    use minoan_datagen::{generate, profiles, GeneratedWorld};

    fn world() -> GeneratedWorld {
        generate(&profiles::center_dense(200, 71))
    }

    fn quality(g: &GeneratedWorld, matches: &[(EntityId, EntityId, f64)]) -> (f64, f64) {
        if matches.is_empty() {
            return (0.0, 0.0);
        }
        let tp = matches
            .iter()
            .filter(|(a, b, _)| g.truth.is_match(*a, *b))
            .count() as f64;
        (
            tp / matches.len() as f64,
            tp / g.truth.matching_pairs() as f64,
        )
    }

    #[test]
    fn streaming_resolution_reaches_batch_like_quality() {
        let g = world();
        let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
        let mut inc = IncrementalResolver::new(&g.dataset, &matcher, IncrementalConfig::default());
        inc.arrive_all(g.dataset.entities());
        let (precision, recall) = quality(&g, inc.matches());
        assert!(precision > 0.9, "precision {precision}");
        assert!(recall > 0.6, "recall {recall}");
        assert!(!inc.clusters().is_empty());
    }

    #[test]
    fn arrival_order_invariance_of_quality() {
        let g = world();
        let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
        // Forward order.
        let mut fwd = IncrementalResolver::new(&g.dataset, &matcher, IncrementalConfig::default());
        fwd.arrive_all(g.dataset.entities());
        // Reverse order.
        let mut rev = IncrementalResolver::new(&g.dataset, &matcher, IncrementalConfig::default());
        let mut order: Vec<EntityId> = g.dataset.entities().collect();
        order.reverse();
        rev.arrive_all(order);
        let (_, recall_fwd) = quality(&g, fwd.matches());
        let (_, recall_rev) = quality(&g, rev.matches());
        assert!(
            (recall_fwd - recall_rev).abs() < 0.15,
            "order should not change quality much: {recall_fwd} vs {recall_rev}"
        );
    }

    #[test]
    fn double_arrival_is_noop() {
        let g = world();
        let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
        let mut inc = IncrementalResolver::new(&g.dataset, &matcher, IncrementalConfig::default());
        let e = EntityId(0);
        inc.arrive(e);
        let before = inc.comparisons();
        let r = inc.arrive(e);
        assert_eq!(r, ArrivalReport::default());
        assert_eq!(inc.comparisons(), before);
        assert_eq!(inc.arrived_count(), 1);
    }

    #[test]
    fn budget_per_arrival_is_respected() {
        let g = world();
        let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
        let config = IncrementalConfig {
            budget_per_arrival: 3,
            ..Default::default()
        };
        let mut inc = IncrementalResolver::new(&g.dataset, &matcher, config);
        for e in g.dataset.entities() {
            let r = inc.arrive(e);
            assert!(
                r.comparisons <= 3,
                "arrival exceeded budget: {}",
                r.comparisons
            );
        }
    }

    #[test]
    fn unique_mapping_enforced() {
        let g = world();
        let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
        let mut inc = IncrementalResolver::new(&g.dataset, &matcher, IncrementalConfig::default());
        inc.arrive_all(g.dataset.entities());
        let mut seen: FxHashSet<(u32, u16)> = FxHashSet::default();
        for (a, b, _) in inc.matches() {
            assert!(
                seen.insert((a.0, g.dataset.kb_of(*b).0)),
                "{a:?} double-matched"
            );
            assert!(
                seen.insert((b.0, g.dataset.kb_of(*a).0)),
                "{b:?} double-matched"
            );
        }
    }

    #[test]
    fn stop_tokens_are_skipped() {
        let g = world();
        let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
        // Frequency cap of 1: every shared token becomes a stop token after
        // its second carrier, so candidate counts collapse.
        let strict = IncrementalConfig {
            max_token_frequency: 1,
            ..Default::default()
        };
        let mut inc_strict = IncrementalResolver::new(&g.dataset, &matcher, strict);
        let mut inc_default =
            IncrementalResolver::new(&g.dataset, &matcher, IncrementalConfig::default());
        let strict_report = inc_strict.arrive_all(g.dataset.entities());
        let default_report = inc_default.arrive_all(g.dataset.entities());
        assert!(strict_report.candidates < default_report.candidates);
    }

    #[test]
    fn empty_resolver_state() {
        let g = world();
        let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
        let mut inc = IncrementalResolver::new(&g.dataset, &matcher, IncrementalConfig::default());
        assert_eq!(inc.arrived_count(), 0);
        assert_eq!(inc.comparisons(), 0);
        assert!(inc.matches().is_empty());
        assert!(inc.clusters().is_empty());
    }
}
