//! Pruning algorithms over the weighted blocking graph.
//!
//! Two axes (per the meta-blocking literature):
//! * **weight-based** (WEP, WNP) keep edges above a mean-weight threshold;
//! * **cardinality-based** (CEP, CNP) keep a fixed number of top edges.
//!
//! and two scopes:
//! * **edge-centric** (WEP, CEP): one global criterion;
//! * **node-centric** (WNP, CNP): a criterion per node neighbourhood, with
//!   a *redundancy* (union — an edge survives if either endpoint keeps it)
//!   or *reciprocal* (intersection — both endpoints must keep it) variant.

use crate::graph::BlockingGraph;
use crate::weights::WeightingScheme;
use minoan_common::stats::{mean, pairwise_sum};
use minoan_common::{OrdF64, TopK};
use minoan_rdf::EntityId;

/// A retained comparison with its evidence weight.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightedPair {
    /// Smaller endpoint.
    pub a: EntityId,
    /// Larger endpoint.
    pub b: EntityId,
    /// Weight under the scheme the pruning ran with.
    pub weight: f64,
}

/// The output of a pruning algorithm.
#[derive(Clone, Debug)]
pub struct PrunedComparisons {
    /// Retained pairs, sorted by descending weight (ties by pair id).
    pub pairs: Vec<WeightedPair>,
    /// Scheme the weights were computed with.
    pub scheme: WeightingScheme,
    /// Edges in the input graph (for retention-ratio reporting).
    pub input_edges: usize,
}

impl PrunedComparisons {
    /// Fraction of input edges retained.
    pub fn retention(&self) -> f64 {
        if self.input_edges == 0 {
            0.0
        } else {
            self.pairs.len() as f64 / self.input_edges as f64
        }
    }

    /// Builds the result from already-selected pairs, applying the
    /// presentation order every pruning path shares: weight descending,
    /// ties by pair. The streaming and MapReduce paths rely on this being
    /// the single definition of that order.
    pub(crate) fn from_weighted_pairs(
        mut pairs: Vec<WeightedPair>,
        scheme: WeightingScheme,
        input_edges: usize,
    ) -> Self {
        pairs.sort_by(|x, y| {
            y.weight
                .partial_cmp(&x.weight)
                .expect("weights are finite")
                .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
        });
        Self {
            pairs,
            scheme,
            input_edges,
        }
    }

    /// An explicit empty result that still reports the input-edge count,
    /// used when a cardinality of 0 makes pruning degenerate (empty or
    /// single-assignment collections).
    pub(crate) fn empty(scheme: WeightingScheme, input_edges: usize) -> Self {
        Self {
            pairs: Vec::new(),
            scheme,
            input_edges,
        }
    }

    fn from_indices(
        graph: &BlockingGraph,
        weights: &[f64],
        scheme: WeightingScheme,
        mut keep: Vec<u32>,
    ) -> Self {
        keep.sort_unstable();
        keep.dedup();
        let pairs: Vec<WeightedPair> = keep
            .into_iter()
            .map(|i| {
                let e = graph.edge(i);
                WeightedPair {
                    a: e.a,
                    b: e.b,
                    weight: weights[i as usize],
                }
            })
            .collect();
        Self::from_weighted_pairs(pairs, scheme, graph.num_edges())
    }
}

/// The WEP threshold from per-source-entity partial sums: the mean over
/// *positive-weight* edges. Zero-weight edges (ECBS/EJS can produce them
/// when an entity appears in every block) carry no co-occurrence evidence
/// and are excluded from the denominator — they could never be kept, so
/// counting them only deflated the mean.
///
/// Both backends feed this the same fixed-length slab (`sums[a]` = Σ of
/// the positive weights of the edges whose *smaller* endpoint is `a`,
/// accumulated in ascending larger-endpoint order) and the same positive
/// count; [`pairwise_sum`]'s reduction shape depends only on the slab
/// length, so the threshold is bit-identical across backends and thread
/// counts.
pub(crate) fn wep_threshold_from_sums(sums: &[f64], positive_edges: u64) -> f64 {
    if positive_edges == 0 {
        0.0
    } else {
        pairwise_sum(sums) / positive_edges as f64
    }
}

/// Weighted Edge Pruning: keep edges with weight ≥ the global mean weight
/// (mean over the positive-weight edges; see `wep_threshold_from_sums`,
/// the crate-internal reduction all three backends share).
#[doc(hidden)]
pub fn wep(graph: &BlockingGraph, scheme: WeightingScheme) -> PrunedComparisons {
    let weights = scheme.all_weights(graph);
    // Per-source partial sums in slab order (edges sorted by (a, b), so
    // each source accumulates over ascending targets) — the exact f64
    // sequence the streaming sweep of entity `a` produces.
    let mut sums = vec![0.0f64; graph.num_nodes()];
    let mut positive = 0u64;
    for (i, e) in graph.edges().iter().enumerate() {
        let w = weights[i];
        if w > 0.0 {
            sums[e.a.index()] += w;
            positive += 1;
        }
    }
    let threshold = wep_threshold_from_sums(&sums, positive);
    let keep: Vec<u32> = (0..graph.num_edges() as u32)
        .filter(|&i| weights[i as usize] >= threshold && weights[i as usize] > 0.0)
        .collect();
    PrunedComparisons::from_indices(graph, &weights, scheme, keep)
}

/// Default CEP/CNP cardinality: `K = BC / 2` where BC is the total number
/// of block assignments (the literature's budget: half an assignment's
/// worth of comparisons).
pub fn default_cep_k(graph: &BlockingGraph) -> usize {
    default_cep_k_from(graph.total_assignments())
}

/// The default-CEP-K formula from the raw assignment count — the single
/// definition both backends use. Note this is 0 on empty or
/// single-assignment collections; [`cep`] guards that case explicitly.
pub(crate) fn default_cep_k_from(total_assignments: u64) -> usize {
    (total_assignments / 2) as usize
}

/// Cardinality Edge Pruning: keep the global top-`k` edges by weight
/// (`k` defaults to [`default_cep_k`]).
///
/// `k == 0` (an explicit `Some(0)`, or the default on an empty or
/// single-assignment collection) short-circuits to an explicit empty
/// result that still reports `input_edges`, rather than driving a
/// degenerate zero-capacity heap.
#[doc(hidden)]
pub fn cep(graph: &BlockingGraph, scheme: WeightingScheme, k: Option<usize>) -> PrunedComparisons {
    let k = k.unwrap_or_else(|| default_cep_k(graph));
    if k == 0 {
        return PrunedComparisons::empty(scheme, graph.num_edges());
    }
    let weights = scheme.all_weights(graph);
    // TopK orders by the tuple; invert edge index so earlier edges win ties.
    let mut top: TopK<(OrdF64, std::cmp::Reverse<u32>)> = TopK::new(k);
    for (i, &w) in weights.iter().enumerate() {
        if w > 0.0 {
            top.push((OrdF64(w), std::cmp::Reverse(i as u32)));
        }
    }
    let keep: Vec<u32> = top
        .into_sorted_vec()
        .into_iter()
        .map(|(_, r)| r.0)
        .collect();
    PrunedComparisons::from_indices(graph, &weights, scheme, keep)
}

/// Weighted Node Pruning: each node keeps its incident edges with weight ≥
/// the mean weight of its neighbourhood; `reciprocal` demands both
/// endpoints keep the edge, otherwise either suffices.
#[doc(hidden)]
pub fn wnp(graph: &BlockingGraph, scheme: WeightingScheme, reciprocal: bool) -> PrunedComparisons {
    let weights = scheme.all_weights(graph);
    let mut votes = vec![0u8; graph.num_edges()];
    for node in 0..graph.num_nodes() as u32 {
        let inc = graph.incident(EntityId(node));
        if inc.is_empty() {
            continue;
        }
        let local: Vec<f64> = inc.iter().map(|&i| weights[i as usize]).collect();
        let threshold = mean(&local);
        for &i in inc {
            if weights[i as usize] >= threshold && weights[i as usize] > 0.0 {
                votes[i as usize] += 1;
            }
        }
    }
    let need = if reciprocal { 2 } else { 1 };
    let keep: Vec<u32> = (0..graph.num_edges() as u32)
        .filter(|&i| votes[i as usize] >= need)
        .collect();
    PrunedComparisons::from_indices(graph, &weights, scheme, keep)
}

/// Default CNP per-node cardinality: `k = max(1, ⌊BC / |E|⌋)` where `|E|`
/// is the number of *active* (blocked) entities.
pub fn default_cnp_k(graph: &BlockingGraph) -> usize {
    default_cnp_k_from(graph.total_assignments(), graph.active_nodes())
}

/// The default-CNP-k formula from raw aggregates — the single definition
/// both the materialised and streaming paths use, so `k = None` stays
/// bit-identical across backends.
pub(crate) fn default_cnp_k_from(total_assignments: u64, active_nodes: usize) -> usize {
    ((total_assignments as usize) / active_nodes.max(1)).max(1)
}

/// Cardinality Node Pruning: each node keeps its top-`k` incident edges
/// (`k` defaults to [`default_cnp_k`], which is always ≥ 1); `reciprocal`
/// as in [`wnp`]. An explicit `k == 0` short-circuits to an explicit
/// empty result (see [`cep`]).
#[doc(hidden)]
pub fn cnp(
    graph: &BlockingGraph,
    scheme: WeightingScheme,
    reciprocal: bool,
    k: Option<usize>,
) -> PrunedComparisons {
    let k = k.unwrap_or_else(|| default_cnp_k(graph));
    if k == 0 {
        return PrunedComparisons::empty(scheme, graph.num_edges());
    }
    let weights = scheme.all_weights(graph);
    let mut votes = vec![0u8; graph.num_edges()];
    for node in 0..graph.num_nodes() as u32 {
        let inc = graph.incident(EntityId(node));
        if inc.is_empty() {
            continue;
        }
        let mut top: TopK<(OrdF64, std::cmp::Reverse<u32>)> = TopK::new(k);
        for &i in inc {
            let w = weights[i as usize];
            if w > 0.0 {
                top.push((OrdF64(w), std::cmp::Reverse(i)));
            }
        }
        for (_, r) in top.into_sorted_vec() {
            votes[r.0 as usize] += 1;
        }
    }
    let need = if reciprocal { 2 } else { 1 };
    let keep: Vec<u32> = (0..graph.num_edges() as u32)
        .filter(|&i| votes[i as usize] >= need)
        .collect();
    PrunedComparisons::from_indices(graph, &weights, scheme, keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_blocking::builders::token_blocking;
    use minoan_blocking::{BlockCollection, ErMode};
    use minoan_datagen::{generate, profiles};
    use minoan_rdf::{DatasetBuilder, EntityId};

    fn toy_graph() -> BlockingGraph {
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/");
        let k1 = b.add_kb("b", "http://b/");
        for i in 0..3 {
            b.add_literal(k0, &format!("http://a/{i}"), "http://p", "x");
        }
        for i in 3..6 {
            b.add_literal(k1, &format!("http://b/{i}"), "http://p", "x");
        }
        let ds = b.build();
        let e = EntityId;
        // Strong pair (0,3): 3 common blocks. Weak pairs share one big block.
        let groups = vec![
            ("k1".to_string(), vec![e(0), e(3)]),
            ("k2".to_string(), vec![e(0), e(3)]),
            ("k3".to_string(), vec![e(0), e(3)]),
            ("big".to_string(), vec![e(0), e(1), e(2), e(3), e(4), e(5)]),
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        BlockingGraph::build(&c)
    }

    #[test]
    fn wep_keeps_above_mean() {
        let g = toy_graph();
        let out = wep(&g, WeightingScheme::Cbs);
        // Weights: (0,3)=4, all others 1; mean = (4 + 8×1)/9 = 1.33…
        assert_eq!(out.pairs.len(), 1);
        assert_eq!((out.pairs[0].a, out.pairs[0].b), (EntityId(0), EntityId(3)));
        assert!(out.retention() < 0.2);
    }

    #[test]
    fn cep_respects_cardinality() {
        let g = toy_graph();
        let out = cep(&g, WeightingScheme::Cbs, Some(3));
        assert_eq!(out.pairs.len(), 3);
        assert_eq!((out.pairs[0].a, out.pairs[0].b), (EntityId(0), EntityId(3)));
        // Weights sorted descending.
        assert!(out.pairs.windows(2).all(|w| w[0].weight >= w[1].weight));
        // k larger than edges keeps all.
        let all = cep(&g, WeightingScheme::Cbs, Some(100));
        assert_eq!(all.pairs.len(), g.num_edges());
    }

    #[test]
    fn reciprocal_is_subset_of_union() {
        let g = toy_graph();
        for scheme in WeightingScheme::ALL {
            let union = wnp(&g, scheme, false);
            let recip = wnp(&g, scheme, true);
            assert!(recip.pairs.len() <= union.pairs.len(), "{scheme:?}");
            let uset: std::collections::HashSet<_> =
                union.pairs.iter().map(|p| (p.a, p.b)).collect();
            assert!(recip.pairs.iter().all(|p| uset.contains(&(p.a, p.b))));

            let cunion = cnp(&g, scheme, false, Some(2));
            let crecip = cnp(&g, scheme, true, Some(2));
            assert!(crecip.pairs.len() <= cunion.pairs.len());
        }
    }

    #[test]
    fn wnp_keeps_strong_local_edges() {
        let g = toy_graph();
        let out = wnp(&g, WeightingScheme::Cbs, true);
        assert!(out
            .pairs
            .iter()
            .any(|p| (p.a, p.b) == (EntityId(0), EntityId(3))));
    }

    #[test]
    fn cnp_per_node_cardinality_bounds_retention() {
        let g = toy_graph();
        let out = cnp(&g, WeightingScheme::Arcs, false, Some(1));
        // Union of per-node top-1: at most one edge per node.
        assert!(out.pairs.len() <= g.active_nodes());
        for p in &out.pairs {
            assert!(p.weight > 0.0);
        }
    }

    #[test]
    fn pruning_preserves_recall_on_generated_data() {
        let g = generate(&profiles::center_dense(200, 6));
        let blocks = token_blocking(&g.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        let truth_pairs: std::collections::HashSet<_> = g.truth.matching_pair_iter().collect();
        let base_found = graph
            .edges()
            .iter()
            .filter(|e| truth_pairs.contains(&(e.a, e.b)))
            .count() as f64;
        for (label, out) in [
            ("wep/cbs", wep(&graph, WeightingScheme::Cbs)),
            ("wnp/arcs", wnp(&graph, WeightingScheme::Arcs, false)),
            ("cnp/js", cnp(&graph, WeightingScheme::Js, false, None)),
        ] {
            let found = out
                .pairs
                .iter()
                .filter(|p| truth_pairs.contains(&(p.a, p.b)))
                .count() as f64;
            let kept_recall = found / base_found;
            assert!(
                kept_recall > 0.85,
                "{label}: lost too many matches ({kept_recall:.3})"
            );
            assert!(
                out.pairs.len() < graph.num_edges(),
                "{label}: pruned nothing"
            );
        }
    }

    #[test]
    fn empty_graph_is_handled() {
        let ds = DatasetBuilder::new().build();
        let c = BlockCollection::from_groups(
            &ds,
            ErMode::CleanClean,
            Vec::<(String, Vec<EntityId>)>::new(),
        );
        let g = BlockingGraph::build(&c);
        for scheme in [WeightingScheme::Cbs, WeightingScheme::Ejs] {
            assert!(wep(&g, scheme).pairs.is_empty());
            assert!(cep(&g, scheme, None).pairs.is_empty());
            assert!(wnp(&g, scheme, false).pairs.is_empty());
            assert!(cnp(&g, scheme, true, None).pairs.is_empty());
        }
    }

    #[test]
    fn default_cardinalities_are_sane() {
        let g = toy_graph();
        assert!(default_cep_k(&g) >= 1);
        assert!(default_cnp_k(&g) >= 1);
    }

    /// Fixture with ECBS zero-weight edges: entities 0 (KB a) and 5–8
    /// (KB b) sit in *every* block, so `ln(|B|/|B_i|) = 0` kills each of
    /// their edges. Positive edges: (1,3) weak ≈ 0.199, (2,4) strong
    /// ≈ 2.59, plus 14 zero-weight edges.
    fn zero_heavy_ecbs_graph() -> BlockingGraph {
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/");
        let k1 = b.add_kb("b", "http://b/");
        for i in 0..3 {
            b.add_literal(k0, &format!("http://a/{i}"), "http://p", "x");
        }
        for i in 3..9 {
            b.add_literal(k1, &format!("http://b/{i}"), "http://p", "x");
        }
        let ds = b.build();
        let e = EntityId;
        let everywhere = [e(0), e(5), e(6), e(7), e(8)];
        let mut groups: Vec<(String, Vec<EntityId>)> = (0..4)
            .map(|i| {
                let mut members = vec![e(1), e(3)];
                members.extend_from_slice(&everywhere);
                (format!("strong{i}"), members)
            })
            .collect();
        let mut weak = vec![e(2), e(4)];
        weak.extend_from_slice(&everywhere);
        groups.push(("weak".to_string(), weak));
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        BlockingGraph::build(&c)
    }

    #[test]
    fn wep_mean_excludes_zero_weight_edges() {
        let g = zero_heavy_ecbs_graph();
        assert_eq!(g.num_edges(), 16);
        let weights = WeightingScheme::Ecbs.all_weights(&g);
        let positives: Vec<f64> = weights.iter().copied().filter(|&w| w > 0.0).collect();
        assert_eq!(positives.len(), 2, "fixture: exactly two positive edges");
        // The mean over positive edges (≈ 1.39) excludes the weak edge
        // (≈ 0.199); the old zero-deflated mean (≈ 0.174) kept it.
        let deflated = mean(&weights);
        let weak = positives.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            deflated < weak && weak < mean(&positives),
            "fixture must separate the two definitions"
        );
        let out = wep(&g, WeightingScheme::Ecbs);
        assert_eq!(out.pairs.len(), 1, "only the strong edge survives");
        assert_eq!((out.pairs[0].a, out.pairs[0].b), (EntityId(2), EntityId(4)));
    }

    #[test]
    fn wep_threshold_denominator_counts_positive_edges_only() {
        // sums {3, 2} over 2 positive edges → 2.5; a third zero-weight
        // edge must not deflate it to 5/3.
        assert_eq!(wep_threshold_from_sums(&[3.0, 2.0, 0.0], 2), 2.5);
        assert_eq!(wep_threshold_from_sums(&[0.0, 0.0], 0), 0.0);
    }

    #[test]
    fn zero_cardinality_returns_explicit_empty_with_stats() {
        let g = toy_graph();
        for scheme in [WeightingScheme::Cbs, WeightingScheme::Ejs] {
            let e = cep(&g, scheme, Some(0));
            assert!(e.pairs.is_empty());
            assert_eq!(e.input_edges, g.num_edges(), "stats survive the guard");
            assert_eq!(e.retention(), 0.0);
            let n = cnp(&g, scheme, false, Some(0));
            assert!(n.pairs.is_empty());
            assert_eq!(n.input_edges, g.num_edges());
        }
    }

    #[test]
    fn default_cep_k_zero_on_single_assignment_collection() {
        // One block with one entity: BC = 1 → default K = 0; the guard
        // must yield an explicit empty result, not a degenerate heap.
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/");
        b.add_literal(k0, "http://a/0", "http://p", "x");
        let ds = b.build();
        let c = BlockCollection::from_groups(
            &ds,
            ErMode::Dirty,
            vec![("only".to_string(), vec![EntityId(0)])],
        );
        let g = BlockingGraph::build(&c);
        assert_eq!(default_cep_k(&g), 0);
        let out = cep(&g, WeightingScheme::Cbs, None);
        assert!(out.pairs.is_empty());
        assert_eq!(out.input_edges, 0);
    }
}
