//! On-the-fly meta-blocking: every pruning family — WEP, CEP, WNP, CNP
//! and BLAST — without materialising the blocking graph.
//!
//! The materialised path builds the full edge slab (one record per
//! distinct comparable pair) before pruning discards most of it. That is
//! wasted work and — on large LOD worlds — wasted memory: pruning
//! decisions need per-node neighbourhoods (node-centric) or two global
//! scalars (edge-centric), never random access to the whole slab. The
//! streaming path therefore sweeps the block collection entity by entity
//! (the crate-internal `sweep` module): per node it reconstructs the
//! incident edge
//! statistics in dense epoch-reset accumulators, applies the pruning
//! criterion, and emits only the *kept* pairs.
//!
//! # Backend × method support matrix
//!
//! | Method               | Materialised              | Streaming |
//! |----------------------|---------------------------|-----------|
//! | WEP (global mean)    | [`crate::prune::wep`]     | [`wep`] — two-pass: partial-sum sweep, then re-sweep ≥ threshold |
//! | CEP (global top-k)   | [`crate::prune::cep`]     | [`cep`] — per-thread bounded heaps, deterministic merge |
//! | WNP (local mean)     | [`crate::prune::wnp`]     | [`wnp`] |
//! | CNP (local top-k)    | [`crate::prune::cnp`]     | [`cnp`] |
//! | BLAST (ratio-of-max) | [`crate::blast::blast`]   | [`blast`] |
//! | no pruning           | `BlockingGraph::edges`    | [`weighted_edges`] |
//!
//! Every cell of the streaming column is **bit-identical** to its
//! materialised counterpart for every weighting scheme and thread count;
//! property tests in `tests/streaming_equivalence.rs` enforce this.
//!
//! The sweeps are embarrassingly parallel over entity ranges (scoped
//! threads, one scratch per worker) and every per-edge quantity is
//! computed through the same kernels as the materialised path
//! ([`crate::kernel::weight_from_stats`],
//! [`crate::blast::chi_square_from_stats`]) with
//! f64 accumulation in the same order. Two constructions keep the
//! *global* criteria deterministic without a global edge slab:
//!
//! * **WEP** needs one global mean. Pass 1 accumulates, per entity `a`,
//!   the sum of its positive forward-edge weights (ascending neighbour
//!   order — the slab order) into a fixed-length per-entity slab; the
//!   final reduction is a fixed-shape pairwise sum
//!   ([`minoan_common::stats::pairwise_sum`]) whose tree depends only on
//!   the entity count, so the threshold is independent of the worker
//!   partitioning. Pass 2 re-sweeps and emits edges ≥ threshold.
//! * **CEP** needs one global top-k. Each worker keeps a bounded
//!   [`TopK`] over its forward edges keyed by
//!   `(OrdF64(weight), Reverse((a, b)))` — the same total order as the
//!   materialised `(weight, Reverse(edge rank))` key, because the slab is
//!   sorted by pair — and the per-thread survivors merge through one more
//!   bounded heap. A strict total order makes the merged set the exact
//!   global top-k regardless of how edges were partitioned.
//!
//! EJS needs two global aggregates (node degrees and the distinct-edge
//! count |V|); those come from one extra counting sweep, still without
//! materialising edges.

use crate::blast::chi_square_from_stats;
use crate::kernel::{
    self, combine_votes, forward_weight, neighbour_weights, normalised, WeightGlobals,
};
use crate::prune::{PrunedComparisons, WeightedPair};
use crate::sweep::{default_threads, entity_sweep_ranges, split_by_ends, SweepScratch};
use crate::weights::WeightingScheme;
use minoan_blocking::BlockCollection;
use minoan_common::stats::mean;
use minoan_common::{OrdF64, TopK};
use minoan_rdf::EntityId;

/// Tuning for the streaming sweeps.
#[derive(Clone, Copy, Debug)]
pub struct StreamingOptions {
    /// Worker threads for the parallel entity sweeps (≥ 1).
    pub threads: usize,
}

impl Default for StreamingOptions {
    fn default() -> Self {
        Self {
            threads: default_threads(),
        }
    }
}

impl StreamingOptions {
    /// Options with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }
}

/// One parallel pass filling a per-entity `u32` (or `f64`) slot from its
/// sweep — used for degree counting and BLAST local maxima.
fn fill_per_entity<T: Send, F>(
    collection: &BlockCollection,
    ranges: &[std::ops::Range<usize>],
    out: &mut [T],
    f: F,
) where
    F: Fn(usize, &SweepScratch) -> T + Sync,
{
    let n = collection.num_entities();
    let chunks = split_by_ends(out, ranges.iter().map(|r| r.end));
    let f = &f;
    std::thread::scope(|s| {
        for (r, chunk) in ranges.iter().zip(chunks) {
            let r = r.clone();
            s.spawn(move || {
                let mut scratch = SweepScratch::new(n);
                for a in r.clone() {
                    scratch.sweep(collection, EntityId(a as u32));
                    chunk[a - r.start] = f(a, &scratch);
                }
            });
        }
    });
}

/// One counting sweep over all entities: degrees, |V| and the active-node
/// count, in parallel, without materialising any edge.
fn count_pass(collection: &BlockCollection, ranges: &[std::ops::Range<usize>]) -> WeightGlobals {
    let n = collection.num_entities();
    let mut degrees = vec![0u32; n];
    fill_per_entity(collection, ranges, &mut degrees, |_a, scratch| {
        scratch.neighbours().len() as u32
    });
    // |V| = Σ degrees / 2 (every edge counted at both endpoints).
    let num_edges = degrees.iter().map(|&d| d as u64).sum::<u64>() as usize / 2;
    let active_nodes = degrees.iter().filter(|&&d| d > 0).count();
    WeightGlobals {
        blocks_of: kernel::blocks_of(collection),
        num_blocks: collection.len(),
        degrees,
        num_edges,
        active_nodes,
    }
}

/// Globals needed by `scheme` (and optionally the active-node count).
fn globals_for(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    ranges: &[std::ops::Range<usize>],
    need_active: bool,
) -> WeightGlobals {
    if scheme == WeightingScheme::Ejs || need_active {
        count_pass(collection, ranges)
    } else {
        WeightGlobals::basic(collection)
    }
}

/// Runs `keep` once per entity with ≥ 1 neighbour, handing it the node,
/// the sweep scratch (stats for the node's sorted neighbours), a reusable
/// f64 buffer and the emit sink. Returns all emitted pairs sorted by pair,
/// plus the number of distinct pairs (counted at their smaller endpoint).
fn per_node_pass<K>(
    collection: &BlockCollection,
    ranges: &[std::ops::Range<usize>],
    keep: K,
) -> (Vec<WeightedPair>, u64)
where
    K: Fn(u32, &SweepScratch, &mut Vec<f64>, &mut Vec<WeightedPair>) + Sync,
{
    let n = collection.num_entities();
    let keep = &keep;
    let mut outs: Vec<(Vec<WeightedPair>, u64)> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(ranges.len());
        for r in ranges {
            let r = r.clone();
            handles.push(s.spawn(move || {
                let mut scratch = SweepScratch::new(n);
                let mut kept = Vec::new();
                let mut weights_buf: Vec<f64> = Vec::new();
                let mut fwd_edges = 0u64;
                for a in r {
                    let a = a as u32;
                    scratch.sweep(collection, EntityId(a));
                    if scratch.neighbours().is_empty() {
                        continue;
                    }
                    fwd_edges += scratch.neighbours().iter().filter(|&&y| y > a).count() as u64;
                    keep(a, &scratch, &mut weights_buf, &mut kept);
                }
                (kept, fwd_edges)
            }));
        }
        for h in handles {
            outs.push(h.join().expect("sweep worker panicked"));
        }
    });
    let fwd: u64 = outs.iter().map(|o| o.1).sum();
    let mut kept: Vec<WeightedPair> = outs.into_iter().flat_map(|o| o.0).collect();
    kept.sort_unstable_by_key(|x| (x.a, x.b));
    (kept, fwd)
}

/// Streaming Weighted Edge Pruning — bit-identical to
/// [`crate::prune::wep`] on the built graph.
///
/// Two passes, neither materialising an edge: pass 1 accumulates each
/// entity's positive forward-edge weight sum into a fixed-length slab and
/// reduces it with a fixed-shape pairwise sum (the threshold is therefore
/// independent of the thread count); pass 2 re-sweeps and emits the edges
/// at or above the threshold.
pub fn wep(collection: &BlockCollection, scheme: WeightingScheme) -> PrunedComparisons {
    wep_with(collection, scheme, &StreamingOptions::default())
}

/// [`wep`] with explicit options.
pub fn wep_with(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    opts: &StreamingOptions,
) -> PrunedComparisons {
    let ranges = entity_sweep_ranges(collection, opts.threads.max(1));
    let globals = globals_for(collection, scheme, &ranges, false);
    let n = collection.num_entities();

    // Pass 1 — per-entity partial sums of positive forward-edge weights,
    // accumulated in ascending neighbour order (the slab order the
    // materialised path sums in), plus the positive / forward counts.
    let mut sums = vec![0.0f64; n];
    let mut positive = 0u64;
    let mut fwd_edges = 0u64;
    {
        let chunks = split_by_ends(&mut sums, ranges.iter().map(|r| r.end));
        let globals = &globals;
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(ranges.len());
            for (r, chunk) in ranges.iter().zip(chunks) {
                let r = r.clone();
                handles.push(s.spawn(move || {
                    let mut scratch = SweepScratch::new(n);
                    let (mut pos, mut fwd) = (0u64, 0u64);
                    for a in r.clone() {
                        scratch.sweep(collection, EntityId(a as u32));
                        let mut sum = 0.0f64;
                        for &y in scratch.neighbours() {
                            if y <= a as u32 {
                                continue;
                            }
                            fwd += 1;
                            let w = forward_weight(scheme, &scratch, a as u32, y, globals);
                            if w > 0.0 {
                                sum += w;
                                pos += 1;
                            }
                        }
                        chunk[a - r.start] = sum;
                    }
                    (pos, fwd)
                }));
            }
            for h in handles {
                let (p, f) = h.join().expect("sweep worker panicked");
                positive += p;
                fwd_edges += f;
            }
        });
    }
    let threshold = crate::prune::wep_threshold_from_sums(&sums, positive);

    // Pass 2 — re-sweep and emit each edge once, at its smaller endpoint.
    let (kept, _) = {
        let globals = &globals;
        per_node_pass(collection, &ranges, move |a, scratch, _weights, out| {
            for &y in scratch.neighbours() {
                if y <= a {
                    continue;
                }
                let w = forward_weight(scheme, scratch, a, y, globals);
                if w >= threshold && w > 0.0 {
                    out.push(WeightedPair {
                        a: EntityId(a),
                        b: EntityId(y),
                        weight: w,
                    });
                }
            }
        })
    };
    let input_edges = if globals.num_edges > 0 {
        globals.num_edges
    } else {
        fwd_edges as usize
    };
    PrunedComparisons::from_weighted_pairs(kept, scheme, input_edges)
}

/// Key of the CEP selection order: weight descending, ties to the
/// *earlier* pair. Identical to the materialised `(weight, Reverse(edge
/// rank))` order because the edge slab is sorted by pair.
type CepKey = (OrdF64, std::cmp::Reverse<(EntityId, EntityId)>);

/// Streaming Cardinality Edge Pruning — bit-identical to
/// [`crate::prune::cep`] on the built graph.
///
/// Each worker keeps a bounded top-k heap over the forward edges of its
/// entity range (the `a < b` orientation visits every edge exactly once);
/// the per-thread survivors merge through one more bounded heap. The key
/// is a strict total order, so the merged set is the exact global top-k
/// for any partitioning.
pub fn cep(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    k: Option<usize>,
) -> PrunedComparisons {
    cep_with(collection, scheme, k, &StreamingOptions::default())
}

/// [`cep`] with explicit options.
pub fn cep_with(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    k: Option<usize>,
    opts: &StreamingOptions,
) -> PrunedComparisons {
    let ranges = entity_sweep_ranges(collection, opts.threads.max(1));
    let k = k.unwrap_or_else(|| crate::prune::default_cep_k_from(collection.total_assignments()));
    if k == 0 {
        // Degenerate cardinality (empty or single-assignment collection):
        // report the edge count without driving a zero-capacity heap.
        let g = count_pass(collection, &ranges);
        return PrunedComparisons::empty(scheme, g.num_edges);
    }
    let globals = globals_for(collection, scheme, &ranges, false);
    let n = collection.num_entities();
    let mut merged: TopK<CepKey> = TopK::new(k);
    let mut fwd_edges = 0u64;
    {
        let globals = &globals;
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(ranges.len());
            for r in &ranges {
                let r = r.clone();
                handles.push(s.spawn(move || {
                    let mut scratch = SweepScratch::new(n);
                    let mut top: TopK<CepKey> = TopK::new(k);
                    let mut fwd = 0u64;
                    for a in r {
                        let a = a as u32;
                        scratch.sweep(collection, EntityId(a));
                        for &y in scratch.neighbours() {
                            if y <= a {
                                continue;
                            }
                            fwd += 1;
                            let w = forward_weight(scheme, &scratch, a, y, globals);
                            if w > 0.0 {
                                top.push((
                                    OrdF64(w),
                                    std::cmp::Reverse((EntityId(a), EntityId(y))),
                                ));
                            }
                        }
                    }
                    (top, fwd)
                }));
            }
            for h in handles {
                let (top, fwd) = h.join().expect("sweep worker panicked");
                fwd_edges += fwd;
                for item in top.into_sorted_vec() {
                    merged.push(item);
                }
            }
        });
    }
    let input_edges = if globals.num_edges > 0 {
        globals.num_edges
    } else {
        fwd_edges as usize
    };
    let pairs: Vec<WeightedPair> = merged
        .into_sorted_vec()
        .into_iter()
        .map(|(w, r)| WeightedPair {
            a: r.0 .0,
            b: r.0 .1,
            weight: w.0,
        })
        .collect();
    PrunedComparisons::from_weighted_pairs(pairs, scheme, input_edges)
}

/// Every distinct comparable pair with its weight, sorted by pair — the
/// streaming equivalent of weighting [`BlockingGraph`](crate::BlockingGraph)
/// edges one by one (the unpruned path), without building the graph.
pub fn weighted_edges(collection: &BlockCollection, scheme: WeightingScheme) -> Vec<WeightedPair> {
    weighted_edges_with(collection, scheme, &StreamingOptions::default())
}

/// [`weighted_edges`] with explicit options.
pub fn weighted_edges_with(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    opts: &StreamingOptions,
) -> Vec<WeightedPair> {
    let ranges = entity_sweep_ranges(collection, opts.threads.max(1));
    let globals = globals_for(collection, scheme, &ranges, false);
    let globals = &globals;
    let (kept, _) = per_node_pass(collection, &ranges, move |a, scratch, _weights, out| {
        for &y in scratch.neighbours() {
            if y <= a {
                continue;
            }
            out.push(WeightedPair {
                a: EntityId(a),
                b: EntityId(y),
                weight: forward_weight(scheme, scratch, a, y, globals),
            });
        }
    });
    kept
}

/// Streaming Weighted Node Pruning — bit-identical to
/// [`crate::prune::wnp`] on the built graph.
pub fn wnp(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    reciprocal: bool,
) -> PrunedComparisons {
    wnp_with(collection, scheme, reciprocal, &StreamingOptions::default())
}

/// [`wnp`] with explicit options.
pub fn wnp_with(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    reciprocal: bool,
    opts: &StreamingOptions,
) -> PrunedComparisons {
    let ranges = entity_sweep_ranges(collection, opts.threads.max(1));
    let globals = globals_for(collection, scheme, &ranges, false);
    let (kept, fwd) = {
        let globals = &globals;
        per_node_pass(collection, &ranges, move |a, scratch, weights, out| {
            neighbour_weights(scheme, scratch, a, globals, weights);
            let threshold = mean(weights);
            for (i, &y) in scratch.neighbours().iter().enumerate() {
                let w = weights[i];
                if w >= threshold && w > 0.0 {
                    out.push(normalised(a, y, w));
                }
            }
        })
    };
    let input_edges = if globals.num_edges > 0 {
        globals.num_edges
    } else {
        fwd as usize
    };
    PrunedComparisons::from_weighted_pairs(combine_votes(kept, reciprocal), scheme, input_edges)
}

/// Streaming Cardinality Node Pruning — bit-identical to
/// [`crate::prune::cnp`] on the built graph.
pub fn cnp(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    reciprocal: bool,
    k: Option<usize>,
) -> PrunedComparisons {
    cnp_with(
        collection,
        scheme,
        reciprocal,
        k,
        &StreamingOptions::default(),
    )
}

/// [`cnp`] with explicit options.
pub fn cnp_with(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    reciprocal: bool,
    k: Option<usize>,
    opts: &StreamingOptions,
) -> PrunedComparisons {
    let ranges = entity_sweep_ranges(collection, opts.threads.max(1));
    // The default k needs the active-node count, which needs a counting
    // pass anyway; EJS needs one for degrees. Otherwise one pass suffices.
    let globals = globals_for(collection, scheme, &ranges, k.is_none());
    let k = k.unwrap_or_else(|| {
        crate::prune::default_cnp_k_from(collection.total_assignments(), globals.active_nodes)
    });
    if k == 0 {
        // Explicit zero cardinality: mirror `prune::cnp`'s guard.
        let g = count_pass(collection, &ranges);
        return PrunedComparisons::empty(scheme, g.num_edges);
    }
    let (kept, fwd) = {
        let globals = &globals;
        per_node_pass(collection, &ranges, move |a, scratch, weights, out| {
            neighbour_weights(scheme, scratch, a, globals, weights);
            // Same selector the materialised path uses; tie-breaking by
            // normalised pair is order-isomorphic to the global edge index.
            let mut top: TopK<(OrdF64, std::cmp::Reverse<(EntityId, EntityId)>)> = TopK::new(k);
            for (i, &y) in scratch.neighbours().iter().enumerate() {
                let w = weights[i];
                if w > 0.0 {
                    let p = normalised(a, y, w);
                    top.push((OrdF64(w), std::cmp::Reverse((p.a, p.b))));
                }
            }
            for (w, r) in top.into_sorted_vec() {
                out.push(WeightedPair {
                    a: r.0 .0,
                    b: r.0 .1,
                    weight: w.0,
                });
            }
        })
    };
    let input_edges = if globals.num_edges > 0 {
        globals.num_edges
    } else {
        fwd as usize
    };
    PrunedComparisons::from_weighted_pairs(combine_votes(kept, reciprocal), scheme, input_edges)
}

/// Streaming BLAST (χ² weighting, loose ratio-of-local-max pruning) —
/// bit-identical to [`crate::blast::blast`] on the built graph.
///
/// # Panics
/// Panics unless `0 < ratio ≤ 1`.
pub fn blast(collection: &BlockCollection, ratio: f64) -> PrunedComparisons {
    blast_with(collection, ratio, &StreamingOptions::default())
}

/// [`blast`] with explicit options.
pub fn blast_with(
    collection: &BlockCollection,
    ratio: f64,
    opts: &StreamingOptions,
) -> PrunedComparisons {
    assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
    let ranges = entity_sweep_ranges(collection, opts.threads.max(1));
    let blocks = kernel::blocks_of(collection);
    let num_blocks = collection.len();

    // Pass 1: per-node local χ² maxima.
    let n = collection.num_entities();
    let mut local_max = vec![0.0f64; n];
    {
        let blocks = &blocks;
        fill_per_entity(collection, &ranges, &mut local_max, |a, scratch| {
            let mut max = 0.0f64;
            for &y in scratch.neighbours() {
                // Normalised endpoint order — see `neighbour_weights`.
                let (lo, hi) = if a < y as usize {
                    (a, y as usize)
                } else {
                    (y as usize, a)
                };
                let w =
                    chi_square_from_stats(scratch.cbs_of(y), blocks[lo], blocks[hi], num_blocks);
                if w > max {
                    max = w;
                }
            }
            max
        });
    }

    // Pass 2: emit each edge once (at its smaller endpoint) if either
    // endpoint would keep it.
    let blocks_ref = &blocks;
    let local_max_ref = &local_max;
    let (kept, fwd) = per_node_pass(collection, &ranges, move |a, scratch, _weights, out| {
        for &y in scratch.neighbours() {
            if y <= a {
                continue;
            }
            let w = chi_square_from_stats(
                scratch.cbs_of(y),
                blocks_ref[a as usize],
                blocks_ref[y as usize],
                num_blocks,
            );
            if w > 0.0
                && (w >= ratio * local_max_ref[a as usize]
                    || w >= ratio * local_max_ref[y as usize])
            {
                out.push(WeightedPair {
                    a: EntityId(a),
                    b: EntityId(y),
                    weight: w,
                });
            }
        }
    });
    // BLAST reports the χ² values under the CBS label, matching the
    // materialised implementation.
    PrunedComparisons::from_weighted_pairs(kept, WeightingScheme::Cbs, fwd as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BlockingGraph;
    use crate::{blast as blast_mod, prune};
    use minoan_blocking::builders::token_blocking;
    use minoan_blocking::ErMode;
    use minoan_datagen::{generate, profiles};

    use crate::assert_bit_identical;

    #[test]
    fn streaming_matches_materialised_on_generated_world() {
        let world = generate(&profiles::center_dense(150, 7));
        let blocks = token_blocking(&world.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        for threads in [1, 4] {
            let opts = StreamingOptions::with_threads(threads);
            for scheme in WeightingScheme::ALL {
                for reciprocal in [false, true] {
                    let s = wnp_with(&blocks, scheme, reciprocal, &opts);
                    let m = prune::wnp(&graph, scheme, reciprocal);
                    assert_bit_identical(
                        &s,
                        &m,
                        &format!("wnp/{scheme:?}/r={reciprocal}/t={threads}"),
                    );

                    let s = cnp_with(&blocks, scheme, reciprocal, Some(3), &opts);
                    let m = prune::cnp(&graph, scheme, reciprocal, Some(3));
                    assert_bit_identical(
                        &s,
                        &m,
                        &format!("cnp3/{scheme:?}/r={reciprocal}/t={threads}"),
                    );
                }
                let s = wep_with(&blocks, scheme, &opts);
                let m = prune::wep(&graph, scheme);
                assert_bit_identical(&s, &m, &format!("wep/{scheme:?}/t={threads}"));

                for k in [None, Some(5)] {
                    let s = cep_with(&blocks, scheme, k, &opts);
                    let m = prune::cep(&graph, scheme, k);
                    assert_bit_identical(&s, &m, &format!("cep{k:?}/{scheme:?}/t={threads}"));
                }
            }
            let s = blast_with(&blocks, 0.35, &opts);
            let m = blast_mod::blast(&graph, 0.35);
            assert_bit_identical(&s, &m, &format!("blast/t={threads}"));
        }
    }

    #[test]
    fn weighted_edges_match_the_slab() {
        let world = generate(&profiles::center_dense(120, 5));
        let blocks = token_blocking(&world.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        for threads in [1, 4] {
            for scheme in WeightingScheme::ALL {
                let stream =
                    weighted_edges_with(&blocks, scheme, &StreamingOptions::with_threads(threads));
                assert_eq!(stream.len(), graph.num_edges(), "{scheme:?}/t={threads}");
                for (s, e) in stream.iter().zip(graph.edges()) {
                    assert_eq!((s.a, s.b), (e.a, e.b));
                    assert_eq!(s.weight.to_bits(), scheme.weight(&graph, e).to_bits());
                }
            }
        }
    }

    #[test]
    fn default_k_matches_materialised_default() {
        let world = generate(&profiles::center_dense(100, 3));
        let blocks = token_blocking(&world.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        let s = cnp(&blocks, WeightingScheme::Js, false, None);
        let m = prune::cnp(&graph, WeightingScheme::Js, false, None);
        assert_bit_identical(&s, &m, "cnp/default-k");
    }

    #[test]
    fn empty_collection_is_fine() {
        let ds = minoan_rdf::DatasetBuilder::new().build();
        let c = BlockCollection::from_groups(
            &ds,
            ErMode::CleanClean,
            Vec::<(String, Vec<EntityId>)>::new(),
        );
        assert!(wnp(&c, WeightingScheme::Arcs, false).pairs.is_empty());
        assert!(cnp(&c, WeightingScheme::Ejs, true, None).pairs.is_empty());
        assert!(wep(&c, WeightingScheme::Js).pairs.is_empty());
        let e = cep(&c, WeightingScheme::Cbs, None);
        assert!(e.pairs.is_empty());
        assert_eq!(e.input_edges, 0, "empty default-k CEP still reports stats");
        assert!(weighted_edges(&c, WeightingScheme::Arcs).is_empty());
        assert!(blast(&c, 0.5).pairs.is_empty());
    }

    #[test]
    fn explicit_zero_k_reports_stats() {
        let world = generate(&profiles::center_dense(60, 8));
        let blocks = token_blocking(&world.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        for (out, label) in [
            (cep(&blocks, WeightingScheme::Js, Some(0)), "cep"),
            (cnp(&blocks, WeightingScheme::Js, false, Some(0)), "cnp"),
        ] {
            assert!(out.pairs.is_empty(), "{label}");
            assert_eq!(out.input_edges, graph.num_edges(), "{label}: stats");
        }
    }
}
