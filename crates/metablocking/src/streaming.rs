//! On-the-fly meta-blocking: every pruning family — WEP, CEP, WNP, CNP,
//! BLAST and the supervised pruner — without materialising the blocking
//! graph.
//!
//! The materialised path builds the full edge slab (one record per
//! distinct comparable pair) before pruning discards most of it. That is
//! wasted work and — on large LOD worlds — wasted memory: pruning
//! decisions need per-node neighbourhoods (node-centric) or a few global
//! scalars (edge-centric), never random access to the whole slab. The
//! streaming path therefore sweeps the block collection entity by entity
//! (the crate-internal `sweep` module): per node it reconstructs the
//! incident edge statistics in dense epoch-reset accumulators, applies
//! the pruning criterion, and emits only the *kept* pairs.
//!
//! This module is the streaming arm of [`Session`](crate::Session), which
//! is the public entry point: the session owns the shared sweep state
//! (entity ranges, weight globals, scratch pool) and reuses it across
//! runs. The one-shot free functions below are `#[doc(hidden)]` shims
//! that build a throwaway state per call — they exist so the equivalence
//! test suites keep pinning bit-identity against the pre-session surface.
//!
//! Every cell of the streaming column is **bit-identical** to its
//! materialised counterpart for every weighting scheme and thread count;
//! property tests in `tests/streaming_equivalence.rs` and
//! `tests/session_reuse.rs` enforce this.
//!
//! The sweeps are embarrassingly parallel over entity ranges (scoped
//! threads, one pooled scratch per worker) and every per-edge quantity is
//! computed through the same kernels as the materialised path
//! ([`crate::kernel::weight_from_stats`],
//! [`crate::blast::chi_square_from_stats`]) with f64 accumulation in the
//! same order. Three constructions keep the *global* criteria
//! deterministic without a global edge slab:
//!
//! * **WEP** needs one global mean. Pass 1 accumulates, per entity `a`,
//!   the sum of its positive forward-edge weights (ascending neighbour
//!   order — the slab order) into a fixed-length per-entity slab; the
//!   final reduction is a fixed-shape pairwise sum
//!   ([`minoan_common::stats::pairwise_sum`]) whose tree depends only on
//!   the entity count, so the threshold is independent of the worker
//!   partitioning. Pass 2 re-sweeps and emits edges ≥ threshold.
//! * **CEP** needs one global top-k. Each worker keeps a bounded
//!   [`TopK`] over its forward edges keyed by
//!   `(OrdF64(weight), Reverse((a, b)))` — the same total order as the
//!   materialised `(weight, Reverse(edge rank))` key, because the slab is
//!   sorted by pair — and the per-thread survivors merge through one more
//!   bounded heap. A strict total order makes the merged set the exact
//!   global top-k regardless of how edges were partitioned.
//! * **Supervised** needs global per-feature maxima (the extractor's
//!   normalisation constants). Per-worker local maxima merge under f64
//!   `max`, which is exact and order-free; pass 2 re-sweeps, normalises
//!   and scores each forward edge with the perceptron.
//!
//! EJS needs two global aggregates (node degrees and the distinct-edge
//! count |V|); those come from one extra counting sweep, still without
//! materialising edges — run at most once per session.

use crate::blast::chi_square_from_stats;
use crate::kernel::{combine_votes, forward_weight, neighbour_weights, normalised};
use crate::prune::{PrunedComparisons, WeightedPair};
use crate::supervised::{self, Perceptron, NUM_FEATURES};
use crate::sweep::{default_threads, ScratchPool, SweepScratch, SweepState};
use crate::weights::WeightingScheme;
use minoan_blocking::BlockCollection;
use minoan_common::stats::mean;
use minoan_common::{OrdF64, TopK};
use minoan_rdf::EntityId;

/// Tuning for the streaming sweeps.
#[derive(Clone, Copy, Debug)]
pub struct StreamingOptions {
    /// Worker threads for the parallel entity sweeps (≥ 1).
    pub threads: usize,
}

impl Default for StreamingOptions {
    fn default() -> Self {
        Self {
            threads: default_threads(),
        }
    }
}

impl StreamingOptions {
    /// Options with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }
}

/// Runs `keep` once per entity with ≥ 1 neighbour, handing it the node,
/// the sweep scratch (stats for the node's sorted neighbours), a reusable
/// f64 buffer and the emit sink. Returns all emitted pairs sorted by pair,
/// plus the number of distinct pairs (counted at their smaller endpoint).
fn per_node_pass<K>(
    collection: &BlockCollection,
    ranges: &[std::ops::Range<usize>],
    pool: &ScratchPool,
    keep: K,
) -> (Vec<WeightedPair>, u64)
where
    K: Fn(u32, &SweepScratch, &mut Vec<f64>, &mut Vec<WeightedPair>) + Sync,
{
    let keep = &keep;
    let mut outs: Vec<(Vec<WeightedPair>, u64)> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(ranges.len());
        for r in ranges {
            let r = r.clone();
            handles.push(s.spawn(move || {
                pool.with(|scratch| {
                    let mut kept = Vec::new();
                    let mut weights_buf: Vec<f64> = Vec::new();
                    let mut fwd_edges = 0u64;
                    for a in r {
                        let a = a as u32;
                        scratch.sweep(collection, EntityId(a));
                        if scratch.neighbours().is_empty() {
                            continue;
                        }
                        fwd_edges += scratch.neighbours().iter().filter(|&&y| y > a).count() as u64;
                        keep(a, scratch, &mut weights_buf, &mut kept);
                    }
                    (kept, fwd_edges)
                })
            }));
        }
        for h in handles {
            outs.push(h.join().expect("sweep worker panicked"));
        }
    });
    let fwd: u64 = outs.iter().map(|o| o.1).sum();
    let mut kept: Vec<WeightedPair> = outs.into_iter().flat_map(|o| o.0).collect();
    kept.sort_unstable_by_key(|x| (x.a, x.b));
    (kept, fwd)
}

/// Streaming Weighted Edge Pruning — bit-identical to the materialised
/// `prune::wep` on the built graph.
#[doc(hidden)]
pub fn wep(collection: &BlockCollection, scheme: WeightingScheme) -> PrunedComparisons {
    wep_with(collection, scheme, &StreamingOptions::default())
}

/// [`wep`] with explicit options.
#[doc(hidden)]
pub fn wep_with(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    opts: &StreamingOptions,
) -> PrunedComparisons {
    wep_session(&mut SweepState::new(collection), scheme, opts.threads)
}

/// The session body of streaming WEP: two passes, neither materialising
/// an edge — pass 1 accumulates each entity's positive forward-edge
/// weight sum into a fixed-length slab and reduces it with a fixed-shape
/// pairwise sum (the threshold is therefore independent of the thread
/// count); pass 2 re-sweeps and emits the edges at or above the
/// threshold.
pub(crate) fn wep_session(
    st: &mut SweepState<'_>,
    scheme: WeightingScheme,
    threads: usize,
) -> PrunedComparisons {
    let threads = threads.max(1);
    let (threshold, fwd_edges) = wep_criterion(st, scheme, threads);
    let ranges = st.ranges(threads);
    let collection = st.collection;
    let globals = st.globals();
    let pool = &st.pool;

    // Pass 2 — re-sweep and emit each edge once, at its smaller endpoint.
    let (kept, _) = per_node_pass(
        collection,
        &ranges,
        pool,
        move |a, scratch, _weights, out| {
            for &y in scratch.neighbours() {
                if y <= a {
                    continue;
                }
                let w = forward_weight(scheme, scratch, a, y, globals);
                if w >= threshold && w > 0.0 {
                    out.push(WeightedPair {
                        a: EntityId(a),
                        b: EntityId(y),
                        weight: w,
                    });
                }
            }
        },
    );
    let input_edges = if globals.num_edges > 0 {
        globals.num_edges
    } else {
        fwd_edges as usize
    };
    PrunedComparisons::from_weighted_pairs(kept, scheme, input_edges)
}

/// Pass 1 of streaming WEP, shared with the query-time resolve path:
/// computes the global threshold (the mean positive forward-edge weight,
/// reduced through a fixed-shape pairwise sum so it is independent of the
/// worker partitioning) and the forward-edge count. Runs `st.ensure` for
/// the scheme, so callers can read `st.globals()` afterwards.
pub(crate) fn wep_criterion(
    st: &mut SweepState<'_>,
    scheme: WeightingScheme,
    threads: usize,
) -> (f64, u64) {
    let threads = threads.max(1);
    st.ensure(scheme, false, threads);
    let ranges = st.ranges(threads);
    let collection = st.collection;
    let globals = st.globals();
    let pool = &st.pool;
    let n = collection.num_entities();

    // Per-entity partial sums of positive forward-edge weights,
    // accumulated in ascending neighbour order (the slab order the
    // materialised path sums in), plus the positive / forward counts.
    let mut sums = vec![0.0f64; n];
    let mut positive = 0u64;
    let mut fwd_edges = 0u64;
    {
        let chunks = crate::sweep::split_by_ends(&mut sums, ranges.iter().map(|r| r.end));
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(ranges.len());
            for (r, chunk) in ranges.iter().zip(chunks) {
                let r = r.clone();
                handles.push(s.spawn(move || {
                    pool.with(|scratch| {
                        let (mut pos, mut fwd) = (0u64, 0u64);
                        for a in r.clone() {
                            scratch.sweep(collection, EntityId(a as u32));
                            let mut sum = 0.0f64;
                            for &y in scratch.neighbours() {
                                if y <= a as u32 {
                                    continue;
                                }
                                fwd += 1;
                                let w = forward_weight(scheme, scratch, a as u32, y, globals);
                                if w > 0.0 {
                                    // lint:allow(float-accumulation): per-entity serial sum over sorted neighbours
                                    sum += w;
                                    pos += 1;
                                }
                            }
                            chunk[a - r.start] = sum;
                        }
                        (pos, fwd)
                    })
                }));
            }
            for h in handles {
                let (p, f) = h.join().expect("sweep worker panicked");
                positive += p;
                fwd_edges += f;
            }
        });
    }
    (
        crate::prune::wep_threshold_from_sums(&sums, positive),
        fwd_edges,
    )
}

/// Key of the CEP selection order: weight descending, ties to the
/// *earlier* pair. Identical to the materialised `(weight, Reverse(edge
/// rank))` order because the edge slab is sorted by pair.
type CepKey = (OrdF64, std::cmp::Reverse<(EntityId, EntityId)>);

/// Streaming Cardinality Edge Pruning — bit-identical to the materialised
/// `prune::cep` on the built graph.
#[doc(hidden)]
pub fn cep(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    k: Option<usize>,
) -> PrunedComparisons {
    cep_with(collection, scheme, k, &StreamingOptions::default())
}

/// [`cep`] with explicit options.
#[doc(hidden)]
pub fn cep_with(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    k: Option<usize>,
    opts: &StreamingOptions,
) -> PrunedComparisons {
    cep_session(&mut SweepState::new(collection), scheme, k, opts.threads)
}

/// The session body of streaming CEP: each worker keeps a bounded top-k
/// heap over the forward edges of its entity range (the `a < b`
/// orientation visits every edge exactly once); the per-thread survivors
/// merge through one more bounded heap. The key is a strict total order,
/// so the merged set is the exact global top-k for any partitioning.
pub(crate) fn cep_session(
    st: &mut SweepState<'_>,
    scheme: WeightingScheme,
    k: Option<usize>,
    threads: usize,
) -> PrunedComparisons {
    let threads = threads.max(1);
    let k =
        k.unwrap_or_else(|| crate::prune::default_cep_k_from(st.collection.total_assignments()));
    if k == 0 {
        // Degenerate cardinality (empty or single-assignment collection):
        // report the edge count without driving a zero-capacity heap.
        st.ensure_counted(threads);
        return PrunedComparisons::empty(scheme, st.globals().num_edges);
    }
    st.ensure(scheme, false, threads);
    let ranges = st.ranges(threads);
    let collection = st.collection;
    let globals = st.globals();
    let pool = &st.pool;
    let mut merged: TopK<CepKey> = TopK::new(k);
    let mut fwd_edges = 0u64;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(ranges.len());
        for r in &ranges {
            let r = r.clone();
            handles.push(s.spawn(move || {
                pool.with(|scratch| {
                    let mut top: TopK<CepKey> = TopK::new(k);
                    let mut fwd = 0u64;
                    for a in r {
                        let a = a as u32;
                        scratch.sweep(collection, EntityId(a));
                        for &y in scratch.neighbours() {
                            if y <= a {
                                continue;
                            }
                            fwd += 1;
                            let w = forward_weight(scheme, scratch, a, y, globals);
                            if w > 0.0 {
                                top.push((
                                    OrdF64(w),
                                    std::cmp::Reverse((EntityId(a), EntityId(y))),
                                ));
                            }
                        }
                    }
                    (top, fwd)
                })
            }));
        }
        for h in handles {
            let (top, fwd) = h.join().expect("sweep worker panicked");
            fwd_edges += fwd;
            for item in top.into_sorted_vec() {
                merged.push(item);
            }
        }
    });
    let input_edges = if globals.num_edges > 0 {
        globals.num_edges
    } else {
        fwd_edges as usize
    };
    let pairs: Vec<WeightedPair> = merged
        .into_sorted_vec()
        .into_iter()
        .map(|(w, r)| WeightedPair {
            a: r.0 .0,
            b: r.0 .1,
            weight: w.0,
        })
        .collect();
    PrunedComparisons::from_weighted_pairs(pairs, scheme, input_edges)
}

/// Every distinct comparable pair with its weight, sorted by pair — the
/// streaming equivalent of weighting the blocking graph's edges one by
/// one (the unpruned path), without building the graph.
#[doc(hidden)]
pub fn weighted_edges(collection: &BlockCollection, scheme: WeightingScheme) -> Vec<WeightedPair> {
    weighted_edges_with(collection, scheme, &StreamingOptions::default())
}

/// [`weighted_edges`] with explicit options.
#[doc(hidden)]
pub fn weighted_edges_with(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    opts: &StreamingOptions,
) -> Vec<WeightedPair> {
    weighted_edges_session(&mut SweepState::new(collection), scheme, opts.threads).0
}

/// The session body of the unpruned path; also returns the forward-edge
/// count (= the pair count, every edge emitted once).
pub(crate) fn weighted_edges_session(
    st: &mut SweepState<'_>,
    scheme: WeightingScheme,
    threads: usize,
) -> (Vec<WeightedPair>, u64) {
    let threads = threads.max(1);
    st.ensure(scheme, false, threads);
    let ranges = st.ranges(threads);
    let (collection, globals, pool) = (st.collection, st.globals(), &st.pool);
    per_node_pass(
        collection,
        &ranges,
        pool,
        move |a, scratch, _weights, out| {
            for &y in scratch.neighbours() {
                if y <= a {
                    continue;
                }
                out.push(WeightedPair {
                    a: EntityId(a),
                    b: EntityId(y),
                    weight: forward_weight(scheme, scratch, a, y, globals),
                });
            }
        },
    )
}

/// Streaming Weighted Node Pruning — bit-identical to the materialised
/// `prune::wnp` on the built graph.
#[doc(hidden)]
pub fn wnp(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    reciprocal: bool,
) -> PrunedComparisons {
    wnp_with(collection, scheme, reciprocal, &StreamingOptions::default())
}

/// [`wnp`] with explicit options.
#[doc(hidden)]
pub fn wnp_with(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    reciprocal: bool,
    opts: &StreamingOptions,
) -> PrunedComparisons {
    wnp_session(
        &mut SweepState::new(collection),
        scheme,
        reciprocal,
        opts.threads,
    )
}

/// The session body of streaming WNP.
pub(crate) fn wnp_session(
    st: &mut SweepState<'_>,
    scheme: WeightingScheme,
    reciprocal: bool,
    threads: usize,
) -> PrunedComparisons {
    let threads = threads.max(1);
    st.ensure(scheme, false, threads);
    let ranges = st.ranges(threads);
    let (collection, globals, pool) = (st.collection, st.globals(), &st.pool);
    let (kept, fwd) = per_node_pass(
        collection,
        &ranges,
        pool,
        move |a, scratch, weights, out| {
            neighbour_weights(scheme, scratch, a, globals, weights);
            let threshold = mean(weights);
            for (i, &y) in scratch.neighbours().iter().enumerate() {
                let w = weights[i];
                if w >= threshold && w > 0.0 {
                    out.push(normalised(a, y, w));
                }
            }
        },
    );
    let input_edges = if globals.num_edges > 0 {
        globals.num_edges
    } else {
        fwd as usize
    };
    PrunedComparisons::from_weighted_pairs(combine_votes(kept, reciprocal), scheme, input_edges)
}

/// Streaming Cardinality Node Pruning — bit-identical to the materialised
/// `prune::cnp` on the built graph.
#[doc(hidden)]
pub fn cnp(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    reciprocal: bool,
    k: Option<usize>,
) -> PrunedComparisons {
    cnp_with(
        collection,
        scheme,
        reciprocal,
        k,
        &StreamingOptions::default(),
    )
}

/// [`cnp`] with explicit options.
#[doc(hidden)]
pub fn cnp_with(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    reciprocal: bool,
    k: Option<usize>,
    opts: &StreamingOptions,
) -> PrunedComparisons {
    cnp_session(
        &mut SweepState::new(collection),
        scheme,
        reciprocal,
        k,
        opts.threads,
    )
}

/// The session body of streaming CNP.
pub(crate) fn cnp_session(
    st: &mut SweepState<'_>,
    scheme: WeightingScheme,
    reciprocal: bool,
    k: Option<usize>,
    threads: usize,
) -> PrunedComparisons {
    let threads = threads.max(1);
    // The default k needs the active-node count, which needs a counting
    // pass anyway; EJS needs one for degrees. Otherwise one pass suffices.
    st.ensure(scheme, k.is_none(), threads);
    let k = k.unwrap_or_else(|| {
        crate::prune::default_cnp_k_from(
            st.collection.total_assignments(),
            st.globals().active_nodes,
        )
    });
    if k == 0 {
        // Explicit zero cardinality: mirror `prune::cnp`'s guard.
        st.ensure_counted(threads);
        return PrunedComparisons::empty(scheme, st.globals().num_edges);
    }
    let ranges = st.ranges(threads);
    let (collection, globals, pool) = (st.collection, st.globals(), &st.pool);
    let (kept, fwd) = per_node_pass(
        collection,
        &ranges,
        pool,
        move |a, scratch, weights, out| {
            neighbour_weights(scheme, scratch, a, globals, weights);
            // Same selector the materialised path uses; tie-breaking by
            // normalised pair is order-isomorphic to the global edge index.
            let mut top: TopK<(OrdF64, std::cmp::Reverse<(EntityId, EntityId)>)> = TopK::new(k);
            for (i, &y) in scratch.neighbours().iter().enumerate() {
                let w = weights[i];
                if w > 0.0 {
                    let p = normalised(a, y, w);
                    top.push((OrdF64(w), std::cmp::Reverse((p.a, p.b))));
                }
            }
            for (w, r) in top.into_sorted_vec() {
                out.push(WeightedPair {
                    a: r.0 .0,
                    b: r.0 .1,
                    weight: w.0,
                });
            }
        },
    );
    let input_edges = if globals.num_edges > 0 {
        globals.num_edges
    } else {
        fwd as usize
    };
    PrunedComparisons::from_weighted_pairs(combine_votes(kept, reciprocal), scheme, input_edges)
}

/// Streaming BLAST (χ² weighting, loose ratio-of-local-max pruning) —
/// bit-identical to the materialised `blast::blast` on the built graph.
///
/// # Panics
/// Panics unless `0 < ratio ≤ 1`.
#[doc(hidden)]
pub fn blast(collection: &BlockCollection, ratio: f64) -> PrunedComparisons {
    blast_with(collection, ratio, &StreamingOptions::default())
}

/// [`blast`] with explicit options.
#[doc(hidden)]
pub fn blast_with(
    collection: &BlockCollection,
    ratio: f64,
    opts: &StreamingOptions,
) -> PrunedComparisons {
    blast_session(&mut SweepState::new(collection), ratio, opts.threads)
}

/// The session body of streaming BLAST.
pub(crate) fn blast_session(
    st: &mut SweepState<'_>,
    ratio: f64,
    threads: usize,
) -> PrunedComparisons {
    assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
    let threads = threads.max(1);
    st.ensure_basic();
    let ranges = st.ranges(threads);
    let (collection, globals, pool) = (st.collection, st.globals(), &st.pool);
    let blocks = &globals.blocks_of;
    let num_blocks = globals.num_blocks;

    // Pass 1: per-node local χ² maxima.
    let n = collection.num_entities();
    let mut local_max = vec![0.0f64; n];
    crate::sweep::fill_per_entity(collection, &ranges, pool, &mut local_max, |a, scratch| {
        let mut max = 0.0f64;
        for &y in scratch.neighbours() {
            // Normalised endpoint order — see `neighbour_weights`.
            let (lo, hi) = if a < y as usize {
                (a, y as usize)
            } else {
                (y as usize, a)
            };
            let w = chi_square_from_stats(scratch.cbs_of(y), blocks[lo], blocks[hi], num_blocks);
            if w > max {
                max = w;
            }
        }
        max
    });

    // Pass 2: emit each edge once (at its smaller endpoint) if either
    // endpoint would keep it.
    let local_max_ref = &local_max;
    let (kept, fwd) = per_node_pass(
        collection,
        &ranges,
        pool,
        move |a, scratch, _weights, out| {
            for &y in scratch.neighbours() {
                if y <= a {
                    continue;
                }
                let w = chi_square_from_stats(
                    scratch.cbs_of(y),
                    blocks[a as usize],
                    blocks[y as usize],
                    num_blocks,
                );
                if w > 0.0
                    && (w >= ratio * local_max_ref[a as usize]
                        || w >= ratio * local_max_ref[y as usize])
                {
                    out.push(WeightedPair {
                        a: EntityId(a),
                        b: EntityId(y),
                        weight: w,
                    });
                }
            }
        },
    );
    // BLAST reports the χ² values under the CBS label, matching the
    // materialised implementation.
    PrunedComparisons::from_weighted_pairs(kept, WeightingScheme::Cbs, fwd as usize)
}

/// Streaming supervised pruning — bit-identical to the materialised
/// `supervised::supervised_prune` on the built graph.
#[doc(hidden)]
pub fn supervised_prune(collection: &BlockCollection, model: &Perceptron) -> PrunedComparisons {
    supervised_prune_with(collection, model, &StreamingOptions::default())
}

/// [`supervised_prune`] with explicit options.
#[doc(hidden)]
pub fn supervised_prune_with(
    collection: &BlockCollection,
    model: &Perceptron,
    opts: &StreamingOptions,
) -> PrunedComparisons {
    supervised_session(&mut SweepState::new(collection), model, opts.threads)
}

/// The session body of streaming supervised pruning: pass 1 finds the
/// global per-feature maxima (f64 `max` merges exactly, so the result is
/// partition-independent); pass 2 normalises and scores each forward
/// edge, keeping positive-margin pairs weighted by `sigmoid(margin)`.
pub(crate) fn supervised_session(
    st: &mut SweepState<'_>,
    model: &Perceptron,
    threads: usize,
) -> PrunedComparisons {
    let threads = threads.max(1);
    let extractor = supervised_extractor(st, threads);
    let ranges = st.ranges(threads);
    let (collection, globals, pool) = (st.collection, st.globals(), &st.pool);

    // Pass 2: score and keep positive-margin edges.
    let extractor_ref = &extractor;
    let (kept, _) = per_node_pass(
        collection,
        &ranges,
        pool,
        move |a, scratch, _weights, out| {
            for &y in scratch.neighbours() {
                if y <= a {
                    continue;
                }
                let raw = supervised::raw_forward_features(scratch, a, y, globals);
                let score = model.score(&extractor_ref.normalise(raw));
                if score > 0.0 {
                    out.push(WeightedPair {
                        a: EntityId(a),
                        b: EntityId(y),
                        weight: supervised::sigmoid(score),
                    });
                }
            }
        },
    );
    // The supervised pruner reports its sigmoid weights under the CBS
    // label, matching the materialised implementation.
    PrunedComparisons::from_weighted_pairs(kept, WeightingScheme::Cbs, globals.num_edges)
}

/// Pass 1 of streaming supervised pruning, shared with the query-time
/// resolve path: the global per-feature maxima that become the
/// extractor's normalisation constants (f64 `max` merges exactly, so the
/// result is partition-independent). Runs `st.ensure_counted` — the
/// features include endpoint degrees and the EJS weight — so callers can
/// read `st.globals()` afterwards.
pub(crate) fn supervised_extractor(
    st: &mut SweepState<'_>,
    threads: usize,
) -> supervised::FeatureExtractor {
    let threads = threads.max(1);
    st.ensure_counted(threads);
    let ranges = st.ranges(threads);
    let (collection, globals, pool) = (st.collection, st.globals(), &st.pool);

    let mut max = [0.0f64; NUM_FEATURES];
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(ranges.len());
        for r in &ranges {
            let r = r.clone();
            handles.push(s.spawn(move || {
                pool.with(|scratch| {
                    let mut local = [0.0f64; NUM_FEATURES];
                    for a in r {
                        let a = a as u32;
                        scratch.sweep(collection, EntityId(a));
                        for &y in scratch.neighbours() {
                            if y <= a {
                                continue;
                            }
                            let raw = supervised::raw_forward_features(scratch, a, y, globals);
                            supervised::merge_feature_max(&mut local, &raw);
                        }
                    }
                    local
                })
            }));
        }
        for h in handles {
            let local = h.join().expect("sweep worker panicked");
            supervised::merge_feature_max(&mut max, &local);
        }
    });
    supervised::FeatureExtractor::from_max(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BlockingGraph;
    use crate::{blast as blast_mod, prune};
    use minoan_blocking::builders::token_blocking;
    use minoan_blocking::ErMode;
    use minoan_datagen::{generate, profiles};

    use crate::assert_bit_identical;

    #[test]
    fn streaming_matches_materialised_on_generated_world() {
        let world = generate(&profiles::center_dense(150, 7));
        let blocks = token_blocking(&world.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        for threads in [1, 4] {
            let opts = StreamingOptions::with_threads(threads);
            for scheme in WeightingScheme::ALL {
                for reciprocal in [false, true] {
                    let s = wnp_with(&blocks, scheme, reciprocal, &opts);
                    let m = prune::wnp(&graph, scheme, reciprocal);
                    assert_bit_identical(
                        &s,
                        &m,
                        &format!("wnp/{scheme:?}/r={reciprocal}/t={threads}"),
                    );

                    let s = cnp_with(&blocks, scheme, reciprocal, Some(3), &opts);
                    let m = prune::cnp(&graph, scheme, reciprocal, Some(3));
                    assert_bit_identical(
                        &s,
                        &m,
                        &format!("cnp3/{scheme:?}/r={reciprocal}/t={threads}"),
                    );
                }
                let s = wep_with(&blocks, scheme, &opts);
                let m = prune::wep(&graph, scheme);
                assert_bit_identical(&s, &m, &format!("wep/{scheme:?}/t={threads}"));

                for k in [None, Some(5)] {
                    let s = cep_with(&blocks, scheme, k, &opts);
                    let m = prune::cep(&graph, scheme, k);
                    assert_bit_identical(&s, &m, &format!("cep{k:?}/{scheme:?}/t={threads}"));
                }
            }
            let s = blast_with(&blocks, 0.35, &opts);
            let m = blast_mod::blast(&graph, 0.35);
            assert_bit_identical(&s, &m, &format!("blast/t={threads}"));
        }
    }

    #[test]
    fn weighted_edges_match_the_slab() {
        let world = generate(&profiles::center_dense(120, 5));
        let blocks = token_blocking(&world.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        for threads in [1, 4] {
            for scheme in WeightingScheme::ALL {
                let stream =
                    weighted_edges_with(&blocks, scheme, &StreamingOptions::with_threads(threads));
                assert_eq!(stream.len(), graph.num_edges(), "{scheme:?}/t={threads}");
                for (s, e) in stream.iter().zip(graph.edges()) {
                    assert_eq!((s.a, s.b), (e.a, e.b));
                    assert_eq!(s.weight.to_bits(), scheme.weight(&graph, e).to_bits());
                }
            }
        }
    }

    #[test]
    fn default_k_matches_materialised_default() {
        let world = generate(&profiles::center_dense(100, 3));
        let blocks = token_blocking(&world.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        let s = cnp(&blocks, WeightingScheme::Js, false, None);
        let m = prune::cnp(&graph, WeightingScheme::Js, false, None);
        assert_bit_identical(&s, &m, "cnp/default-k");
    }

    #[test]
    fn streaming_supervised_matches_materialised() {
        use crate::supervised::{FeatureExtractor, Perceptron, TrainingSet};
        let world = generate(&profiles::center_dense(150, 5));
        let blocks = token_blocking(&world.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        let extractor = FeatureExtractor::fit(&graph);
        let set = TrainingSet::sample(
            &graph,
            &extractor,
            |a, b| world.truth.is_match(a, b),
            40,
            17,
        );
        let model = Perceptron::train(&set, 12);
        let m = crate::supervised::supervised_prune(&graph, &model);
        assert!(!m.pairs.is_empty(), "fixture model must keep something");
        for threads in [1, 4] {
            let s =
                supervised_prune_with(&blocks, &model, &StreamingOptions::with_threads(threads));
            assert_bit_identical(&s, &m, &format!("supervised/t={threads}"));
        }
    }

    #[test]
    fn empty_collection_is_fine() {
        let ds = minoan_rdf::DatasetBuilder::new().build();
        let c = BlockCollection::from_groups(
            &ds,
            ErMode::CleanClean,
            Vec::<(String, Vec<EntityId>)>::new(),
        );
        assert!(wnp(&c, WeightingScheme::Arcs, false).pairs.is_empty());
        assert!(cnp(&c, WeightingScheme::Ejs, true, None).pairs.is_empty());
        assert!(wep(&c, WeightingScheme::Js).pairs.is_empty());
        let e = cep(&c, WeightingScheme::Cbs, None);
        assert!(e.pairs.is_empty());
        assert_eq!(e.input_edges, 0, "empty default-k CEP still reports stats");
        assert!(weighted_edges(&c, WeightingScheme::Arcs).is_empty());
        assert!(blast(&c, 0.5).pairs.is_empty());
    }

    #[test]
    fn explicit_zero_k_reports_stats() {
        let world = generate(&profiles::center_dense(60, 8));
        let blocks = token_blocking(&world.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        for (out, label) in [
            (cep(&blocks, WeightingScheme::Js, Some(0)), "cep"),
            (cnp(&blocks, WeightingScheme::Js, false, Some(0)), "cnp"),
        ] {
            assert!(out.pairs.is_empty(), "{label}");
            assert_eq!(out.input_edges, graph.num_edges(), "{label}: stats");
        }
    }
}
