//! The blocking graph.

use minoan_blocking::BlockCollection;
use minoan_common::FxHashMap;
use minoan_rdf::EntityId;

/// One edge of the blocking graph: a distinct comparable pair plus the
/// co-occurrence statistics every weighting scheme is computed from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// Smaller endpoint.
    pub a: EntityId,
    /// Larger endpoint.
    pub b: EntityId,
    /// Number of blocks shared by `a` and `b` (CBS).
    pub common_blocks: u32,
    /// Σ over shared blocks of `1 / ‖block‖` (ARCS accumulator).
    pub arcs: f64,
}

/// The blocking graph of a [`BlockCollection`].
///
/// Nodes are descriptions; there is one edge per *distinct* pair that
/// co-occurs in at least one block (and is comparable under the ER mode).
/// Construction is `O(Σ_b ‖b‖)` — it enumerates pair occurrences once.
pub struct BlockingGraph {
    edges: Vec<Edge>,
    /// Per entity: indices into `edges` (sorted ascending).
    adjacency: Vec<Vec<u32>>,
    /// Per entity: number of blocks it belongs to, |B_i|.
    blocks_of: Vec<u32>,
    /// Total number of blocks, |B|.
    num_blocks: usize,
    /// Total block assignments BC = Σ |b| (drives CEP/CNP cardinalities).
    total_assignments: u64,
}

impl BlockingGraph {
    /// Builds the graph from a block collection.
    pub fn build(collection: &BlockCollection) -> Self {
        let n = collection.num_entities();
        let mut acc: FxHashMap<(EntityId, EntityId), (u32, f64)> = FxHashMap::default();
        for (bid, a, b) in collection.pair_occurrences() {
            let card = collection.block(bid).comparisons as f64;
            let e = acc.entry((a, b)).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += 1.0 / card.max(1.0);
        }
        let mut edges: Vec<Edge> = acc
            .into_iter()
            .map(|((a, b), (cbs, arcs))| Edge { a, b, common_blocks: cbs, arcs })
            .collect();
        edges.sort_unstable_by_key(|e| (e.a, e.b));

        let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            adjacency[e.a.index()].push(i as u32);
            adjacency[e.b.index()].push(i as u32);
        }
        let blocks_of: Vec<u32> = (0..n as u32)
            .map(|e| collection.entity_blocks(EntityId(e)).len() as u32)
            .collect();
        Self {
            edges,
            adjacency,
            blocks_of,
            num_blocks: collection.len(),
            total_assignments: collection.total_assignments(),
        }
    }

    /// Number of distinct comparable pairs (edges).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of nodes (entities in the underlying dataset, including
    /// entities that ended up in no block).
    pub fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of blocks in the source collection, |B|.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Total block assignments BC of the source collection.
    pub fn total_assignments(&self) -> u64 {
        self.total_assignments
    }

    /// All edges, sorted by `(a, b)`.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edge by index.
    pub fn edge(&self, idx: u32) -> &Edge {
        &self.edges[idx as usize]
    }

    /// Indices of the edges incident to `e`.
    pub fn incident(&self, e: EntityId) -> &[u32] {
        &self.adjacency[e.index()]
    }

    /// Node degree |V_i| (number of distinct co-occurring entities).
    pub fn degree(&self, e: EntityId) -> usize {
        self.adjacency[e.index()].len()
    }

    /// |B_i| — number of blocks entity `e` belongs to.
    pub fn blocks_of(&self, e: EntityId) -> u32 {
        self.blocks_of[e.index()]
    }

    /// Nodes with at least one incident edge.
    pub fn active_nodes(&self) -> usize {
        self.adjacency.iter().filter(|a| !a.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_blocking::{BlockCollection, ErMode};
    use minoan_rdf::{Dataset, DatasetBuilder};

    fn dataset(n0: u32, n1: u32) -> Dataset {
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/");
        let k1 = b.add_kb("b", "http://b/");
        for i in 0..n0 {
            b.add_literal(k0, &format!("http://a/{i}"), "http://p", "x");
        }
        for i in 0..n1 {
            b.add_literal(k1, &format!("http://b/{i}"), "http://p", "x");
        }
        b.build()
    }

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn edge_statistics_are_exact() {
        let ds = dataset(2, 2);
        // Blocks: {0,2}, {0,2,3}, {1,3}.
        let groups = vec![
            ("k1".to_string(), vec![e(0), e(2)]),
            ("k2".to_string(), vec![e(0), e(2), e(3)]),
            ("k3".to_string(), vec![e(1), e(3)]),
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        let g = BlockingGraph::build(&c);
        assert_eq!(g.num_edges(), 3); // (0,2), (0,3), (1,3)
        let edge02 = g.edges().iter().find(|ed| ed.a == e(0) && ed.b == e(2)).unwrap();
        assert_eq!(edge02.common_blocks, 2);
        // k1 has 1 comparison, k2 has 2 → arcs = 1/1 + 1/2.
        assert!((edge02.arcs - 1.5).abs() < 1e-12);
        let edge03 = g.edges().iter().find(|ed| ed.a == e(0) && ed.b == e(3)).unwrap();
        assert_eq!(edge03.common_blocks, 1);
        assert!((edge03.arcs - 0.5).abs() < 1e-12);
    }

    #[test]
    fn adjacency_and_degrees() {
        let ds = dataset(2, 2);
        let groups = vec![
            ("k1".to_string(), vec![e(0), e(2)]),
            ("k2".to_string(), vec![e(0), e(2), e(3)]),
            ("k3".to_string(), vec![e(1), e(3)]),
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        let g = BlockingGraph::build(&c);
        assert_eq!(g.degree(e(0)), 2); // neighbours 2 and 3
        assert_eq!(g.degree(e(1)), 1);
        assert_eq!(g.degree(e(2)), 1);
        assert_eq!(g.degree(e(3)), 2);
        assert_eq!(g.blocks_of(e(0)), 2);
        assert_eq!(g.blocks_of(e(3)), 2);
        assert_eq!(g.num_blocks(), 3);
        assert_eq!(g.active_nodes(), 4);
        assert_eq!(g.total_assignments(), 7);
    }

    #[test]
    fn empty_collection_empty_graph() {
        let ds = dataset(1, 1);
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, Vec::<(String, Vec<EntityId>)>::new());
        let g = BlockingGraph::build(&c);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.active_nodes(), 0);
    }

    #[test]
    fn edges_are_normalised_and_sorted() {
        let ds = dataset(3, 3);
        let groups = vec![
            ("k1".to_string(), vec![e(4), e(0)]),
            ("k2".to_string(), vec![e(3), e(1)]),
            ("k3".to_string(), vec![e(5), e(2)]),
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        let g = BlockingGraph::build(&c);
        for w in g.edges().windows(2) {
            assert!((w[0].a, w[0].b) < (w[1].a, w[1].b));
        }
        for ed in g.edges() {
            assert!(ed.a < ed.b);
        }
    }
}
