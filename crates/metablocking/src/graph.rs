//! The blocking graph, stored in flat CSR (compressed sparse row) arrays.
//!
//! Earlier revisions accumulated edges in a global
//! `FxHashMap<(EntityId, EntityId), (u32, f64)>` and kept adjacency as
//! `Vec<Vec<u32>>` — one heap allocation per node and a hash probe per
//! pair occurrence, which dominated end-to-end runtime on large worlds.
//! The current layout is three flat slabs:
//!
//! * `edges` — the edge records, sorted by `(a, b)`; the slab *is* the
//!   per-source-CSR: edges of source `a` occupy
//!   `edge_offsets[a] .. edge_offsets[a + 1]`, sorted by target;
//! * `adj_offsets` / `adj_edges` — CSR adjacency over *both* endpoints:
//!   edge indices incident to node `v` occupy
//!   `adj_offsets[v] .. adj_offsets[v + 1]`, ascending.
//!
//! Construction is a two-pass counting sort over node-centric sweeps
//! (count → prefix-sum → fill) with no hash map anywhere, parallelised
//! over contiguous entity ranges with scoped threads. The result is
//! byte-identical for every thread count: each entity's edges land at a
//! precomputed offset, and per-edge ARCS sums accumulate in ascending
//! block order exactly as the serial build would.

use crate::sweep::{default_threads, entity_sweep_ranges, split_by_ends, SweepScratch};
use minoan_blocking::BlockCollection;
use minoan_rdf::EntityId;

/// One edge of the blocking graph: a distinct comparable pair plus the
/// co-occurrence statistics every weighting scheme is computed from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// Smaller endpoint.
    pub a: EntityId,
    /// Larger endpoint.
    pub b: EntityId,
    /// Number of blocks shared by `a` and `b` (CBS).
    pub common_blocks: u32,
    /// Σ over shared blocks of `1 / ‖block‖` (ARCS accumulator).
    pub arcs: f64,
}

const EDGE_PLACEHOLDER: Edge = Edge {
    a: EntityId(0),
    b: EntityId(0),
    common_blocks: 0,
    arcs: 0.0,
};

/// The blocking graph of a [`BlockCollection`] in CSR layout.
///
/// Nodes are descriptions; there is one edge per *distinct* pair that
/// co-occurs in at least one block (and is comparable under the ER mode).
/// Construction visits each pair occurrence a constant number of times
/// (at both endpoints, in both the count and fill passes) — `O(Σ_b ‖b‖²)`
/// work spread across threads.
pub struct BlockingGraph {
    /// Edge slab, sorted by `(a, b)`.
    edges: Vec<Edge>,
    /// Per entity: start of its source-edge run in `edges` (len n+1).
    edge_offsets: Vec<u32>,
    /// Per entity: start of its incident-edge run in `adj_edges` (len n+1).
    adj_offsets: Vec<u32>,
    /// Incident edge indices per entity, ascending (each edge twice).
    adj_edges: Vec<u32>,
    /// Per entity: number of blocks it belongs to, |B_i|.
    blocks_of: Vec<u32>,
    /// Total number of blocks, |B|.
    num_blocks: usize,
    /// Total block assignments BC = Σ |b| (drives CEP/CNP cardinalities).
    total_assignments: u64,
}

impl BlockingGraph {
    /// Builds the graph from a block collection, using all available
    /// cores for the counting and fill sweeps.
    pub fn build(collection: &BlockCollection) -> Self {
        Self::build_with_threads(collection, default_threads())
    }

    /// Builds the graph with an explicit worker count. Output is
    /// identical for every `threads` value (including 1).
    pub fn build_with_threads(collection: &BlockCollection, threads: usize) -> Self {
        crate::probe::record_csr_build();
        let n = collection.num_entities();
        let ranges = entity_sweep_ranges(collection, threads);

        // Pass 1 — count: per entity, #distinct comparable neighbours
        // above it (its source edges) and in total (its adjacency run).
        let mut fwd = vec![0u32; n];
        let mut deg = vec![0u32; n];
        {
            let fwd_chunks = split_by_ends(&mut fwd, ranges.iter().map(|r| r.end));
            let deg_chunks = split_by_ends(&mut deg, ranges.iter().map(|r| r.end));
            std::thread::scope(|s| {
                for ((r, f), d) in ranges.iter().zip(fwd_chunks).zip(deg_chunks) {
                    let r = r.clone();
                    s.spawn(move || {
                        let mut scratch = SweepScratch::new(n);
                        for a in r.clone() {
                            let neighbours = scratch.sweep(collection, EntityId(a as u32));
                            d[a - r.start] = neighbours.len() as u32;
                            f[a - r.start] =
                                neighbours.iter().filter(|&&y| y > a as u32).count() as u32;
                        }
                    });
                }
            });
        }

        let edge_offsets = prefix_sum(&fwd);
        let adj_offsets = prefix_sum(&deg);
        let num_edges = *edge_offsets.last().unwrap_or(&0) as usize;

        // Pass 2 — fill: each entity's edges land at its precomputed
        // offset, so chunks write disjoint slices of the slab.
        let mut edges = vec![EDGE_PLACEHOLDER; num_edges];
        {
            let edge_chunks = split_by_ends(
                &mut edges,
                ranges.iter().map(|r| edge_offsets[r.end] as usize),
            );
            std::thread::scope(|s| {
                for (r, chunk) in ranges.iter().zip(edge_chunks) {
                    let r = r.clone();
                    let base = edge_offsets[r.start] as usize;
                    let edge_offsets = &edge_offsets;
                    s.spawn(move || {
                        let mut scratch = SweepScratch::new(n);
                        for a in r {
                            let mut out = edge_offsets[a] as usize - base;
                            scratch.sweep(collection, EntityId(a as u32));
                            for &y in scratch.neighbours() {
                                if y > a as u32 {
                                    chunk[out] = Edge {
                                        a: EntityId(a as u32),
                                        b: EntityId(y),
                                        common_blocks: scratch.cbs_of(y),
                                        arcs: scratch.arcs_of(y),
                                    };
                                    out += 1;
                                }
                            }
                        }
                    });
                }
            });
        }

        // Adjacency fill: ascending edge index per node by construction.
        let mut adj_edges = vec![0u32; 2 * num_edges];
        let mut cursor: Vec<u32> = adj_offsets[..n].to_vec();
        for (i, e) in edges.iter().enumerate() {
            let ca = &mut cursor[e.a.index()];
            adj_edges[*ca as usize] = i as u32;
            *ca += 1;
            let cb = &mut cursor[e.b.index()];
            adj_edges[*cb as usize] = i as u32;
            *cb += 1;
        }

        let blocks_of: Vec<u32> = (0..n as u32)
            .map(|e| collection.entity_blocks(EntityId(e)).len() as u32)
            .collect();
        Self {
            edges,
            edge_offsets,
            adj_offsets,
            adj_edges,
            blocks_of,
            num_blocks: collection.len(),
            total_assignments: collection.total_assignments(),
        }
    }

    /// Number of distinct comparable pairs (edges).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of nodes (entities in the underlying dataset, including
    /// entities that ended up in no block).
    pub fn num_nodes(&self) -> usize {
        self.adj_offsets.len() - 1
    }

    /// Number of blocks in the source collection, |B|.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Total block assignments BC of the source collection.
    pub fn total_assignments(&self) -> u64 {
        self.total_assignments
    }

    /// All edges, sorted by `(a, b)`.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edge by index.
    pub fn edge(&self, idx: u32) -> &Edge {
        &self.edges[idx as usize]
    }

    /// Edges whose *smaller* endpoint is `a`, sorted by target (the CSR
    /// row of `a` in the edge slab).
    pub fn edges_from(&self, a: EntityId) -> &[Edge] {
        let i = a.index();
        &self.edges[self.edge_offsets[i] as usize..self.edge_offsets[i + 1] as usize]
    }

    /// Indices of the edges incident to `e`, ascending.
    pub fn incident(&self, e: EntityId) -> &[u32] {
        let i = e.index();
        &self.adj_edges[self.adj_offsets[i] as usize..self.adj_offsets[i + 1] as usize]
    }

    /// Node degree |V_i| (number of distinct co-occurring entities).
    pub fn degree(&self, e: EntityId) -> usize {
        let i = e.index();
        (self.adj_offsets[i + 1] - self.adj_offsets[i]) as usize
    }

    /// |B_i| — number of blocks entity `e` belongs to.
    pub fn blocks_of(&self, e: EntityId) -> u32 {
        self.blocks_of[e.index()]
    }

    /// Nodes with at least one incident edge.
    pub fn active_nodes(&self) -> usize {
        self.adj_offsets.windows(2).filter(|w| w[1] > w[0]).count()
    }

    /// Approximate resident size of the graph in bytes (slabs only).
    pub fn heap_bytes(&self) -> usize {
        self.edges.len() * std::mem::size_of::<Edge>()
            + (self.edge_offsets.len() + self.adj_offsets.len() + self.adj_edges.len()) * 4
            + self.blocks_of.len() * 4
    }
}

/// Exclusive prefix sum with a trailing total (CSR offsets).
fn prefix_sum(counts: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0u32;
    out.push(0);
    for &c in counts {
        acc += c;
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_blocking::{BlockCollection, ErMode};
    use minoan_rdf::{Dataset, DatasetBuilder};

    fn dataset(n0: u32, n1: u32) -> Dataset {
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/");
        let k1 = b.add_kb("b", "http://b/");
        for i in 0..n0 {
            b.add_literal(k0, &format!("http://a/{i}"), "http://p", "x");
        }
        for i in 0..n1 {
            b.add_literal(k1, &format!("http://b/{i}"), "http://p", "x");
        }
        b.build()
    }

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn edge_statistics_are_exact() {
        let ds = dataset(2, 2);
        // Blocks: {0,2}, {0,2,3}, {1,3}.
        let groups = vec![
            ("k1".to_string(), vec![e(0), e(2)]),
            ("k2".to_string(), vec![e(0), e(2), e(3)]),
            ("k3".to_string(), vec![e(1), e(3)]),
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        let g = BlockingGraph::build(&c);
        assert_eq!(g.num_edges(), 3); // (0,2), (0,3), (1,3)
        let edge02 = g
            .edges()
            .iter()
            .find(|ed| ed.a == e(0) && ed.b == e(2))
            .unwrap();
        assert_eq!(edge02.common_blocks, 2);
        // k1 has 1 comparison, k2 has 2 → arcs = 1/1 + 1/2.
        assert!((edge02.arcs - 1.5).abs() < 1e-12);
        let edge03 = g
            .edges()
            .iter()
            .find(|ed| ed.a == e(0) && ed.b == e(3))
            .unwrap();
        assert_eq!(edge03.common_blocks, 1);
        assert!((edge03.arcs - 0.5).abs() < 1e-12);
    }

    #[test]
    fn adjacency_and_degrees() {
        let ds = dataset(2, 2);
        let groups = vec![
            ("k1".to_string(), vec![e(0), e(2)]),
            ("k2".to_string(), vec![e(0), e(2), e(3)]),
            ("k3".to_string(), vec![e(1), e(3)]),
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        let g = BlockingGraph::build(&c);
        assert_eq!(g.degree(e(0)), 2); // neighbours 2 and 3
        assert_eq!(g.degree(e(1)), 1);
        assert_eq!(g.degree(e(2)), 1);
        assert_eq!(g.degree(e(3)), 2);
        assert_eq!(g.blocks_of(e(0)), 2);
        assert_eq!(g.blocks_of(e(3)), 2);
        assert_eq!(g.num_blocks(), 3);
        assert_eq!(g.active_nodes(), 4);
        assert_eq!(g.total_assignments(), 7);
    }

    #[test]
    fn empty_collection_empty_graph() {
        let ds = dataset(1, 1);
        let c = BlockCollection::from_groups(
            &ds,
            ErMode::CleanClean,
            Vec::<(String, Vec<EntityId>)>::new(),
        );
        let g = BlockingGraph::build(&c);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.active_nodes(), 0);
    }

    #[test]
    fn edges_are_normalised_and_sorted() {
        let ds = dataset(3, 3);
        let groups = vec![
            ("k1".to_string(), vec![e(4), e(0)]),
            ("k2".to_string(), vec![e(3), e(1)]),
            ("k3".to_string(), vec![e(5), e(2)]),
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        let g = BlockingGraph::build(&c);
        for w in g.edges().windows(2) {
            assert!((w[0].a, w[0].b) < (w[1].a, w[1].b));
        }
        for ed in g.edges() {
            assert!(ed.a < ed.b);
        }
    }

    #[test]
    fn csr_rows_agree_with_flat_edges() {
        let ds = dataset(3, 3);
        let groups = vec![
            ("k1".to_string(), vec![e(0), e(3), e(4)]),
            ("k2".to_string(), vec![e(0), e(1), e(3)]),
            ("k3".to_string(), vec![e(2), e(5)]),
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        let g = BlockingGraph::build(&c);
        // edges_from(a) is exactly the sorted run of edges with source a.
        let mut reassembled: Vec<Edge> = Vec::new();
        for a in 0..g.num_nodes() as u32 {
            reassembled.extend_from_slice(g.edges_from(EntityId(a)));
        }
        assert_eq!(reassembled, g.edges());
        // incident() lists each node's edges ascending and consistently.
        for v in 0..g.num_nodes() as u32 {
            let inc = g.incident(EntityId(v));
            assert!(inc.windows(2).all(|w| w[0] < w[1]));
            for &i in inc {
                let ed = g.edge(i);
                assert!(ed.a == EntityId(v) || ed.b == EntityId(v));
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_the_graph() {
        let ds = dataset(20, 20);
        let groups: Vec<(String, Vec<EntityId>)> = (0..12)
            .map(|k| {
                (
                    format!("k{k}"),
                    (0..40u32).filter(|i| (i * 7 + k) % 5 == 0).map(e).collect(),
                )
            })
            .collect();
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        let serial = BlockingGraph::build_with_threads(&c, 1);
        for threads in [2, 3, 8] {
            let par = BlockingGraph::build_with_threads(&c, threads);
            assert_eq!(par.num_edges(), serial.num_edges());
            for (x, y) in par.edges().iter().zip(serial.edges()) {
                assert_eq!((x.a, x.b, x.common_blocks), (y.a, y.b, y.common_blocks));
                assert_eq!(
                    x.arcs.to_bits(),
                    y.arcs.to_bits(),
                    "ARCS must be bit-identical"
                );
            }
            assert_eq!(par.adj_offsets, serial.adj_offsets);
            assert_eq!(par.adj_edges, serial.adj_edges);
        }
    }
}
