//! The node-centric co-occurrence sweep shared by the CSR graph build and
//! the streaming pruners.
//!
//! For one entity `a`, a sweep visits every block containing `a` (in
//! ascending block-id order) and every comparable co-member, accumulating
//! per-neighbour statistics — `|B_aj|` (CBS) and `Σ 1/‖b‖` (ARCS) — in
//! dense arrays indexed by neighbour id. Resetting between entities uses
//! the classic epoch/touched-list trick: an epoch counter is bumped per
//! sweep and a slot is (re)initialised lazily the first time it is touched,
//! so a sweep costs `O(co-occurrences of a)`, never `O(n)`.
//!
//! Because blocks are visited in ascending id order, the f64 ARCS sums are
//! accumulated in exactly the order the materialised graph build uses —
//! which is what makes the streaming pruning paths *bit-identical* to the
//! materialised ones.

use crate::kernel::WeightGlobals;
use crate::weights::WeightingScheme;
use minoan_blocking::BlockCollection;
use minoan_rdf::EntityId;
use std::sync::Mutex;

/// Reusable per-worker scratch for node-centric sweeps over a collection
/// with `n` entities.
pub(crate) struct SweepScratch {
    /// Epoch at which each neighbour slot was last touched.
    last_seen: Vec<u32>,
    /// CBS accumulator per neighbour (valid when `last_seen == epoch`).
    cbs: Vec<u32>,
    /// ARCS accumulator per neighbour (valid when `last_seen == epoch`).
    arcs: Vec<f64>,
    /// Neighbours touched by the current sweep (unsorted until
    /// [`Self::sweep`] returns).
    touched: Vec<u32>,
    /// Current sweep epoch.
    epoch: u32,
}

impl SweepScratch {
    /// Scratch sized for `n` entities.
    pub(crate) fn new(n: usize) -> Self {
        crate::probe::record_scratch_alloc();
        Self {
            last_seen: vec![0; n],
            cbs: vec![0; n],
            arcs: vec![0.0; n],
            touched: Vec::new(),
            epoch: 0,
        }
    }

    /// Sweeps entity `a`, leaving the distinct comparable neighbours of
    /// `a` (sorted ascending) in the returned slice; per-neighbour stats
    /// are then available through [`Self::cbs_of`] / [`Self::arcs_of`].
    pub(crate) fn sweep(&mut self, collection: &BlockCollection, a: EntityId) -> &[u32] {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely long-lived scratch (now reachable: the session
            // pool keeps scratches alive across runs) wrapped around:
            // reset all stamps to 0, which no future epoch ever equals
            // (this branch skips 0), so stale slots can never collide.
            self.last_seen.fill(0);
            self.epoch = 1;
        }
        self.touched.clear();
        for (_bid, inv_card, y) in collection.co_occurrences(a) {
            let yi = y.index();
            if self.last_seen[yi] != self.epoch {
                self.last_seen[yi] = self.epoch;
                self.cbs[yi] = 1;
                self.arcs[yi] = inv_card;
                self.touched.push(y.0);
            } else {
                self.cbs[yi] += 1;
                // lint:allow(float-accumulation): per-entity serial sweep in co-occurrence slab order
                self.arcs[yi] += inv_card;
            }
        }
        self.touched.sort_unstable();
        &self.touched
    }

    /// Sorted distinct neighbours of the most recent sweep.
    #[inline]
    pub(crate) fn neighbours(&self) -> &[u32] {
        &self.touched
    }

    /// CBS of the most recent sweep's edge to neighbour `y`.
    #[inline]
    pub(crate) fn cbs_of(&self, y: u32) -> u32 {
        self.cbs[y as usize]
    }

    /// ARCS of the most recent sweep's edge to neighbour `y`.
    #[inline]
    pub(crate) fn arcs_of(&self, y: u32) -> f64 {
        self.arcs[y as usize]
    }
}

/// A free-list of [`SweepScratch`]es shared by the workers of a sweep
/// pass. Sweeps are epoch-reset, so a returned scratch is immediately
/// reusable; the pool only ever allocates on a miss, which is what lets a
/// [`Session`](crate::Session) sweep many scheme × pruning combinations
/// with the scratch allocations of a single run (the `probe` counters
/// assert this).
pub(crate) struct ScratchPool {
    n: usize,
    free: Mutex<Vec<SweepScratch>>,
}

impl ScratchPool {
    /// An empty pool for collections with `n` entities.
    pub(crate) fn new(n: usize) -> Self {
        Self {
            n,
            free: Mutex::new(Vec::new()),
        }
    }

    fn take(&self) -> SweepScratch {
        let pooled = self.free.lock().expect("scratch pool poisoned").pop();
        pooled.unwrap_or_else(|| SweepScratch::new(self.n))
    }

    fn put(&self, scratch: SweepScratch) {
        self.free
            .lock()
            .expect("scratch pool poisoned")
            .push(scratch);
    }

    /// Runs `f` with a pooled scratch, returning the scratch to the pool
    /// afterwards (dropped instead if `f` panics — a poisoned sweep must
    /// not be reused).
    pub(crate) fn with<R>(&self, f: impl FnOnce(&mut SweepScratch) -> R) -> R {
        let mut scratch = self.take();
        let out = f(&mut scratch);
        self.put(scratch);
        out
    }
}

/// One parallel pass filling a per-entity slot from its sweep — used for
/// degree counting and BLAST local maxima. Shared by the streaming and
/// session paths; scratches come from `pool`.
pub(crate) fn fill_per_entity<T: Send, F>(
    collection: &BlockCollection,
    ranges: &[std::ops::Range<usize>],
    pool: &ScratchPool,
    out: &mut [T],
    f: F,
) where
    F: Fn(usize, &SweepScratch) -> T + Sync,
{
    let chunks = split_by_ends(out, ranges.iter().map(|r| r.end));
    let f = &f;
    std::thread::scope(|s| {
        for (r, chunk) in ranges.iter().zip(chunks) {
            let r = r.clone();
            s.spawn(move || {
                pool.with(|scratch| {
                    for a in r.clone() {
                        scratch.sweep(collection, EntityId(a as u32));
                        chunk[a - r.start] = f(a, scratch);
                    }
                });
            });
        }
    });
}

/// The expensive state a sweep-based backend (streaming or MapReduce)
/// needs before it can weight an edge, owned and cached across runs by
/// [`Session`](crate::Session): the per-entity sweep-cost slab and its
/// range partitionings, the [`WeightGlobals`] tiers (basic, and the
/// counted degrees/|V|/active-node upgrade), and the scratch pool.
///
/// The one-shot free functions construct a throwaway `SweepState` per
/// call, which reproduces the pre-session behaviour exactly.
pub(crate) struct SweepState<'c> {
    pub(crate) collection: &'c BlockCollection,
    pub(crate) pool: ScratchPool,
    costs: Option<Vec<u64>>,
    ranges: Vec<(usize, Vec<std::ops::Range<usize>>)>,
    globals: Option<WeightGlobals>,
    counted: bool,
}

impl<'c> SweepState<'c> {
    pub(crate) fn new(collection: &'c BlockCollection) -> Self {
        Self {
            collection,
            pool: ScratchPool::new(collection.num_entities()),
            costs: None,
            ranges: Vec::new(),
            globals: None,
            counted: false,
        }
    }

    /// Cost-balanced contiguous entity ranges for `parts` workers, cached
    /// per part count (the per-entity cost slab is computed once).
    pub(crate) fn ranges(&mut self, parts: usize) -> Vec<std::ops::Range<usize>> {
        if let Some((_, r)) = self.ranges.iter().find(|(p, _)| *p == parts) {
            return r.clone();
        }
        let collection = self.collection;
        let costs = self.costs.get_or_insert_with(|| sweep_costs(collection));
        let r = partition_by_cost(costs, parts);
        self.ranges.push((parts, r.clone()));
        r
    }

    /// Ensures the globals tier `scheme` (and `need_active`) requires:
    /// the basic per-entity block counts always, plus — for EJS or
    /// active-node consumers — the counting pass, run at most once per
    /// state regardless of how many runs need it.
    pub(crate) fn ensure(&mut self, scheme: WeightingScheme, need_active: bool, threads: usize) {
        self.ensure_basic();
        if (scheme == WeightingScheme::Ejs || need_active) && !self.counted {
            self.count(threads);
        }
    }

    /// Ensures the counted tier (degrees, |V|, active nodes).
    pub(crate) fn ensure_counted(&mut self, threads: usize) {
        self.ensure_basic();
        if !self.counted {
            self.count(threads);
        }
    }

    /// Ensures the basic tier (per-entity block counts, |B|).
    pub(crate) fn ensure_basic(&mut self) {
        if self.globals.is_none() {
            self.globals = Some(WeightGlobals::basic(self.collection));
        }
    }

    fn count(&mut self, threads: usize) {
        let ranges = self.ranges(threads.max(1));
        let mut degrees = vec![0u32; self.collection.num_entities()];
        fill_per_entity(
            self.collection,
            &ranges,
            &self.pool,
            &mut degrees,
            |_a, s| s.neighbours().len() as u32,
        );
        self.apply_count(degrees);
    }

    /// Installs externally-computed per-entity degrees (the MapReduce
    /// counting job) as the counted tier.
    pub(crate) fn apply_count(&mut self, degrees: Vec<u32>) {
        self.ensure_basic();
        let g = self.globals.as_mut().expect("just ensured");
        // |V| = Σ degrees / 2 (every edge counted at both endpoints).
        g.num_edges = degrees.iter().map(|&d| d as u64).sum::<u64>() as usize / 2;
        g.active_nodes = degrees.iter().filter(|&&d| d > 0).count();
        g.degrees = degrees;
        self.counted = true;
    }

    /// Whether the counted tier is installed.
    pub(crate) fn is_counted(&self) -> bool {
        self.counted
    }

    /// The cached globals; call [`Self::ensure`] (or a sibling) first.
    pub(crate) fn globals(&self) -> &WeightGlobals {
        self.globals
            .as_ref()
            .expect("SweepState::ensure must run first")
    }
}

/// Per-entity sweep cost (Σ sizes of the entity's blocks) — the balance
/// metric of the range partitioner.
fn sweep_costs(collection: &BlockCollection) -> Vec<u64> {
    (0..collection.num_entities() as u32)
        .map(|e| {
            collection
                .entity_blocks(EntityId(e))
                .iter()
                .map(|&b| collection.block_len(b) as u64)
                .sum()
        })
        .collect()
}

/// Splits `0..costs.len()` into at most `parts` contiguous ranges of
/// roughly equal total cost (for entity-range parallelism). Never returns
/// an empty range; may return fewer ranges than `parts`.
pub(crate) fn partition_by_cost(costs: &[u64], parts: usize) -> Vec<std::ops::Range<usize>> {
    let n = costs.len();
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.max(1).min(n);
    let total: u64 = costs.iter().sum();
    let target = total / parts as u64 + 1;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, &c) in costs.iter().enumerate() {
        acc += c;
        if acc >= target && out.len() + 1 < parts {
            out.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < n {
        out.push(start..n);
    }
    out
}

/// Default worker count for the parallel sweeps (the shared
/// `minoan_common` definition).
pub(crate) fn default_threads() -> usize {
    minoan_common::default_threads()
}

/// Contiguous entity ranges for `threads` workers, balanced by sweep cost
/// (Σ sizes of each entity's blocks) — shared by the CSR build and the
/// streaming passes so their parallel partitioning stays in lockstep.
pub(crate) fn entity_sweep_ranges(
    collection: &BlockCollection,
    threads: usize,
) -> Vec<std::ops::Range<usize>> {
    partition_by_cost(&sweep_costs(collection), threads)
}

/// Splits `slice` at the given cumulative `ends` (ascending, last ==
/// `slice.len()`), yielding one mutable chunk per segment for the scoped
/// worker threads.
pub(crate) fn split_by_ends<T>(
    mut slice: &mut [T],
    ends: impl IntoIterator<Item = usize>,
) -> Vec<&mut [T]> {
    let mut chunks = Vec::new();
    let mut prev = 0usize;
    for end in ends {
        let (chunk, rest) = slice.split_at_mut(end - prev);
        slice = rest;
        chunks.push(chunk);
        prev = end;
    }
    debug_assert!(slice.is_empty(), "ends must cover the whole slice");
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_everything_in_order() {
        let costs = vec![5u64, 1, 1, 1, 8, 1, 1, 1, 1, 1];
        for parts in 1..6 {
            let ranges = partition_by_cost(&costs, parts);
            assert!(ranges.len() <= parts);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                assert!(r.end > r.start);
                next = r.end;
            }
            assert_eq!(next, costs.len());
        }
    }

    #[test]
    fn partition_handles_empty() {
        assert!(partition_by_cost(&[], 4).is_empty());
    }
}
