//! The node-centric co-occurrence sweep shared by the CSR graph build and
//! the streaming pruners.
//!
//! For one entity `a`, a sweep visits every block containing `a` (in
//! ascending block-id order) and every comparable co-member, accumulating
//! per-neighbour statistics — `|B_aj|` (CBS) and `Σ 1/‖b‖` (ARCS) — in
//! dense arrays indexed by neighbour id. Resetting between entities uses
//! the classic epoch/touched-list trick: an epoch counter is bumped per
//! sweep and a slot is (re)initialised lazily the first time it is touched,
//! so a sweep costs `O(co-occurrences of a)`, never `O(n)`.
//!
//! Because blocks are visited in ascending id order, the f64 ARCS sums are
//! accumulated in exactly the order the materialised graph build uses —
//! which is what makes the streaming pruning paths *bit-identical* to the
//! materialised ones.

use minoan_blocking::BlockCollection;
use minoan_rdf::EntityId;

/// Reusable per-worker scratch for node-centric sweeps over a collection
/// with `n` entities.
pub(crate) struct SweepScratch {
    /// Epoch at which each neighbour slot was last touched.
    last_seen: Vec<u32>,
    /// CBS accumulator per neighbour (valid when `last_seen == epoch`).
    cbs: Vec<u32>,
    /// ARCS accumulator per neighbour (valid when `last_seen == epoch`).
    arcs: Vec<f64>,
    /// Neighbours touched by the current sweep (unsorted until
    /// [`Self::sweep`] returns).
    touched: Vec<u32>,
    /// Current sweep epoch.
    epoch: u32,
}

impl SweepScratch {
    /// Scratch sized for `n` entities.
    pub(crate) fn new(n: usize) -> Self {
        Self {
            last_seen: vec![0; n],
            cbs: vec![0; n],
            arcs: vec![0.0; n],
            touched: Vec::new(),
            epoch: 0,
        }
    }

    /// Sweeps entity `a`, leaving the distinct comparable neighbours of
    /// `a` (sorted ascending) in the returned slice; per-neighbour stats
    /// are then available through [`Self::cbs_of`] / [`Self::arcs_of`].
    pub(crate) fn sweep(&mut self, collection: &BlockCollection, a: EntityId) -> &[u32] {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely long-lived scratch wrapped around: clear lazily by
            // resetting all stamps (amortised to nothing in practice).
            self.last_seen.fill(u32::MAX);
            self.epoch = 1;
        }
        self.touched.clear();
        for (_bid, inv_card, y) in collection.co_occurrences(a) {
            let yi = y.index();
            if self.last_seen[yi] != self.epoch {
                self.last_seen[yi] = self.epoch;
                self.cbs[yi] = 1;
                self.arcs[yi] = inv_card;
                self.touched.push(y.0);
            } else {
                self.cbs[yi] += 1;
                self.arcs[yi] += inv_card;
            }
        }
        self.touched.sort_unstable();
        &self.touched
    }

    /// Sorted distinct neighbours of the most recent sweep.
    #[inline]
    pub(crate) fn neighbours(&self) -> &[u32] {
        &self.touched
    }

    /// CBS of the most recent sweep's edge to neighbour `y`.
    #[inline]
    pub(crate) fn cbs_of(&self, y: u32) -> u32 {
        self.cbs[y as usize]
    }

    /// ARCS of the most recent sweep's edge to neighbour `y`.
    #[inline]
    pub(crate) fn arcs_of(&self, y: u32) -> f64 {
        self.arcs[y as usize]
    }
}

/// Splits `0..costs.len()` into at most `parts` contiguous ranges of
/// roughly equal total cost (for entity-range parallelism). Never returns
/// an empty range; may return fewer ranges than `parts`.
pub(crate) fn partition_by_cost(costs: &[u64], parts: usize) -> Vec<std::ops::Range<usize>> {
    let n = costs.len();
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.max(1).min(n);
    let total: u64 = costs.iter().sum();
    let target = total / parts as u64 + 1;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, &c) in costs.iter().enumerate() {
        acc += c;
        if acc >= target && out.len() + 1 < parts {
            out.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < n {
        out.push(start..n);
    }
    out
}

/// Default worker count for the parallel sweeps.
pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Contiguous entity ranges for `threads` workers, balanced by sweep cost
/// (Σ sizes of each entity's blocks) — shared by the CSR build and the
/// streaming passes so their parallel partitioning stays in lockstep.
pub(crate) fn entity_sweep_ranges(
    collection: &BlockCollection,
    threads: usize,
) -> Vec<std::ops::Range<usize>> {
    let costs: Vec<u64> = (0..collection.num_entities() as u32)
        .map(|e| {
            collection
                .entity_blocks(EntityId(e))
                .iter()
                .map(|&b| collection.block(b).len() as u64)
                .sum()
        })
        .collect();
    partition_by_cost(&costs, threads)
}

/// Splits `slice` at the given cumulative `ends` (ascending, last ==
/// `slice.len()`), yielding one mutable chunk per segment for the scoped
/// worker threads.
pub(crate) fn split_by_ends<T>(
    mut slice: &mut [T],
    ends: impl IntoIterator<Item = usize>,
) -> Vec<&mut [T]> {
    let mut chunks = Vec::new();
    let mut prev = 0usize;
    for end in ends {
        let (chunk, rest) = slice.split_at_mut(end - prev);
        slice = rest;
        chunks.push(chunk);
        prev = end;
    }
    debug_assert!(slice.is_empty(), "ends must cover the whole slice");
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_everything_in_order() {
        let costs = vec![5u64, 1, 1, 1, 8, 1, 1, 1, 1, 1];
        for parts in 1..6 {
            let ranges = partition_by_cost(&costs, parts);
            assert!(ranges.len() <= parts);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                assert!(r.end > r.start);
                next = r.end;
            }
            assert_eq!(next, costs.len());
        }
    }

    #[test]
    fn partition_handles_empty() {
        assert!(partition_by_cost(&[], 4).is_empty());
    }
}
