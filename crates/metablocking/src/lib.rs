//! Meta-blocking: pruning the comparison stream of a block collection.
//!
//! Token blocking "leads to many repeated comparisons between the same
//! pairs of descriptions. To overcome this problem, we accompany blocking
//! with meta-blocking, which prunes such repeated comparisons. Moreover,
//! meta-blocking aims at discarding comparisons between descriptions that
//! share few common blocks and are thus less likely to match" (paper §1).
//!
//! # Execution backends
//!
//! Meta-blocking is the pipeline's hot path, and this crate offers two
//! ways to run it, selected by [`GraphBackend`]:
//!
//! * **Materialised** — build the [`BlockingGraph`] first, then prune it.
//!   The graph lives in flat CSR slabs (edge records sorted by pair, plus
//!   `offsets`/`edge-index` adjacency arrays); construction is a two-pass
//!   counting sort over node-centric sweeps, parallelised over entity
//!   ranges with scoped threads, with no hash map anywhere. The choice
//!   for anything that needs random access to the whole edge set (e.g.
//!   the supervised feature extractor) or reuses one graph across many
//!   pruning runs.
//! * **Streaming** — *every* pruning family runs without the global edge
//!   slab: [`streaming`] sweeps the collection entity by entity,
//!   reconstructing each node's incident statistics in dense epoch-reset
//!   accumulators, and emits only the kept pairs. The node-centric
//!   algorithms (WNP, CNP, BLAST) prune per neighbourhood; the
//!   edge-centric ones reduce their single global criterion
//!   deterministically — WEP via a fixed-shape pairwise mean, CEP via
//!   per-thread bounded top-k heaps merged under a strict total order.
//!   Output is bit-identical to the materialised path for every method,
//!   scheme, variant and thread count (enforced by property tests); see
//!   the support matrix in the [`streaming`] module docs.
//!
//! # Modules
//!
//! * [`graph`] — the CSR blocking graph: one node per description, one
//!   edge per *distinct* comparable pair, annotated with co-occurrence
//!   statistics.
//! * [`weights`] — the five standard edge-weighting schemes (CBS, ECBS,
//!   JS, EJS, ARCS), all computed through one stats kernel shared by both
//!   backends.
//! * [`prune`] — the four pruning algorithms over a built graph:
//!   weight-based (WEP, WNP) and cardinality-based (CEP, CNP), with
//!   redundancy (union) and reciprocal (intersection) variants of the
//!   node-centric ones.
//! * [`streaming`] — the on-the-fly WEP/CEP/WNP/CNP/BLAST described
//!   above.
//! * [`blast`] — BLAST's χ² weighting with loose per-node pruning.
//! * [`parallel`] — the MapReduce formulations of reference \[4\]
//!   (edge-based and entity-based strategies) on [`minoan_mapreduce`].
//! * [`supervised`] — perceptron-based supervised meta-blocking.
//!
//! # Example
//!
//! ```
//! use minoan_datagen::{generate, profiles};
//! use minoan_blocking::{builders, ErMode};
//! use minoan_metablocking::{streaming, BlockingGraph, WeightingScheme, prune};
//!
//! let g = generate(&profiles::center_dense(120, 3));
//! let blocks = builders::token_blocking(&g.dataset, ErMode::CleanClean);
//!
//! // Materialised: build the CSR graph, then prune.
//! let graph = BlockingGraph::build(&blocks);
//! let pruned = prune::wnp(&graph, WeightingScheme::Arcs, false);
//!
//! // Streaming: same result, no graph materialisation.
//! let streamed = streaming::wnp(&blocks, WeightingScheme::Arcs, false);
//! assert_eq!(pruned.pairs.len(), streamed.pairs.len());
//! ```

pub mod blast;
pub mod graph;
pub mod parallel;
pub mod prune;
pub mod streaming;
pub mod supervised;
mod sweep;
pub mod weights;

pub use blast::{blast, chi_square_weight, chi_square_weights};
pub use graph::{BlockingGraph, Edge};
pub use prune::{PrunedComparisons, WeightedPair};
pub use streaming::{GraphBackend, StreamingOptions};
pub use supervised::{supervised_prune, EdgeFeatures, FeatureExtractor, Perceptron, TrainingSet};
pub use weights::WeightingScheme;
