//! Meta-blocking: pruning the comparison stream of a block collection.
//!
//! Token blocking "leads to many repeated comparisons between the same
//! pairs of descriptions. To overcome this problem, we accompany blocking
//! with meta-blocking, which prunes such repeated comparisons. Moreover,
//! meta-blocking aims at discarding comparisons between descriptions that
//! share few common blocks and are thus less likely to match" (paper §1).
//!
//! * [`graph`] — the blocking graph: one node per description, one edge per
//!   *distinct* comparable pair, annotated with co-occurrence statistics.
//! * [`weights`] — the five standard edge-weighting schemes (CBS, ECBS,
//!   JS, EJS, ARCS).
//! * [`prune`] — the four pruning algorithms: weight-based (WEP, WNP) and
//!   cardinality-based (CEP, CNP), with redundancy (union) and reciprocal
//!   (intersection) variants of the node-centric ones.
//! * [`parallel`] — the MapReduce formulations of reference \[4\]
//!   (edge-based and entity-based strategies) on [`minoan_mapreduce`].
//!
//! # Example
//!
//! ```
//! use minoan_datagen::{generate, profiles};
//! use minoan_blocking::{builders, ErMode};
//! use minoan_metablocking::{BlockingGraph, WeightingScheme, prune};
//!
//! let g = generate(&profiles::center_dense(120, 3));
//! let blocks = builders::token_blocking(&g.dataset, ErMode::CleanClean);
//! let graph = BlockingGraph::build(&blocks);
//! let pruned = prune::wep(&graph, WeightingScheme::Cbs);
//! assert!(pruned.pairs.len() <= graph.num_edges());
//! ```

pub mod graph;
pub mod blast;
pub mod parallel;
pub mod prune;
pub mod supervised;
pub mod weights;

pub use blast::{blast, chi_square_weight, chi_square_weights};
pub use graph::{BlockingGraph, Edge};
pub use supervised::{supervised_prune, EdgeFeatures, FeatureExtractor, Perceptron, TrainingSet};
pub use prune::{PrunedComparisons, WeightedPair};
pub use weights::WeightingScheme;
