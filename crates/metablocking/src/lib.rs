//! Meta-blocking: pruning the comparison stream of a block collection.
//!
//! Token blocking "leads to many repeated comparisons between the same
//! pairs of descriptions. To overcome this problem, we accompany blocking
//! with meta-blocking, which prunes such repeated comparisons. Moreover,
//! meta-blocking aims at discarding comparisons between descriptions that
//! share few common blocks and are thus less likely to match" (paper §1).
//!
//! # One entry point: [`Session`]
//!
//! The paper's contribution is a *family* of strategies meant to be swept
//! and compared — five weighting schemes ([`WeightingScheme`]) × six
//! pruning families ([`Pruning`]: none, WEP, CEP, WNP, CNP, BLAST, plus
//! the supervised perceptron pruner) × three execution backends
//! ([`ExecutionBackend`]). A [`Session`] exposes the whole matrix behind
//! one builder-style call chain and returns one unified [`PruneOutcome`]
//! for every combination:
//!
//! ```
//! use minoan_datagen::{generate, profiles};
//! use minoan_blocking::{builders, ErMode};
//! use minoan_metablocking::{ExecutionBackend, Pruning, Session, WeightingScheme};
//!
//! let g = generate(&profiles::center_dense(120, 3));
//! let blocks = builders::token_blocking(&g.dataset, ErMode::CleanClean);
//!
//! let outcome = Session::new(&blocks)
//!     .scheme(WeightingScheme::Arcs)
//!     .pruning(Pruning::Wnp { reciprocal: false })
//!     .backend(ExecutionBackend::Streaming)
//!     .workers(4)
//!     .run();
//! assert!(outcome.retention() < 1.0, "WNP must prune something");
//! ```
//!
//! Crucially the session *owns the expensive shared state* — the CSR
//! [`BlockingGraph`] and supervised feature slab for the materialised
//! backend, the sweep ranges / weight globals / scratch pool for the
//! streaming and MapReduce backends — and reuses it across runs, so a
//! sweep over all five schemes costs one CSR build (or one scratch
//! allocation), not five:
//!
//! ```
//! # use minoan_datagen::{generate, profiles};
//! # use minoan_blocking::{builders, ErMode};
//! # use minoan_metablocking::{Pruning, Session, WeightingScheme};
//! # let g = generate(&profiles::center_dense(100, 7));
//! # let blocks = builders::token_blocking(&g.dataset, ErMode::CleanClean);
//! let mut session = Session::new(&blocks);
//! session.pruning(Pruning::Cnp { reciprocal: false, k: None });
//! for scheme in WeightingScheme::ALL {
//!     let outcome = session.scheme(scheme).run();   // graph built once
//!     assert!(!outcome.pairs().is_empty());
//! }
//! ```
//!
//! # Execution backends
//!
//! Meta-blocking is the pipeline's hot path, and every session runs on
//! one of three backends, selected by [`ExecutionBackend`]:
//!
//! * **Materialised** — build the [`BlockingGraph`] first, then prune it.
//!   The graph lives in flat CSR slabs (edge records sorted by pair, plus
//!   `offsets`/`edge-index` adjacency arrays); construction is a two-pass
//!   counting sort over node-centric sweeps, parallelised over entity
//!   ranges with scoped threads, with no hash map anywhere. The choice
//!   for anything that needs random access to the whole edge set or
//!   reuses one graph across many pruning runs.
//! * **Streaming** — *every* pruning family runs without the global edge
//!   slab: [`streaming`] sweeps the collection entity by entity,
//!   reconstructing each node's incident statistics in dense epoch-reset
//!   accumulators, and emits only the kept pairs. The node-centric
//!   algorithms (WNP, CNP, BLAST) prune per neighbourhood; the global
//!   criteria reduce deterministically — WEP via a fixed-shape pairwise
//!   mean, CEP via per-thread bounded top-k heaps merged under a strict
//!   total order, the supervised feature maxima via exact f64 `max`.
//! * **MapReduce** — the paper's distributed formulation (reference
//!   \[4\]) on [`minoan_mapreduce`]: [`parallel`] runs every pruning
//!   family as *entity-partitioned* jobs that map over entity ranges,
//!   rebuild each node's weighted neighbourhood with the same sweep
//!   kernel, and apply the pruning criterion reducer-side — shuffling at
//!   most one record per entity neighbourhood instead of one per pair
//!   occurrence (the edge-based strategy, kept as a baseline). These runs
//!   also fill [`PruneOutcome::report`] with per-job [`JobReport`] stats.
//!
//! Output is bit-identical across all three backends for every method,
//! scheme, variant, thread count and worker count (enforced by property
//! tests), and session-state reuse never changes a bit either
//! (`tests/session_reuse.rs`); every f64 weight is computed through the
//! single [`kernel::weight_from_stats`] body.
//!
//! # Modules
//!
//! * [`session`] — the [`Session`] entry point described above.
//! * [`incremental`] — the *updatable* arm: [`IncrementalSession`]
//!   ingests description batches through the delta-appendable block
//!   slabs and patches a per-entity weight-row cache by re-sweeping only
//!   the dirty entities, keeping its [`PruneOutcome`] bit-identical to a
//!   from-scratch run on the merged corpus.
//! * [`graph`] — the CSR blocking graph: one node per description, one
//!   edge per *distinct* comparable pair, annotated with co-occurrence
//!   statistics.
//! * [`kernel`] — the shared neighbourhood-stats → weight kernel all
//!   backends compute through.
//! * [`weights`] — the five standard edge-weighting schemes (CBS, ECBS,
//!   JS, EJS, ARCS).
//! * [`prune`] — the materialised pruning bodies over a built graph,
//!   plus the output type [`PrunedComparisons`] and the default-k
//!   helpers.
//! * [`streaming`] — the on-the-fly backend described above.
//! * [`blast`](mod@blast) — BLAST's χ² weighting with loose per-node
//!   pruning.
//! * [`parallel`] — the MapReduce formulations of reference \[4\]
//!   (entity-based and edge-based strategies) on [`minoan_mapreduce`].
//! * [`supervised`] — perceptron-based supervised meta-blocking
//!   (training, features, batched extraction).
//! * [`query`] — query-time resolution: single-entity neighbourhood
//!   sweeps ([`Session::resolve_entity`],
//!   [`IncrementalSession::resolve_entity`]) bit-identical to the
//!   incident slice of a full run, plus the [`NeighbourhoodCache`]
//!   backing the resolution server.
//! * [`probe`] — build/allocation counters backing the state-reuse
//!   assertions.
//!
//! The per-backend free functions that predate the session
//! (`prune::wnp`, `streaming::cep`, `parallel::wep_with_report`, …) still
//! exist as `#[doc(hidden)]` shims over the session bodies: the
//! cross-backend equivalence suites pin bit-identity against them, but
//! new code should go through [`Session`].

#![forbid(unsafe_code)]

pub mod blast;
pub mod graph;
pub mod incremental;
pub mod kernel;
pub mod parallel;
pub mod probe;
pub mod prune;
pub mod query;
pub mod session;
pub mod streaming;
pub mod supervised;
mod sweep;
pub mod weights;

#[doc(hidden)]
pub use blast::blast;
pub use blast::{chi_square_weight, chi_square_weights};
pub use graph::{BlockingGraph, Edge};
pub use incremental::{IncrementalSession, IngestReport};
pub use parallel::JobReport;
pub use prune::{PrunedComparisons, WeightedPair};
pub use query::{locally_invalidatable, NeighbourhoodCache, ResolvedEntity};
pub use session::{PruneOutcome, Pruning, Session};
pub use streaming::StreamingOptions;
#[doc(hidden)]
pub use supervised::supervised_prune;
pub use supervised::{EdgeFeatures, FeatureExtractor, Perceptron, TrainingSet};
pub use weights::WeightingScheme;

/// Which execution path meta-blocking runs on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecutionBackend {
    /// Build the CSR blocking graph, then prune it ([`prune`]).
    #[default]
    Materialized,
    /// Streaming sweeps; the global edge set is never materialised for
    /// *any* pruning method (node-centric WNP/CNP/BLAST and edge-centric
    /// WEP/CEP alike) — see [`streaming`].
    Streaming,
    /// Entity-partitioned MapReduce jobs on [`minoan_mapreduce`] — see
    /// [`parallel`]. The worker count is configured on the engine (or the
    /// pipeline's `workers` knob); results never depend on it.
    MapReduce,
}

impl ExecutionBackend {
    /// All backends, for equivalence sweeps.
    pub const ALL: [ExecutionBackend; 3] = [
        ExecutionBackend::Materialized,
        ExecutionBackend::Streaming,
        ExecutionBackend::MapReduce,
    ];

    /// Parses the CLI/config spelling
    /// (`materialized` | `streaming` | `mapreduce`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "materialized" | "materialised" => Some(Self::Materialized),
            "streaming" => Some(Self::Streaming),
            "mapreduce" | "map-reduce" => Some(Self::MapReduce),
            _ => None,
        }
    }

    /// The config spelling of this backend.
    pub fn name(self) -> &'static str {
        match self {
            Self::Materialized => "materialized",
            Self::Streaming => "streaming",
            Self::MapReduce => "mapreduce",
        }
    }
}

/// The pre-PR-3 name of [`ExecutionBackend`], kept so existing two-way
/// call sites keep compiling; the MapReduce variant makes it three-way.
pub type GraphBackend = ExecutionBackend;

/// The one definition of "bit-identical pruning output" the in-crate
/// equivalence tests assert: same input-edge count, same pair order,
/// same f64 weight bits. (The workspace-level suites keep their own copy
/// in `tests/common/` — integration tests cannot import `#[cfg(test)]`
/// items.)
#[cfg(test)]
pub(crate) fn assert_bit_identical(a: &PrunedComparisons, b: &PrunedComparisons, label: &str) {
    assert_eq!(a.input_edges, b.input_edges, "{label}: input_edges");
    assert_eq!(a.pairs.len(), b.pairs.len(), "{label}: kept count");
    for (x, y) in a.pairs.iter().zip(&b.pairs) {
        assert_eq!((x.a, x.b), (y.a, y.b), "{label}: pair order");
        assert_eq!(
            x.weight.to_bits(),
            y.weight.to_bits(),
            "{label}: weight bits differ for ({:?},{:?}): {} vs {}",
            x.a,
            x.b,
            x.weight,
            y.weight
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parsing_round_trips() {
        for b in ExecutionBackend::ALL {
            assert_eq!(ExecutionBackend::parse(b.name()), Some(b));
        }
        assert_eq!(
            ExecutionBackend::parse("map-reduce"),
            Some(ExecutionBackend::MapReduce)
        );
        assert_eq!(ExecutionBackend::parse("nonsense"), None);
    }
}
