//! The one meta-blocking entry point: [`Session`].
//!
//! The paper's contribution is a *family* of meta-blocking strategies
//! meant to be swept and compared — five weighting schemes × six pruning
//! families × three execution backends. A session makes that sweep cheap
//! and uniform: it borrows a block collection, is configured builder-style
//! ([`Session::scheme`], [`Session::pruning`], [`Session::backend`],
//! [`Session::workers`]), and every [`Session::run`] returns the same
//! unified [`PruneOutcome`] whichever combination is selected.
//!
//! What makes it a session rather than a dispatcher is the **owned shared
//! state**: the CSR [`BlockingGraph`] (and the supervised feature slab)
//! for the materialised backend, and the sweep state — cost-balanced
//! entity ranges, [`kernel`](crate::kernel) weight globals, the scratch
//! pool — for the streaming and MapReduce backends. All of it is built
//! lazily on first use and reused by every subsequent run, so sweeping
//! all five schemes (or all pruning families) performs exactly one CSR
//! build / one scratch allocation instead of one per call. The
//! [`probe`](crate::probe) counters exist so tests can assert that claim.
//!
//! Reuse never changes results: every combination stays bit-identical to
//! a fresh single-shot run (enforced in `tests/session_reuse.rs`).

use crate::blast;
use crate::graph::BlockingGraph;
use crate::parallel::{self, JobReport};
use crate::prune::{self, PrunedComparisons, WeightedPair};
use crate::query::{self, Criterion, ResolvedEntity, SweepRows};
use crate::streaming;
use crate::supervised::{self, EdgeFeatures, FeatureExtractor, Perceptron};
use crate::sweep::{default_threads, SweepState};
use crate::weights::WeightingScheme;
use crate::ExecutionBackend;
use minoan_blocking::BlockCollection;
use minoan_mapreduce::Engine;
use minoan_rdf::EntityId;

/// Which pruning family a session run applies — the full catalogue,
/// including BLAST and the supervised pruner, each runnable on every
/// [`ExecutionBackend`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Pruning {
    /// No pruning: every blocking-graph edge survives, weighted, in pair
    /// order (the order the edge slab is sorted in).
    None,
    /// Weighted edge pruning: keep edges at or above the global mean
    /// weight (over positive-weight edges).
    Wep,
    /// Cardinality edge pruning: keep the global top-k edges by weight
    /// (`None` = the literature default `BC / 2`).
    Cep(Option<usize>),
    /// Weighted node pruning; `reciprocal` = intersection variant.
    Wnp {
        /// Both endpoints must retain the edge.
        reciprocal: bool,
    },
    /// Cardinality node pruning; per-node `k` (`None` = default).
    Cnp {
        /// Both endpoints must retain the edge.
        reciprocal: bool,
        /// Per-node cardinality override.
        k: Option<usize>,
    },
    /// BLAST: χ² weighting with loose ratio-of-local-max pruning. The
    /// weighting scheme setting is ignored (χ² replaces it).
    Blast {
        /// Keep edges with weight ≥ `ratio ·` either endpoint's local
        /// maximum; must be in `(0, 1]`.
        ratio: f64,
    },
    /// Supervised pruning with a trained perceptron over the 7-feature
    /// edge vectors. The weighting scheme setting is ignored (all five
    /// schemes enter the feature vector).
    Supervised(Perceptron),
}

impl Pruning {
    /// BLAST at its recommended default keep ratio.
    pub fn blast() -> Self {
        Pruning::Blast {
            ratio: blast::DEFAULT_RATIO,
        }
    }

    /// The unsupervised families at their defaults, for sweep
    /// experiments ([`Pruning::Supervised`] needs a trained model, so it
    /// is not listed).
    pub const FAMILIES: [Pruning; 6] = [
        Pruning::None,
        Pruning::Wep,
        Pruning::Cep(None),
        Pruning::Wnp { reciprocal: false },
        Pruning::Cnp {
            reciprocal: false,
            k: None,
        },
        Pruning::Blast {
            ratio: blast::DEFAULT_RATIO,
        },
    ];
}

/// The unified result of one [`Session::run`]: the pruned comparisons
/// plus — when the MapReduce backend ran — the per-job execution
/// statistics (shuffle volume, modeled makespan).
#[derive(Clone, Debug)]
pub struct PruneOutcome {
    /// The retained comparisons with their weights, the scheme label and
    /// the input-edge count.
    pub pruned: PrunedComparisons,
    /// Per-job [`minoan_mapreduce::JobStats`] of the MapReduce run that
    /// produced this outcome; empty for the materialised and streaming
    /// backends (they run in-process, not as jobs).
    pub report: JobReport,
}

impl PruneOutcome {
    fn local(pruned: PrunedComparisons) -> Self {
        Self {
            pruned,
            report: JobReport::default(),
        }
    }

    /// The retained pairs (see [`PrunedComparisons::pairs`] for the
    /// ordering contract per family).
    pub fn pairs(&self) -> &[WeightedPair] {
        &self.pruned.pairs
    }

    /// Edges in the input blocking graph (for retention reporting).
    pub fn input_edges(&self) -> usize {
        self.pruned.input_edges
    }

    /// Fraction of input edges retained.
    pub fn retention(&self) -> f64 {
        self.pruned.retention()
    }

    /// Total records shuffled by the MapReduce jobs (0 for the local
    /// backends).
    pub fn shuffled_records(&self) -> usize {
        self.report.shuffled_records()
    }

    /// The candidate list the pipeline feeds to progressive matching.
    pub fn into_candidates(self) -> Vec<(EntityId, EntityId, f64)> {
        self.pruned
            .pairs
            .into_iter()
            .map(|p| (p.a, p.b, p.weight))
            .collect()
    }
}

/// A configured meta-blocking run over one block collection, with the
/// expensive shared state cached across runs.
///
/// ```
/// use minoan_datagen::{generate, profiles};
/// use minoan_blocking::{builders, ErMode};
/// use minoan_metablocking::{ExecutionBackend, Pruning, Session, WeightingScheme};
///
/// let g = generate(&profiles::center_dense(120, 3));
/// let blocks = builders::token_blocking(&g.dataset, ErMode::CleanClean);
///
/// // Sweep all five schemes through one session: the CSR graph is built
/// // once and reused.
/// let mut session = Session::new(&blocks);
/// session.pruning(Pruning::Wnp { reciprocal: false });
/// for scheme in WeightingScheme::ALL {
///     let outcome = session.scheme(scheme).run();
///     assert!(outcome.pairs().len() <= outcome.input_edges());
/// }
///
/// // Every backend produces the same pairs, bit for bit.
/// let m = session
///     .scheme(WeightingScheme::Arcs)
///     .backend(ExecutionBackend::Materialized)
///     .run();
/// let s = session.backend(ExecutionBackend::Streaming).run();
/// let p = session.backend(ExecutionBackend::MapReduce).workers(3).run();
/// assert_eq!(m.pairs(), s.pairs());
/// assert_eq!(m.pairs(), p.pairs());
/// ```
pub struct Session<'c> {
    collection: &'c BlockCollection,
    scheme: WeightingScheme,
    pruning: Pruning,
    backend: ExecutionBackend,
    workers: Option<usize>,
    // Cached shared state, built lazily and reused across runs.
    graph: Option<BlockingGraph>,
    features: Option<(FeatureExtractor, Vec<EdgeFeatures>)>,
    sweep: SweepState<'c>,
    // Query-time pruning criterion, keyed by the scheme × pruning it was
    // built for (resolve_entity rebuilds it on a config switch).
    criterion: Option<((WeightingScheme, Pruning), Criterion)>,
}

impl<'c> Session<'c> {
    /// A session over `collection` with the pipeline defaults:
    /// ARCS-weighted WNP on the materialised backend.
    pub fn new(collection: &'c BlockCollection) -> Self {
        Self {
            collection,
            scheme: WeightingScheme::Arcs,
            pruning: Pruning::Wnp { reciprocal: false },
            backend: ExecutionBackend::Materialized,
            workers: None,
            graph: None,
            features: None,
            sweep: SweepState::new(collection),
            criterion: None,
        }
    }

    /// Sets the edge-weighting scheme (ignored by BLAST and supervised
    /// pruning, which bring their own weights).
    pub fn scheme(&mut self, scheme: WeightingScheme) -> &mut Self {
        self.scheme = scheme;
        self
    }

    /// Sets the pruning family.
    pub fn pruning(&mut self, pruning: Pruning) -> &mut Self {
        self.pruning = pruning;
        self
    }

    /// Sets the execution backend.
    pub fn backend(&mut self, backend: ExecutionBackend) -> &mut Self {
        self.backend = backend;
        self
    }

    /// Pins the worker count (streaming threads / MapReduce workers /
    /// CSR build threads). Results never depend on it; the default is all
    /// available parallelism.
    pub fn workers(&mut self, workers: usize) -> &mut Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// The underlying block collection.
    pub fn collection(&self) -> &'c BlockCollection {
        self.collection
    }

    fn threads(&self) -> usize {
        self.workers.unwrap_or_else(default_threads).max(1)
    }

    /// The session's CSR blocking graph, built on first use and cached.
    /// Only the materialised backend needs it; the sweep backends never
    /// build it.
    pub fn graph(&mut self) -> &BlockingGraph {
        if self.graph.is_none() {
            self.graph = Some(BlockingGraph::build_with_threads(
                self.collection,
                self.threads(),
            ));
        }
        self.graph.as_ref().expect("just built")
    }

    /// Runs the configured scheme × pruning × backend combination,
    /// reusing every piece of shared state previous runs already built.
    pub fn run(&mut self) -> PruneOutcome {
        match self.backend {
            ExecutionBackend::Materialized => self.run_materialized(),
            ExecutionBackend::Streaming => self.run_streaming(),
            ExecutionBackend::MapReduce => self.run_mapreduce(),
        }
    }

    /// Resolves one entity at query time: the comparisons a full
    /// [`Session::run`] of the current scheme × pruning would keep for
    /// it — same pairs, same order, same f64 weight bits — from a
    /// single neighbourhood sweep instead of a corpus pass.
    ///
    /// The pruning family's *global* inputs (WEP's mean threshold,
    /// CEP's top-k, CNP's default `k`, the supervised feature maxima)
    /// are computed once per scheme × pruning configuration and cached
    /// on the session, so repeated resolves cost one entity sweep each,
    /// plus lazy neighbour-row sweeps where the node-centric vote needs
    /// the other endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `entity` is out of range of the collection.
    ///
    /// ```
    /// use minoan_datagen::{generate, profiles};
    /// use minoan_blocking::{builders, ErMode};
    /// use minoan_metablocking::{ExecutionBackend, Pruning, Session, WeightingScheme};
    /// use minoan_rdf::EntityId;
    ///
    /// let g = generate(&profiles::center_dense(80, 3));
    /// let blocks = builders::token_blocking(&g.dataset, ErMode::CleanClean);
    /// let mut session = Session::new(&blocks);
    /// session
    ///     .scheme(WeightingScheme::Js)
    ///     .pruning(Pruning::Wnp { reciprocal: false });
    ///
    /// // One entity's matches, from a single neighbourhood sweep …
    /// let e = EntityId(3);
    /// let resolved = session.resolve_entity(e);
    ///
    /// // … are exactly the incident slice of the full-corpus outcome.
    /// let full = session.backend(ExecutionBackend::Streaming).run();
    /// let incident: Vec<_> = full
    ///     .pairs()
    ///     .iter()
    ///     .filter(|p| p.a == e || p.b == e)
    ///     .copied()
    ///     .collect();
    /// assert_eq!(resolved.matches, incident);
    /// ```
    pub fn resolve_entity(&mut self, entity: EntityId) -> ResolvedEntity {
        assert!(
            (entity.0 as usize) < self.collection.num_entities(),
            "resolve_entity: entity id out of range"
        );
        let scheme = self.scheme;
        let pruning = self.pruning;
        let threads = self.threads();
        let cached = matches!(&self.criterion, Some((key, _)) if *key == (scheme, pruning));
        if !cached {
            let crit = query::build_criterion(&mut self.sweep, scheme, &pruning, threads);
            self.criterion = Some(((scheme, pruning), crit));
        }
        let (_, criterion) = self.criterion.as_ref().expect("criterion just ensured");
        let st = &self.sweep;
        match (&pruning, criterion) {
            (Pruning::Supervised(model), Criterion::Supervised(extractor)) => {
                query::resolve_supervised(
                    st.collection,
                    st.globals(),
                    &st.pool,
                    extractor,
                    model,
                    entity,
                )
            }
            (Pruning::Blast { .. }, _) => {
                let mut rows = SweepRows::chi2(st.collection, st.globals(), &st.pool);
                query::resolve_rows(&mut rows, entity, pruning, criterion)
            }
            _ => {
                let mut rows = SweepRows::scheme(st.collection, st.globals(), &st.pool, scheme);
                query::resolve_rows(&mut rows, entity, pruning, criterion)
            }
        }
    }

    fn run_materialized(&mut self) -> PruneOutcome {
        let scheme = self.scheme;
        let pruning = self.pruning;
        self.graph();
        if matches!(pruning, Pruning::Supervised(_)) && self.features.is_none() {
            let graph = self.graph.as_ref().expect("graph just ensured");
            self.features = Some(FeatureExtractor::fit_extract_all(graph));
        }
        let graph = self.graph.as_ref().expect("graph just ensured");
        let pruned = match pruning {
            Pruning::None => {
                let pairs = graph
                    .edges()
                    .iter()
                    .map(|e| WeightedPair {
                        a: e.a,
                        b: e.b,
                        weight: scheme.weight(graph, e),
                    })
                    .collect();
                PrunedComparisons {
                    pairs,
                    scheme,
                    input_edges: graph.num_edges(),
                }
            }
            Pruning::Wep => prune::wep(graph, scheme),
            Pruning::Cep(k) => prune::cep(graph, scheme, k),
            Pruning::Wnp { reciprocal } => prune::wnp(graph, scheme, reciprocal),
            Pruning::Cnp { reciprocal, k } => prune::cnp(graph, scheme, reciprocal, k),
            Pruning::Blast { ratio } => blast::blast(graph, ratio),
            Pruning::Supervised(model) => {
                let (_, features) = self.features.as_ref().expect("features just ensured");
                supervised::prune_with_features(graph, features, &model)
            }
        };
        PruneOutcome::local(pruned)
    }

    fn run_streaming(&mut self) -> PruneOutcome {
        let scheme = self.scheme;
        let threads = self.threads();
        let st = &mut self.sweep;
        let pruned = match self.pruning {
            Pruning::None => {
                let (pairs, fwd) = streaming::weighted_edges_session(st, scheme, threads);
                let input_edges = fwd as usize;
                PrunedComparisons {
                    pairs,
                    scheme,
                    input_edges,
                }
            }
            Pruning::Wep => streaming::wep_session(st, scheme, threads),
            Pruning::Cep(k) => streaming::cep_session(st, scheme, k, threads),
            Pruning::Wnp { reciprocal } => streaming::wnp_session(st, scheme, reciprocal, threads),
            Pruning::Cnp { reciprocal, k } => {
                streaming::cnp_session(st, scheme, reciprocal, k, threads)
            }
            Pruning::Blast { ratio } => streaming::blast_session(st, ratio, threads),
            Pruning::Supervised(model) => streaming::supervised_session(st, &model, threads),
        };
        PruneOutcome::local(pruned)
    }

    fn run_mapreduce(&mut self) -> PruneOutcome {
        let scheme = self.scheme;
        let engine = match self.workers {
            Some(w) => Engine::new(w),
            None => Engine::default(),
        };
        let st = &mut self.sweep;
        let (pruned, report) = match self.pruning {
            Pruning::None => {
                let (pairs, report) = parallel::weighted_edges_session(st, scheme, &engine);
                let input_edges = pairs.len();
                (
                    PrunedComparisons {
                        pairs,
                        scheme,
                        input_edges,
                    },
                    report,
                )
            }
            Pruning::Wep => parallel::wep_session(st, scheme, &engine),
            Pruning::Cep(k) => parallel::cep_session(st, scheme, k, &engine),
            Pruning::Wnp { reciprocal } => parallel::wnp_session(st, scheme, reciprocal, &engine),
            Pruning::Cnp { reciprocal, k } => {
                parallel::cnp_session(st, scheme, reciprocal, k, &engine)
            }
            Pruning::Blast { ratio } => parallel::blast_session(st, ratio, &engine),
            Pruning::Supervised(model) => parallel::supervised_session(st, &model, &engine),
        };
        PruneOutcome { pruned, report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_blocking::builders::token_blocking;
    use minoan_blocking::ErMode;
    use minoan_datagen::{generate, profiles};

    #[test]
    fn builder_chain_runs_every_backend() {
        let world = generate(&profiles::center_dense(80, 5));
        let blocks = token_blocking(&world.dataset, ErMode::CleanClean);
        let base = Session::new(&blocks)
            .scheme(WeightingScheme::Js)
            .pruning(Pruning::Wnp { reciprocal: true })
            .run();
        assert!(!base.pairs().is_empty());
        for backend in ExecutionBackend::ALL {
            let out = Session::new(&blocks)
                .scheme(WeightingScheme::Js)
                .pruning(Pruning::Wnp { reciprocal: true })
                .backend(backend)
                .workers(2)
                .run();
            assert_eq!(out.pairs(), base.pairs(), "{backend:?}");
            assert_eq!(out.input_edges(), base.input_edges(), "{backend:?}");
        }
    }

    #[test]
    fn mapreduce_outcome_carries_job_stats() {
        let world = generate(&profiles::center_dense(80, 7));
        let blocks = token_blocking(&world.dataset, ErMode::CleanClean);
        let out = Session::new(&blocks)
            .backend(ExecutionBackend::MapReduce)
            .workers(3)
            .run();
        assert!(!out.report.jobs.is_empty(), "MapReduce runs report jobs");
        assert!(out.shuffled_records() > 0);
        let local = Session::new(&blocks).run();
        assert!(local.report.jobs.is_empty(), "local backends report none");
        assert_eq!(local.shuffled_records(), 0);
    }

    #[test]
    fn pruning_none_keeps_every_edge_in_pair_order() {
        let world = generate(&profiles::center_dense(60, 9));
        let blocks = token_blocking(&world.dataset, ErMode::CleanClean);
        for backend in ExecutionBackend::ALL {
            let out = Session::new(&blocks)
                .pruning(Pruning::None)
                .backend(backend)
                .run();
            assert_eq!(out.pairs().len(), out.input_edges(), "{backend:?}");
            assert!(
                out.pairs()
                    .windows(2)
                    .all(|w| (w[0].a, w[0].b) < (w[1].a, w[1].b)),
                "{backend:?}: unpruned output must stay in pair order"
            );
            assert_eq!(out.retention(), 1.0, "{backend:?}");
        }
    }

    #[test]
    fn families_constant_covers_the_catalogue() {
        assert_eq!(Pruning::FAMILIES.len(), 6);
        assert!(Pruning::FAMILIES.contains(&Pruning::blast()));
    }
}
