//! Process-wide instrumentation counters for the expensive shared state.
//!
//! The whole point of [`Session`](crate::Session) is that sweeping many
//! scheme × pruning combinations reuses one CSR build and one set of sweep
//! scratches instead of rebuilding them per call. That claim is asserted,
//! not assumed: these counters tick on every [`BlockingGraph`] CSR
//! construction and every `SweepScratch` allocation, and the session-reuse
//! test suite checks the deltas (e.g. a five-scheme sweep through one
//! session performs exactly one CSR build, and — at one worker — exactly
//! one scratch allocation).
//!
//! The counters are monotone, global and racy-read (`Relaxed`); callers
//! that assert on deltas must serialise the measured region themselves.
//!
//! [`BlockingGraph`]: crate::BlockingGraph

use std::sync::atomic::{AtomicUsize, Ordering};

static CSR_BUILDS: AtomicUsize = AtomicUsize::new(0);
static SCRATCH_ALLOCS: AtomicUsize = AtomicUsize::new(0);

/// Number of CSR blocking-graph constructions so far in this process.
pub fn csr_builds() -> usize {
    CSR_BUILDS.load(Ordering::Relaxed)
}

/// Number of sweep-scratch allocations so far in this process.
pub fn scratch_allocs() -> usize {
    SCRATCH_ALLOCS.load(Ordering::Relaxed)
}

pub(crate) fn record_csr_build() {
    CSR_BUILDS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_scratch_alloc() {
    SCRATCH_ALLOCS.fetch_add(1, Ordering::Relaxed);
}
