//! Process-wide instrumentation counters for the expensive shared state.
//!
//! The whole point of [`Session`](crate::Session) is that sweeping many
//! scheme × pruning combinations reuses one CSR build and one set of sweep
//! scratches instead of rebuilding them per call. That claim is asserted,
//! not assumed: these counters tick on every [`BlockingGraph`] CSR
//! construction and every `SweepScratch` allocation, and the session-reuse
//! test suite checks the deltas (e.g. a five-scheme sweep through one
//! session performs exactly one CSR build, and — at one worker — exactly
//! one scratch allocation).
//!
//! The counters are monotone, global and racy-read (`Relaxed`); callers
//! that assert on deltas must serialise the measured region themselves.
//!
//! [`BlockingGraph`]: crate::BlockingGraph

use std::sync::atomic::{AtomicUsize, Ordering};

static CSR_BUILDS: AtomicUsize = AtomicUsize::new(0);
static SCRATCH_ALLOCS: AtomicUsize = AtomicUsize::new(0);
static DELTA_SWEEPS: AtomicUsize = AtomicUsize::new(0);
static FULL_RESWEEPS: AtomicUsize = AtomicUsize::new(0);
static DELTA_ENTITIES_SWEPT: AtomicUsize = AtomicUsize::new(0);
static DELTA_BLOCKS_TOUCHED: AtomicUsize = AtomicUsize::new(0);
static RESOLVE_SWEEPS: AtomicUsize = AtomicUsize::new(0);
static CACHE_HITS: AtomicUsize = AtomicUsize::new(0);
static CACHE_MISSES: AtomicUsize = AtomicUsize::new(0);

/// Number of CSR blocking-graph constructions so far in this process.
pub fn csr_builds() -> usize {
    CSR_BUILDS.load(Ordering::Relaxed)
}

/// Number of sweep-scratch allocations so far in this process.
pub fn scratch_allocs() -> usize {
    SCRATCH_ALLOCS.load(Ordering::Relaxed)
}

/// Number of delta-sweep passes (dirty-set row refreshes) run by
/// incremental sessions so far in this process.
pub fn delta_sweeps() -> usize {
    DELTA_SWEEPS.load(Ordering::Relaxed)
}

/// Number of full re-sweeps an incremental session fell back to (an
/// unsupported scheme × pruning combination, or a cold rows cache).
pub fn full_resweeps() -> usize {
    FULL_RESWEEPS.load(Ordering::Relaxed)
}

/// Total entities re-swept by delta-sweep passes — the counter the
/// delta suite compares against the arrived-entity count to prove the
/// dirty sweeps touch a strict subset of the corpus.
pub fn delta_entities_swept() -> usize {
    DELTA_ENTITIES_SWEPT.load(Ordering::Relaxed)
}

/// Total blocks reported touched by incremental ingests.
pub fn delta_blocks_touched() -> usize {
    DELTA_BLOCKS_TOUCHED.load(Ordering::Relaxed)
}

/// Number of single-entity neighbourhood sweeps run by `resolve_entity`
/// (each one visits one entity's blocks instead of the whole corpus —
/// the query-time claim the serve suites assert on).
pub fn resolve_sweeps() -> usize {
    RESOLVE_SWEEPS.load(Ordering::Relaxed)
}

/// Hot-neighbourhood cache hits (a `RESOLVE` answered from a still-valid
/// cached entry, no sweep run).
pub fn cache_hits() -> usize {
    CACHE_HITS.load(Ordering::Relaxed)
}

/// Hot-neighbourhood cache misses (entry absent, evicted or invalidated
/// by an ingest's dirty set — a sweep had to run).
pub fn cache_misses() -> usize {
    CACHE_MISSES.load(Ordering::Relaxed)
}

pub(crate) fn record_csr_build() {
    CSR_BUILDS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_scratch_alloc() {
    SCRATCH_ALLOCS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_delta_sweep(entities_swept: usize, blocks_touched: usize) {
    DELTA_SWEEPS.fetch_add(1, Ordering::Relaxed);
    DELTA_ENTITIES_SWEPT.fetch_add(entities_swept, Ordering::Relaxed);
    DELTA_BLOCKS_TOUCHED.fetch_add(blocks_touched, Ordering::Relaxed);
}

pub(crate) fn record_full_resweep() {
    FULL_RESWEEPS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_resolve_sweep() {
    RESOLVE_SWEEPS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_cache_hit() {
    CACHE_HITS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_cache_miss() {
    CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
}
