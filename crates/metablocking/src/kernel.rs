//! The shared neighbourhood-stats → edge-weight kernel.
//!
//! Every execution backend — the materialised pruners over the CSR graph
//! ([`crate::prune`] via [`WeightingScheme::weight`]), the streaming sweeps
//! ([`crate::streaming`]) and the MapReduce formulations
//! ([`crate::parallel`]) — must produce *bit-identical* f64 weights. That
//! only holds if the arithmetic lives in exactly one place: f64
//! multiplication chains are association-order sensitive at the ulp level
//! (ECBS/EJS multiply per-endpoint log factors), so three copies of the
//! same formula drift the moment one is edited. This module is that single
//! place:
//!
//! * [`weight_from_stats`] — the scalar kernel: per-pair co-occurrence
//!   statistics (`|B_ij|`, ARCS sum) plus per-endpoint/global aggregates
//!   in, one weight out. Endpoint-dependent factors are always evaluated
//!   in normalised `(smaller, larger)` endpoint order.
//! * `WeightGlobals` (crate-internal) — the per-collection aggregates a
//!   sweep-based backend needs before it can weight an edge (`|B_i|`,
//!   `|B|`, and — for EJS — node degrees and `|V|`). Owned and cached
//!   across runs by [`Session`](crate::Session)'s sweep state, so a
//!   scheme sweep computes them once.
//! * Crate-internal sweep-side helpers (`edge_weight`, `forward_weight`,
//!   `neighbour_weights`, `combine_votes`) shared by the streaming and
//!   MapReduce paths, which both reconstruct a node's incident statistics
//!   with the epoch-reset `SweepScratch` and must iterate neighbours in
//!   the same ascending order the edge slab is sorted in.

use crate::prune::WeightedPair;
use crate::sweep::SweepScratch;
use crate::weights::WeightingScheme;
use minoan_blocking::BlockCollection;
use minoan_common::stats::log_weight;
use minoan_rdf::EntityId;

/// Weight of one edge from raw per-pair and per-endpoint statistics — the
/// scalar kernel every backend computes through.
///
/// `blocks_lo`/`blocks_hi` (and `deg_lo`/`deg_hi`) are the endpoint
/// aggregates in normalised `(smaller, larger)` endpoint order; passing
/// them swapped changes the f64 rounding of the ECBS/EJS factor products
/// and breaks cross-backend bit-identity. `deg_lo`/`deg_hi`/`num_edges`
/// are only read by [`WeightingScheme::Ejs`].
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn weight_from_stats(
    scheme: WeightingScheme,
    common_blocks: u32,
    arcs: f64,
    blocks_lo: u32,
    blocks_hi: u32,
    num_blocks: usize,
    deg_lo: usize,
    deg_hi: usize,
    num_edges: usize,
) -> f64 {
    let cbs = common_blocks as f64;
    match scheme {
        WeightingScheme::Cbs => cbs,
        WeightingScheme::Ecbs => {
            let b = num_blocks as f64;
            cbs * log_weight(b, blocks_lo as f64) * log_weight(b, blocks_hi as f64)
        }
        WeightingScheme::Js => {
            let denom = blocks_lo as f64 + blocks_hi as f64 - cbs;
            if denom <= 0.0 {
                0.0
            } else {
                cbs / denom
            }
        }
        WeightingScheme::Ejs => {
            let js = weight_from_stats(
                WeightingScheme::Js,
                common_blocks,
                arcs,
                blocks_lo,
                blocks_hi,
                num_blocks,
                deg_lo,
                deg_hi,
                num_edges,
            );
            let v = num_edges as f64;
            js * log_weight(v, deg_lo as f64) * log_weight(v, deg_hi as f64)
        }
        WeightingScheme::Arcs => arcs,
    }
}

/// Global aggregates a sweep pass may need before weighting.
///
/// `Clone` because the incremental resolve path snapshots these alongside
/// a criterion (the globals are per-corpus-version; a cached copy avoids
/// holding a borrow of the transient sweep state that computed them).
#[derive(Clone)]
pub(crate) struct WeightGlobals {
    /// Per-entity |B_i| (straight from the collection).
    pub(crate) blocks_of: Vec<u32>,
    /// |B|.
    pub(crate) num_blocks: usize,
    /// Per-entity degree |V_i|; empty unless a counting pass ran.
    pub(crate) degrees: Vec<u32>,
    /// |V| — number of distinct comparable pairs (0 unless counted).
    pub(crate) num_edges: usize,
    /// Entities with at least one neighbour (0 unless counted).
    pub(crate) active_nodes: usize,
}

impl WeightGlobals {
    /// The aggregates available without any counting pass: per-entity
    /// block counts and the total block count.
    pub(crate) fn basic(collection: &BlockCollection) -> Self {
        Self {
            blocks_of: blocks_of(collection),
            num_blocks: collection.len(),
            degrees: Vec::new(),
            num_edges: 0,
            active_nodes: 0,
        }
    }
}

/// Per-entity |B_i| for the whole collection.
pub(crate) fn blocks_of(collection: &BlockCollection) -> Vec<u32> {
    (0..collection.num_entities() as u32)
        .map(|e| collection.entity_blocks(EntityId(e)).len() as u32)
        .collect()
}

/// Weight of the current sweep's edge to neighbour `y`, with `(lo, hi)`
/// the pair's endpoints in normalised (smaller, larger) order. The single
/// kernel call site for every sweep-based backend: the materialised path
/// always evaluates edges in that endpoint order, so bit-identity depends
/// on this one body staying the only place the order is decided.
pub(crate) fn edge_weight(
    scheme: WeightingScheme,
    scratch: &SweepScratch,
    globals: &WeightGlobals,
    y: u32,
    lo: u32,
    hi: u32,
) -> f64 {
    debug_assert!(lo < hi);
    let (dlo, dhi) = if globals.degrees.is_empty() {
        (0, 0)
    } else {
        (
            globals.degrees[lo as usize] as usize,
            globals.degrees[hi as usize] as usize,
        )
    };
    weight_from_stats(
        scheme,
        scratch.cbs_of(y),
        scratch.arcs_of(y),
        globals.blocks_of[lo as usize],
        globals.blocks_of[hi as usize],
        globals.num_blocks,
        dlo,
        dhi,
        globals.num_edges,
    )
}

/// Weight of the forward edge `(a, y)` (`a < y`) from the current
/// sweep's stats — [`edge_weight`] with the endpoints already normalised.
pub(crate) fn forward_weight(
    scheme: WeightingScheme,
    scratch: &SweepScratch,
    a: u32,
    y: u32,
    globals: &WeightGlobals,
) -> f64 {
    edge_weight(scheme, scratch, globals, y, a, y)
}

/// Computes the weights of the current sweep's neighbours into `out`
/// (ascending neighbour order — the same order the materialised path
/// iterates a node's incident edges in, so local f64 means agree bitwise).
pub(crate) fn neighbour_weights(
    scheme: WeightingScheme,
    scratch: &SweepScratch,
    a: u32,
    globals: &WeightGlobals,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.reserve(scratch.neighbours().len());
    for &y in scratch.neighbours() {
        let (lo, hi) = if a < y { (a, y) } else { (y, a) };
        out.push(edge_weight(scheme, scratch, globals, y, lo, hi));
    }
}

/// The pair `(a, y)` in normalised endpoint order with its weight.
pub(crate) fn normalised(a: u32, y: u32, w: f64) -> WeightedPair {
    let (lo, hi) = if a < y { (a, y) } else { (y, a) };
    WeightedPair {
        a: EntityId(lo),
        b: EntityId(hi),
        weight: w,
    }
}

/// Combines per-node votes on the kept set: union keeps pairs emitted by
/// ≥ 1 endpoint, reciprocal by both. Input must be sorted by pair.
pub(crate) fn combine_votes(kept: Vec<WeightedPair>, reciprocal: bool) -> Vec<WeightedPair> {
    let need = if reciprocal { 2 } else { 1 };
    let mut out: Vec<WeightedPair> = Vec::with_capacity(kept.len());
    let mut i = 0;
    while i < kept.len() {
        let mut j = i + 1;
        while j < kept.len() && (kept[j].a, kept[j].b) == (kept[i].a, kept[i].b) {
            j += 1;
        }
        if j - i >= need {
            out.push(kept[i]);
        }
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_matches_hand_computed_schemes() {
        // CBS=3, blocks 3/3 of 4 total.
        assert_eq!(
            weight_from_stats(WeightingScheme::Cbs, 3, 1.75, 3, 3, 4, 0, 0, 0),
            3.0
        );
        assert_eq!(
            weight_from_stats(WeightingScheme::Arcs, 3, 1.75, 3, 3, 4, 0, 0, 0),
            1.75
        );
        let js = weight_from_stats(WeightingScheme::Js, 3, 1.75, 3, 3, 4, 0, 0, 0);
        assert!((js - 1.0).abs() < 1e-12);
        let ecbs = weight_from_stats(WeightingScheme::Ecbs, 3, 1.75, 3, 3, 4, 0, 0, 0);
        let expected = 3.0 * (4.0f64 / 3.0).ln() * (4.0f64 / 3.0).ln();
        assert!((ecbs - expected).abs() < 1e-12);
        let ejs = weight_from_stats(WeightingScheme::Ejs, 3, 1.75, 3, 3, 4, 2, 2, 4);
        let expected = js * (4.0f64 / 2.0).ln() * (4.0f64 / 2.0).ln();
        assert!((ejs - expected).abs() < 1e-12);
    }

    #[test]
    fn js_guard_on_degenerate_denominator() {
        assert_eq!(
            weight_from_stats(WeightingScheme::Js, 0, 0.0, 0, 0, 4, 0, 0, 0),
            0.0
        );
    }

    #[test]
    fn combine_votes_union_vs_reciprocal() {
        let p = |a: u32, b: u32| WeightedPair {
            a: EntityId(a),
            b: EntityId(b),
            weight: 1.0,
        };
        let kept = vec![p(0, 1), p(0, 1), p(0, 2), p(1, 3)];
        let union = combine_votes(kept.clone(), false);
        assert_eq!(union.len(), 3);
        let recip = combine_votes(kept, true);
        assert_eq!(recip.len(), 1);
        assert_eq!((recip[0].a, recip[0].b), (EntityId(0), EntityId(1)));
    }
}
