//! Edge-weighting schemes.
//!
//! Notation (per the meta-blocking literature): `B_i` = blocks containing
//! entity `i`; `B_ij` = blocks shared by `i` and `j`; `|B|` = total blocks;
//! `V_i` = distinct co-occurring entities of `i`; `|V|` = distinct
//! comparable pairs (edges); `‖b‖` = comparisons in block `b`.

use crate::graph::{BlockingGraph, Edge};
use crate::kernel;

/// The five standard meta-blocking weighting schemes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum WeightingScheme {
    /// Common Blocks Scheme: `|B_ij|`.
    Cbs,
    /// Enhanced CBS: `|B_ij| · ln(|B|/|B_i|) · ln(|B|/|B_j|)`.
    Ecbs,
    /// Jaccard Scheme: `|B_ij| / (|B_i| + |B_j| − |B_ij|)`.
    Js,
    /// Enhanced JS: `JS · ln(|V|/|V_i|) · ln(|V|/|V_j|)`.
    Ejs,
    /// Aggregate Reciprocal Comparisons: `Σ_{b ∈ B_ij} 1/‖b‖`.
    Arcs,
}

impl WeightingScheme {
    /// All schemes, for sweep experiments.
    pub const ALL: [WeightingScheme; 5] = [
        WeightingScheme::Cbs,
        WeightingScheme::Ecbs,
        WeightingScheme::Js,
        WeightingScheme::Ejs,
        WeightingScheme::Arcs,
    ];

    /// Short display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            WeightingScheme::Cbs => "CBS",
            WeightingScheme::Ecbs => "ECBS",
            WeightingScheme::Js => "JS",
            WeightingScheme::Ejs => "EJS",
            WeightingScheme::Arcs => "ARCS",
        }
    }

    /// Weight of `edge` in `graph` under this scheme. Always finite and
    /// ≥ 0; higher = stronger co-occurrence evidence.
    ///
    /// Computed through [`kernel::weight_from_stats`] — the single
    /// stats → weight body shared with the streaming and MapReduce
    /// backends, so all three produce bit-identical f64 results for the
    /// same inputs. Edge endpoints are already normalised (`edge.a <
    /// edge.b` in the slab), matching the kernel's `(lo, hi)` contract.
    pub fn weight(self, graph: &BlockingGraph, edge: &Edge) -> f64 {
        kernel::weight_from_stats(
            self,
            edge.common_blocks,
            edge.arcs,
            graph.blocks_of(edge.a),
            graph.blocks_of(edge.b),
            graph.num_blocks(),
            graph.degree(edge.a),
            graph.degree(edge.b),
            graph.num_edges(),
        )
    }

    /// Weights of every edge, aligned with `graph.edges()`.
    pub fn all_weights(self, graph: &BlockingGraph) -> Vec<f64> {
        graph
            .edges()
            .iter()
            .map(|e| self.weight(graph, e))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_blocking::{BlockCollection, ErMode};
    use minoan_rdf::{DatasetBuilder, EntityId};

    /// Fixture: entities 0,1 in KB a; 2,3 in KB b.
    /// Blocks: k1 = {0,2}, k2 = {0,2,3}, k3 = {1,3}, k4 = {0,1,2,3}.
    fn graph() -> BlockingGraph {
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/");
        let k1 = b.add_kb("b", "http://b/");
        for i in 0..2 {
            b.add_literal(k0, &format!("http://a/{i}"), "http://p", "x");
        }
        for i in 2..4 {
            b.add_literal(k1, &format!("http://b/{i}"), "http://p", "x");
        }
        let ds = b.build();
        let e = EntityId;
        let groups = vec![
            ("k1".to_string(), vec![e(0), e(2)]),
            ("k2".to_string(), vec![e(0), e(2), e(3)]),
            ("k3".to_string(), vec![e(1), e(3)]),
            ("k4".to_string(), vec![e(0), e(1), e(2), e(3)]),
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        BlockingGraph::build(&c)
    }

    fn edge(g: &BlockingGraph, a: u32, b: u32) -> &crate::Edge {
        g.edges()
            .iter()
            .find(|e| e.a == EntityId(a) && e.b == EntityId(b))
            .expect("edge exists")
    }

    #[test]
    fn cbs_counts_common_blocks() {
        let g = graph();
        assert_eq!(WeightingScheme::Cbs.weight(&g, edge(&g, 0, 2)), 3.0);
        assert_eq!(WeightingScheme::Cbs.weight(&g, edge(&g, 0, 3)), 2.0);
        assert_eq!(WeightingScheme::Cbs.weight(&g, edge(&g, 1, 3)), 2.0);
        assert_eq!(WeightingScheme::Cbs.weight(&g, edge(&g, 1, 2)), 1.0);
    }

    #[test]
    fn js_is_normalised_overlap() {
        let g = graph();
        // |B_0| = 3, |B_2| = 3, |B_02| = 3 → JS = 3/(3+3−3) = 1.
        assert!((WeightingScheme::Js.weight(&g, edge(&g, 0, 2)) - 1.0).abs() < 1e-12);
        // |B_1| = 2, |B_2| = 3, common = 1 → 1/(2+3−1) = 0.25.
        assert!((WeightingScheme::Js.weight(&g, edge(&g, 1, 2)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ecbs_discounts_prolific_entities() {
        let g = graph();
        // ECBS = CBS · ln(4/|B_i|) · ln(4/|B_j|); |B_0|=|B_2|=3, |B_1|=2, |B_3|=3.
        let w02 = WeightingScheme::Ecbs.weight(&g, edge(&g, 0, 2));
        let expected = 3.0 * (4.0f64 / 3.0).ln() * (4.0f64 / 3.0).ln();
        assert!((w02 - expected).abs() < 1e-12);
        // The same CBS with rarer entities scores higher.
        let w12 = WeightingScheme::Ecbs.weight(&g, edge(&g, 1, 2));
        let expected12 = 1.0 * (4.0f64 / 2.0).ln() * (4.0f64 / 3.0).ln();
        assert!((w12 - expected12).abs() < 1e-12);
    }

    #[test]
    fn arcs_rewards_small_blocks() {
        let g = graph();
        // Blocks comparisons: k1=1, k2=2, k3=1, k4=4.
        // edge (0,2): in k1,k2,k4 → 1/1 + 1/2 + 1/4 = 1.75.
        assert!((WeightingScheme::Arcs.weight(&g, edge(&g, 0, 2)) - 1.75).abs() < 1e-12);
        // edge (1,3): k3,k4 → 1 + 0.25 = 1.25.
        assert!((WeightingScheme::Arcs.weight(&g, edge(&g, 1, 3)) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn ejs_combines_js_with_degree_information() {
        let g = graph();
        // |V| = 4 edges; degrees: deg(0)=2 (2,3), deg(2)=2 (0,1).
        let js = WeightingScheme::Js.weight(&g, edge(&g, 0, 2));
        let expected = js * (4.0f64 / 2.0).ln() * (4.0f64 / 2.0).ln();
        assert!((WeightingScheme::Ejs.weight(&g, edge(&g, 0, 2)) - expected).abs() < 1e-12);
    }

    #[test]
    fn all_weights_align_with_edges() {
        let g = graph();
        for scheme in WeightingScheme::ALL {
            let ws = scheme.all_weights(&g);
            assert_eq!(ws.len(), g.num_edges());
            assert!(
                ws.iter().all(|w| w.is_finite() && *w >= 0.0),
                "{:?}",
                scheme
            );
        }
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<_> = WeightingScheme::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["CBS", "ECBS", "JS", "EJS", "ARCS"]);
    }
}
