//! Delta-sweep incremental meta-blocking: an *updatable* session over
//! the flat slabs.
//!
//! [`Session`](crate::Session) answers "prune this finished collection";
//! an [`IncrementalSession`] answers the pay-as-you-go question the paper
//! poses for Web-scale ER: descriptions *arrive*, and the pruned
//! comparison set must stay current without re-sweeping the whole corpus
//! per batch. Each [`IncrementalSession::ingest`] call
//!
//! 1. tokenises the batch through the same string-free
//!    `KeyAssignments` path the batch builders use and delta-appends the
//!    new member runs into the
//!    [`IncrementalCollection`]
//!    slabs,
//! 2. takes the resulting *dirty sets* — the touched blocks, their
//!    members, and the entities whose block lists grew,
//! 3. runs a **delta-sweep**: only the entities whose incident weights
//!    can have changed are re-swept, and the cached weight rows (theirs
//!    and their neighbours') are patched in place.
//!
//! [`IncrementalSession::outcome`] then assembles a [`PruneOutcome`]
//! from the cached rows that is **bit-identical** to a from-scratch
//! [`Session`](crate::Session) run on the merged corpus — same pair
//! order, same f64 weight bits, for every arrival order, batch size and
//! thread count (enforced by `tests/incremental_delta.rs`).
//!
//! # Which combinations delta-sweep
//!
//! The cached row of entity `a` holds the weights of `a`'s incident
//! edges. A scheme is delta-sweepable when a batch can only change the
//! weights of a *locally identifiable* edge set:
//!
//! * **CBS / JS** — the weight of a pair reads only its shared-block
//!   count (JS adds the endpoints' block-list lengths `|B_i|`). A block
//!   becomes shared for an existing pair only by crossing into presence,
//!   and every member of such a block is *grown*; `|B_i|` changes only
//!   for grown entities. So the weight of an edge between two pre-batch,
//!   un-grown entities **never changes**: re-sweeping `batch ∪ grown`
//!   and mirror-patching each fresh `(target, neighbour)` weight into
//!   the neighbour's row covers every changed edge — typically a small
//!   fraction of the corpus, independent of how hot the batch's tokens
//!   are.
//! * **ARCS** — a pair's weight sums `1/‖b‖` over shared blocks, so
//!   every touched block reweights *all* pairs inside it; both endpoints
//!   of every changed edge are members of a touched block (the *dirty*
//!   set), and re-sweeping the dirty entities covers both directions
//!   with no mirror pass.
//! * **ECBS / EJS** — every weight reads the global block (and edge)
//!   totals, so any arrival invalidates every row; likewise BLAST (χ²
//!   over global aggregates) and the supervised pruner (features are
//!   normalised by global maxima). These combinations transparently fall
//!   back to a full streaming re-sweep of the current snapshot — same
//!   results, no stale answers, and the [`probe`] counters
//!   record which path ran.
//!
//! The pruning families `None`/`WEP`/`CEP`/`WNP`/`CNP` are all assembled
//! from the rows (their criteria are row-local or deterministic global
//! reductions over per-row sums); with a delta-sweepable scheme they
//! never re-sweep untouched entities.
//!
//! ```
//! use minoan_blocking::ErMode;
//! use minoan_datagen::{generate, profiles};
//! use minoan_metablocking::{IncrementalSession, Pruning, WeightingScheme};
//! use minoan_rdf::EntityId;
//!
//! let g = generate(&profiles::center_dense(60, 3));
//! let mut session = IncrementalSession::new(&g.dataset, ErMode::CleanClean);
//! session
//!     .scheme(WeightingScheme::Cbs)
//!     .pruning(Pruning::Wnp { reciprocal: false });
//!
//! let ids: Vec<EntityId> = (0..g.dataset.len() as u32).map(EntityId).collect();
//! for batch in ids.chunks(16) {
//!     let report = session.ingest(batch);
//!     assert!(report.delta, "CBS × WNP delta-sweeps");
//!     assert!(report.swept_entities <= report.num_arrived);
//! }
//! let outcome = session.outcome();
//! assert!(outcome.pairs().len() <= outcome.input_edges());
//! ```

use crate::kernel::{combine_votes, neighbour_weights, normalised, WeightGlobals};
use crate::parallel::JobReport;
use crate::probe;
use crate::prune::{self, PrunedComparisons, WeightedPair};
use crate::query::{self, CachedRows, Criterion, ResolvedEntity, SweepRows};
use crate::session::{PruneOutcome, Pruning};
use crate::streaming;
use crate::sweep::{default_threads, partition_by_cost, split_by_ends, ScratchPool, SweepState};
use crate::weights::WeightingScheme;
use minoan_blocking::{BlockCollection, ErMode, IncrementalCollection};
use minoan_common::stats::mean;
use minoan_common::{OrdF64, TopK};
use minoan_rdf::{Dataset, EntityId};

/// What one [`IncrementalSession::ingest`] call did — the per-batch
/// bookkeeping the bench harness and the subset assertions read.
#[derive(Clone, Copy, Debug, Default)]
pub struct IngestReport {
    /// Batch entities ingested by this call.
    pub arrived: usize,
    /// Blocks whose member runs changed (and stayed/became present).
    pub touched_blocks: usize,
    /// Blocks that crossed from zero to positive comparisons.
    pub newly_present_blocks: usize,
    /// Members of touched blocks — the core dirty set.
    pub dirty_entities: usize,
    /// Entities actually re-swept (`batch ∪ grown` for CBS/JS, the dirty
    /// set for ARCS; 0 when the combination fell back).
    pub swept_entities: usize,
    /// Total entities arrived so far, this batch included.
    pub num_arrived: usize,
    /// Whether the delta-sweep ran (`false` = full re-sweep fallback or
    /// a row-cache rebuild was pending).
    pub delta: bool,
}

/// An updatable meta-blocking session: ingest description batches,
/// delta-sweep only the affected entities, and read a [`PruneOutcome`]
/// bit-identical to a from-scratch run at any point. See the
/// [module docs](self) for the supported-combination matrix and an
/// example.
pub struct IncrementalSession<'d> {
    collection: IncrementalCollection<'d>,
    scheme: WeightingScheme,
    pruning: Pruning,
    workers: Option<usize>,
    /// Collection snapshot as of the last ingest (or explicit build).
    snapshot: Option<BlockCollection>,
    /// Per-entity incident-edge cache: `rows[a]` holds `(y, w)` for every
    /// comparable neighbour `y` of `a`, with `w` the scheme weight of the
    /// edge — exactly the statistics a streaming sweep of `a` would
    /// produce on the current snapshot. The first `sorted_len[a]` entries
    /// are ascending by `y` and duplicate-free; anything beyond is an
    /// unsorted *mirror tail* of `(y, w)` appends in arrival order
    /// (later wins), folded in by [`normalize_row`] before any read.
    rows: Vec<Vec<(u32, f64)>>,
    /// Length of each row's sorted duplicate-free prefix.
    sorted_len: Vec<u32>,
    /// Whether `rows` matches the current snapshot under the current
    /// scheme. Starts `true`: an empty corpus has all-empty rows.
    rows_valid: bool,
    /// Reusable target-membership mask for [`mirror_append`]; all-false
    /// between ingests.
    mask: Vec<bool>,
    pool: ScratchPool,
    /// Monotone corpus version: bumped by every ingest.
    version: u64,
    /// Dirty entities of the last ingest (the cache-invalidation set a
    /// layered [`NeighbourhoodCache`](crate::NeighbourhoodCache) reads).
    last_dirty: Vec<EntityId>,
    /// Query-time criterion (and fallback globals), valid for exactly one
    /// `(version, scheme, pruning)` triple.
    resolve_cache: Option<ResolveCache>,
}

/// Query-time state cached per corpus version by
/// [`IncrementalSession::resolve_entity`]: the pruning criterion and —
/// for the sweep-fallback combinations — a snapshot of the weight
/// globals (cloned out so the transient sweep state that computed them
/// can be dropped).
struct ResolveCache {
    version: u64,
    scheme: WeightingScheme,
    pruning: Pruning,
    /// `Some` on the fallback path (per-request sweeps need them);
    /// `None` when the row cache serves the rows directly.
    globals: Option<WeightGlobals>,
    criterion: Criterion,
}

impl<'d> IncrementalSession<'d> {
    /// An empty session over `dataset` (no entity has arrived yet) with
    /// the [`Session`](crate::Session) defaults: ARCS-weighted WNP.
    pub fn new(dataset: &'d Dataset, mode: ErMode) -> Self {
        let n = dataset.len();
        Self {
            collection: IncrementalCollection::new(dataset, mode),
            scheme: WeightingScheme::Arcs,
            pruning: Pruning::Wnp { reciprocal: false },
            workers: None,
            snapshot: None,
            rows: vec![Vec::new(); n],
            sorted_len: vec![0; n],
            rows_valid: true,
            mask: vec![false; n],
            pool: ScratchPool::new(n),
            version: 0,
            last_dirty: Vec::new(),
            resolve_cache: None,
        }
    }

    /// Sets the weighting scheme. Changing it invalidates the row cache;
    /// the next ingest or outcome rebuilds it with one full sweep.
    pub fn scheme(&mut self, scheme: WeightingScheme) -> &mut Self {
        if scheme != self.scheme {
            self.scheme = scheme;
            // An empty corpus has all-empty rows under every scheme, so
            // only a switch after arrivals dirties the cache.
            self.rows_valid = self.collection.num_arrived() == 0;
            self.resolve_cache = None;
        }
        self
    }

    /// Sets the pruning family (rows are scheme-scoped, so this never
    /// invalidates them).
    pub fn pruning(&mut self, pruning: Pruning) -> &mut Self {
        if pruning != self.pruning {
            self.pruning = pruning;
            self.resolve_cache = None;
        }
        self
    }

    /// Pins the worker count of the parallel sweeps. Results never
    /// depend on it; the default is all available parallelism.
    pub fn workers(&mut self, workers: usize) -> &mut Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// The collection snapshot as of the last ingest; `None` before the
    /// first one.
    pub fn snapshot(&self) -> Option<&BlockCollection> {
        self.snapshot.as_ref()
    }

    /// Entities ingested so far.
    pub fn num_arrived(&self) -> usize {
        self.collection.num_arrived()
    }

    /// Whether entity `e` has been ingested.
    pub fn has_arrived(&self, e: EntityId) -> bool {
        self.collection.has_arrived(e)
    }

    /// Monotone corpus version: 0 before the first ingest, bumped by
    /// every [`Self::ingest`]. Resolution servers stamp answers with the
    /// version they were computed at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The dirty entities of the last ingest (members of its touched
    /// blocks) — the invalidation set for a
    /// [`NeighbourhoodCache`](crate::NeighbourhoodCache) layered over
    /// this session (sound only when
    /// [`locally_invalidatable`](crate::locally_invalidatable) holds for
    /// the configured combination). Empty before the first ingest.
    pub fn last_dirty(&self) -> &[EntityId] {
        &self.last_dirty
    }

    fn threads(&self) -> usize {
        self.workers.unwrap_or_else(default_threads).max(1)
    }

    /// Whether the current scheme × pruning combination is maintained by
    /// delta-sweeps (see the [module docs](self) for why the others
    /// cannot be).
    pub fn supports_delta(&self) -> bool {
        matches!(
            self.scheme,
            WeightingScheme::Cbs | WeightingScheme::Js | WeightingScheme::Arcs
        ) && matches!(
            self.pruning,
            Pruning::None
                | Pruning::Wep
                | Pruning::Cep(_)
                | Pruning::Wnp { .. }
                | Pruning::Cnp { .. }
        )
    }

    /// Ingests a batch of not-yet-arrived descriptions: tokenise,
    /// delta-append the block slabs, and patch the row cache by
    /// re-sweeping only the entities whose incident weights can have
    /// changed (see the [module docs](self) for the per-scheme sets).
    ///
    /// # Panics
    /// Panics if any batch entity was already ingested.
    pub fn ingest(&mut self, batch: &[EntityId]) -> IngestReport {
        let threads = self.threads();
        let delta = self.collection.ingest(batch, threads);
        let mut report = IngestReport {
            arrived: batch.len(),
            touched_blocks: delta.touched_blocks.len(),
            newly_present_blocks: delta.newly_present.len(),
            dirty_entities: delta.dirty.len(),
            swept_entities: 0,
            num_arrived: self.collection.num_arrived(),
            delta: false,
        };
        if !self.supports_delta() {
            // Rows are not maintained for this combination; a later
            // switch back to a supported one must rebuild them.
            self.rows_valid = false;
        } else if self.rows_valid {
            let targets = self.sweep_targets(batch, &delta);
            resweep_rows(
                self.scheme,
                &self.pool,
                &mut self.rows,
                &mut self.sorted_len,
                &delta.snapshot,
                &targets,
                threads,
            );
            if self.scheme != WeightingScheme::Arcs {
                mirror_append(
                    &mut self.rows,
                    &mut self.sorted_len,
                    &targets,
                    &mut self.mask,
                );
            }
            probe::record_delta_sweep(targets.len(), delta.touched_blocks.len());
            report.swept_entities = targets.len();
            report.delta = true;
        } else {
            // Cold cache (scheme switch or an unsupported interlude):
            // one full sweep re-seeds it, then deltas resume.
            let n = self.rows.len();
            let all: Vec<EntityId> = (0..n as u32).map(EntityId).collect();
            resweep_rows(
                self.scheme,
                &self.pool,
                &mut self.rows,
                &mut self.sorted_len,
                &delta.snapshot,
                &all,
                threads,
            );
            self.rows_valid = true;
            probe::record_full_resweep();
            report.swept_entities = n;
        }
        self.version += 1;
        self.last_dirty = delta.dirty;
        self.resolve_cache = None;
        self.snapshot = Some(delta.snapshot);
        report
    }

    /// The entities this batch re-sweeps. For CBS/JS no edge between two
    /// pre-batch, un-grown entities can change weight, so the set is
    /// `batch ∪ grown` and [`mirror_patch`] carries each fresh weight
    /// into the untargeted neighbour's row. ARCS reweights every pair of
    /// a touched block, so it takes the full dirty set (both endpoints
    /// of every changed edge are in it — no mirror pass needed).
    fn sweep_targets(
        &self,
        batch: &[EntityId],
        delta: &minoan_blocking::DeltaOutcome,
    ) -> Vec<EntityId> {
        if self.scheme == WeightingScheme::Arcs {
            return delta.dirty.clone();
        }
        let mut targets = Vec::with_capacity(batch.len() + delta.grown.len());
        targets.extend_from_slice(batch);
        targets.extend_from_slice(&delta.grown);
        targets.sort_unstable();
        targets.dedup();
        targets
    }

    /// Assembles the pruned comparisons of the current merged corpus —
    /// bit-identical to a from-scratch [`Session`](crate::Session) run on
    /// the same collection. Delta-supported combinations read the row
    /// cache; the rest re-sweep the snapshot in full.
    pub fn outcome(&mut self) -> PruneOutcome {
        let threads = self.threads();
        let snapshot = match self.snapshot.take() {
            Some(s) => s,
            None => self.collection.snapshot(threads),
        };
        let pruned = if self.supports_delta() {
            if !self.rows_valid {
                let n = self.rows.len();
                let all: Vec<EntityId> = (0..n as u32).map(EntityId).collect();
                resweep_rows(
                    self.scheme,
                    &self.pool,
                    &mut self.rows,
                    &mut self.sorted_len,
                    &snapshot,
                    &all,
                    threads,
                );
                self.rows_valid = true;
                probe::record_full_resweep();
            }
            // Fold any outstanding mirror tails into the sorted prefixes;
            // assembly reads the rows as sorted duplicate-free sweeps.
            for (row, s) in self.rows.iter_mut().zip(self.sorted_len.iter_mut()) {
                if (*s as usize) < row.len() {
                    normalize_row(row, *s as usize);
                    *s = row.len() as u32;
                }
            }
            self.assemble(&snapshot)
        } else {
            probe::record_full_resweep();
            self.full_outcome(&snapshot, threads)
        };
        self.snapshot = Some(snapshot);
        PruneOutcome {
            pruned,
            report: JobReport::default(),
        }
    }

    /// Resolves one entity against the current merged corpus: the
    /// comparisons [`Self::outcome`] would keep for it — same pairs,
    /// same order, same f64 weight bits — without assembling (or
    /// re-sweeping) the whole outcome.
    ///
    /// Delta-supported combinations answer from the patched row cache.
    /// The fallback combinations (ECBS/EJS, BLAST, supervised) sweep
    /// the queried neighbourhood on the snapshot. Either way the pruning
    /// family's *global* inputs (WEP's threshold, CEP's top-k, CNP's
    /// default `k`, the supervised extractor) are built once per
    /// ingested version and reused by every resolve against it.
    ///
    /// ```
    /// use minoan_blocking::ErMode;
    /// use minoan_datagen::{generate, profiles};
    /// use minoan_metablocking::{IncrementalSession, Pruning, WeightingScheme};
    /// use minoan_rdf::EntityId;
    ///
    /// let g = generate(&profiles::center_dense(60, 3));
    /// let mut session = IncrementalSession::new(&g.dataset, ErMode::CleanClean);
    /// session
    ///     .scheme(WeightingScheme::Js)
    ///     .pruning(Pruning::Wnp { reciprocal: false });
    /// let ids: Vec<EntityId> = (0..g.dataset.len() as u32).map(EntityId).collect();
    /// session.ingest(&ids);
    ///
    /// let e = EntityId(7);
    /// let resolved = session.resolve_entity(e);
    /// let incident: Vec<_> = session
    ///     .outcome()
    ///     .pairs()
    ///     .iter()
    ///     .filter(|p| p.a == e || p.b == e)
    ///     .copied()
    ///     .collect();
    /// assert_eq!(resolved.matches, incident);
    /// ```
    pub fn resolve_entity(&mut self, entity: EntityId) -> ResolvedEntity {
        assert!(
            (entity.0 as usize) < self.rows.len(),
            "resolve_entity: entity id out of range"
        );
        let threads = self.threads();
        if self.snapshot.is_none() {
            self.snapshot = Some(self.collection.snapshot(threads));
        }
        let current = self.resolve_cache.as_ref().is_some_and(|c| {
            c.version == self.version && c.scheme == self.scheme && c.pruning == self.pruning
        });
        if !current {
            self.rebuild_resolve_cache(threads);
        }
        let cache = self.resolve_cache.as_ref().expect("cache just ensured");
        let snapshot = self.snapshot.as_ref().expect("snapshot just ensured");
        let pruning = self.pruning;
        match (&pruning, &cache.criterion) {
            (Pruning::Supervised(model), Criterion::Supervised(extractor)) => {
                let globals = cache.globals.as_ref().expect("fallback stores globals");
                query::resolve_supervised(snapshot, globals, &self.pool, extractor, model, entity)
            }
            _ if self.supports_delta() => {
                let mut rows = CachedRows::new(&self.rows);
                query::resolve_rows(&mut rows, entity, pruning, &cache.criterion)
            }
            (Pruning::Blast { .. }, _) => {
                let globals = cache.globals.as_ref().expect("fallback stores globals");
                let mut rows = SweepRows::chi2(snapshot, globals, &self.pool);
                query::resolve_rows(&mut rows, entity, pruning, &cache.criterion)
            }
            _ => {
                let globals = cache.globals.as_ref().expect("fallback stores globals");
                let mut rows = SweepRows::scheme(snapshot, globals, &self.pool, self.scheme);
                query::resolve_rows(&mut rows, entity, pruning, &cache.criterion)
            }
        }
    }

    /// Rebuilds the per-version query-time state. Delta-supported
    /// combinations normalise the row cache (re-seeding it first if a
    /// scheme switch left it cold) and derive the criterion from the
    /// rows with the exact `assemble` pass-1 bodies; the rest run the
    /// streaming criterion pass on a transient sweep state over the
    /// snapshot and keep a clone of its globals for per-request sweeps.
    fn rebuild_resolve_cache(&mut self, threads: usize) {
        let snapshot = self.snapshot.as_ref().expect("snapshot ensured by caller");
        let cache = if self.supports_delta() {
            if !self.rows_valid {
                let n = self.rows.len();
                let all: Vec<EntityId> = (0..n as u32).map(EntityId).collect();
                resweep_rows(
                    self.scheme,
                    &self.pool,
                    &mut self.rows,
                    &mut self.sorted_len,
                    snapshot,
                    &all,
                    threads,
                );
                self.rows_valid = true;
                probe::record_full_resweep();
            }
            for (row, s) in self.rows.iter_mut().zip(self.sorted_len.iter_mut()) {
                if (*s as usize) < row.len() {
                    normalize_row(row, *s as usize);
                    *s = row.len() as u32;
                }
            }
            ResolveCache {
                version: self.version,
                scheme: self.scheme,
                pruning: self.pruning,
                globals: None,
                criterion: self.rows_criterion(snapshot),
            }
        } else {
            let mut st = SweepState::new(snapshot);
            let criterion = query::build_criterion(&mut st, self.scheme, &self.pruning, threads);
            ResolveCache {
                version: self.version,
                scheme: self.scheme,
                pruning: self.pruning,
                globals: Some(st.globals().clone()),
                criterion,
            }
        };
        self.resolve_cache = Some(cache);
    }

    /// The query-time criterion of a delta-supported combination, read
    /// off the normalised row cache with the exact pass-1 bodies of
    /// [`Self::assemble`] — same iteration order, same accumulation
    /// shapes, so the thresholds carry the same f64 bits as a full
    /// outcome's.
    fn rows_criterion(&self, snapshot: &BlockCollection) -> Criterion {
        let rows = &self.rows;
        match self.pruning {
            Pruning::None | Pruning::Wnp { .. } => Criterion::Local,
            Pruning::Wep => {
                let mut sums = vec![0.0f64; rows.len()];
                let mut positive = 0u64;
                for (a, row) in rows.iter().enumerate() {
                    let mut sum = 0.0f64;
                    for &(y, w) in row {
                        if y > a as u32 && w > 0.0 {
                            // lint:allow(float-accumulation): per-entity serial sum over sorted neighbours
                            sum += w;
                            positive += 1;
                        }
                    }
                    sums[a] = sum;
                }
                Criterion::Wep(prune::wep_threshold_from_sums(&sums, positive))
            }
            Pruning::Cep(k) => {
                let k =
                    k.unwrap_or_else(|| prune::default_cep_k_from(snapshot.total_assignments()));
                if k == 0 {
                    return Criterion::Cep(Vec::new());
                }
                let mut top: TopK<(OrdF64, std::cmp::Reverse<(EntityId, EntityId)>)> = TopK::new(k);
                for (a, row) in rows.iter().enumerate() {
                    let a = a as u32;
                    for &(y, w) in row {
                        if y > a && w > 0.0 {
                            top.push((OrdF64(w), std::cmp::Reverse((EntityId(a), EntityId(y)))));
                        }
                    }
                }
                let pairs: Vec<WeightedPair> = top
                    .into_sorted_vec()
                    .into_iter()
                    .map(|(w, r)| WeightedPair {
                        a: r.0 .0,
                        b: r.0 .1,
                        weight: w.0,
                    })
                    .collect();
                // Presentation order: the full outcome runs these pairs
                // through `from_weighted_pairs`.
                Criterion::Cep(PrunedComparisons::from_weighted_pairs(pairs, self.scheme, 0).pairs)
            }
            Pruning::Cnp { k, .. } => {
                let active_nodes = rows.iter().filter(|r| !r.is_empty()).count();
                Criterion::CnpK(k.unwrap_or_else(|| {
                    prune::default_cnp_k_from(snapshot.total_assignments(), active_nodes)
                }))
            }
            Pruning::Blast { .. } | Pruning::Supervised(_) => {
                unreachable!("rows criterion is only built for delta-supported families")
            }
        }
    }

    /// Row-cache assembly of the delta-supported pruning families. Each
    /// body mirrors its `streaming` session counterpart statement for
    /// statement — same iteration order, same accumulation shapes — which
    /// is what keeps the f64 output bit-identical.
    fn assemble(&self, snapshot: &BlockCollection) -> PrunedComparisons {
        let scheme = self.scheme;
        let rows = &self.rows;
        // Every distinct comparable pair appears in its smaller
        // endpoint's row as a forward (y > a) entry, so this is |V| —
        // the input_edges figure every streaming family reports.
        let total_pairs: usize = rows
            .iter()
            .enumerate()
            .map(|(a, row)| row.iter().filter(|&&(y, _)| y > a as u32).count())
            .sum();
        match self.pruning {
            Pruning::None => {
                let mut pairs = Vec::with_capacity(total_pairs);
                for (a, row) in rows.iter().enumerate() {
                    let a = a as u32;
                    for &(y, w) in row {
                        if y > a {
                            pairs.push(WeightedPair {
                                a: EntityId(a),
                                b: EntityId(y),
                                weight: w,
                            });
                        }
                    }
                }
                PrunedComparisons {
                    pairs,
                    scheme,
                    input_edges: total_pairs,
                }
            }
            Pruning::Wep => {
                let mut sums = vec![0.0f64; rows.len()];
                let mut positive = 0u64;
                for (a, row) in rows.iter().enumerate() {
                    let mut sum = 0.0f64;
                    for &(y, w) in row {
                        if y > a as u32 && w > 0.0 {
                            // lint:allow(float-accumulation): per-entity serial sum over sorted neighbours
                            sum += w;
                            positive += 1;
                        }
                    }
                    sums[a] = sum;
                }
                let threshold = prune::wep_threshold_from_sums(&sums, positive);
                let mut kept = Vec::new();
                for (a, row) in rows.iter().enumerate() {
                    let a = a as u32;
                    for &(y, w) in row {
                        if y > a && w >= threshold && w > 0.0 {
                            kept.push(WeightedPair {
                                a: EntityId(a),
                                b: EntityId(y),
                                weight: w,
                            });
                        }
                    }
                }
                PrunedComparisons::from_weighted_pairs(kept, scheme, total_pairs)
            }
            Pruning::Cep(k) => {
                let k =
                    k.unwrap_or_else(|| prune::default_cep_k_from(snapshot.total_assignments()));
                if k == 0 {
                    return PrunedComparisons::empty(scheme, total_pairs);
                }
                let mut top: TopK<(OrdF64, std::cmp::Reverse<(EntityId, EntityId)>)> = TopK::new(k);
                for (a, row) in rows.iter().enumerate() {
                    let a = a as u32;
                    for &(y, w) in row {
                        if y > a && w > 0.0 {
                            top.push((OrdF64(w), std::cmp::Reverse((EntityId(a), EntityId(y)))));
                        }
                    }
                }
                let pairs: Vec<WeightedPair> = top
                    .into_sorted_vec()
                    .into_iter()
                    .map(|(w, r)| WeightedPair {
                        a: r.0 .0,
                        b: r.0 .1,
                        weight: w.0,
                    })
                    .collect();
                PrunedComparisons::from_weighted_pairs(pairs, scheme, total_pairs)
            }
            Pruning::Wnp { reciprocal } => {
                let mut kept = Vec::new();
                let mut weights: Vec<f64> = Vec::new();
                for (a, row) in rows.iter().enumerate() {
                    if row.is_empty() {
                        continue;
                    }
                    weights.clear();
                    weights.extend(row.iter().map(|&(_, w)| w));
                    let threshold = mean(&weights);
                    for &(y, w) in row {
                        if w >= threshold && w > 0.0 {
                            kept.push(normalised(a as u32, y, w));
                        }
                    }
                }
                kept.sort_unstable_by_key(|x| (x.a, x.b));
                PrunedComparisons::from_weighted_pairs(
                    combine_votes(kept, reciprocal),
                    scheme,
                    total_pairs,
                )
            }
            Pruning::Cnp { reciprocal, k } => {
                let active_nodes = rows.iter().filter(|r| !r.is_empty()).count();
                let k = k.unwrap_or_else(|| {
                    prune::default_cnp_k_from(snapshot.total_assignments(), active_nodes)
                });
                if k == 0 {
                    return PrunedComparisons::empty(scheme, total_pairs);
                }
                let mut kept = Vec::new();
                for (a, row) in rows.iter().enumerate() {
                    if row.is_empty() {
                        continue;
                    }
                    let mut top: TopK<(OrdF64, std::cmp::Reverse<(EntityId, EntityId)>)> =
                        TopK::new(k);
                    for &(y, w) in row {
                        if w > 0.0 {
                            let p = normalised(a as u32, y, w);
                            top.push((OrdF64(w), std::cmp::Reverse((p.a, p.b))));
                        }
                    }
                    for (w, r) in top.into_sorted_vec() {
                        kept.push(WeightedPair {
                            a: r.0 .0,
                            b: r.0 .1,
                            weight: w.0,
                        });
                    }
                }
                kept.sort_unstable_by_key(|x| (x.a, x.b));
                PrunedComparisons::from_weighted_pairs(
                    combine_votes(kept, reciprocal),
                    scheme,
                    total_pairs,
                )
            }
            Pruning::Blast { .. } | Pruning::Supervised(_) => {
                unreachable!("assemble is only called for delta-supported pruning families")
            }
        }
    }

    /// Full re-sweep fallback: the streaming session bodies on a fresh
    /// sweep state over the current snapshot.
    fn full_outcome(&self, snapshot: &BlockCollection, threads: usize) -> PrunedComparisons {
        let mut st = SweepState::new(snapshot);
        match self.pruning {
            Pruning::None => {
                let (pairs, fwd) = streaming::weighted_edges_session(&mut st, self.scheme, threads);
                PrunedComparisons {
                    pairs,
                    scheme: self.scheme,
                    input_edges: fwd as usize,
                }
            }
            Pruning::Wep => streaming::wep_session(&mut st, self.scheme, threads),
            Pruning::Cep(k) => streaming::cep_session(&mut st, self.scheme, k, threads),
            Pruning::Wnp { reciprocal } => {
                streaming::wnp_session(&mut st, self.scheme, reciprocal, threads)
            }
            Pruning::Cnp { reciprocal, k } => {
                streaming::cnp_session(&mut st, self.scheme, reciprocal, k, threads)
            }
            Pruning::Blast { ratio } => streaming::blast_session(&mut st, ratio, threads),
            Pruning::Supervised(model) => streaming::supervised_session(&mut st, &model, threads),
        }
    }
}

/// Re-sweeps `targets` on `snapshot` and installs their fresh rows —
/// cost-balanced over scoped worker threads, scratches from `pool`. Row
/// contents never depend on the partitioning: each row is one entity's
/// serial sweep.
fn resweep_rows(
    scheme: WeightingScheme,
    pool: &ScratchPool,
    rows: &mut [Vec<(u32, f64)>],
    sorted_len: &mut [u32],
    snapshot: &BlockCollection,
    targets: &[EntityId],
    threads: usize,
) {
    if targets.is_empty() {
        return;
    }
    let costs: Vec<u64> = targets
        .iter()
        .map(|&e| {
            snapshot
                .entity_blocks(e)
                .iter()
                .map(|&b| snapshot.block_len(b) as u64)
                .sum()
        })
        .collect();
    let ranges = partition_by_cost(&costs, threads.max(1));
    let mut fresh: Vec<Vec<(u32, f64)>> = vec![Vec::new(); targets.len()];
    {
        let globals = WeightGlobals::basic(snapshot);
        let globals = &globals;
        let chunks = split_by_ends(&mut fresh, ranges.iter().map(|r| r.end));
        std::thread::scope(|s| {
            for (r, chunk) in ranges.iter().zip(chunks) {
                let r = r.clone();
                s.spawn(move || {
                    pool.with(|scratch| {
                        let mut weights: Vec<f64> = Vec::new();
                        for i in r.clone() {
                            let e = targets[i];
                            scratch.sweep(snapshot, e);
                            neighbour_weights(scheme, scratch, e.0, globals, &mut weights);
                            let row = &mut chunk[i - r.start];
                            row.extend(
                                scratch
                                    .neighbours()
                                    .iter()
                                    .copied()
                                    .zip(weights.iter().copied()),
                            );
                        }
                    });
                });
            }
        });
    }
    for (i, &e) in targets.iter().enumerate() {
        rows[e.index()] = std::mem::take(&mut fresh[i]);
        sorted_len[e.index()] = rows[e.index()].len() as u32;
    }
}

/// Carries the freshly swept `(target, neighbour)` weights into the rows
/// of neighbours that were *not* re-swept themselves: every entry
/// `(y, w)` of a target's fresh row with `y` outside the target set is
/// **appended** to `rows[y]`'s unsorted mirror tail as `(t, w)` — O(1)
/// per changed edge, the information-theoretic floor. Nothing sorted is
/// rebuilt here: tails fold into the sorted prefix lazily at the next
/// read ([`normalize_row`]), or eagerly once a tail outgrows its prefix,
/// which amortises every fold to O(1) per append and bounds a row's
/// memory to ~2× its folded size. (Both eager alternatives are
/// quadratic per stream on dense neighbourhoods: per-edge `Vec::insert`
/// memmoves the tail once per new edge, and a per-batch sorted merge
/// rebuilds every mirror-receiving row once per batch.)
///
/// Edges never disappear under CBS/JS (blocks only gain members), so
/// append with later-wins replay is exhaustive, and the weight bits are
/// endpoint-symmetric by construction: CBS is the shared-block count and
/// JS normalises the endpoint block counts lo/hi before the one
/// division, so `y`'s own sweep would produce the identical f64.
/// `mask` is a reusable all-false scratch; it is restored before return.
fn mirror_append(
    rows: &mut [Vec<(u32, f64)>],
    sorted_len: &mut [u32],
    targets: &[EntityId],
    mask: &mut [bool],
) {
    for &t in targets {
        mask[t.index()] = true;
    }
    for &t in targets {
        let row = std::mem::take(&mut rows[t.index()]);
        for &(y, w) in &row {
            if mask[y as usize] {
                continue;
            }
            let mirror = &mut rows[y as usize];
            mirror.push((t.0, w));
            let sorted = sorted_len[y as usize] as usize;
            if mirror.len() - sorted >= sorted.max(64) {
                normalize_row(mirror, sorted);
                sorted_len[y as usize] = mirror.len() as u32;
            }
        }
        rows[t.index()] = row;
    }
    for &t in targets {
        mask[t.index()] = false;
    }
}

/// Folds a row's mirror tail (`row[sorted..]`, append order) into its
/// sorted duplicate-free prefix: the tail is stable-sorted by neighbour
/// id, deduplicated keeping the *latest* append of each edge (mirrors
/// replay weight updates in arrival order), and merged with the prefix,
/// fresh weights overwriting stale ones.
fn normalize_row(row: &mut Vec<(u32, f64)>, sorted: usize) {
    let mut tail = row.split_off(sorted);
    // Stable by id: equal ids keep append order, so the last one is the
    // most recent weight.
    tail.sort_by_key(|e| e.0);
    let prefix = std::mem::take(row);
    row.reserve(prefix.len() + tail.len());
    let mut pi = 0;
    let mut ti = 0;
    while ti < tail.len() {
        let (y, mut w) = tail[ti];
        ti += 1;
        while ti < tail.len() && tail[ti].0 == y {
            w = tail[ti].1;
            ti += 1;
        }
        while pi < prefix.len() && prefix[pi].0 < y {
            row.push(prefix[pi]);
            pi += 1;
        }
        if pi < prefix.len() && prefix[pi].0 == y {
            pi += 1;
        }
        row.push((y, w));
    }
    row.extend_from_slice(&prefix[pi..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecutionBackend, Session};
    use minoan_blocking::builders::token_blocking;
    use minoan_datagen::{generate, profiles};

    fn assert_same(got: &PruneOutcome, want: &PruneOutcome, label: &str) {
        crate::assert_bit_identical(&got.pruned, &want.pruned, label);
    }

    fn ids(n: usize) -> Vec<EntityId> {
        (0..n as u32).map(EntityId).collect()
    }

    const DELTA_SCHEMES: [WeightingScheme; 3] = [
        WeightingScheme::Cbs,
        WeightingScheme::Js,
        WeightingScheme::Arcs,
    ];

    const DELTA_FAMILIES: [Pruning; 5] = [
        Pruning::None,
        Pruning::Wep,
        Pruning::Cep(None),
        Pruning::Wnp { reciprocal: false },
        Pruning::Cnp {
            reciprocal: true,
            k: None,
        },
    ];

    #[test]
    fn delta_outcomes_match_streaming_sessions_per_batch() {
        let world = generate(&profiles::center_dense(90, 13));
        let all = ids(world.dataset.len());
        for mode in [ErMode::CleanClean, ErMode::Dirty] {
            for scheme in DELTA_SCHEMES {
                for pruning in DELTA_FAMILIES {
                    let mut inc = IncrementalSession::new(&world.dataset, mode);
                    inc.scheme(scheme).pruning(pruning).workers(2);
                    for batch in all.chunks(23) {
                        let report = inc.ingest(batch);
                        assert!(report.delta, "supported combo must delta-sweep");
                        let got = inc.outcome();
                        let snap = inc.snapshot().expect("snapshot exists after ingest");
                        let want = Session::new(snap)
                            .scheme(scheme)
                            .pruning(pruning)
                            .backend(ExecutionBackend::Streaming)
                            .workers(2)
                            .run();
                        assert_same(&got, &want, &format!("{mode:?}/{scheme:?}/{pruning:?}"));
                    }
                }
            }
        }
    }

    #[test]
    fn unsupported_combinations_fall_back_bit_identically() {
        let world = generate(&profiles::center_dense(70, 5));
        let all = ids(world.dataset.len());
        let combos = [
            (WeightingScheme::Ecbs, Pruning::Wnp { reciprocal: false }),
            (WeightingScheme::Ejs, Pruning::Wep),
            (WeightingScheme::Cbs, Pruning::blast()),
        ];
        for (scheme, pruning) in combos {
            let mut inc = IncrementalSession::new(&world.dataset, ErMode::CleanClean);
            inc.scheme(scheme).pruning(pruning);
            assert!(!inc.supports_delta());
            for batch in all.chunks(31) {
                let report = inc.ingest(batch);
                assert!(!report.delta, "unsupported combo must not claim a delta");
                assert_eq!(report.swept_entities, 0);
                let got = inc.outcome();
                let snap = inc.snapshot().expect("snapshot exists after ingest");
                let want = Session::new(snap)
                    .scheme(scheme)
                    .pruning(pruning)
                    .backend(ExecutionBackend::Streaming)
                    .run();
                assert_same(&got, &want, &format!("{scheme:?}/{pruning:?}"));
            }
        }
    }

    #[test]
    fn fully_ingested_matches_batch_token_blocking() {
        let world = generate(&profiles::center_dense(80, 5));
        let all = ids(world.dataset.len());
        for mode in [ErMode::CleanClean, ErMode::Dirty] {
            let mut inc = IncrementalSession::new(&world.dataset, mode);
            for batch in all.chunks(16) {
                inc.ingest(batch);
            }
            let got = inc.outcome();
            let blocks = token_blocking(&world.dataset, mode);
            let want = Session::new(&blocks)
                .backend(ExecutionBackend::Materialized)
                .run();
            assert_same(&got, &want, &format!("{mode:?}: merged vs batch"));
        }
    }

    #[test]
    fn scheme_switches_rebuild_the_row_cache_and_stay_correct() {
        let world = generate(&profiles::center_dense(60, 9));
        let all = ids(world.dataset.len());
        let (first, rest) = all.split_at(all.len() / 2);
        let mut inc = IncrementalSession::new(&world.dataset, ErMode::CleanClean);
        inc.scheme(WeightingScheme::Cbs);
        inc.ingest(first);
        inc.outcome();
        // Switch schemes mid-stream: the next ingest re-seeds the cache
        // with one full sweep, then delta-sweeps resume.
        inc.scheme(WeightingScheme::Js);
        let report = inc.ingest(rest);
        assert!(!report.delta, "first ingest after a switch re-seeds");
        assert_eq!(report.swept_entities, world.dataset.len());
        let report = inc.ingest(&[]);
        assert!(report.delta, "deltas resume after the re-seed");
        let got = inc.outcome();
        let snap = inc.snapshot().expect("snapshot exists after ingest");
        let want = Session::new(snap)
            .scheme(WeightingScheme::Js)
            .backend(ExecutionBackend::Streaming)
            .run();
        assert_same(&got, &want, "post-switch JS");
    }

    #[test]
    fn small_batches_sweep_a_strict_subset() {
        // The periphery regime has few hot tokens, so a small batch's
        // touched blocks cover only part of the corpus (a center-style
        // world with universal tokens would legitimately dirty everyone).
        let world = generate(&profiles::periphery_sparse(200, 17));
        let all = ids(world.dataset.len());
        let (bulk, tail) = all.split_at(all.len() - 6);
        let mut inc = IncrementalSession::new(&world.dataset, ErMode::CleanClean);
        inc.scheme(WeightingScheme::Cbs);
        inc.ingest(bulk);
        let report = inc.ingest(tail);
        assert!(report.delta);
        assert!(
            report.swept_entities < report.num_arrived,
            "a small batch must re-sweep strictly fewer entities ({} of {}) than have arrived",
            report.swept_entities,
            report.num_arrived
        );
    }

    #[test]
    fn outcome_before_any_ingest_is_empty() {
        let world = generate(&profiles::center_dense(30, 3));
        let mut inc = IncrementalSession::new(&world.dataset, ErMode::CleanClean);
        let out = inc.outcome();
        assert!(out.pairs().is_empty());
        assert_eq!(out.input_edges(), 0);
        assert!(inc.snapshot().is_some(), "outcome materialises a snapshot");
    }

    #[test]
    fn thread_counts_do_not_change_a_bit() {
        let world = generate(&profiles::center_dense(80, 21));
        let all = ids(world.dataset.len());
        let mut base: Option<PruneOutcome> = None;
        for workers in [1usize, 2, 4, 8] {
            let mut inc = IncrementalSession::new(&world.dataset, ErMode::CleanClean);
            inc.scheme(WeightingScheme::Js).workers(workers);
            for batch in all.chunks(17) {
                inc.ingest(batch);
            }
            let got = inc.outcome();
            match &base {
                None => base = Some(got),
                Some(b) => assert_same(&got, b, &format!("workers={workers}")),
            }
        }
    }
}
