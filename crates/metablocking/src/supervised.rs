//! Supervised meta-blocking.
//!
//! Papadakis, Papastefanatos & Koutrika (PVLDB 2014) showed that combining
//! the individual weighting schemes into a per-edge **feature vector** and
//! training a linear classifier on a small labelled sample prunes the
//! blocking graph far better than any single scheme. This module
//! reproduces that design with a deterministic averaged perceptron (no
//! external ML dependency):
//!
//! 1. [`FeatureExtractor`] — the feature vector of an edge: the five
//!    standard scheme weights plus the two endpoint degrees, each
//!    max-normalised over the graph so the perceptron sees `[0, 1]` inputs.
//!    [`FeatureExtractor::extract_all`] batches extraction by walking the
//!    CSR rows of the edge slab instead of doing per-edge lookups, and
//!    [`FeatureExtractor::fit_extract_all`] computes the raw features
//!    exactly once for both fitting and extraction.
//! 2. [`TrainingSet::sample`] — a balanced labelled sample drawn
//!    deterministically from a ground-truth oracle.
//! 3. [`Perceptron`] — averaged-perceptron training and scoring.
//! 4. `supervised_prune` — keeps the edges the model classifies as likely
//!    matches; surviving edges are weighted by the decision margin, so
//!    downstream progressive scheduling still gets a ranking. Reachable
//!    from every backend through
//!    [`Pruning::Supervised`](crate::Pruning::Supervised) on a
//!    [`Session`](crate::Session); the sweep backends recompute the same
//!    features through the shared weight kernel, so all three backends
//!    stay bit-identical.

use crate::graph::{BlockingGraph, Edge};
use crate::kernel::{self, WeightGlobals};
use crate::prune::{PrunedComparisons, WeightedPair};
use crate::sweep::SweepScratch;
use crate::weights::WeightingScheme;
use minoan_rdf::EntityId;

/// Number of features per edge.
pub const NUM_FEATURES: usize = 7;

/// A per-edge feature vector (max-normalised over the graph).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeFeatures(pub [f64; NUM_FEATURES]);

/// Pre-computed normalisation context for feature extraction.
pub struct FeatureExtractor {
    max: [f64; NUM_FEATURES],
}

impl FeatureExtractor {
    /// Scans the graph once to find per-feature maxima.
    pub fn fit(graph: &BlockingGraph) -> Self {
        let mut max = [0.0f64; NUM_FEATURES];
        for e in graph.edges() {
            for (i, v) in raw_features(graph, e).iter().enumerate() {
                if *v > max[i] {
                    max[i] = *v;
                }
            }
        }
        Self { max }
    }

    /// Fits the extractor *and* extracts every edge's feature vector in
    /// one batched pass: the raw features are computed exactly once (the
    /// fit-then-extract path computes them twice), walking the edge slab
    /// CSR row by CSR row. The returned vectors align with
    /// `graph.edges()` and are bit-identical to per-edge
    /// [`Self::extract`] calls.
    pub fn fit_extract_all(graph: &BlockingGraph) -> (Self, Vec<EdgeFeatures>) {
        let mut raw: Vec<[f64; NUM_FEATURES]> = Vec::with_capacity(graph.num_edges());
        let mut max = [0.0f64; NUM_FEATURES];
        for a in 0..graph.num_nodes() as u32 {
            for e in graph.edges_from(EntityId(a)) {
                let r = raw_features(graph, e);
                merge_feature_max(&mut max, &r);
                raw.push(r);
            }
        }
        let extractor = Self { max };
        let features = raw.into_iter().map(|r| extractor.normalise(r)).collect();
        (extractor, features)
    }

    /// Batch-extracts every edge's feature vector with this (already
    /// fitted) extractor, walking the CSR rows; aligned with
    /// `graph.edges()`.
    pub fn extract_all(&self, graph: &BlockingGraph) -> Vec<EdgeFeatures> {
        let mut out = Vec::with_capacity(graph.num_edges());
        for a in 0..graph.num_nodes() as u32 {
            for e in graph.edges_from(EntityId(a)) {
                out.push(self.normalise(raw_features(graph, e)));
            }
        }
        out
    }

    /// Extracts the normalised feature vector of `edge`.
    pub fn extract(&self, graph: &BlockingGraph, edge: &Edge) -> EdgeFeatures {
        self.normalise(raw_features(graph, edge))
    }

    /// An extractor from externally-computed per-feature maxima (the
    /// sweep backends' pass-1 reduction).
    pub(crate) fn from_max(max: [f64; NUM_FEATURES]) -> Self {
        Self { max }
    }

    /// Normalises a raw feature vector by the fitted maxima.
    pub(crate) fn normalise(&self, raw: [f64; NUM_FEATURES]) -> EdgeFeatures {
        let mut out = [0.0f64; NUM_FEATURES];
        for i in 0..NUM_FEATURES {
            out[i] = if self.max[i] > 0.0 {
                raw[i] / self.max[i]
            } else {
                0.0
            };
        }
        EdgeFeatures(out)
    }
}

impl EdgeFeatures {
    /// Extracts with a throwaway extractor (tests / single edges).
    pub fn extract(graph: &BlockingGraph, edge: &Edge) -> Self {
        FeatureExtractor::fit(graph).extract(graph, edge)
    }
}

fn raw_features(graph: &BlockingGraph, e: &Edge) -> [f64; NUM_FEATURES] {
    [
        WeightingScheme::Cbs.weight(graph, e),
        WeightingScheme::Ecbs.weight(graph, e),
        WeightingScheme::Js.weight(graph, e),
        WeightingScheme::Ejs.weight(graph, e),
        WeightingScheme::Arcs.weight(graph, e),
        graph.degree(e.a) as f64,
        graph.degree(e.b) as f64,
    ]
}

/// Raw features of the forward edge `(a, y)` (`a < y`) from the current
/// sweep's statistics — the sweep-backend twin of `raw_features`. Every
/// entry goes through the same shared kernel as the materialised path
/// ([`kernel::weight_from_stats`] per scheme, counted degrees for the
/// last two slots), so the f64 bits agree across backends. `globals`
/// must carry the counted tier (degrees + |V|).
pub(crate) fn raw_forward_features(
    scratch: &SweepScratch,
    a: u32,
    y: u32,
    globals: &WeightGlobals,
) -> [f64; NUM_FEATURES] {
    [
        kernel::forward_weight(WeightingScheme::Cbs, scratch, a, y, globals),
        kernel::forward_weight(WeightingScheme::Ecbs, scratch, a, y, globals),
        kernel::forward_weight(WeightingScheme::Js, scratch, a, y, globals),
        kernel::forward_weight(WeightingScheme::Ejs, scratch, a, y, globals),
        kernel::forward_weight(WeightingScheme::Arcs, scratch, a, y, globals),
        globals.degrees[a as usize] as f64,
        globals.degrees[y as usize] as f64,
    ]
}

/// The margin → weight squash every supervised path shares.
pub(crate) fn sigmoid(score: f64) -> f64 {
    1.0 / (1.0 + (-score).exp())
}

/// Element-wise per-feature maximum fold — the one definition of how
/// feature maxima accumulate and merge. Strict `>` (exact f64 `max`, no
/// NaN inputs by construction), so partial maxima merge to the same bits
/// regardless of partitioning; every backend's fit/merge path must go
/// through this so the normalisation constants stay bit-identical.
pub(crate) fn merge_feature_max(dst: &mut [f64; NUM_FEATURES], src: &[f64; NUM_FEATURES]) {
    for (m, v) in dst.iter_mut().zip(src) {
        if *v > *m {
            *m = *v;
        }
    }
}

/// A balanced labelled sample of edges.
#[derive(Clone, Debug, Default)]
pub struct TrainingSet {
    /// Feature vectors.
    pub features: Vec<EdgeFeatures>,
    /// Labels: `true` = matching pair.
    pub labels: Vec<bool>,
}

impl TrainingSet {
    /// Draws a balanced sample of up to `per_class` positive and negative
    /// edges, walking edges in a deterministic seeded stride so the sample
    /// is not biased toward the lexicographically first entities.
    pub fn sample(
        graph: &BlockingGraph,
        extractor: &FeatureExtractor,
        is_match: impl Fn(EntityId, EntityId) -> bool,
        per_class: usize,
        seed: u64,
    ) -> Self {
        let n = graph.num_edges();
        let mut set = TrainingSet::default();
        if n == 0 || per_class == 0 {
            return set;
        }
        // Deterministic co-prime stride walk over edge indices.
        let stride = (seed | 1).wrapping_mul(0x9e37_79b9_7f4a_7c15) % n as u64;
        let stride = stride.max(1) as usize;
        let stride = if gcd(stride, n) == 1 { stride } else { 1 };
        let (mut pos, mut neg) = (0usize, 0usize);
        let mut idx = (seed as usize) % n;
        for _ in 0..n {
            let e = graph.edge(idx as u32);
            let label = is_match(e.a, e.b);
            if (label && pos < per_class) || (!label && neg < per_class) {
                set.features.push(extractor.extract(graph, e));
                set.labels.push(label);
                if label {
                    pos += 1;
                } else {
                    neg += 1;
                }
            }
            if pos >= per_class && neg >= per_class {
                break;
            }
            idx = (idx + stride) % n;
        }
        set
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Fraction of positive labels.
    pub fn positive_ratio(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.labels.iter().filter(|&&l| l).count() as f64 / self.labels.len() as f64
        }
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// An averaged perceptron over [`EdgeFeatures`]. `Copy` so a trained
/// model can travel inside [`Pruning::Supervised`](crate::Pruning) by
/// value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Perceptron {
    /// Feature weights.
    pub weights: [f64; NUM_FEATURES],
    /// Bias term.
    pub bias: f64,
}

impl Perceptron {
    /// Trains for `epochs` passes with the averaged-perceptron update.
    /// Deterministic: examples are visited in sample order.
    pub fn train(set: &TrainingSet, epochs: usize) -> Self {
        let mut w = [0.0f64; NUM_FEATURES];
        let mut b = 0.0f64;
        let mut w_sum = [0.0f64; NUM_FEATURES];
        let mut b_sum = 0.0f64;
        let mut count = 0.0f64;
        for _ in 0..epochs.max(1) {
            for (x, &label) in set.features.iter().zip(&set.labels) {
                let y = if label { 1.0 } else { -1.0 };
                let score: f64 = w.iter().zip(&x.0).map(|(wi, xi)| wi * xi).sum::<f64>() + b;
                if y * score <= 0.0 {
                    for (wi, xi) in w.iter_mut().zip(&x.0) {
                        *wi += y * xi;
                    }
                    b += y;
                }
                for (acc, wi) in w_sum.iter_mut().zip(&w) {
                    *acc += wi;
                }
                b_sum += b;
                count += 1.0;
            }
        }
        if count > 0.0 {
            for acc in w_sum.iter_mut() {
                *acc /= count;
            }
            b_sum /= count;
        }
        Self {
            weights: w_sum,
            bias: b_sum,
        }
    }

    /// Raw decision score (positive = predicted match).
    pub fn score(&self, x: &EdgeFeatures) -> f64 {
        self.weights
            .iter()
            .zip(&x.0)
            .map(|(w, xi)| w * xi)
            .sum::<f64>()
            + self.bias
    }

    /// Binary prediction.
    pub fn predict(&self, x: &EdgeFeatures) -> bool {
        self.score(x) > 0.0
    }

    /// Accuracy over a labelled set.
    pub fn accuracy(&self, set: &TrainingSet) -> f64 {
        if set.is_empty() {
            return 0.0;
        }
        let correct = set
            .features
            .iter()
            .zip(&set.labels)
            .filter(|(x, &l)| self.predict(x) == l)
            .count();
        correct as f64 / set.len() as f64
    }
}

/// Keeps the edges the model scores positive; weight = sigmoid(margin), so
/// the output ranks like the unsupervised pruners. Features come from the
/// batched [`FeatureExtractor::fit_extract_all`] (one raw-feature pass
/// over the CSR rows instead of fit-then-extract's two).
#[doc(hidden)]
pub fn supervised_prune(graph: &BlockingGraph, model: &Perceptron) -> PrunedComparisons {
    let (_, features) = FeatureExtractor::fit_extract_all(graph);
    prune_with_features(graph, &features, model)
}

/// Scores pre-extracted features (aligned with `graph.edges()`) — the
/// session path, which caches the feature vectors across models.
pub(crate) fn prune_with_features(
    graph: &BlockingGraph,
    features: &[EdgeFeatures],
    model: &Perceptron,
) -> PrunedComparisons {
    let pairs: Vec<WeightedPair> = graph
        .edges()
        .iter()
        .zip(features)
        .filter_map(|(e, f)| {
            let score = model.score(f);
            if score > 0.0 {
                Some(WeightedPair {
                    a: e.a,
                    b: e.b,
                    weight: sigmoid(score),
                })
            } else {
                None
            }
        })
        .collect();
    PrunedComparisons::from_weighted_pairs(pairs, WeightingScheme::Cbs, graph.num_edges())
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_blocking::{builders, ErMode};
    use minoan_datagen::{generate, profiles};

    fn graph_and_truth() -> (BlockingGraph, minoan_datagen::GroundTruth) {
        let g = generate(&profiles::center_dense(150, 5));
        let blocks = builders::token_blocking(&g.dataset, ErMode::CleanClean);
        (BlockingGraph::build(&blocks), g.truth)
    }

    #[test]
    fn features_are_normalised() {
        let (graph, _) = graph_and_truth();
        let extractor = FeatureExtractor::fit(&graph);
        for e in graph.edges().iter().take(200) {
            let f = extractor.extract(&graph, e);
            for v in f.0 {
                assert!(
                    (0.0..=1.0 + 1e-12).contains(&v),
                    "feature out of range: {v}"
                );
            }
        }
    }

    #[test]
    fn extract_all_is_bit_identical_to_edge_by_edge() {
        let (graph, _) = graph_and_truth();
        let (fitted, batched) = FeatureExtractor::fit_extract_all(&graph);
        assert_eq!(batched.len(), graph.num_edges());
        // fit_extract_all's maxima equal fit's (same comparisons).
        let separate = FeatureExtractor::fit(&graph);
        assert_eq!(fitted.max, separate.max);
        // The batched CSR-row walk must equal per-edge extraction, bitwise.
        for (i, e) in graph.edges().iter().enumerate() {
            let single = separate.extract(&graph, e);
            for (a, b) in batched[i].0.iter().zip(&single.0) {
                assert_eq!(a.to_bits(), b.to_bits(), "edge {i}");
            }
        }
        // And extract_all on a pre-fitted extractor agrees too.
        let again = separate.extract_all(&graph);
        assert_eq!(again, batched);
    }

    /// Regression: the CBS and ARCS feature columns must stay in parity
    /// with the schemes' own weights — i.e. the batched extractor is the
    /// scheme weight divided by its global maximum, bit for bit, for both
    /// the count-based (CBS) and the reciprocal-comparison (ARCS) scheme.
    #[test]
    fn cbs_vs_arcs_feature_parity_with_scheme_weights() {
        let (graph, _) = graph_and_truth();
        let (_, features) = FeatureExtractor::fit_extract_all(&graph);
        for (column, scheme) in [(0usize, WeightingScheme::Cbs), (4, WeightingScheme::Arcs)] {
            let weights = scheme.all_weights(&graph);
            let max = weights.iter().cloned().fold(0.0f64, f64::max);
            assert!(max > 0.0, "{scheme:?}: degenerate fixture");
            for (i, f) in features.iter().enumerate() {
                assert_eq!(
                    f.0[column].to_bits(),
                    (weights[i] / max).to_bits(),
                    "{scheme:?} feature column diverged at edge {i}"
                );
            }
        }
    }

    #[test]
    fn sample_is_balanced_when_possible() {
        let (graph, truth) = graph_and_truth();
        let extractor = FeatureExtractor::fit(&graph);
        let set = TrainingSet::sample(&graph, &extractor, |a, b| truth.is_match(a, b), 30, 42);
        assert!(!set.is_empty());
        let ratio = set.positive_ratio();
        assert!(ratio > 0.2 && ratio < 0.8, "imbalanced sample: {ratio}");
    }

    #[test]
    fn perceptron_learns_separable_data() {
        // Synthetic separable set: positives have feature[0] = 1, negatives 0.
        let mut set = TrainingSet::default();
        for i in 0..40 {
            let pos = i % 2 == 0;
            let mut f = [0.0; NUM_FEATURES];
            f[0] = if pos { 1.0 } else { 0.05 };
            set.features.push(EdgeFeatures(f));
            set.labels.push(pos);
        }
        let model = Perceptron::train(&set, 20);
        assert!(
            model.accuracy(&set) > 0.95,
            "accuracy {}",
            model.accuracy(&set)
        );
    }

    #[test]
    fn training_is_deterministic() {
        let (graph, truth) = graph_and_truth();
        let extractor = FeatureExtractor::fit(&graph);
        let s1 = TrainingSet::sample(&graph, &extractor, |a, b| truth.is_match(a, b), 25, 7);
        let s2 = TrainingSet::sample(&graph, &extractor, |a, b| truth.is_match(a, b), 25, 7);
        let m1 = Perceptron::train(&s1, 10);
        let m2 = Perceptron::train(&s2, 10);
        assert_eq!(m1.weights, m2.weights);
        assert_eq!(m1.bias, m2.bias);
    }

    #[test]
    fn supervised_prune_beats_random_on_recall_density() {
        let (graph, truth) = graph_and_truth();
        let extractor = FeatureExtractor::fit(&graph);
        let set = TrainingSet::sample(&graph, &extractor, |a, b| truth.is_match(a, b), 50, 11);
        let model = Perceptron::train(&set, 15);
        let pruned = supervised_prune(&graph, &model);
        assert!(!pruned.pairs.is_empty(), "model kept nothing");
        // Precision of retained pairs should exceed the graph's base rate.
        let base_rate = graph
            .edges()
            .iter()
            .filter(|e| truth.is_match(e.a, e.b))
            .count() as f64
            / graph.num_edges() as f64;
        let kept_rate = pruned
            .pairs
            .iter()
            .filter(|p| truth.is_match(p.a, p.b))
            .count() as f64
            / pruned.pairs.len() as f64;
        assert!(
            kept_rate >= base_rate,
            "supervised pruning should concentrate matches: kept {kept_rate:.3} vs base {base_rate:.3}"
        );
    }

    #[test]
    fn empty_graph_yields_empty_everything() {
        let g = generate(&profiles::center_dense(10, 1));
        // Build a graph from an empty block set.
        let empty = minoan_blocking::BlockCollection::from_groups(
            &g.dataset,
            ErMode::CleanClean,
            Vec::<(String, Vec<minoan_rdf::EntityId>)>::new(),
        );
        let graph = BlockingGraph::build(&empty);
        let extractor = FeatureExtractor::fit(&graph);
        let set = TrainingSet::sample(&graph, &extractor, |_, _| false, 10, 3);
        assert!(set.is_empty());
        let model = Perceptron::train(&set, 5);
        assert!(supervised_prune(&graph, &model).pairs.is_empty());
    }
}
