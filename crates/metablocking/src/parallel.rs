//! Parallel meta-blocking on the MapReduce substrate (reference \[4\]) —
//! the MapReduce arm of [`Session`](crate::Session).
//!
//! Both of the paper's strategies are reproduced, and they differ in what
//! gets shuffled:
//!
//! * **edge-based** ([`parallel_edge_weights`], plus `parallel_wep` /
//!   `parallel_cnp`): map over *blocks* emitting one record per
//!   comparison occurrence keyed by the pair; the reducer aggregates each
//!   pair's co-occurrence statistics (CBS count, ARCS sum) so every edge
//!   weight is computed exactly once — the repeated-comparison
//!   elimination happens in the shuffle. Shuffle volume:
//!   `Σ_b ‖b‖` records — one per pair *occurrence*, which on token
//!   blocking is typically an order of magnitude above the distinct-edge
//!   count `|V|`. Kept as the measured baseline.
//! * **entity-based** (everything the session dispatches here): map over
//!   contiguous *entity ranges*, run the node-centric sweep kernel
//!   locally (the same epoch-reset scratch the streaming backend uses,
//!   drawn from the session's shared pool) to rebuild each node's
//!   weighted neighbourhood, and emit **at most one record per entity
//!   neighbourhood** keyed by the entity; the reducer applies the pruning
//!   criterion to the neighbourhood it owns. Where the criterion permits,
//!   the fold happens map-side and the shuffled record shrinks further:
//!   WEP's sum job ships one scalar per entity, CEP one bounded top-k and
//!   the supervised maxima one 7-float vector per map split. Shuffle
//!   volume: at most `|E|` records (entities with ≥ 1 neighbour) for the
//!   weighting job plus at most `2·|kept|` tiny records for the
//!   node-centric vote job — per-occurrence shuffling never happens,
//!   which is exactly why the paper prefers this strategy at scale.
//!
//! Every weight is computed through the shared
//! [`kernel::weight_from_stats`] body and every global criterion through
//! the same deterministic reductions as the other backends (WEP's
//! fixed-shape pairwise mean over positive weights, the strict
//! `(weight, Reverse(pair))` top-k total order, exact f64 `max` merges),
//! so results are **bit-identical** to both the materialised and
//! streaming backends at *any* worker count —
//! `tests/parallel_consistency.rs` asserts the full scheme × family ×
//! worker matrix, and each run returns its per-job [`JobStats`] (via
//! [`JobReport`], surfaced on
//! [`PruneOutcome::report`](crate::PruneOutcome)) so the shuffle-volume
//! gap between the two strategies is measurable
//! (`BENCH_metablocking.json` records it).
//!
//! The per-family free functions are `#[doc(hidden)]` shims over the
//! session bodies, kept so the equivalence suites pin bit-identity
//! against the pre-session surface.

use crate::kernel::{self, WeightGlobals};
use crate::prune::{self, PrunedComparisons, WeightedPair};
use crate::supervised::{self, Perceptron, NUM_FEATURES};
use crate::sweep::{ScratchPool, SweepScratch, SweepState};
use crate::weights::WeightingScheme;
use minoan_blocking::BlockCollection;
use minoan_common::stats::mean;
use minoan_common::{OrdF64, TopK};
use minoan_mapreduce::{Engine, JobStats};
use minoan_rdf::EntityId;
use std::cmp::Reverse;

/// Counter name: forward (`a < b`) edges seen by the weighting job — the
/// distinct-edge count `|V|` when no counting job ran.
const FWD_EDGES: &str = "forward_edges";

/// Per-job execution statistics of one meta-blocking MapReduce run
/// (a run is one to three chained jobs: optional counting, weighting +
/// local criterion, optional vote combination).
#[derive(Clone, Debug, Default)]
pub struct JobReport {
    /// `(job label, stats)` in execution order.
    pub jobs: Vec<(&'static str, JobStats)>,
}

impl JobReport {
    fn push(&mut self, label: &'static str, stats: JobStats) {
        self.jobs.push((label, stats));
    }

    /// Total shuffled records across all jobs — the strategy's
    /// intermediate-pair volume (one record per pair occurrence for the
    /// edge-based jobs, at most one per entity neighbourhood for the
    /// entity-based ones).
    pub fn shuffled_records(&self) -> usize {
        self.jobs.iter().map(|(_, s)| s.intermediate_pairs).sum()
    }

    /// Total measured wall time across all jobs, nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.jobs.iter().map(|(_, s)| s.total_nanos()).sum()
    }

    /// Modeled makespan on `workers` parallel workers: the chained jobs'
    /// [`JobStats::modeled_nanos`] summed (jobs are barriers).
    pub fn modeled_nanos(&self, workers: usize) -> u64 {
        self.jobs
            .iter()
            .map(|(_, s)| s.modeled_nanos(workers))
            .sum()
    }
}

/// Contiguous-range partitioner for entity keys: reducer `p` owns the
/// `p`-th slice of the id space, mirroring the range partitioner the
/// paper's entity-based jobs use (locality of the per-node state).
fn entity_partitioner(n: usize) -> impl Fn(&u32, usize) -> usize + Sync {
    let n = n.max(1);
    move |&a: &u32, parts: usize| (a as usize * parts) / n
}

/// Range partitioner for pair keys, by smaller endpoint.
fn pair_partitioner(n: usize) -> impl Fn(&(EntityId, EntityId), usize) -> usize + Sync {
    let n = n.max(1);
    move |k: &(EntityId, EntityId), parts: usize| (k.0.index() * parts) / n
}

/// The read-only context every entity-partitioned job maps with: the
/// collection, the session-cached globals and scratch pool, and the
/// cost-balanced map-input splits (a few per worker so the engine's
/// greedy scheduler can smooth skew).
struct JobCtx<'a> {
    collection: &'a BlockCollection,
    globals: &'a WeightGlobals,
    pool: &'a ScratchPool,
    splits: Vec<std::ops::Range<usize>>,
}

impl<'a> JobCtx<'a> {
    /// Borrows the session state for job execution; call after the
    /// globals tier has been ensured.
    fn new(st: &'a mut SweepState<'_>, engine: &Engine) -> Self {
        let splits = st.ranges(engine.workers() * 4);
        Self {
            collection: st.collection,
            globals: st.globals(),
            pool: &st.pool,
            splits,
        }
    }
}

/// Ensures the globals tier the run needs. The basic tier is free; the
/// counted tier (degrees, |V|, active nodes) runs as one
/// entity-partitioned counting job — shuffling one `(entity, degree)`
/// record per active entity — unless the session already counted (in
/// which case no job runs and no stats are reported).
fn ensure_globals_job(
    st: &mut SweepState<'_>,
    scheme: WeightingScheme,
    need_counts: bool,
    engine: &Engine,
    report: &mut JobReport,
) {
    if scheme != WeightingScheme::Ejs && !need_counts {
        st.ensure_basic();
        return;
    }
    if st.is_counted() {
        return;
    }
    st.ensure_basic();
    let n = st.collection.num_entities();
    let splits = st.ranges(engine.workers() * 4);
    let collection = st.collection;
    let pool = &st.pool;
    let result = engine.run_partitioned(
        splits,
        entity_partitioner(n),
        |range, emit, _c| {
            pool.with(|scratch| {
                for a in range.clone() {
                    scratch.sweep(collection, EntityId(a as u32));
                    let d = scratch.neighbours().len() as u32;
                    if d > 0 {
                        emit(a as u32, d);
                    }
                }
            })
        },
        |&a, degs, out, _c| out.push((a, degs[0])),
    );
    report.push("count", result.stats);
    let mut degrees = vec![0u32; n];
    for &(a, d) in &result.output {
        degrees[a as usize] = d;
    }
    st.apply_count(degrees);
}

/// The entity-partitioned weighting job shared by every entity-based
/// pruner: map over entity ranges, sweep each entity with the shared
/// kernel, and emit its weighted neighbourhood — `(neighbour, weight)`
/// in ascending neighbour order, forward (`y > a`) edges only when
/// `forward_only` — as **one record keyed by the entity**; `reduce`
/// applies the pruning criterion to the neighbourhood it owns. Returns
/// the reduce output (ordered by entity key), the forward-edge count and
/// the job stats.
fn neighbourhood_job<O, R>(
    cx: &JobCtx<'_>,
    scheme: WeightingScheme,
    forward_only: bool,
    engine: &Engine,
    reduce: R,
) -> (Vec<O>, u64, JobStats)
where
    O: Send,
    R: Fn(u32, &[(u32, f64)], &mut Vec<O>) + Sync,
{
    let (collection, globals, pool) = (cx.collection, cx.globals, cx.pool);
    let n = collection.num_entities();
    let result = engine.run_partitioned(
        cx.splits.clone(),
        entity_partitioner(n),
        |range, emit, c| {
            pool.with(|scratch| {
                let mut weights: Vec<f64> = Vec::new();
                for a in range.clone() {
                    let a = a as u32;
                    scratch.sweep(collection, EntityId(a));
                    if scratch.neighbours().is_empty() {
                        continue;
                    }
                    let record: Vec<(u32, f64)> = if forward_only {
                        scratch
                            .neighbours()
                            .iter()
                            .filter(|&&y| y > a)
                            .map(|&y| (y, kernel::forward_weight(scheme, scratch, a, y, globals)))
                            .collect()
                    } else {
                        kernel::neighbour_weights(scheme, scratch, a, globals, &mut weights);
                        scratch
                            .neighbours()
                            .iter()
                            .copied()
                            .zip(weights.iter().copied())
                            .collect()
                    };
                    let fwd = if forward_only {
                        record.len() as u64
                    } else {
                        record.iter().filter(|&&(y, _)| y > a).count() as u64
                    };
                    c.add(FWD_EDGES, fwd);
                    if !record.is_empty() {
                        emit(a, record);
                    }
                }
            })
        },
        |&a, neighbourhoods, out, _c| {
            // Exactly one neighbourhood record arrives per entity key.
            for neigh in neighbourhoods.iter() {
                reduce(a, neigh, out);
            }
        },
    );
    let fwd = result.counters.get(FWD_EDGES);
    (result.output, fwd, result.stats)
}

/// The vote-combination job of the node-centric pruners: re-key each
/// locally-kept pair by the pair itself and keep it when enough endpoints
/// voted for it (1 under union, 2 under reciprocal semantics). Output is
/// ordered by pair, so the result is deterministic at any worker count.
fn vote_job(
    kept: Vec<WeightedPair>,
    reciprocal: bool,
    n: usize,
    engine: &Engine,
) -> (Vec<WeightedPair>, JobStats) {
    let need = if reciprocal { 2 } else { 1 };
    let result = engine.run_partitioned(
        kept,
        pair_partitioner(n),
        |p, emit, _c| emit((p.a, p.b), p.weight),
        move |&(a, b), ws, out, _c| {
            if ws.len() >= need {
                // Both endpoints computed the weight through the kernel in
                // normalised endpoint order, so the votes carry identical
                // bits; the first is as good as any.
                out.push(WeightedPair {
                    a,
                    b,
                    weight: ws[0],
                });
            }
        },
    );
    (result.output, result.stats)
}

fn input_edges_of(globals: &WeightGlobals, fwd: u64) -> usize {
    if globals.num_edges > 0 {
        globals.num_edges
    } else {
        fwd as usize
    }
}

/// Entity-based Weighted Node Pruning — bit-identical to the other
/// backends at any worker count.
#[doc(hidden)]
pub fn wnp(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    reciprocal: bool,
    engine: &Engine,
) -> PrunedComparisons {
    wnp_with_report(collection, scheme, reciprocal, engine).0
}

/// [`wnp`], also returning the per-job execution statistics.
#[doc(hidden)]
pub fn wnp_with_report(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    reciprocal: bool,
    engine: &Engine,
) -> (PrunedComparisons, JobReport) {
    wnp_session(&mut SweepState::new(collection), scheme, reciprocal, engine)
}

/// The session body of entity-based WNP.
pub(crate) fn wnp_session(
    st: &mut SweepState<'_>,
    scheme: WeightingScheme,
    reciprocal: bool,
    engine: &Engine,
) -> (PrunedComparisons, JobReport) {
    let mut report = JobReport::default();
    ensure_globals_job(st, scheme, false, engine, &mut report);
    let cx = JobCtx::new(st, engine);
    let (kept, fwd, stats) = neighbourhood_job(&cx, scheme, false, engine, |a, neigh, out| {
        let ws: Vec<f64> = neigh.iter().map(|&(_, w)| w).collect();
        let threshold = mean(&ws);
        for &(y, w) in neigh {
            if w >= threshold && w > 0.0 {
                out.push(kernel::normalised(a, y, w));
            }
        }
    });
    report.push("wnp/neighbourhoods", stats);
    let (pairs, vstats) = vote_job(kept, reciprocal, cx.collection.num_entities(), engine);
    report.push("wnp/votes", vstats);
    let out =
        PrunedComparisons::from_weighted_pairs(pairs, scheme, input_edges_of(cx.globals, fwd));
    (out, report)
}

/// Entity-based Cardinality Node Pruning — bit-identical to the other
/// backends at any worker count.
#[doc(hidden)]
pub fn cnp(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    reciprocal: bool,
    k: Option<usize>,
    engine: &Engine,
) -> PrunedComparisons {
    cnp_with_report(collection, scheme, reciprocal, k, engine).0
}

/// [`cnp`], also returning the per-job execution statistics.
#[doc(hidden)]
pub fn cnp_with_report(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    reciprocal: bool,
    k: Option<usize>,
    engine: &Engine,
) -> (PrunedComparisons, JobReport) {
    cnp_session(
        &mut SweepState::new(collection),
        scheme,
        reciprocal,
        k,
        engine,
    )
}

/// The session body of entity-based CNP.
pub(crate) fn cnp_session(
    st: &mut SweepState<'_>,
    scheme: WeightingScheme,
    reciprocal: bool,
    k: Option<usize>,
    engine: &Engine,
) -> (PrunedComparisons, JobReport) {
    let mut report = JobReport::default();
    // The default k needs the active-node count, which needs the counting
    // job anyway; EJS needs one for degrees.
    ensure_globals_job(st, scheme, k.is_none(), engine, &mut report);
    let k = k.unwrap_or_else(|| {
        prune::default_cnp_k_from(st.collection.total_assignments(), st.globals().active_nodes)
    });
    if k == 0 {
        // Explicit zero cardinality: mirror `prune::cnp`'s guard, still
        // reporting the input-edge count.
        ensure_globals_job(st, scheme, true, engine, &mut report);
        return (
            PrunedComparisons::empty(scheme, st.globals().num_edges),
            report,
        );
    }
    let cx = JobCtx::new(st, engine);
    let (kept, fwd, stats) = neighbourhood_job(&cx, scheme, false, engine, |a, neigh, out| {
        // Same selector the other backends use; tie-breaking by
        // normalised pair is order-isomorphic to the edge index.
        let mut top: TopK<(OrdF64, Reverse<(EntityId, EntityId)>)> = TopK::new(k);
        for &(y, w) in neigh {
            if w > 0.0 {
                let p = kernel::normalised(a, y, w);
                top.push((OrdF64(w), Reverse((p.a, p.b))));
            }
        }
        for (w, r) in top.into_sorted_vec() {
            out.push(WeightedPair {
                a: r.0 .0,
                b: r.0 .1,
                weight: w.0,
            });
        }
    });
    report.push("cnp/neighbourhoods", stats);
    let (pairs, vstats) = vote_job(kept, reciprocal, cx.collection.num_entities(), engine);
    report.push("cnp/votes", vstats);
    let out =
        PrunedComparisons::from_weighted_pairs(pairs, scheme, input_edges_of(cx.globals, fwd));
    (out, report)
}

/// Entity-based Weighted Edge Pruning — bit-identical to the other
/// backends at any worker count.
#[doc(hidden)]
pub fn wep(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    engine: &Engine,
) -> PrunedComparisons {
    wep_with_report(collection, scheme, engine).0
}

/// [`wep`], also returning the per-job execution statistics.
#[doc(hidden)]
pub fn wep_with_report(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    engine: &Engine,
) -> (PrunedComparisons, JobReport) {
    wep_session(&mut SweepState::new(collection), scheme, engine)
}

/// The session body of entity-based WEP.
///
/// Two chained jobs: job 1 folds each entity's neighbourhood map-side
/// into its positive forward-weight sum (one *scalar* record per entity
/// in the shuffle); the global threshold comes from the same
/// fixed-length-slab pairwise mean as the other backends
/// (`prune::wep_threshold_from_sums`), so it is independent of the
/// partitioning. Job 2 re-sweeps and keeps the edges at or above the
/// threshold.
pub(crate) fn wep_session(
    st: &mut SweepState<'_>,
    scheme: WeightingScheme,
    engine: &Engine,
) -> (PrunedComparisons, JobReport) {
    let mut report = JobReport::default();
    ensure_globals_job(st, scheme, false, engine, &mut report);
    let cx = JobCtx::new(st, engine);
    let (collection, globals, pool) = (cx.collection, cx.globals, cx.pool);
    let n = collection.num_entities();

    // Job 1 — per-entity partial sums of positive forward-edge weights,
    // accumulated map-side in ascending neighbour order (the slab order),
    // so the shuffle carries one scalar per entity, never an edge list.
    let result = engine.run_partitioned(
        cx.splits.clone(),
        entity_partitioner(n),
        |range, emit, c| {
            pool.with(|scratch| {
                for a in range.clone() {
                    let a = a as u32;
                    scratch.sweep(collection, EntityId(a));
                    let (mut sum, mut pos, mut fwd) = (0.0f64, 0u64, 0u64);
                    for &y in scratch.neighbours() {
                        if y <= a {
                            continue;
                        }
                        fwd += 1;
                        let w = kernel::forward_weight(scheme, scratch, a, y, globals);
                        if w > 0.0 {
                            sum += w;
                            pos += 1;
                        }
                    }
                    c.add(FWD_EDGES, fwd);
                    if pos > 0 {
                        emit(a, (sum, pos));
                    }
                }
            })
        },
        |&a, partials, out, _c| out.push((a, partials[0])),
    );
    let fwd = result.counters.get(FWD_EDGES);
    report.push("wep/partial-sums", result.stats);
    let mut sums = vec![0.0f64; n];
    let mut positive = 0u64;
    for &(a, (sum, pos)) in &result.output {
        sums[a as usize] = sum;
        positive += pos;
    }
    let threshold = prune::wep_threshold_from_sums(&sums, positive);

    // Job 2 — re-sweep and keep each edge once, at its smaller endpoint.
    let (kept, _, s2) = neighbourhood_job(&cx, scheme, true, engine, move |a, neigh, out| {
        for &(y, w) in neigh {
            if w >= threshold && w > 0.0 {
                out.push(WeightedPair {
                    a: EntityId(a),
                    b: EntityId(y),
                    weight: w,
                });
            }
        }
    });
    report.push("wep/filter", s2);
    let out = PrunedComparisons::from_weighted_pairs(kept, scheme, input_edges_of(globals, fwd));
    (out, report)
}

/// Key of the CEP selection order: weight descending, ties to the
/// *earlier* pair — identical to the other backends' total order.
type CepKey = (OrdF64, Reverse<(EntityId, EntityId)>);

/// Entity-based Cardinality Edge Pruning — bit-identical to the other
/// backends at any worker count.
#[doc(hidden)]
pub fn cep(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    k: Option<usize>,
    engine: &Engine,
) -> PrunedComparisons {
    cep_with_report(collection, scheme, k, engine).0
}

/// [`cep`], also returning the per-job execution statistics.
#[doc(hidden)]
pub fn cep_with_report(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    k: Option<usize>,
    engine: &Engine,
) -> (PrunedComparisons, JobReport) {
    cep_session(&mut SweepState::new(collection), scheme, k, engine)
}

/// The session body of entity-based CEP.
///
/// Each map split folds the forward edges of its whole entity range into
/// one bounded top-k heap (mirroring the streaming backend's per-thread
/// heaps) and ships a single record; the single reducer merges the local
/// winners under the strict `(weight, Reverse(pair))` total order, which
/// makes the merged set the exact global top-k for any partitioning.
pub(crate) fn cep_session(
    st: &mut SweepState<'_>,
    scheme: WeightingScheme,
    k: Option<usize>,
    engine: &Engine,
) -> (PrunedComparisons, JobReport) {
    let mut report = JobReport::default();
    let k = k.unwrap_or_else(|| prune::default_cep_k_from(st.collection.total_assignments()));
    if k == 0 {
        // Degenerate cardinality (empty or single-assignment collection):
        // count the edges for the stats, keep nothing.
        ensure_globals_job(st, scheme, true, engine, &mut report);
        return (
            PrunedComparisons::empty(scheme, st.globals().num_edges),
            report,
        );
    }
    ensure_globals_job(st, scheme, false, engine, &mut report);
    let cx = JobCtx::new(st, engine);
    let (collection, globals, pool) = (cx.collection, cx.globals, cx.pool);
    let result = engine.run_partitioned(
        cx.splits.clone(),
        |_k: &u8, _parts| 0,
        |range, emit, c| {
            pool.with(|scratch| {
                let mut top: TopK<CepKey> = TopK::new(k);
                let mut fwd = 0u64;
                for a in range.clone() {
                    let a = a as u32;
                    scratch.sweep(collection, EntityId(a));
                    for &y in scratch.neighbours() {
                        if y <= a {
                            continue;
                        }
                        fwd += 1;
                        let w = kernel::forward_weight(scheme, scratch, a, y, globals);
                        if w > 0.0 {
                            top.push((OrdF64(w), Reverse((EntityId(a), EntityId(y)))));
                        }
                    }
                }
                c.add(FWD_EDGES, fwd);
                let local = top.into_sorted_vec();
                if !local.is_empty() {
                    emit(0u8, local);
                }
            })
        },
        |_key, locals, out, _c| {
            let mut merged: TopK<CepKey> = TopK::new(k);
            for local in locals.iter() {
                for &item in local {
                    merged.push(item);
                }
            }
            for (w, r) in merged.into_sorted_vec() {
                out.push(WeightedPair {
                    a: r.0 .0,
                    b: r.0 .1,
                    weight: w.0,
                });
            }
        },
    );
    let fwd = result.counters.get(FWD_EDGES);
    report.push("cep/local-topk", result.stats);
    let out =
        PrunedComparisons::from_weighted_pairs(result.output, scheme, input_edges_of(globals, fwd));
    (out, report)
}

/// Entity-based BLAST — bit-identical to the other backends at any
/// worker count.
///
/// # Panics
/// Panics unless `0 < ratio ≤ 1`.
#[doc(hidden)]
pub fn blast(collection: &BlockCollection, ratio: f64, engine: &Engine) -> PrunedComparisons {
    blast_with_report(collection, ratio, engine).0
}

/// [`blast`], also returning the per-job execution statistics.
#[doc(hidden)]
pub fn blast_with_report(
    collection: &BlockCollection,
    ratio: f64,
    engine: &Engine,
) -> (PrunedComparisons, JobReport) {
    blast_session(&mut SweepState::new(collection), ratio, engine)
}

/// The session body of entity-based BLAST. Job 1 reduces each
/// neighbourhood to its local χ² maximum; job 2 keeps the edges that
/// reach `ratio` of either endpoint's maximum.
pub(crate) fn blast_session(
    st: &mut SweepState<'_>,
    ratio: f64,
    engine: &Engine,
) -> (PrunedComparisons, JobReport) {
    assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
    let mut report = JobReport::default();
    st.ensure_basic();
    let cx = JobCtx::new(st, engine);
    let (collection, globals, pool) = (cx.collection, cx.globals, cx.pool);
    let n = collection.num_entities();
    let blocks = &globals.blocks_of;
    let num_blocks = globals.num_blocks;
    let chi = |scratch: &SweepScratch, a: u32, y: u32| {
        let (lo, hi) = if a < y { (a, y) } else { (y, a) };
        crate::blast::chi_square_from_stats(
            scratch.cbs_of(y),
            blocks[lo as usize],
            blocks[hi as usize],
            num_blocks,
        )
    };

    // Job 1: per-node local χ² maxima.
    let result = engine.run_partitioned(
        cx.splits.clone(),
        entity_partitioner(n),
        |range, emit, _c| {
            pool.with(|scratch| {
                for a in range.clone() {
                    let a = a as u32;
                    scratch.sweep(collection, EntityId(a));
                    if scratch.neighbours().is_empty() {
                        continue;
                    }
                    let mut max = 0.0f64;
                    for &y in scratch.neighbours() {
                        let w = chi(scratch, a, y);
                        if w > max {
                            max = w;
                        }
                    }
                    emit(a, max);
                }
            })
        },
        |&a, maxima, out, _c| out.push((a, maxima[0])),
    );
    report.push("blast/local-maxima", result.stats);
    let mut local_max = vec![0.0f64; n];
    for &(a, m) in &result.output {
        local_max[a as usize] = m;
    }

    // Job 2: keep each forward edge if either endpoint would keep it.
    let local_max = &local_max;
    let result = engine.run_partitioned(
        cx.splits.clone(),
        entity_partitioner(n),
        |range, emit, c| {
            pool.with(|scratch| {
                for a in range.clone() {
                    let a = a as u32;
                    scratch.sweep(collection, EntityId(a));
                    let record: Vec<(u32, f64)> = scratch
                        .neighbours()
                        .iter()
                        .filter(|&&y| y > a)
                        .map(|&y| (y, chi(scratch, a, y)))
                        .collect();
                    c.add(FWD_EDGES, record.len() as u64);
                    if !record.is_empty() {
                        emit(a, record);
                    }
                }
            })
        },
        move |&a, neighbourhoods, out, _c| {
            for neigh in neighbourhoods.iter() {
                for &(y, w) in neigh {
                    if w > 0.0
                        && (w >= ratio * local_max[a as usize]
                            || w >= ratio * local_max[y as usize])
                    {
                        out.push(WeightedPair {
                            a: EntityId(a),
                            b: EntityId(y),
                            weight: w,
                        });
                    }
                }
            }
        },
    );
    let fwd = result.counters.get(FWD_EDGES);
    report.push("blast/filter", result.stats);
    // BLAST reports the χ² values under the CBS label, matching the
    // other implementations.
    let out =
        PrunedComparisons::from_weighted_pairs(result.output, WeightingScheme::Cbs, fwd as usize);
    (out, report)
}

/// Entity-based supervised pruning — bit-identical to the other backends
/// at any worker count. Job 1 folds each map split's forward edges into
/// one per-feature-maxima record (f64 `max` merges exactly, so the
/// normalisation constants are partition-independent); job 2 scores each
/// forward edge with the perceptron, one record per entity neighbourhood.
#[doc(hidden)]
pub fn supervised_prune(
    collection: &BlockCollection,
    model: &Perceptron,
    engine: &Engine,
) -> PrunedComparisons {
    supervised_prune_with_report(collection, model, engine).0
}

/// [`supervised_prune`], also returning the per-job execution statistics.
#[doc(hidden)]
pub fn supervised_prune_with_report(
    collection: &BlockCollection,
    model: &Perceptron,
    engine: &Engine,
) -> (PrunedComparisons, JobReport) {
    supervised_session(&mut SweepState::new(collection), model, engine)
}

/// The session body of entity-based supervised pruning.
pub(crate) fn supervised_session(
    st: &mut SweepState<'_>,
    model: &Perceptron,
    engine: &Engine,
) -> (PrunedComparisons, JobReport) {
    let mut report = JobReport::default();
    // Features include the endpoint degrees and the EJS weight, which
    // need the counted tier (degrees + |V|).
    ensure_globals_job(st, WeightingScheme::Ejs, true, engine, &mut report);
    let cx = JobCtx::new(st, engine);
    let (collection, globals, pool) = (cx.collection, cx.globals, cx.pool);
    let n = collection.num_entities();

    // Job 1: per-feature maxima, one 7-float record per map split.
    let result = engine.run_partitioned(
        cx.splits.clone(),
        |_k: &u8, _parts| 0,
        |range, emit, _c| {
            pool.with(|scratch| {
                let mut local = [0.0f64; NUM_FEATURES];
                let mut any = false;
                for a in range.clone() {
                    let a = a as u32;
                    scratch.sweep(collection, EntityId(a));
                    for &y in scratch.neighbours() {
                        if y <= a {
                            continue;
                        }
                        any = true;
                        let raw = supervised::raw_forward_features(scratch, a, y, globals);
                        supervised::merge_feature_max(&mut local, &raw);
                    }
                }
                if any {
                    emit(0u8, local);
                }
            })
        },
        |_key, locals, out, _c| {
            let mut max = [0.0f64; NUM_FEATURES];
            for local in locals.iter() {
                supervised::merge_feature_max(&mut max, local);
            }
            out.push(max);
        },
    );
    let max = result
        .output
        .first()
        .copied()
        .unwrap_or([0.0; NUM_FEATURES]);
    report.push("supervised/feature-maxima", result.stats);
    let extractor = supervised::FeatureExtractor::from_max(max);

    // Job 2: score each forward edge, one record per entity
    // neighbourhood carrying only the kept pairs.
    let extractor = &extractor;
    let result = engine.run_partitioned(
        cx.splits.clone(),
        entity_partitioner(n),
        |range, emit, c| {
            pool.with(|scratch| {
                for a in range.clone() {
                    let a = a as u32;
                    scratch.sweep(collection, EntityId(a));
                    let mut kept: Vec<(u32, f64)> = Vec::new();
                    let mut fwd = 0u64;
                    for &y in scratch.neighbours() {
                        if y <= a {
                            continue;
                        }
                        fwd += 1;
                        let raw = supervised::raw_forward_features(scratch, a, y, globals);
                        let score = model.score(&extractor.normalise(raw));
                        if score > 0.0 {
                            kept.push((y, supervised::sigmoid(score)));
                        }
                    }
                    c.add(FWD_EDGES, fwd);
                    if !kept.is_empty() {
                        emit(a, kept);
                    }
                }
            })
        },
        |&a, neighbourhoods, out, _c| {
            for neigh in neighbourhoods.iter() {
                for &(y, w) in neigh {
                    out.push(WeightedPair {
                        a: EntityId(a),
                        b: EntityId(y),
                        weight: w,
                    });
                }
            }
        },
    );
    report.push("supervised/score", result.stats);
    // Sigmoid weights under the CBS label, matching `supervised_prune`.
    let out = PrunedComparisons::from_weighted_pairs(
        result.output,
        WeightingScheme::Cbs,
        globals.num_edges,
    );
    (out, report)
}

/// Every distinct comparable pair with its weight, sorted by pair — the
/// entity-based equivalent of enumerating the blocking graph's edges
/// (the unpruned path), one shuffled record per entity neighbourhood.
#[doc(hidden)]
pub fn weighted_edges(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    engine: &Engine,
) -> Vec<WeightedPair> {
    weighted_edges_with_report(collection, scheme, engine).0
}

/// [`weighted_edges`], also returning the per-job execution statistics.
#[doc(hidden)]
pub fn weighted_edges_with_report(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    engine: &Engine,
) -> (Vec<WeightedPair>, JobReport) {
    weighted_edges_session(&mut SweepState::new(collection), scheme, engine)
}

/// The session body of the unpruned entity-based path.
pub(crate) fn weighted_edges_session(
    st: &mut SweepState<'_>,
    scheme: WeightingScheme,
    engine: &Engine,
) -> (Vec<WeightedPair>, JobReport) {
    let mut report = JobReport::default();
    ensure_globals_job(st, scheme, false, engine, &mut report);
    let cx = JobCtx::new(st, engine);
    let (pairs, _, stats) = neighbourhood_job(&cx, scheme, true, engine, |a, neigh, out| {
        for &(y, w) in neigh {
            out.push(WeightedPair {
                a: EntityId(a),
                b: EntityId(y),
                weight: w,
            });
        }
    });
    report.push("weighted-edges", stats);
    (pairs, report)
}

// ---------------------------------------------------------------------------
// Edge-based strategy (the shuffle-heavy baseline).
// ---------------------------------------------------------------------------

/// Edge statistics computed by the edge-based MapReduce job.
#[derive(Clone, Copy, Debug)]
struct EdgeStats {
    cbs: u32,
    arcs: f64,
}

/// Runs the edge-based weighting job: one weighted record per distinct
/// comparable pair, sorted by pair. Exactly the blocking-graph edges.
/// Kept (visible) as the measured per-occurrence-shuffle baseline the
/// entity-based strategy is compared against.
pub fn parallel_edge_weights(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    engine: &Engine,
) -> Vec<WeightedPair> {
    parallel_edge_weights_with_stats(collection, scheme, engine).0
}

/// As [`parallel_edge_weights`], also returning the job's execution
/// statistics — its `intermediate_pairs` is the per-occurrence shuffle
/// volume the entity-based strategy avoids.
pub fn parallel_edge_weights_with_stats(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    engine: &Engine,
) -> (Vec<WeightedPair>, JobStats) {
    // Per-entity stats are cheap and shared read-only with all tasks
    // (the paper's preprocessing job materialises the same information).
    let n = collection.num_entities();
    let blocks_of = kernel::blocks_of(collection);
    let num_blocks = collection.len();

    let block_ids: Vec<u32> = (0..collection.len() as u32).collect();
    let result = engine.run(
        block_ids,
        |&bid, emit| {
            let b = collection.block(minoan_blocking::BlockId(bid));
            let card = (b.comparisons as f64).max(1.0);
            for (i, &x) in b.entities.iter().enumerate() {
                for &y in &b.entities[i + 1..] {
                    if collection.comparable(x, y) {
                        emit((x.min(y), x.max(y)), 1.0 / card);
                    }
                }
            }
        },
        |&(a, b), arcs_parts, out| {
            let stats = EdgeStats {
                cbs: arcs_parts.len() as u32,
                arcs: arcs_parts.iter().sum(),
            };
            out.push(((a, b), stats));
        },
    );

    let edges = result.output;
    // Degrees (|V_i|) need the distinct-edge view; derive from the job
    // output (this is [4]'s second preprocessing aggregate).
    let mut degree = vec![0u32; n];
    for &((a, b), _) in &edges {
        degree[a.index()] += 1;
        degree[b.index()] += 1;
    }
    let num_edges = edges.len();

    let pairs = edges
        .into_iter()
        .map(|((a, b), st)| {
            let weight = kernel::weight_from_stats(
                scheme,
                st.cbs,
                st.arcs,
                blocks_of[a.index()],
                blocks_of[b.index()],
                num_blocks,
                degree[a.index()] as usize,
                degree[b.index()] as usize,
                num_edges,
            );
            WeightedPair { a, b, weight }
        })
        .collect();
    (pairs, result.stats)
}

/// Parallel WEP (edge-based strategy): weight job + global mean filter.
/// The threshold is the shared positive-weight-only mean
/// (`prune::wep_threshold_from_sums`), so the result is bit-identical
/// to `prune::wep` even on ECBS/EJS inputs with zero-weight edges.
#[doc(hidden)]
pub fn parallel_wep(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    engine: &Engine,
) -> PrunedComparisons {
    let weighted = parallel_edge_weights(collection, scheme, engine);
    let input_edges = weighted.len();
    // The job output is sorted by pair, so accumulating per smaller
    // endpoint walks the exact slab order the other backends sum in.
    let mut sums = vec![0.0f64; collection.num_entities()];
    let mut positive = 0u64;
    for p in &weighted {
        if p.weight > 0.0 {
            // lint:allow(float-accumulation): serial walk of pair-sorted job output, slab order
            sums[p.a.index()] += p.weight;
            positive += 1;
        }
    }
    let threshold = prune::wep_threshold_from_sums(&sums, positive);
    let kept: Vec<WeightedPair> = weighted
        .into_iter()
        .filter(|p| p.weight >= threshold && p.weight > 0.0)
        .collect();
    PrunedComparisons::from_weighted_pairs(kept, scheme, input_edges)
}

/// Parallel CNP (edge-based strategy): weight job, then a per-node top-k
/// job keyed by endpoint; `reciprocal` intersects the two endpoint votes.
/// Vote combination runs over the pair-sorted kept list (no hash-map
/// iteration order anywhere), so the output ordering is deterministic.
#[doc(hidden)]
pub fn parallel_cnp(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    reciprocal: bool,
    k: Option<usize>,
    engine: &Engine,
) -> PrunedComparisons {
    let weighted = parallel_edge_weights(collection, scheme, engine);
    let input_edges = weighted.len();
    let active = {
        let mut seen = vec![false; collection.num_entities()];
        for p in &weighted {
            seen[p.a.index()] = true;
            seen[p.b.index()] = true;
        }
        seen.iter().filter(|&&s| s).count().max(1)
    };
    let k = k.unwrap_or_else(|| prune::default_cnp_k_from(collection.total_assignments(), active));

    // Entity-based second job: each reducer owns one node neighbourhood.
    let result = engine.run(
        weighted,
        |p, emit| {
            emit(p.a, (p.b, p.weight));
            emit(p.b, (p.a, p.weight));
        },
        |&node, neigh, out| {
            let mut top: TopK<(OrdF64, Reverse<(EntityId, EntityId)>)> = TopK::new(k);
            for &(other, w) in neigh.iter() {
                if w > 0.0 {
                    let (lo, hi) = (node.min(other), node.max(other));
                    top.push((OrdF64(w), Reverse((lo, hi))));
                }
            }
            for (w, r) in top.into_sorted_vec() {
                out.push(WeightedPair {
                    a: r.0 .0,
                    b: r.0 .1,
                    weight: w.0,
                });
            }
        },
    );

    // Vote counting (union vs reciprocal) over the pair-sorted kept list.
    let mut kept = result.output;
    kept.sort_unstable_by_key(|p| (p.a, p.b));
    let kept = kernel::combine_votes(kept, reciprocal);
    PrunedComparisons::from_weighted_pairs(kept, scheme, input_edges)
}

/// Convenience check used by tests and the harness: the serial graph built
/// from the same collection.
pub fn serial_graph(collection: &BlockCollection) -> crate::graph::BlockingGraph {
    crate::graph::BlockingGraph::build(collection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BlockingGraph;
    use crate::{blast as blast_mod, streaming};
    use minoan_blocking::builders::token_blocking;
    use minoan_blocking::ErMode;
    use minoan_datagen::{generate, profiles};

    use crate::assert_bit_identical;

    fn pair_set(p: &PrunedComparisons) -> std::collections::BTreeSet<(u32, u32)> {
        p.pairs.iter().map(|p| (p.a.0, p.b.0)).collect()
    }

    #[test]
    fn parallel_weights_match_serial_graph() {
        let g = generate(&profiles::center_dense(120, 4));
        let blocks = token_blocking(&g.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        for scheme in WeightingScheme::ALL {
            let par = parallel_edge_weights(&blocks, scheme, &Engine::new(4));
            assert_eq!(par.len(), graph.num_edges(), "{scheme:?}");
            // Align by construction: job output is sorted by pair key.
            for (wp, edge) in par.iter().zip(graph.edges()) {
                assert_eq!((wp.a, wp.b), (edge.a, edge.b));
                let serial_w = scheme.weight(&graph, edge);
                assert_eq!(
                    wp.weight.to_bits(),
                    serial_w.to_bits(),
                    "{scheme:?}: {} vs {serial_w}",
                    wp.weight
                );
            }
        }
    }

    #[test]
    fn entity_based_weighted_edges_match_the_slab() {
        let g = generate(&profiles::center_dense(110, 6));
        let blocks = token_blocking(&g.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        for scheme in [WeightingScheme::Arcs, WeightingScheme::Ejs] {
            let par = weighted_edges(&blocks, scheme, &Engine::new(3));
            assert_eq!(par.len(), graph.num_edges(), "{scheme:?}");
            for (wp, edge) in par.iter().zip(graph.edges()) {
                assert_eq!((wp.a, wp.b), (edge.a, edge.b));
                assert_eq!(wp.weight.to_bits(), scheme.weight(&graph, edge).to_bits());
            }
        }
    }

    #[test]
    fn parallel_wep_bit_identical_to_serial_wep() {
        let g = generate(&profiles::center_dense(100, 9));
        let blocks = token_blocking(&g.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        for scheme in [WeightingScheme::Ecbs, WeightingScheme::Ejs] {
            let ser = prune::wep(&graph, scheme);
            for workers in [1, 4] {
                let par = parallel_wep(&blocks, scheme, &Engine::new(workers));
                assert_bit_identical(&par, &ser, &format!("edge-based/{scheme:?}/w={workers}"));
                let ent = wep(&blocks, scheme, &Engine::new(workers));
                assert_bit_identical(&ent, &ser, &format!("entity-based/{scheme:?}/w={workers}"));
            }
        }
    }

    #[test]
    fn parallel_cnp_equals_serial_cnp() {
        let g = generate(&profiles::center_dense(100, 2));
        let blocks = token_blocking(&g.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        for reciprocal in [false, true] {
            let ser = prune::cnp(&graph, WeightingScheme::Js, reciprocal, Some(3));
            let par = parallel_cnp(
                &blocks,
                WeightingScheme::Js,
                reciprocal,
                Some(3),
                &Engine::new(3),
            );
            assert_bit_identical(&par, &ser, &format!("edge-based/r={reciprocal}"));
            let ent = cnp(
                &blocks,
                WeightingScheme::Js,
                reciprocal,
                Some(3),
                &Engine::new(3),
            );
            assert_bit_identical(&ent, &ser, &format!("entity-based/r={reciprocal}"));
        }
    }

    #[test]
    fn entity_based_matches_streaming_on_all_families() {
        let g = generate(&profiles::center_dense(90, 23));
        let blocks = token_blocking(&g.dataset, ErMode::CleanClean);
        let engine = Engine::new(3);
        for scheme in [WeightingScheme::Arcs, WeightingScheme::Ejs] {
            assert_bit_identical(
                &wnp(&blocks, scheme, false, &engine),
                &streaming::wnp(&blocks, scheme, false),
                &format!("wnp/{scheme:?}"),
            );
            assert_bit_identical(
                &cnp(&blocks, scheme, true, None, &engine),
                &streaming::cnp(&blocks, scheme, true, None),
                &format!("cnp/{scheme:?}"),
            );
            assert_bit_identical(
                &wep(&blocks, scheme, &engine),
                &streaming::wep(&blocks, scheme),
                &format!("wep/{scheme:?}"),
            );
            assert_bit_identical(
                &cep(&blocks, scheme, Some(7), &engine),
                &streaming::cep(&blocks, scheme, Some(7)),
                &format!("cep/{scheme:?}"),
            );
        }
        let graph = BlockingGraph::build(&blocks);
        assert_bit_identical(
            &blast(&blocks, 0.35, &engine),
            &blast_mod::blast(&graph, 0.35),
            "blast",
        );
    }

    #[test]
    fn mapreduce_supervised_matches_materialised() {
        use crate::supervised::{FeatureExtractor, Perceptron, TrainingSet};
        let g = generate(&profiles::center_dense(140, 5));
        let blocks = token_blocking(&g.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        let extractor = FeatureExtractor::fit(&graph);
        let set = TrainingSet::sample(&graph, &extractor, |a, b| g.truth.is_match(a, b), 40, 17);
        let model = Perceptron::train(&set, 12);
        let ser = crate::supervised::supervised_prune(&graph, &model);
        assert!(!ser.pairs.is_empty(), "fixture model must keep something");
        for workers in [1, 4] {
            let (par, report) =
                supervised_prune_with_report(&blocks, &model, &Engine::new(workers));
            assert_bit_identical(&par, &ser, &format!("supervised/w={workers}"));
            assert!(report.jobs.iter().any(|(l, _)| *l == "supervised/score"));
        }
    }

    #[test]
    fn worker_count_invariance() {
        let g = generate(&profiles::periphery_sparse(80, 5));
        let blocks = token_blocking(&g.dataset, ErMode::CleanClean);
        let one = wep(&blocks, WeightingScheme::Arcs, &Engine::new(1));
        let many = wep(&blocks, WeightingScheme::Arcs, &Engine::new(8));
        assert_eq!(pair_set(&one), pair_set(&many));
        assert_bit_identical(&many, &one, "wep w=8 vs w=1");
    }

    #[test]
    fn entity_based_shuffles_less_than_edge_based() {
        let g = generate(&profiles::center_dense(150, 31));
        let blocks = token_blocking(&g.dataset, ErMode::CleanClean);
        let engine = Engine::new(4);
        let (_, edge_stats) =
            parallel_edge_weights_with_stats(&blocks, WeightingScheme::Arcs, &engine);
        let (_, report) = wnp_with_report(&blocks, WeightingScheme::Arcs, false, &engine);
        // Edge-based: one record per pair occurrence. Entity-based: at
        // most one weighting record per entity plus the kept votes.
        assert!(
            report.shuffled_records() < edge_stats.intermediate_pairs,
            "entity-based must shuffle less: {} vs {}",
            report.shuffled_records(),
            edge_stats.intermediate_pairs
        );
        let weighting_records = report
            .jobs
            .iter()
            .find(|(l, _)| *l == "wnp/neighbourhoods")
            .map(|(_, s)| s.intermediate_pairs)
            .unwrap();
        assert!(
            weighting_records <= blocks.num_entities(),
            "at most one record per entity neighbourhood"
        );
    }

    #[test]
    fn degenerate_collections_are_fine() {
        let ds = minoan_rdf::DatasetBuilder::new().build();
        let c = BlockCollection::from_groups(
            &ds,
            ErMode::CleanClean,
            Vec::<(String, Vec<EntityId>)>::new(),
        );
        let engine = Engine::new(2);
        assert!(wnp(&c, WeightingScheme::Arcs, false, &engine)
            .pairs
            .is_empty());
        assert!(cnp(&c, WeightingScheme::Ejs, true, None, &engine)
            .pairs
            .is_empty());
        assert!(wep(&c, WeightingScheme::Js, &engine).pairs.is_empty());
        let e = cep(&c, WeightingScheme::Cbs, None, &engine);
        assert!(e.pairs.is_empty());
        assert_eq!(e.input_edges, 0);
        assert!(weighted_edges(&c, WeightingScheme::Arcs, &engine).is_empty());
        assert!(blast(&c, 0.5, &engine).pairs.is_empty());
    }

    #[test]
    fn explicit_zero_k_reports_stats() {
        let g = generate(&profiles::center_dense(60, 8));
        let blocks = token_blocking(&g.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        let engine = Engine::new(3);
        for (out, label) in [
            (cep(&blocks, WeightingScheme::Js, Some(0), &engine), "cep"),
            (
                cnp(&blocks, WeightingScheme::Js, false, Some(0), &engine),
                "cnp",
            ),
        ] {
            assert!(out.pairs.is_empty(), "{label}");
            assert_eq!(out.input_edges, graph.num_edges(), "{label}: stats");
        }
    }
}
